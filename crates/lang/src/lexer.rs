//! Tokenizer for the MACEDON language.
//!
//! `.mac` files use a C-flavored surface syntax: identifiers, integer
//! literals, punctuation, `//` line comments and `/* */` block comments.
//! Keywords are recognized by the parser (any identifier may be a
//! keyword in context), which keeps the grammar of Figure 4 faithful —
//! e.g. `states`, `recv`, `API` are plain words.

use std::fmt;

/// Lexical or syntactic error with position information.
#[derive(Clone, Debug)]
pub struct ParseError {
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Kinds of tokens.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Assign, // =
    EqEq,   // ==
    Ne,     // !=
    Lt,
    Gt,
    Le,
    Ge,
    Bang,   // !
    AndAnd, // &&
    OrOr,   // ||
    Pipe,   // |
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Dot,
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// Streaming tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let mk = |kind| Token { kind, line, col };
        let Some(c) = self.peek() else {
            return Ok(mk(TokenKind::Eof));
        };
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            let word = std::str::from_utf8(&self.src[start..self.pos])
                .expect("ascii checked")
                .to_string();
            return Ok(mk(TokenKind::Ident(word)));
        }
        // Integers (decimal and 0x hex).
        if c.is_ascii_digit() {
            let start = self.pos;
            if c == b'0' && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
                self.bump();
                self.bump();
                while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start + 2..self.pos]).expect("ascii");
                let v = i64::from_str_radix(text, 16)
                    .map_err(|_| self.err(format!("bad hex literal 0x{text}")))?;
                return Ok(mk(TokenKind::Int(v)));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            let v: i64 = text
                .parse()
                .map_err(|_| self.err(format!("bad integer {text}")))?;
            return Ok(mk(TokenKind::Int(v)));
        }
        self.bump();
        let kind = match c {
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'.' => TokenKind::Dot,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'%' => TokenKind::Percent,
            b'=' if self.peek() == Some(b'=') => {
                self.bump();
                TokenKind::EqEq
            }
            b'=' => TokenKind::Assign,
            b'!' if self.peek() == Some(b'=') => {
                self.bump();
                TokenKind::Ne
            }
            b'!' => TokenKind::Bang,
            b'<' if self.peek() == Some(b'=') => {
                self.bump();
                TokenKind::Le
            }
            b'<' => TokenKind::Lt,
            b'>' if self.peek() == Some(b'=') => {
                self.bump();
                TokenKind::Ge
            }
            b'>' => TokenKind::Gt,
            b'&' if self.peek() == Some(b'&') => {
                self.bump();
                TokenKind::AndAnd
            }
            b'|' if self.peek() == Some(b'|') => {
                self.bump();
                TokenKind::OrOr
            }
            b'|' => TokenKind::Pipe,
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        Ok(Token { kind, line, col })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_and_punctuation() {
        use TokenKind::*;
        assert_eq!(
            kinds("states { joining; }"),
            vec![
                Ident("states".into()),
                LBrace,
                Ident("joining".into()),
                Semi,
                RBrace,
                Eof
            ]
        );
    }

    #[test]
    fn integers_decimal_and_hex() {
        use TokenKind::*;
        assert_eq!(kinds("42 0x2A"), vec![Int(42), Int(42), Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // comment\n/* block\n comment */ b"),
            vec![Ident("a".into()), Ident("b".into()), Eof]
        );
    }

    #[test]
    fn two_char_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("== != <= >= && || ! | = < >"),
            vec![EqEq, Ne, Le, Ge, AndAnd, OrOr, Bang, Pipe, Assign, Lt, Gt, Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(Lexer::new("/* nope").tokenize().is_err());
    }

    #[test]
    fn stray_character_errors() {
        let e = Lexer::new("@").tokenize().unwrap_err();
        assert!(e.msg.contains("unexpected"));
    }
}
