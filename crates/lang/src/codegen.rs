//! Code generation: emit the Rust agent source a MACEDON translation of
//! the spec corresponds to.
//!
//! The paper's `macedon` emits C++ against its engine ("its generated
//! C++ code is over 2500 \[lines\]" for NICE); here we emit Rust against
//! `macedon-core`. The output is a self-contained module implementing
//! the [`macedon_core::Agent`] trait — one typed handler per transition,
//! the §3.2 demultiplexing functions for messages / timers / API
//! downcalls, generated marshaling per message declaration, and the same
//! layering behavior the interpreter has (layered sends tunnel through
//! `route`/`routeIP` downcalls, `forward` transitions may `quash();`
//! in-transit messages, lowest layers serve `routeIP` natively and vet
//! payload-bearing sends through the engine's forward query).
//!
//! The generated code is **behaviorally identical** to interpreting the
//! same spec: it draws from the per-node RNG at the same points, emits
//! byte-identical wire messages, and buffers the same [`macedon_core`]
//! effect ops in the same order. The integration suite exploits this by
//! running generated agents and their interpreted twins on seeded worlds
//! and asserting identical delivery logs (see `crates/generated`).
//!
//! Anything the generator cannot express is reported as a
//! [`CodegenError`] — never silently skipped.

use crate::ast::*;
use std::fmt;
use std::fmt::Write as _;

/// A construct the code generator cannot express (or a spec-level
/// inconsistency surfaced while typing the action language).
#[derive(Clone, Debug)]
pub struct CodegenError {
    /// Protocol the error was found in.
    pub spec: String,
    /// Human-readable diagnostic.
    pub detail: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen '{}': {}", self.spec, self.detail)
    }
}

impl std::error::Error for CodegenError {}

/// Static type of a rendered action-language expression.
///
/// The DSL is dynamically typed (the interpreter's `Value`); generated
/// code is statically typed, so every expression is assigned one of
/// these. `Node` renders as `Option<NodeId>` because node values are
/// nullable throughout the language (`null`, absent message fields,
/// empty `neighbor_random`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ty {
    Int,
    Bool,
    Key,
    Node,
    Payload,
    List,
    Null,
}

/// Rust keywords that cannot appear as generated identifiers.
const RUST_KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
    "where", "while", "async", "await", "box", "priv", "try", "union", "yield",
];

/// Generate the Rust agent module for a compiled spec (no base-layer
/// transport table: layered message classes stay at the default
/// priority, as a standalone [`crate::interp::InterpretedAgent::new`]
/// would run them).
pub fn generate(spec: &Spec) -> Result<String, CodegenError> {
    Gen::new(spec, None)?.file()
}

/// Generate with the base (tunneling) layer's transport table in hand:
/// a layered spec's message class names (`HIGH`, `BEST_EFFORT`, …)
/// resolve to baked-in channel priorities via
/// [`crate::ast::map_class_to_channel`] — the codegen-time equivalent
/// of [`crate::interp::InterpretedAgent::set_base_transports`]. The
/// regen tool passes each bundled spec's resolved chain here.
pub fn generate_with_base(
    spec: &Spec,
    base: Option<&[TransportDecl]>,
) -> Result<String, CodegenError> {
    Gen::new(spec, base)?.file()
}

/// Lines of generated code (the paper's "generated C++ is over 2500
/// LoC" comparison, Figure 7). Counts the full compilable output — the
/// same text `crates/generated` builds — and panics loudly if the spec
/// stops being generatable (bundled specs are covered by tests).
pub fn generated_loc(spec: &Spec, base: Option<&[TransportDecl]>) -> usize {
    // Count the real artifact: pass the chain's base transport table
    // for a layered spec (the caller usually has the registry in hand
    // already), `None` for lowest-layer specs.
    match generate_with_base(spec, base) {
        Ok(code) => code.lines().count(),
        Err(e) => panic!("{e}"),
    }
}

/// Per-transition binding context: which names are in scope and how a
/// `return;` leaves the handler.
#[derive(Clone)]
struct Cx<'a> {
    /// Triggering message for `recv`/`forward` transitions.
    msg: Option<&'a MessageDecl>,
    /// API name for `API <name>` transitions (binds `dest`/`group`/
    /// `payload`).
    api: Option<&'a str>,
    /// Is `from` bound (recv/forward/error)?
    has_from: bool,
    /// Active `foreach` variables, innermost last.
    fe: Vec<String>,
    /// How `return;` renders (`return quash;` in forward handlers).
    ret: &'static str,
}

impl<'a> Cx<'a> {
    fn plain() -> Cx<'a> {
        Cx {
            msg: None,
            api: None,
            has_from: false,
            fe: Vec::new(),
            ret: "return;",
        }
    }
}

struct Gen<'a> {
    spec: &'a Spec,
    name: String,
    layered: bool,
    proto: u16,
    /// The base (tunneling) layer's transport table, when known —
    /// resolves layered message classes to baked channel priorities.
    base: Option<&'a [TransportDecl]>,
}

impl<'a> Gen<'a> {
    fn new(spec: &'a Spec, base: Option<&'a [TransportDecl]>) -> Result<Gen<'a>, CodegenError> {
        let g = Gen {
            spec,
            name: camel(&spec.name),
            layered: spec.uses.is_some(),
            proto: crate::interp::protocol_id_of(&spec.name),
            base,
        };
        g.preflight()?;
        Ok(g)
    }

    /// Priority a layered message's sends travel at: the base channel
    /// its declared class maps onto, or the default (mirrors the
    /// interpreter's `msg_prio`).
    fn msg_priority(&self, decl: &MessageDecl) -> i8 {
        self.base
            .zip(decl.transport.as_deref())
            .and_then(|(base, class)| crate::ast::map_class_to_channel(base, class))
            .and_then(|ch| i8::try_from(ch).ok())
            .unwrap_or(macedon_core::DEFAULT_PRIORITY)
    }

    fn err(&self, detail: impl Into<String>) -> CodegenError {
        CodegenError {
            spec: self.spec.name.clone(),
            detail: detail.into(),
        }
    }

    /// Reject identifiers the emitter cannot name.
    fn preflight(&self) -> Result<(), CodegenError> {
        let mut idents: Vec<&str> = Vec::new();
        for m in &self.spec.messages {
            idents.push(&m.name);
            for f in &m.fields {
                idents.push(&f.name);
            }
        }
        for v in &self.spec.state_vars {
            match v {
                StateVar::Neighbor { name, .. }
                | StateVar::Timer { name, .. }
                | StateVar::Scalar { name, .. } => idents.push(name),
            }
        }
        for (c, _) in &self.spec.constants {
            idents.push(c);
        }
        for i in idents {
            if RUST_KEYWORDS.contains(&i) {
                return Err(self.err(format!("identifier '{i}' is a Rust keyword")));
            }
        }
        for t in &self.spec.transitions {
            if let Trigger::Api(api) = &t.trigger {
                if !KNOWN_APIS.contains(&api.as_str()) {
                    return Err(self.err(format!(
                        "transition for unknown API '{api}' (known: {KNOWN_APIS:?})"
                    )));
                }
            }
        }
        for v in &self.spec.state_vars {
            if let StateVar::Scalar {
                ty: TypeName::Neighbor(t),
                name,
            } = v
            {
                return Err(self.err(format!(
                    "scalar state variable '{name}' of neighbor type '{t}' is not supported; \
                     declare it as a neighbor list"
                )));
            }
        }
        Ok(())
    }

    // ---- spec lookups ----------------------------------------------------

    fn state_enum(&self) -> String {
        format!("{}State", self.name)
    }

    fn msg_channel(&self, decl: &MessageDecl) -> u16 {
        decl.transport
            .as_ref()
            .and_then(|t| self.spec.transports.iter().position(|d| &d.name == t))
            .unwrap_or(0) as u16
    }

    /// `(max, fail_detect)` of a declared neighbor list.
    fn list_info(&self, name: &str) -> Option<(usize, bool)> {
        self.spec.state_vars.iter().find_map(|v| match v {
            StateVar::Neighbor {
                ty,
                name: n,
                fail_detect,
            } if n == name => Some((self.spec.list_max(ty), *fail_detect)),
            _ => None,
        })
    }

    fn scalar_type(&self, name: &str) -> Option<&TypeName> {
        self.spec.state_vars.iter().find_map(|v| match v {
            StateVar::Scalar { ty, name: n } if n == name => Some(ty),
            _ => None,
        })
    }

    fn const_value(&self, name: &str) -> Option<i64> {
        self.spec
            .constants
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Constant-fold an expression (literals, constants, unary minus) —
    /// used to prove divisors non-zero at generation time.
    fn const_int(&self, e: &Expr) -> Option<i64> {
        match e {
            Expr::Int(v) => Some(*v),
            Expr::Var(n) => self.const_value(n),
            Expr::Neg(inner) => self.const_int(inner).map(|v| -v),
            _ => None,
        }
    }
}

/// API names the engine can dispatch (`DownCall` variants plus `init`).
const KNOWN_APIS: &[&str] = &[
    "init",
    "route",
    "routeIP",
    "multicast",
    "anycast",
    "collect",
    "create_group",
    "join",
    "leave",
    "downcall_ext",
];

/// APIs that bind a `group` argument.
const GROUP_APIS: &[&str] = &[
    "multicast",
    "anycast",
    "collect",
    "create_group",
    "join",
    "leave",
];

/// APIs that bind a `payload` argument.
const PAYLOAD_APIS: &[&str] = &["route", "routeIP", "multicast", "anycast", "collect"];

impl<'a> Gen<'a> {
    // ---- expression rendering -------------------------------------------
    //
    // Every render mirrors the interpreter's `eval`: same name-resolution
    // order, both operands of a binary op always evaluated (`&`/`|`, not
    // `&&`/`||`), `neighbor_random` draws from `ctx.rng` exactly when the
    // interpreter would.

    fn expr(&self, cx: &Cx, e: &Expr) -> Result<(String, Ty), CodegenError> {
        Ok(match e {
            Expr::Int(v) => (format!("({v}i64)"), Ty::Int),
            Expr::Var(name) => self.var_expr(cx, name)?,
            Expr::Field(name) => self.field_expr(cx, name)?,
            Expr::NeighborSize(l) => {
                self.known_list(l)?;
                (format!("(self.{l}.len() as i64)"), Ty::Int)
            }
            Expr::NeighborQuery(l, inner) => {
                self.known_list(l)?;
                let (s, ty) = self.expr(cx, inner)?;
                match ty {
                    Ty::Node => (
                        format!("({s}).map_or(false, |__q| self.{l}.contains(&__q))"),
                        Ty::Bool,
                    ),
                    Ty::Null => ("false".into(), Ty::Bool),
                    other => {
                        return Err(self.err(format!(
                            "neighbor_query({l}, ..) needs a node argument, got {other:?}"
                        )))
                    }
                }
            }
            Expr::NeighborRandom(l) => {
                self.known_list(l)?;
                (
                    format!(
                        "(if self.{l}.is_empty() {{ None }} else \
                         {{ Some(self.{l}[ctx.rng.index(self.{l}.len())]) }})"
                    ),
                    Ty::Node,
                )
            }
            Expr::Rtt(inner) => {
                // Mirrors the interpreter: node → engine measurement in
                // ms, null → 0, anything else is a type error.
                let (s, ty) = self.expr(cx, inner)?;
                match ty {
                    Ty::Node => (
                        format!("(({s}).map_or(0i64, |__p| ctx.rtt_ms(__p)))"),
                        Ty::Int,
                    ),
                    Ty::Null => (format!("{{ let _ = {s}; 0i64 }}"), Ty::Int),
                    other => {
                        return Err(self.err(format!("rtt(..) needs a node, got {other:?} ({s})")))
                    }
                }
            }
            Expr::Goodput(inner) => {
                let (s, ty) = self.expr(cx, inner)?;
                match ty {
                    Ty::Node => (
                        format!("(({s}).map_or(0i64, |__p| ctx.goodput_kbps(__p)))"),
                        Ty::Int,
                    ),
                    Ty::Null => (format!("{{ let _ = {s}; 0i64 }}"), Ty::Int),
                    other => {
                        return Err(
                            self.err(format!("goodput(..) needs a node, got {other:?} ({s})"))
                        )
                    }
                }
            }
            Expr::RingDist(a, b) => (
                format!(
                    "key::dsl_ring_dist({}, {})",
                    self.key_opt(cx, a)?,
                    self.key_opt(cx, b)?
                ),
                Ty::Int,
            ),
            Expr::RingBetween(x, lo, hi) => (
                format!(
                    "key::dsl_ring_between({}, {}, {})",
                    self.key_opt(cx, x)?,
                    self.key_opt(cx, lo)?,
                    self.key_opt(cx, hi)?
                ),
                Ty::Bool,
            ),
            Expr::Digit(k, i, base) => (
                format!(
                    "key::dsl_digit({}, {}, {})",
                    self.key_opt(cx, k)?,
                    self.as_int(cx, i)?,
                    self.as_int(cx, base)?
                ),
                Ty::Int,
            ),
            Expr::PrefixLen(a, b) => (
                format!(
                    "key::dsl_prefix_len({}, {})",
                    self.key_opt(cx, a)?,
                    self.key_opt(cx, b)?
                ),
                Ty::Int,
            ),
            Expr::OwnerOf(k, l) => {
                self.known_list(l)?;
                (
                    format!(
                        "key::dsl_owner_of({}, &self.{l}, ctx.addressing)",
                        self.key_opt(cx, k)?
                    ),
                    Ty::Node,
                )
            }
            Expr::Not(inner) => (format!("(!{})", self.as_bool(cx, inner)?), Ty::Bool),
            Expr::Neg(inner) => (format!("(-{})", self.as_int(cx, inner)?), Ty::Int),
            Expr::Bin(op, a, b) => self.bin_expr(cx, *op, a, b)?,
        })
    }

    /// Render as an `Option<MacedonKey>`, the key builtins' operand
    /// coercion (the interpreter's `Value::as_key_opt`): keys pass
    /// through, nodes hash under the world's addressing mode, ints
    /// truncate onto the ring, null stays null.
    fn key_opt(&self, cx: &Cx, e: &Expr) -> Result<String, CodegenError> {
        let (s, ty) = self.expr(cx, e)?;
        match ty {
            Ty::Key => Ok(format!("Some({s})")),
            Ty::Node => Ok(format!(
                "({s}).map(|__n| MacedonKey::of_node(__n, ctx.addressing))"
            )),
            Ty::Int => Ok(format!("Some(MacedonKey(({s}) as u32))")),
            Ty::Null => Ok(format!("{{ let _ = {s}; None::<MacedonKey> }}")),
            other => Err(self.err(format!("expected key, got {other:?} ({s})"))),
        }
    }

    fn known_list(&self, l: &str) -> Result<(), CodegenError> {
        if self.list_info(l).is_none() {
            return Err(self.err(format!("unknown neighbor list '{l}'")));
        }
        Ok(())
    }

    fn var_expr(&self, cx: &Cx, name: &str) -> Result<(String, Ty), CodegenError> {
        // Builtins first — the interpreter's resolution order.
        match name {
            "from" => {
                return Ok(if cx.has_from {
                    ("Some(from)".into(), Ty::Node)
                } else {
                    ("None::<NodeId>".into(), Ty::Node)
                })
            }
            "me" => return Ok(("Some(ctx.me)".into(), Ty::Node)),
            "my_key" => return Ok(("ctx.my_key".into(), Ty::Key)),
            "bootstrap" => return Ok(("self.bootstrap".into(), Ty::Node)),
            "payload" => {
                return Ok(match cx.api {
                    Some(api) if PAYLOAD_APIS.contains(&api) => {
                        ("payload.clone()".into(), Ty::Payload)
                    }
                    _ => ("Bytes::new()".into(), Ty::Payload),
                })
            }
            "null" => return Ok(("None::<NodeId>".into(), Ty::Null)),
            "true" => return Ok(("true".into(), Ty::Bool)),
            "false" => return Ok(("false".into(), Ty::Bool)),
            "dest" => match cx.api {
                Some("route") => return Ok(("dest".into(), Ty::Key)),
                Some("routeIP") => return Ok(("Some(dest)".into(), Ty::Node)),
                _ => {}
            },
            "group" => {
                if matches!(cx.api, Some(api) if GROUP_APIS.contains(&api)) {
                    return Ok(("group".into(), Ty::Key));
                }
            }
            _ => {}
        }
        // Foreach variables shadow state (the interpreter writes them
        // into the same variable map).
        if cx.fe.iter().rev().any(|v| v == name) {
            return Ok((format!("Some(fe_{name})"), Ty::Node));
        }
        if self.const_value(name).is_some() {
            return Ok((name.to_string(), Ty::Int));
        }
        if let Some(ty) = self.scalar_type(name) {
            return Ok(match ty {
                TypeName::Int => (format!("self.{name}"), Ty::Int),
                TypeName::Bool => (format!("self.{name}"), Ty::Bool),
                TypeName::Node => (format!("self.{name}"), Ty::Node),
                TypeName::Key => (format!("self.{name}"), Ty::Key),
                TypeName::Payload => (format!("self.{name}.clone()"), Ty::Payload),
                TypeName::Neighbor(_) => unreachable!("rejected in preflight"),
            });
        }
        if self.list_info(name).is_some() {
            return Ok((format!("self.{name}"), Ty::List));
        }
        // `dest`/`group` outside an API binding fall back to null, as in
        // the interpreter.
        if name == "dest" || name == "group" {
            return Ok(("None::<NodeId>".into(), Ty::Null));
        }
        Err(self.err(format!("unknown variable '{name}'")))
    }

    fn field_expr(&self, cx: &Cx, name: &str) -> Result<(String, Ty), CodegenError> {
        let Some(decl) = cx.msg else {
            return Err(self.err(format!("field({name}) outside a recv/forward transition")));
        };
        let Some(f) = decl.fields.iter().find(|f| f.name == name) else {
            return Err(self.err(format!("message '{}' has no field '{name}'", decl.name)));
        };
        Ok(match &f.ty {
            TypeName::Int => (format!("m.{name}"), Ty::Int),
            TypeName::Bool => (format!("m.{name}"), Ty::Bool),
            TypeName::Node => (format!("m.{name}"), Ty::Node),
            TypeName::Key => (format!("m.{name}"), Ty::Key),
            TypeName::Payload => (format!("m.{name}.clone()"), Ty::Payload),
            TypeName::Neighbor(_) => (format!("m.{name}"), Ty::List),
        })
    }

    fn bin_expr(
        &self,
        cx: &Cx,
        op: BinOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<(String, Ty), CodegenError> {
        Ok(match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                // Key ± int wraps on the 2^32 ring (the interpreter's
                // `dsl_key_add` arm for Chord's `my_key + pow2`).
                if op != BinOp::Mul {
                    let (sa, ta) = self.expr(cx, a)?;
                    if ta == Ty::Key {
                        let off = self.as_int(cx, b)?;
                        let signed = if op == BinOp::Add {
                            off
                        } else {
                            format!("-({off})")
                        };
                        return Ok((format!("key::dsl_key_add({sa}, {signed})"), Ty::Key));
                    }
                }
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    _ => "*",
                };
                (
                    format!("({} {sym} {})", self.as_int(cx, a)?, self.as_int(cx, b)?),
                    Ty::Int,
                )
            }
            BinOp::Div | BinOp::Mod => {
                let sym = if op == BinOp::Div { "/" } else { "%" };
                match self.const_int(b) {
                    Some(0) => return Err(self.err("division by constant zero")),
                    Some(_) => (
                        format!("({} {sym} {})", self.as_int(cx, a)?, self.as_int(cx, b)?),
                        Ty::Int,
                    ),
                    None => {
                        return Err(self.err(
                            "division/modulo by a non-constant divisor is not supported by \
                             codegen (the interpreter would fault at runtime on zero)",
                        ))
                    }
                }
            }
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                let sym = match op {
                    BinOp::Lt => "<",
                    BinOp::Gt => ">",
                    BinOp::Le => "<=",
                    _ => ">=",
                };
                (
                    format!("({} {sym} {})", self.as_int(cx, a)?, self.as_int(cx, b)?),
                    Ty::Bool,
                )
            }
            // The interpreter evaluates both operands before testing
            // truthiness, so the generated operators are the eager `&`/`|`.
            BinOp::And => (
                format!("({} & {})", self.as_bool(cx, a)?, self.as_bool(cx, b)?),
                Ty::Bool,
            ),
            BinOp::Or => (
                format!("({} | {})", self.as_bool(cx, a)?, self.as_bool(cx, b)?),
                Ty::Bool,
            ),
            BinOp::Eq => (self.eq_expr(cx, a, b, false)?, Ty::Bool),
            BinOp::Ne => (self.eq_expr(cx, a, b, true)?, Ty::Bool),
        })
    }

    /// Equality following the interpreter's `values_eq`: int/bool compare
    /// by truthiness, node and key compare by raw id, null equals only
    /// null.
    fn eq_expr(&self, cx: &Cx, a: &Expr, b: &Expr, negate: bool) -> Result<String, CodegenError> {
        let (sa, ta) = self.expr(cx, a)?;
        let (sb, tb) = self.expr(cx, b)?;
        let eq = match (ta, tb) {
            (Ty::Int, Ty::Int) | (Ty::Bool, Ty::Bool) | (Ty::Key, Ty::Key) => {
                format!("({sa} == {sb})")
            }
            (Ty::Int, Ty::Bool) => format!("(({sa} != 0) == {sb})"),
            (Ty::Bool, Ty::Int) => format!("({sa} == ({sb} != 0))"),
            (Ty::Node, Ty::Node) => format!("({sa} == {sb})"),
            (Ty::Node, Ty::Null) => format!("({sa}).is_none()"),
            (Ty::Null, Ty::Node) => format!("({sb}).is_none()"),
            (Ty::Null, Ty::Null) => "true".to_string(),
            (Ty::Key, Ty::Node) => {
                format!("(match ({sa}, {sb}) {{ (__k, Some(__n)) => __n.0 == __k.0, _ => false }})")
            }
            (Ty::Node, Ty::Key) => {
                format!("(match ({sa}, {sb}) {{ (Some(__n), __k) => __n.0 == __k.0, _ => false }})")
            }
            (Ty::Payload, Ty::Payload) => format!("({sa} == {sb})"),
            (Ty::Payload, Ty::Null) | (Ty::Null, Ty::Payload) => {
                // `values_eq(Null, Bytes(_))` is false even for empty
                // payloads.
                format!("{{ let _ = ({sa}, {sb}); false }}")
            }
            (ta, tb) => {
                return Err(self.err(format!(
                    "cannot compare {ta:?} with {tb:?} (values_eq has no such case)"
                )))
            }
        };
        Ok(if negate { format!("(!{eq})") } else { eq })
    }

    fn as_int(&self, cx: &Cx, e: &Expr) -> Result<String, CodegenError> {
        let (s, ty) = self.expr(cx, e)?;
        match ty {
            Ty::Int => Ok(s),
            Ty::Bool => Ok(format!("({s} as i64)")),
            other => Err(self.err(format!("expected int, got {other:?} ({s})"))),
        }
    }

    fn as_bool(&self, cx: &Cx, e: &Expr) -> Result<String, CodegenError> {
        let (s, ty) = self.expr(cx, e)?;
        Ok(self.truthy_of(&s, ty))
    }

    /// Truthiness of a rendered value, mirroring `Value::truthy`.
    fn truthy_of(&self, s: &str, ty: Ty) -> String {
        match ty {
            Ty::Int => format!("({s} != 0)"),
            Ty::Bool => s.to_string(),
            Ty::Node => format!("({s}).is_some()"),
            Ty::Key | Ty::List => format!("{{ let _ = &{s}; true }}"),
            Ty::Payload => format!("(!({s}).is_empty())"),
            Ty::Null => format!("{{ let _ = {s}; false }}"),
        }
    }

    /// Render as an `Option<NodeId>` value.
    fn as_node(&self, cx: &Cx, e: &Expr) -> Result<String, CodegenError> {
        let (s, ty) = self.expr(cx, e)?;
        match ty {
            Ty::Node | Ty::Null => Ok(s),
            other => Err(self.err(format!("expected node, got {other:?} ({s})"))),
        }
    }

    /// The abort-transition snippet for runtime faults (the interpreter
    /// traces the error and unwinds the transition).
    fn bail(&self, cx: &Cx) -> String {
        format!(
            "{{ ctx.trace(TraceLevel::Low, \"{}: runtime error: null where a value is \
             required\"); {} }}",
            self.spec.name, cx.ret
        )
    }
}

impl<'a> Gen<'a> {
    // ---- statement emission ---------------------------------------------

    fn timer_id(&self, name: &str) -> Result<(u16, String), CodegenError> {
        self.spec
            .timer_decls()
            .position(|(n, _)| n == name)
            .map(|i| (i as u16, format!("TIMER_{}", name.to_uppercase())))
            .ok_or_else(|| self.err(format!("unknown timer '{name}'")))
    }

    fn body(
        &self,
        out: &mut String,
        ind: usize,
        cx: &mut Cx<'a>,
        stmts: &[Stmt],
    ) -> Result<(), CodegenError> {
        for s in stmts {
            self.stmt(out, ind, cx, s)?;
        }
        Ok(())
    }

    fn stmt(
        &self,
        out: &mut String,
        ind: usize,
        cx: &mut Cx<'a>,
        s: &Stmt,
    ) -> Result<(), CodegenError> {
        let p = " ".repeat(ind);
        match s {
            Stmt::If { cond, then, els } => {
                let c = self.as_bool(cx, cond)?;
                let _ = writeln!(out, "{p}if {c} {{");
                self.body(out, ind + 4, cx, then)?;
                if els.is_empty() {
                    let _ = writeln!(out, "{p}}}");
                } else {
                    let _ = writeln!(out, "{p}}} else {{");
                    self.body(out, ind + 4, cx, els)?;
                    let _ = writeln!(out, "{p}}}");
                }
            }
            Stmt::Return => {
                let _ = writeln!(out, "{p}{}", cx.ret);
            }
            Stmt::Quash => {
                let _ = writeln!(out, "{p}quash = true;");
            }
            Stmt::StateChange(st) => {
                let variant = if st == "init" {
                    "Init".to_string()
                } else {
                    camel(st)
                };
                // Mirror the interpreter: record the FSM edge before the
                // assignment so both back ends trace identical streams.
                let _ = writeln!(out, "{p}ctx.trace_fsm(self.state_name(), \"{st}\");");
                let _ = writeln!(out, "{p}self.state = {}::{variant};", self.state_enum());
            }
            Stmt::TimerResched(name, e) => {
                let (_, cname) = self.timer_id(name)?;
                let ms = self.as_int(cx, e)?;
                let _ = writeln!(
                    out,
                    "{p}ctx.timer_set({cname}, Duration::from_millis(({ms}).max(0) as u64));"
                );
            }
            Stmt::TimerCancel(name) => {
                let (_, cname) = self.timer_id(name)?;
                let _ = writeln!(out, "{p}ctx.timer_cancel({cname});");
            }
            Stmt::NeighborAdd(l, e) => {
                let (max, fd) = self
                    .list_info(l)
                    .ok_or_else(|| self.err(format!("unknown neighbor list '{l}'")))?;
                let n = self.as_node(cx, e)?;
                let _ = writeln!(out, "{p}if let Some(__n) = {n} {{");
                let _ = writeln!(
                    out,
                    "{p}    if !self.{l}.contains(&__n) && self.{l}.len() < {max}usize {{"
                );
                let _ = writeln!(out, "{p}        self.{l}.push(__n);");
                if fd {
                    let _ = writeln!(out, "{p}        ctx.monitor(__n);");
                }
                let _ = writeln!(out, "{p}    }}");
                let _ = writeln!(out, "{p}}} else {}", self.bail(cx));
            }
            Stmt::NeighborRemove(l, e) => {
                let (_, fd) = self
                    .list_info(l)
                    .ok_or_else(|| self.err(format!("unknown neighbor list '{l}'")))?;
                let n = self.as_node(cx, e)?;
                let _ = writeln!(out, "{p}if let Some(__n) = {n} {{");
                let _ = writeln!(out, "{p}    self.{l}.retain(|&__x| __x != __n);");
                if fd {
                    let _ = writeln!(out, "{p}    ctx.unmonitor(__n);");
                }
                let _ = writeln!(out, "{p}}} else {}", self.bail(cx));
            }
            Stmt::NeighborClear(l) => {
                let (_, fd) = self
                    .list_info(l)
                    .ok_or_else(|| self.err(format!("unknown neighbor list '{l}'")))?;
                if fd {
                    let _ = writeln!(out, "{p}for __n in self.{l}.drain(..) {{");
                    let _ = writeln!(out, "{p}    ctx.unmonitor(__n);");
                    let _ = writeln!(out, "{p}}}");
                } else {
                    let _ = writeln!(out, "{p}self.{l}.clear();");
                }
            }
            Stmt::Send {
                message,
                dest,
                args,
            } => self.emit_send(out, ind, cx, message, dest, args)?,
            Stmt::UpcallNotify(l, e) => {
                self.known_list(l)?;
                let t = self.as_int(cx, e)?;
                let _ = writeln!(out, "{p}{{");
                let _ = writeln!(out, "{p}    let __t = {t};");
                let _ = writeln!(
                    out,
                    "{p}    ctx.up(UpCall::Notify {{ nbr_type: __t as u32, neighbors: \
                     self.{l}.clone() }});"
                );
                let _ = writeln!(out, "{p}}}");
            }
            Stmt::Deliver { src, payload } => {
                let _ = writeln!(out, "{p}{{");
                self.emit_key_let(out, ind + 4, cx, "__src", src)?;
                let pl = self.payload_value(cx, payload)?;
                let _ = writeln!(out, "{p}    let __pl = {pl};");
                let from = if cx.has_from { "from" } else { "ctx.me" };
                let _ = writeln!(
                    out,
                    "{p}    ctx.up(UpCall::Deliver {{ src: __src, from: {from}, payload: __pl \
                     }});"
                );
                let _ = writeln!(out, "{p}}}");
            }
            Stmt::Monitor(e) => {
                let n = self.as_node(cx, e)?;
                let _ = writeln!(out, "{p}if let Some(__n) = {n} {{");
                let _ = writeln!(out, "{p}    ctx.monitor(__n);");
                let _ = writeln!(out, "{p}}} else {}", self.bail(cx));
            }
            Stmt::Unmonitor(e) => {
                let n = self.as_node(cx, e)?;
                let _ = writeln!(out, "{p}if let Some(__n) = {n} {{");
                let _ = writeln!(out, "{p}    ctx.unmonitor(__n);");
                let _ = writeln!(out, "{p}}} else {}", self.bail(cx));
            }
            Stmt::ForEach { var, list, body } => {
                self.known_list(list)?;
                let _ = writeln!(out, "{p}for fe_{var} in self.{list}.clone() {{");
                cx.fe.push(var.clone());
                self.body(out, ind + 4, cx, body)?;
                cx.fe.pop();
                let _ = writeln!(out, "{p}}}");
            }
            Stmt::Assign(name, e) => self.emit_assign(out, ind, cx, name, e)?,
            Stmt::Trace(e) => {
                let (v, _ty) = self.expr(cx, e)?;
                let _ = writeln!(
                    out,
                    "{p}ctx.trace(TraceLevel::Med, format!(\"{}: trace {{:?}}\", {v}));",
                    self.spec.name
                );
            }
            Stmt::DownCallApi { api, args } => self.emit_downcall(out, ind, cx, api, args)?,
        }
        Ok(())
    }

    /// `let {tmp} = <key value>;` with the interpreter's key coercion
    /// (node → key by raw id, null → transition abort).
    fn emit_key_let(
        &self,
        out: &mut String,
        ind: usize,
        cx: &Cx,
        tmp: &str,
        e: &Expr,
    ) -> Result<(), CodegenError> {
        let p = " ".repeat(ind);
        let (s, ty) = self.expr(cx, e)?;
        match ty {
            Ty::Key => {
                let _ = writeln!(out, "{p}let {tmp} = {s};");
            }
            Ty::Node => {
                let _ = writeln!(out, "{p}let Some(__kn) = {s} else {};", self.bail(cx));
                let _ = writeln!(out, "{p}let {tmp} = MacedonKey(__kn.0);");
            }
            Ty::Null => {
                // Statically null where a key is required: the interpreter
                // would fault at runtime; surface it at generation time.
                return Err(self.err("null where a key is required"));
            }
            other => return Err(self.err(format!("expected key, got {other:?} ({s})"))),
        }
        Ok(())
    }

    /// Render a payload-typed value (`Bytes`); null becomes the empty
    /// payload, as in `build_downcall`'s `as_payload`.
    fn payload_value(&self, cx: &Cx, e: &Expr) -> Result<String, CodegenError> {
        let (s, ty) = self.expr(cx, e)?;
        match ty {
            Ty::Payload => Ok(s),
            Ty::Null => Ok(format!("{{ let _ = {s}; Bytes::new() }}")),
            other => Err(self.err(format!("expected payload, got {other:?} ({s})"))),
        }
    }

    fn emit_assign(
        &self,
        out: &mut String,
        ind: usize,
        cx: &Cx,
        name: &str,
        e: &Expr,
    ) -> Result<(), CodegenError> {
        let p = " ".repeat(ind);
        if let Some((max, fd)) = self.list_info(name) {
            // Whole-list assignment: filter self, truncate to capacity,
            // swap failure-detector registrations — `interp`'s exact
            // sequence.
            let (s, ty) = self.expr(cx, e)?;
            if ty != Ty::List {
                return Err(self.err(format!(
                    "assigning non-list {ty:?} to neighbor list '{name}'"
                )));
            }
            let _ = writeln!(out, "{p}{{");
            let _ = writeln!(out, "{p}    let mut __ns: Vec<NodeId> = {s}.clone();");
            let _ = writeln!(out, "{p}    __ns.retain(|&__n| __n != ctx.me);");
            let _ = writeln!(out, "{p}    __ns.truncate({max}usize);");
            if fd {
                let _ = writeln!(out, "{p}    for __n in self.{name}.iter() {{");
                let _ = writeln!(out, "{p}        ctx.unmonitor(*__n);");
                let _ = writeln!(out, "{p}    }}");
                let _ = writeln!(out, "{p}    for __n in __ns.iter() {{");
                let _ = writeln!(out, "{p}        ctx.monitor(*__n);");
                let _ = writeln!(out, "{p}    }}");
            }
            let _ = writeln!(out, "{p}    self.{name} = __ns;");
            let _ = writeln!(out, "{p}}}");
            return Ok(());
        }
        let Some(decl_ty) = self.scalar_type(name) else {
            return Err(self.err(format!("assignment to undeclared variable '{name}'")));
        };
        let (s, ty) = self.expr(cx, e)?;
        let rhs = match (decl_ty, ty) {
            (TypeName::Int, Ty::Int) | (TypeName::Bool, Ty::Bool) => s,
            (TypeName::Int, Ty::Bool) => format!("({s} as i64)"),
            (TypeName::Node, Ty::Node) | (TypeName::Node, Ty::Null) => s,
            (TypeName::Key, Ty::Key) => s,
            (TypeName::Payload, Ty::Payload) => s,
            (TypeName::Payload, Ty::Null) => format!("{{ let _ = {s}; Bytes::new() }}"),
            (dt, et) => {
                return Err(self.err(format!(
                    "cannot assign {et:?} value to '{name}' of declared type {dt:?}"
                )))
            }
        };
        let _ = writeln!(out, "{p}self.{name} = {rhs};");
        Ok(())
    }

    fn emit_downcall(
        &self,
        out: &mut String,
        ind: usize,
        cx: &Cx,
        api: &str,
        args: &[Expr],
    ) -> Result<(), CodegenError> {
        let p = " ".repeat(ind);
        let _ = writeln!(out, "{p}{{");
        match api {
            "join" | "leave" | "create_group" => {
                self.emit_key_let(out, ind + 4, cx, "__g", &args[0])?;
                let variant = match api {
                    "join" => "Join",
                    "leave" => "Leave",
                    _ => "CreateGroup",
                };
                let _ = writeln!(
                    out,
                    "{p}    ctx.down(DownCall::{variant} {{ group: __g }});"
                );
            }
            "multicast" | "anycast" | "collect" => {
                self.emit_key_let(out, ind + 4, cx, "__g", &args[0])?;
                let pl = self.payload_value(cx, &args[1])?;
                let _ = writeln!(out, "{p}    let __pl = {pl};");
                let variant = match api {
                    "multicast" => "Multicast",
                    "anycast" => "Anycast",
                    _ => "Collect",
                };
                let _ = writeln!(
                    out,
                    "{p}    ctx.down(DownCall::{variant} {{ group: __g, payload: __pl, \
                     priority: DEFAULT_PRIORITY }});"
                );
            }
            "route" => {
                self.emit_key_let(out, ind + 4, cx, "__d", &args[0])?;
                let pl = self.payload_value(cx, &args[1])?;
                let _ = writeln!(out, "{p}    let __pl = {pl};");
                let _ = writeln!(
                    out,
                    "{p}    ctx.down(DownCall::Route {{ dest: __d, payload: __pl, priority: \
                     DEFAULT_PRIORITY }});"
                );
            }
            "routeIP" => {
                let d = self.as_node(cx, &args[0])?;
                let _ = writeln!(out, "{p}    let Some(__d) = {d} else {};", self.bail(cx));
                let pl = self.payload_value(cx, &args[1])?;
                let _ = writeln!(out, "{p}    let __pl = {pl};");
                let _ = writeln!(
                    out,
                    "{p}    ctx.down(DownCall::RouteIp {{ dest: __d, payload: __pl, priority: \
                     DEFAULT_PRIORITY }});"
                );
            }
            other => return Err(self.err(format!("unknown downcall API '{other}'"))),
        }
        let _ = writeln!(out, "{p}}}");
        Ok(())
    }
}

impl<'a> Gen<'a> {
    // ---- the transmission primitive -------------------------------------

    /// Key-field option chain used for routing decisions: the first key
    /// field of the message carrying a usable value (`interp`'s
    /// `key_of`). Returns `(options, first_is_terminal)`.
    fn key_field_opts(&self, decl: &MessageDecl, arg_tys: &[Ty]) -> (Vec<String>, bool) {
        let mut opts = Vec::new();
        let mut first_terminal = false;
        for (i, f) in decl.fields.iter().enumerate() {
            if f.ty != TypeName::Key {
                continue;
            }
            match arg_tys[i] {
                Ty::Key => {
                    if opts.is_empty() {
                        first_terminal = true;
                    }
                    opts.push(format!("Some(__a{i})"));
                    break; // unconditionally matches; later fields unreachable
                }
                Ty::Node => opts.push(format!("__a{i}.map(|__n| MacedonKey(__n.0))")),
                _ => {} // null/other: key_of skips it
            }
        }
        (opts, first_terminal)
    }

    fn emit_send(
        &self,
        out: &mut String,
        ind: usize,
        cx: &Cx,
        message: &str,
        dest: &Expr,
        args: &[Expr],
    ) -> Result<(), CodegenError> {
        let decl = self
            .spec
            .message(message)
            .ok_or_else(|| self.err(format!("unknown message '{message}'")))?;
        let ch = self.msg_channel(decl);
        if args.len() != decl.fields.len() {
            return Err(self.err(format!(
                "message '{message}' takes {} argument(s), got {}",
                decl.fields.len(),
                args.len()
            )));
        }
        let p = " ".repeat(ind);
        let q = " ".repeat(ind + 4);
        let _ = writeln!(out, "{p}{{");

        // Evaluation order is the interpreter's: destination first, then
        // every field argument, then encoding, then the dispatch decision.
        let (ds, dty) = self.expr(cx, dest)?;
        let _ = writeln!(out, "{q}let __dest = {ds};");
        let mut arg_tys = Vec::with_capacity(args.len());
        for (i, a) in args.iter().enumerate() {
            let (s, ty) = self.expr(cx, a)?;
            if ty == Ty::List {
                let _ = writeln!(out, "{q}let __a{i} = &{s};");
            } else {
                let _ = writeln!(out, "{q}let __a{i} = {s};");
            }
            arg_tys.push(ty);
        }
        let _ = writeln!(out, "{q}let mut __w = WireWriter::new();");
        let _ = writeln!(
            out,
            "{q}__w.u16(PROTOCOL_ID).u16(MSG_{});",
            message.to_uppercase()
        );
        for (i, f) in decl.fields.iter().enumerate() {
            let at = arg_tys[i];
            match (&f.ty, at) {
                (TypeName::Int, Ty::Int) => {
                    let _ = writeln!(out, "{q}__w.u64(__a{i} as u64);");
                }
                (TypeName::Int, Ty::Bool) => {
                    let _ = writeln!(out, "{q}__w.u64((__a{i} as i64) as u64);");
                }
                (TypeName::Bool, _) => {
                    let t = self.truthy_of(&format!("__a{i}"), at);
                    let _ = writeln!(out, "{q}__w.u8(({t}) as u8);");
                }
                (TypeName::Node, Ty::Node) | (TypeName::Node, Ty::Null) => {
                    let _ = writeln!(out, "{q}__w.node(__a{i}.unwrap_or(NodeId(u32::MAX)));");
                }
                (TypeName::Key, Ty::Key) => {
                    let _ = writeln!(out, "{q}__w.key(__a{i});");
                }
                (TypeName::Key, Ty::Node) => {
                    let _ = writeln!(out, "{q}let Some(__kn{i}) = __a{i} else {};", self.bail(cx));
                    let _ = writeln!(out, "{q}__w.key(MacedonKey(__kn{i}.0));");
                }
                (TypeName::Payload, Ty::Payload) => {
                    let _ = writeln!(out, "{q}__w.bytes(&__a{i});");
                }
                (TypeName::Payload, Ty::Null) => {
                    let _ = writeln!(out, "{q}__w.bytes(&[]);");
                }
                (TypeName::Neighbor(_), Ty::List) => {
                    let _ = writeln!(out, "{q}__w.nodes(__a{i});");
                }
                (ft, at) => {
                    return Err(self.err(format!(
                        "message '{message}' field '{}': cannot encode {at:?} as {ft:?}",
                        f.name
                    )))
                }
            }
        }
        let _ = writeln!(out, "{q}let __bytes = __w.finish();");

        if self.layered {
            self.emit_layered_dispatch(out, ind + 4, cx, decl, &arg_tys, dty)?;
        } else {
            self.emit_wire_dispatch(out, ind + 4, cx, decl, &arg_tys, dty, ch)?;
        }
        let _ = writeln!(out, "{p}}}");
        Ok(())
    }

    /// Layered specs never touch the wire: a node destination is a
    /// direct `routeIP`, `null` routes toward the message's first key
    /// field, a key destination routes outright.
    fn emit_layered_dispatch(
        &self,
        out: &mut String,
        ind: usize,
        cx: &Cx,
        decl: &MessageDecl,
        arg_tys: &[Ty],
        dty: Ty,
    ) -> Result<(), CodegenError> {
        let p = " ".repeat(ind);
        let message = &decl.name;
        let prio = format!("PRIO_{}", message.to_uppercase());
        match dty {
            Ty::Key => {
                let _ = writeln!(
                    out,
                    "{p}ctx.down(DownCall::Route {{ dest: __dest, payload: __bytes, priority: \
                     {prio} }});"
                );
                Ok(())
            }
            Ty::Node | Ty::Null => {
                let (opts, terminal) = self.key_field_opts(decl, arg_tys);
                let _ = writeln!(out, "{p}match __dest {{");
                let _ = writeln!(
                    out,
                    "{p}    Some(__d) => ctx.down(DownCall::RouteIp {{ dest: __d, payload: \
                     __bytes, priority: {prio} }}),"
                );
                let _ = writeln!(out, "{p}    None => {{");
                if opts.is_empty() {
                    if dty == Ty::Null {
                        return Err(self.err(format!(
                            "message '{message}': null destination needs a key field to route \
                             toward"
                        )));
                    }
                    let _ = writeln!(out, "{p}        {}", self.bail(cx));
                } else if terminal {
                    let inner = opts[0].trim_start_matches("Some(").trim_end_matches(')');
                    let _ = writeln!(
                        out,
                        "{p}        ctx.down(DownCall::Route {{ dest: {inner}, payload: \
                         __bytes, priority: {prio} }});"
                    );
                } else {
                    let chain = opts.join(".or(");
                    let closers = ")".repeat(opts.len() - 1);
                    let _ = writeln!(out, "{p}        match {chain}{closers} {{");
                    let _ = writeln!(
                        out,
                        "{p}            Some(__k) => ctx.down(DownCall::Route {{ dest: __k, \
                         payload: __bytes, priority: {prio} }}),"
                    );
                    let _ = writeln!(out, "{p}            None => {}", self.bail(cx));
                    let _ = writeln!(out, "{p}        }}");
                }
                let _ = writeln!(out, "{p}    }}");
                let _ = writeln!(out, "{p}}}");
                Ok(())
            }
            other => Err(self.err(format!(
                "message '{message}': destination must be node/key, got {other:?}"
            ))),
        }
    }

    /// Lowest-layer dispatch: direct transmission, except that a send
    /// carrying tunneled upper-layer data is first vetted through the
    /// engine's forward query when layers are stacked above.
    #[allow(clippy::too_many_arguments)]
    fn emit_wire_dispatch(
        &self,
        out: &mut String,
        ind: usize,
        cx: &Cx,
        decl: &MessageDecl,
        arg_tys: &[Ty],
        dty: Ty,
        ch: u16,
    ) -> Result<(), CodegenError> {
        let p = " ".repeat(ind);
        let message = &decl.name;
        if !matches!(dty, Ty::Node | Ty::Null) {
            return Err(self.err(format!(
                "message '{message}': destination must be a node, got {dty:?}"
            )));
        }
        // Sending to null is a no-op (after evaluating everything).
        let _ = writeln!(out, "{p}if let Some(__d) = __dest {{");
        let payload_args: Vec<usize> = decl
            .fields
            .iter()
            .enumerate()
            .filter(|(i, f)| f.ty == TypeName::Payload && arg_tys[*i] == Ty::Payload)
            .map(|(i, _)| i)
            .collect();
        if payload_args.is_empty() {
            let _ = writeln!(out, "{p}    ctx.send(__d, ChannelId({ch}), __bytes);");
        } else {
            let mut chain = String::new();
            for i in &payload_args {
                let _ = write!(
                    chain,
                    "if !__a{i}.is_empty() {{ Some(__a{i}.clone()) }} else "
                );
            }
            chain.push_str("{ None }");
            let _ = writeln!(out, "{p}    let __tunneled = {chain};");
            let _ = writeln!(out, "{p}    match __tunneled {{");
            let _ = writeln!(out, "{p}        Some(__p) if !ctx.is_top_layer() => {{");
            let (opts, terminal) = self.key_field_opts(decl, arg_tys);
            if opts.is_empty() {
                let _ = writeln!(out, "{p}            let __dest_key = ctx.my_key;");
            } else if terminal {
                let inner = opts[0].trim_start_matches("Some(").trim_end_matches(')');
                let _ = writeln!(out, "{p}            let __dest_key = {inner};");
            } else {
                let chain = opts.join(".or(");
                let closers = ")".repeat(opts.len() - 1);
                let _ = writeln!(
                    out,
                    "{p}            let __dest_key = {chain}{closers}.unwrap_or(ctx.my_key);"
                );
            }
            let _ = writeln!(
                out,
                "{p}            self.pending_fwd.push_back((__d, ChannelId({ch}), __bytes));"
            );
            let from = if cx.has_from { "from" } else { "ctx.me" };
            let _ = writeln!(out, "{p}            ctx.forward_query(ForwardInfo {{");
            let _ = writeln!(out, "{p}                src: ctx.my_key,");
            let _ = writeln!(out, "{p}                dest: __dest_key,");
            let _ = writeln!(out, "{p}                prev_hop: {from},");
            let _ = writeln!(out, "{p}                next_hop: __d,");
            let _ = writeln!(out, "{p}                payload: __p,");
            let _ = writeln!(out, "{p}                quash: false,");
            let _ = writeln!(out, "{p}            }});");
            let _ = writeln!(out, "{p}        }}");
            let _ = writeln!(
                out,
                "{p}        _ => ctx.send(__d, ChannelId({ch}), __bytes),"
            );
            let _ = writeln!(out, "{p}    }}");
        }
        let _ = writeln!(out, "{p}}}");
        Ok(())
    }
}

impl<'a> Gen<'a> {
    // ---- transition handlers --------------------------------------------

    /// A transition scope as a Rust condition over the state enum.
    fn scope_cond(&self, s: &StateExpr) -> String {
        match s {
            StateExpr::Any => "true".into(),
            StateExpr::Is(n) => {
                let variant = if n == "init" { "Init".into() } else { camel(n) };
                format!("self.state == {}::{variant}", self.state_enum())
            }
            StateExpr::Not(e) => format!("!({})", self.scope_cond(e)),
            StateExpr::Or(a, b) => {
                format!("({} || {})", self.scope_cond(a), self.scope_cond(b))
            }
        }
    }

    /// One handler function per trigger: an if-chain over the state
    /// scopes in declaration order, firing the **first** match only —
    /// the interpreter's `fire` dispatch. Forward handlers return the
    /// `quash` verdict.
    fn emit_transition_fn(
        &self,
        out: &mut String,
        fn_name: &str,
        params: &str,
        is_forward: bool,
        cx_proto: &Cx<'a>,
        arms: &[&'a Transition],
    ) -> Result<(), CodegenError> {
        let ret_sig = if is_forward { "-> bool " } else { "" };
        let _ = writeln!(
            out,
            "    fn {fn_name}(&mut self, ctx: &mut Ctx{params}) {ret_sig}{{"
        );
        if is_forward {
            let _ = writeln!(out, "        let mut quash = false;");
        }
        for t in arms {
            let mut cx = cx_proto.clone();
            cx.ret = if is_forward {
                "return quash;"
            } else {
                "return;"
            };
            let cond = self.scope_cond(&t.scope);
            if cond == "true" {
                // `any` matches unconditionally; later arms can never fire.
                let _ = writeln!(out, "        self.transitions_fired += 1;");
                if t.locking == LockingOpt::Read {
                    let _ = writeln!(out, "        ctx.locking_read();");
                }
                self.body(out, 8, &mut cx, &t.body)?;
                break;
            }
            let _ = writeln!(out, "        if {cond} {{");
            let _ = writeln!(out, "            self.transitions_fired += 1;");
            if t.locking == LockingOpt::Read {
                let _ = writeln!(out, "            ctx.locking_read();");
            }
            self.body(out, 12, &mut cx, &t.body)?;
            let _ = writeln!(out, "            {}", cx.ret);
            let _ = writeln!(out, "        }}");
        }
        if is_forward {
            let _ = writeln!(out, "        quash");
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out);
        Ok(())
    }

    fn recv_arms(&self, msg: &str) -> Vec<&'a Transition> {
        self.spec
            .transitions
            .iter()
            .filter(|t| t.trigger == Trigger::Recv(msg.to_string()))
            .collect()
    }

    fn fwd_arms(&self, msg: &str) -> Vec<&'a Transition> {
        self.spec
            .transitions
            .iter()
            .filter(|t| t.trigger == Trigger::Forward(msg.to_string()))
            .collect()
    }

    fn api_arms(&self, api: &str) -> Vec<&'a Transition> {
        self.spec
            .transitions
            .iter()
            .filter(|t| t.trigger == Trigger::Api(api.to_string()))
            .collect()
    }

    fn timer_arms(&self, name: &str) -> Vec<&'a Transition> {
        self.spec
            .transitions
            .iter()
            .filter(|t| t.trigger == Trigger::Timer(name.to_string()))
            .collect()
    }

    fn error_arms(&self) -> Vec<&'a Transition> {
        self.spec
            .transitions
            .iter()
            .filter(|t| t.trigger == Trigger::Error)
            .collect()
    }

    /// APIs with at least one transition, in first-appearance order.
    fn handled_apis(&self) -> Vec<&'a str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.spec.transitions {
            if let Trigger::Api(a) = &t.trigger {
                if !out.contains(&a.as_str()) {
                    out.push(a);
                }
            }
        }
        out
    }

    fn api_fn_name(api: &str) -> String {
        match api {
            "routeIP" => "t_api_routeip".into(),
            other => format!("t_api_{other}"),
        }
    }

    fn api_params(api: &str) -> &'static str {
        match api {
            "route" => ", dest: MacedonKey, payload: Bytes",
            "routeIP" => ", dest: NodeId, payload: Bytes",
            "multicast" | "anycast" | "collect" => ", group: MacedonKey, payload: Bytes",
            "join" | "leave" | "create_group" => ", group: MacedonKey",
            _ => "",
        }
    }

    /// Does this lowest-layer spec need the forward-query bookkeeping
    /// (any message that can carry tunneled upper-layer payloads)?
    fn needs_pending_fwd(&self) -> bool {
        !self.layered
            && self
                .spec
                .messages
                .iter()
                .any(|m| m.fields.iter().any(|f| f.ty == TypeName::Payload))
    }

    fn fd_lists(&self) -> Vec<&'a str> {
        self.spec
            .state_vars
            .iter()
            .filter_map(|v| match v {
                StateVar::Neighbor {
                    name,
                    fail_detect: true,
                    ..
                } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl<'a> Gen<'a> {
    // ---- module assembly -------------------------------------------------

    fn file(&self) -> Result<String, CodegenError> {
        let mut out = String::new();
        let w = &mut out;
        let name = &self.name;
        let senum = self.state_enum();
        let spec = self.spec;

        let _ = writeln!(
            w,
            "//! `{0}` — generated by macedon-lang from `{1}.mac`. **Do not edit**:\n\
             //! regenerate with `cargo run -p macedon-bench --bin regen` (CI rejects\n\
             //! drift between this file and the spec).",
            name, spec.name
        );
        let _ = writeln!(w, "//!");
        let _ = writeln!(
            w,
            "//! Behaviorally identical to interpreting the spec: same RNG draws,\n\
             //! byte-identical wire messages, same engine op order."
        );
        // Pre-wrapped in rustfmt's own style: everything below the module
        // attribute carries `#[rustfmt::skip]`, but these header lines are
        // formatted, and regen output must be `cargo fmt --check`-stable.
        let _ = writeln!(w, "#![allow(");
        let lints = [
            "dead_code",
            "unused_variables",
            "unused_mut",
            "unused_imports",
            "unused_parens",
            "unreachable_patterns",
        ];
        for (i, lint) in lints.iter().enumerate() {
            // rustfmt omits the trailing comma inside attributes.
            let sep = if i + 1 == lints.len() { "" } else { "," };
            let _ = writeln!(w, "    {lint}{sep}");
        }
        let _ = writeln!(w, ")]");
        let _ = writeln!(
            w,
            "// Generated code favors a 1:1 mapping onto the interpreter's semantics\n\
             // over idiomatic style; neither clippy's style lints nor rustfmt apply."
        );
        let _ = writeln!(w, "#![allow(clippy::all)]");
        let _ = writeln!(w, "#[rustfmt::skip]");
        let _ = writeln!(w, "mod generated {{");
        let _ = writeln!(w);
        let _ = writeln!(w, "use macedon_core::{{");
        let _ = writeln!(
            w,
            "    Agent, Bytes, ChannelId, Ctx, DecodeError, DownCall, Duration, ForwardInfo,"
        );
        let _ = writeln!(
            w,
            "    MacedonKey, NodeId, ProtocolId, TraceLevel, UpCall, WireReader, WireWriter,"
        );
        let _ = writeln!(w, "    DEFAULT_PRIORITY, TUNNEL_PROTOCOL,");
        let _ = writeln!(w, "}};");
        let _ = writeln!(w, "use macedon_core::key;");
        let _ = writeln!(w, "use macedon_core::wire::{{read_tunnel, tunnel_frame}};");
        let _ = writeln!(w, "use std::any::Any;");
        let _ = writeln!(w, "use std::collections::VecDeque;");
        let _ = writeln!(w);

        // Well-known protocol number (derived from the protocol name, as
        // the interpreter does).
        let _ = writeln!(
            w,
            "/// Well-known protocol id of `{}` (same derivation as the interpreter).",
            spec.name
        );
        let _ = writeln!(w, "pub const PROTOCOL_ID: ProtocolId = {};", self.proto);
        for (i, m) in spec.messages.iter().enumerate() {
            let _ = writeln!(w, "const MSG_{}: u16 = {};", m.name.to_uppercase(), i);
        }
        if self.layered {
            let _ = writeln!(
                w,
                "// Per-message transport priority: each declared class resolved\n\
                 // against the base (tunneling) layer's channel table at generation\n\
                 // time; -1 = default (tunnel channel 0)."
            );
            for m in &spec.messages {
                let _ = writeln!(
                    w,
                    "const PRIO_{}: i8 = {};",
                    m.name.to_uppercase(),
                    self.msg_priority(m)
                );
            }
        } else {
            let _ = writeln!(
                w,
                "/// Declared transport channels (bounds the `priority` values the\n\
                 /// engine-served `routeIP` tunnel honors)."
            );
            let _ = writeln!(w, "const NUM_CHANNELS: u16 = {};", spec.transports.len());
        }
        for (i, (t, _)) in spec.timer_decls().enumerate() {
            let _ = writeln!(w, "const TIMER_{}: u16 = {};", t.to_uppercase(), i);
        }
        for (c, v) in &spec.constants {
            let _ = writeln!(w, "const {c}: i64 = {v};");
        }
        let _ = writeln!(w);

        // FSM state enum.
        let _ = writeln!(w, "/// FSM states of `{}` (`init` is implicit).", spec.name);
        let _ = writeln!(w, "#[derive(Clone, Copy, PartialEq, Eq, Debug)]");
        let _ = writeln!(w, "pub enum {senum} {{");
        let _ = writeln!(w, "    Init,");
        for s in &spec.states {
            let _ = writeln!(w, "    {},", camel(s));
        }
        let _ = writeln!(w, "}}");
        let _ = writeln!(w);

        // Message field structs + decoders (generated marshaling).
        for m in &spec.messages {
            let ms = format!("Msg{}", camel(&m.name));
            let _ = writeln!(w, "/// Decoded fields of `{}`.", m.name);
            let _ = writeln!(w, "pub struct {ms} {{");
            for f in &m.fields {
                let ty = match &f.ty {
                    TypeName::Int => "i64",
                    TypeName::Bool => "bool",
                    TypeName::Node => "Option<NodeId>",
                    TypeName::Key => "MacedonKey",
                    TypeName::Payload => "Bytes",
                    TypeName::Neighbor(_) => "Vec<NodeId>",
                };
                let _ = writeln!(w, "    pub {}: {ty},", f.name);
            }
            let _ = writeln!(w, "}}");
            let _ = writeln!(w);
            let _ = writeln!(
                w,
                "fn dec_{}(r: &mut WireReader) -> Result<{ms}, DecodeError> {{",
                m.name
            );
            let _ = writeln!(w, "    Ok({ms} {{");
            for f in &m.fields {
                let read = match &f.ty {
                    TypeName::Int => "(r.u64()? as i64)".to_string(),
                    TypeName::Bool => "(r.u8()? != 0)".to_string(),
                    TypeName::Node => "{ let __n = r.node()?; \
                         if __n == NodeId(u32::MAX) { None } else { Some(__n) } }"
                        .to_string(),
                    TypeName::Key => "r.key()?".to_string(),
                    TypeName::Payload => "r.bytes()?".to_string(),
                    TypeName::Neighbor(_) => "r.nodes()?".to_string(),
                };
                let _ = writeln!(w, "        {}: {read},", f.name);
            }
            let _ = writeln!(w, "    }})");
            let _ = writeln!(w, "}}");
            let _ = writeln!(w);
        }

        // Agent struct.
        let _ = writeln!(
            w,
            "/// The `{}` protocol agent, one FSM instance per node.",
            spec.name
        );
        let _ = writeln!(w, "pub struct {name} {{");
        let _ = writeln!(w, "    state: {senum},");
        let _ = writeln!(w, "    bootstrap: Option<NodeId>,");
        if self.needs_pending_fwd() {
            let _ = writeln!(
                w,
                "    /// Encoded sends awaiting their forward-query verdict, FIFO."
            );
            let _ = writeln!(w, "    pending_fwd: VecDeque<(NodeId, ChannelId, Bytes)>,");
        }
        let _ = writeln!(w, "    /// Transitions fired (observability / tests).");
        let _ = writeln!(w, "    pub transitions_fired: u64,");
        for v in &spec.state_vars {
            match v {
                StateVar::Neighbor { name: n, .. } => {
                    let _ = writeln!(w, "    {n}: Vec<NodeId>,");
                }
                StateVar::Scalar { ty, name: n } => {
                    let rust_ty = match ty {
                        TypeName::Int => "i64",
                        TypeName::Bool => "bool",
                        TypeName::Node => "Option<NodeId>",
                        TypeName::Key => "MacedonKey",
                        TypeName::Payload => "Bytes",
                        TypeName::Neighbor(_) => unreachable!("rejected in preflight"),
                    };
                    let _ = writeln!(w, "    {n}: {rust_ty},");
                }
                StateVar::Timer { .. } => {}
            }
        }
        let _ = writeln!(w, "}}");
        let _ = writeln!(w);

        self.emit_inherent_impl(w)?;
        self.emit_agent_impl(w)?;
        let _ = writeln!(w);
        let _ = writeln!(w, "}}");
        let _ = writeln!(w);
        let _ = writeln!(w, "pub use generated::*;");
        Ok(out)
    }

    fn emit_inherent_impl(&self, w: &mut String) -> Result<(), CodegenError> {
        let name = &self.name;
        let senum = self.state_enum();
        let spec = self.spec;
        let _ = writeln!(w, "impl {name} {{");
        let _ = writeln!(
            w,
            "    /// Instantiate one stack layer; `bootstrap` is the rendezvous\n\
             \x20   /// node handed to every layer (`None` for the designated root)."
        );
        let _ = writeln!(w, "    pub fn new(bootstrap: Option<NodeId>) -> {name} {{");
        let _ = writeln!(w, "        {name} {{");
        let _ = writeln!(w, "            state: {senum}::Init,");
        let _ = writeln!(w, "            bootstrap,");
        if self.needs_pending_fwd() {
            let _ = writeln!(w, "            pending_fwd: VecDeque::new(),");
        }
        let _ = writeln!(w, "            transitions_fired: 0,");
        for v in &spec.state_vars {
            match v {
                StateVar::Neighbor { name: n, .. } => {
                    let _ = writeln!(w, "            {n}: Vec::new(),");
                }
                StateVar::Scalar { ty, name: n } => {
                    let init = match ty {
                        TypeName::Int => "0",
                        TypeName::Bool => "false",
                        TypeName::Node => "None",
                        TypeName::Key => "MacedonKey(0)",
                        TypeName::Payload => "Bytes::new()",
                        TypeName::Neighbor(_) => unreachable!("rejected in preflight"),
                    };
                    let _ = writeln!(w, "            {n}: {init},");
                }
                StateVar::Timer { .. } => {}
            }
        }
        let _ = writeln!(w, "        }}");
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w);
        let _ = writeln!(w, "    /// Current FSM state name.");
        let _ = writeln!(w, "    pub fn state_name(&self) -> &'static str {{");
        let _ = writeln!(w, "        match self.state {{");
        let _ = writeln!(w, "            {senum}::Init => \"init\",");
        for s in &spec.states {
            let _ = writeln!(w, "            {senum}::{} => \"{s}\",", camel(s));
        }
        let _ = writeln!(w, "        }}");
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w);
        let _ = writeln!(w, "    /// Neighbor list contents by declared name.");
        let _ = writeln!(
            w,
            "    pub fn neighbor_list(&self, name: &str) -> Option<&[NodeId]> {{"
        );
        let lists: Vec<&str> = spec
            .state_vars
            .iter()
            .filter_map(|v| match v {
                StateVar::Neighbor { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        if lists.is_empty() {
            let _ = writeln!(w, "        let _ = name;");
            let _ = writeln!(w, "        None");
        } else {
            let _ = writeln!(w, "        match name {{");
            for l in lists {
                let _ = writeln!(w, "            \"{l}\" => Some(&self.{l}),");
            }
            let _ = writeln!(w, "            _ => None,");
            let _ = writeln!(w, "        }}");
        }
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w);

        // Transition handler functions.
        for api in self.handled_apis() {
            let arms = self.api_arms(api);
            let cx = Cx {
                api: Some(api),
                ..Cx::plain()
            };
            self.emit_transition_fn(
                w,
                &Self::api_fn_name(api),
                Self::api_params(api),
                false,
                &cx,
                &arms,
            )?;
        }
        for m in &spec.messages {
            let arms = self.recv_arms(&m.name);
            if !arms.is_empty() {
                let cx = Cx {
                    msg: Some(m),
                    has_from: true,
                    ..Cx::plain()
                };
                let params = format!(", from: NodeId, m: &Msg{}", camel(&m.name));
                self.emit_transition_fn(
                    w,
                    &format!("t_recv_{}", m.name),
                    &params,
                    false,
                    &cx,
                    &arms,
                )?;
            }
            let arms = self.fwd_arms(&m.name);
            if !arms.is_empty() {
                let cx = Cx {
                    msg: Some(m),
                    has_from: true,
                    ..Cx::plain()
                };
                let params = format!(", from: NodeId, m: &Msg{}", camel(&m.name));
                self.emit_transition_fn(
                    w,
                    &format!("t_fwd_{}", m.name),
                    &params,
                    true,
                    &cx,
                    &arms,
                )?;
            }
        }
        for (t, _) in spec.timer_decls() {
            let arms = self.timer_arms(t);
            if !arms.is_empty() {
                self.emit_transition_fn(
                    w,
                    &format!("t_timer_{t}"),
                    "",
                    false,
                    &Cx::plain(),
                    &arms,
                )?;
            }
        }
        let arms = self.error_arms();
        if !arms.is_empty() {
            let cx = Cx {
                has_from: true,
                ..Cx::plain()
            };
            self.emit_transition_fn(w, "t_error", ", from: NodeId", false, &cx, &arms)?;
        }
        let _ = writeln!(w, "}}");
        let _ = writeln!(w);
        Ok(())
    }
}

impl<'a> Gen<'a> {
    fn emit_agent_impl(&self, w: &mut String) -> Result<(), CodegenError> {
        let name = &self.name;
        let spec = self.spec;
        let _ = writeln!(w, "impl Agent for {name} {{");
        let _ = writeln!(w, "    fn protocol_id(&self) -> ProtocolId {{");
        let _ = writeln!(w, "        PROTOCOL_ID");
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w);
        let _ = writeln!(
            w,
            "    fn name(&self) -> &'static str {{ \"{}\" }}",
            spec.name
        );
        let _ = writeln!(w);

        // init: arm declared-period timers, then the `API init` transition.
        let _ = writeln!(w, "    fn init(&mut self, ctx: &mut Ctx) {{");
        for (t, period) in spec.timer_decls() {
            if let Some(ms) = period {
                let _ = writeln!(
                    w,
                    "        ctx.timer_periodic(TIMER_{}, Duration::from_millis({}));",
                    t.to_uppercase(),
                    ms.max(0)
                );
            }
        }
        if !self.api_arms("init").is_empty() {
            let _ = writeln!(w, "        self.t_api_init(ctx);");
        } else {
            let _ = writeln!(w, "        let _ = ctx;");
        }
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w);

        // downcall: §3.2's API demultiplexer.
        let _ = writeln!(
            w,
            "    fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {{"
        );
        let _ = writeln!(w, "        match call {{");
        let handled = self.handled_apis();
        for api in &handled {
            let fn_name = Self::api_fn_name(api);
            let arm = match *api {
                "init" => continue, // fired from Agent::init, never a DownCall
                "route" => format!(
                    "DownCall::Route {{ dest, payload, .. }} => self.{fn_name}(ctx, dest, payload),"
                ),
                "routeIP" => format!(
                    "DownCall::RouteIp {{ dest, payload, .. }} => self.{fn_name}(ctx, dest, payload),"
                ),
                "multicast" => format!(
                    "DownCall::Multicast {{ group, payload, .. }} => self.{fn_name}(ctx, group, payload),"
                ),
                "anycast" => format!(
                    "DownCall::Anycast {{ group, payload, .. }} => self.{fn_name}(ctx, group, payload),"
                ),
                "collect" => format!(
                    "DownCall::Collect {{ group, payload, .. }} => self.{fn_name}(ctx, group, payload),"
                ),
                "create_group" => format!(
                    "DownCall::CreateGroup {{ group }} => self.{fn_name}(ctx, group),"
                ),
                "join" => format!("DownCall::Join {{ group }} => self.{fn_name}(ctx, group),"),
                "leave" => format!("DownCall::Leave {{ group }} => self.{fn_name}(ctx, group),"),
                "downcall_ext" => format!("DownCall::Ext {{ .. }} => self.{fn_name}(ctx),"),
                other => return Err(self.err(format!("unknown API '{other}'"))),
            };
            let _ = writeln!(w, "            {arm}");
        }
        if self.layered {
            // Unhandled API calls fall through to the base layer.
            let _ = writeln!(w, "            __other => ctx.down(__other),");
        } else {
            if !handled.contains(&"routeIP") {
                // `routeIP` is an engine service on the lowest layer:
                // tunnel the payload straight to the target host, on
                // the channel a non-negative priority names (layered
                // specs resolve their message classes to these).
                let _ = writeln!(
                    w,
                    "            DownCall::RouteIp {{ dest, payload, priority }} => {{"
                );
                let _ = writeln!(
                    w,
                    "                let __ch = if priority >= 0 && (priority as u16) < \
                     NUM_CHANNELS {{"
                );
                let _ = writeln!(w, "                    ChannelId(priority as u16)");
                let _ = writeln!(w, "                }} else {{");
                let _ = writeln!(w, "                    ChannelId(0)");
                let _ = writeln!(w, "                }};");
                let _ = writeln!(
                    w,
                    "                ctx.send(dest, __ch, tunnel_frame(ctx.my_key, &payload));"
                );
                let _ = writeln!(w, "            }}");
            }
            let _ = writeln!(
                w,
                "            __other => ctx.trace(TraceLevel::Low, format!(\"{}: unhandled \
                 API call {{:?}}\", __other)),",
                spec.name
            );
        }
        let _ = writeln!(w, "        }}");
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w);

        // recv: wire demultiplexer (lowest layer only).
        if self.layered {
            let _ = writeln!(
                w,
                "    fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes) {{"
            );
            let _ = writeln!(w, "        let _ = (ctx, from, msg);");
            let _ = writeln!(
                w,
                "        debug_assert!(false, \"layered generated agents never touch the \
                 wire\");"
            );
            let _ = writeln!(w, "    }}");
        } else {
            let _ = writeln!(
                w,
                "    fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes) {{"
            );
            let _ = writeln!(w, "        let mut __r = WireReader::new(msg);");
            let _ = writeln!(
                w,
                "        let (Ok(__proto), Ok(__id)) = (__r.u16(), __r.u16()) else {{ return \
                 }};"
            );
            let _ = writeln!(w, "        if __proto == TUNNEL_PROTOCOL {{");
            let _ = writeln!(
                w,
                "            // A frame tunneled for the layers above: unwrap, deliver up."
            );
            let _ = writeln!(
                w,
                "            let Ok((__src, __payload)) = read_tunnel(&mut __r) else {{ \
                 return }};"
            );
            let _ = writeln!(
                w,
                "            ctx.up(UpCall::Deliver {{ src: __src, from, payload: __payload \
                 }});"
            );
            let _ = writeln!(w, "            return;");
            let _ = writeln!(w, "        }}");
            let _ = writeln!(w, "        if __proto != PROTOCOL_ID {{");
            let _ = writeln!(w, "            return;");
            let _ = writeln!(w, "        }}");
            let _ = writeln!(w, "        match __id {{");
            for m in &spec.messages {
                let up = m.name.to_uppercase();
                if self.recv_arms(&m.name).is_empty() {
                    let _ = writeln!(
                        w,
                        "            MSG_{up} => {{ let _ = dec_{}(&mut __r); }} // no recv \
                         transition",
                        m.name
                    );
                } else {
                    let _ = writeln!(
                        w,
                        "            MSG_{up} => match dec_{}(&mut __r) {{",
                        m.name
                    );
                    let _ = writeln!(
                        w,
                        "                Ok(__m) => self.t_recv_{}(ctx, from, &__m),",
                        m.name
                    );
                    let _ = writeln!(
                        w,
                        "                Err(__e) => ctx.trace(TraceLevel::Low, format!(\"{}: \
                         decode error: {{}}\", __e)),",
                        spec.name
                    );
                    let _ = writeln!(w, "            }},");
                }
            }
            let _ = writeln!(w, "            _ => {{}}");
            let _ = writeln!(w, "        }}");
            let _ = writeln!(w, "    }}");
        }
        let _ = writeln!(w);

        // upcall: layered specs demultiplex their own tunneled messages
        // out of Deliver upcalls; everything else continues up.
        if self.layered {
            let _ = writeln!(w, "    fn upcall(&mut self, ctx: &mut Ctx, up: UpCall) {{");
            let _ = writeln!(w, "        match up {{");
            let _ = writeln!(
                w,
                "            UpCall::Deliver {{ src, from, payload }} => {{"
            );
            let _ = writeln!(
                w,
                "                let mut __r = WireReader::new(payload.clone());"
            );
            let _ = writeln!(
                w,
                "                if let (Ok(__proto), Ok(__id)) = (__r.u16(), __r.u16()) {{"
            );
            let _ = writeln!(w, "                    if __proto == PROTOCOL_ID {{");
            let _ = writeln!(w, "                        match __id {{");
            for m in &spec.messages {
                let up_name = m.name.to_uppercase();
                let _ = writeln!(w, "                            MSG_{up_name} => {{");
                if self.recv_arms(&m.name).is_empty() {
                    let _ = writeln!(
                        w,
                        "                                if dec_{}(&mut __r).is_ok() {{",
                        m.name
                    );
                    let _ = writeln!(
                        w,
                        "                                    return; // ours; no recv transition"
                    );
                    let _ = writeln!(w, "                                }}");
                } else {
                    let _ = writeln!(
                        w,
                        "                                if let Ok(__m) = dec_{}(&mut __r) {{",
                        m.name
                    );
                    let _ = writeln!(
                        w,
                        "                                    self.t_recv_{}(ctx, from, &__m);",
                        m.name
                    );
                    let _ = writeln!(w, "                                    return;");
                    let _ = writeln!(w, "                                }}");
                }
                let _ = writeln!(w, "                            }}");
            }
            let _ = writeln!(w, "                            _ => {{}}");
            let _ = writeln!(w, "                        }}");
            let _ = writeln!(w, "                    }}");
            let _ = writeln!(w, "                }}");
            let _ = writeln!(
                w,
                "                // Not ours (or malformed): continue up the stack."
            );
            let _ = writeln!(
                w,
                "                ctx.up(UpCall::Deliver {{ src, from, payload }});"
            );
            let _ = writeln!(w, "            }}");
            let _ = writeln!(w, "            __other => ctx.up(__other),");
            let _ = writeln!(w, "        }}");
            let _ = writeln!(w, "    }}");
            let _ = writeln!(w);
        }

        // on_forward: in-transit messages of ours passing through the
        // layer below fire `forward` transitions (which may quash).
        let fwd_msgs: Vec<&MessageDecl> = spec
            .messages
            .iter()
            .filter(|m| !self.fwd_arms(&m.name).is_empty())
            .collect();
        if !fwd_msgs.is_empty() {
            let _ = writeln!(
                w,
                "    fn on_forward(&mut self, ctx: &mut Ctx, fwd: &mut ForwardInfo) {{"
            );
            let _ = writeln!(
                w,
                "        let mut __r = WireReader::new(fwd.payload.clone());"
            );
            let _ = writeln!(
                w,
                "        let (Ok(__proto), Ok(__id)) = (__r.u16(), __r.u16()) else {{ return \
                 }};"
            );
            let _ = writeln!(w, "        if __proto != PROTOCOL_ID {{");
            let _ = writeln!(w, "            return;");
            let _ = writeln!(w, "        }}");
            let _ = writeln!(w, "        match __id {{");
            for m in fwd_msgs {
                let up = m.name.to_uppercase();
                let _ = writeln!(w, "            MSG_{up} => {{");
                let _ = writeln!(
                    w,
                    "                if let Ok(__m) = dec_{}(&mut __r) {{",
                    m.name
                );
                let _ = writeln!(
                    w,
                    "                    if self.t_fwd_{}(ctx, fwd.prev_hop, &__m) {{",
                    m.name
                );
                let _ = writeln!(w, "                        fwd.quash = true;");
                let _ = writeln!(w, "                    }}");
                let _ = writeln!(w, "                }}");
                let _ = writeln!(w, "            }}");
            }
            let _ = writeln!(w, "            _ => {{}}");
            let _ = writeln!(w, "        }}");
            let _ = writeln!(w, "    }}");
            let _ = writeln!(w);
        }

        // forward_resolved: transmit vetted sends (unless quashed).
        if self.needs_pending_fwd() {
            let _ = writeln!(
                w,
                "    fn forward_resolved(&mut self, ctx: &mut Ctx, fwd: ForwardInfo) {{"
            );
            let _ = writeln!(
                w,
                "        let Some((_dest, __ch, __bytes)) = self.pending_fwd.pop_front() else {{"
            );
            let _ = writeln!(
                w,
                "            debug_assert!(false, \"forward_resolved without a pending send\");"
            );
            let _ = writeln!(w, "            return;");
            let _ = writeln!(w, "        }};");
            let _ = writeln!(w, "        if !fwd.quash {{");
            let _ = writeln!(
                w,
                "            // The layers above may have redirected the hop."
            );
            let _ = writeln!(w, "            ctx.send(fwd.next_hop, __ch, __bytes);");
            let _ = writeln!(w, "        }}");
            let _ = writeln!(w, "    }}");
            let _ = writeln!(w);
        }

        // timer demultiplexer.
        let _ = writeln!(w, "    fn timer(&mut self, ctx: &mut Ctx, timer: u16) {{");
        let timer_fns: Vec<&str> = spec
            .timer_decls()
            .map(|(t, _)| t)
            .filter(|t| !self.timer_arms(t).is_empty())
            .collect();
        if timer_fns.is_empty() {
            let _ = writeln!(w, "        let _ = (ctx, timer);");
        } else {
            let _ = writeln!(w, "        match timer {{");
            for t in timer_fns {
                let _ = writeln!(
                    w,
                    "            TIMER_{} => self.t_timer_{t}(ctx),",
                    t.to_uppercase()
                );
            }
            let _ = writeln!(w, "            _ => {{}}");
            let _ = writeln!(w, "        }}");
        }
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w);

        // neighbor_failed: drop the peer from fail_detect lists, then
        // fire the error transition.
        let fd = self.fd_lists();
        let has_error = !self.error_arms().is_empty();
        if !fd.is_empty() || has_error {
            let _ = writeln!(
                w,
                "    fn neighbor_failed(&mut self, ctx: &mut Ctx, peer: NodeId) {{"
            );
            for l in &fd {
                let _ = writeln!(w, "        self.{l}.retain(|&__n| __n != peer);");
            }
            if has_error {
                let _ = writeln!(w, "        self.t_error(ctx, peer);");
            } else {
                let _ = writeln!(w, "        let _ = ctx;");
            }
            let _ = writeln!(w, "    }}");
            let _ = writeln!(w);
        }

        let _ = writeln!(w, "    fn as_any(&self) -> &dyn Any {{");
        let _ = writeln!(w, "        self");
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w);
        let _ = writeln!(w, "    fn as_any_mut(&mut self) -> &mut dyn Any {{");
        let _ = writeln!(w, "        self");
        let _ = writeln!(w, "    }}");
        let _ = writeln!(w, "}}");
        Ok(())
    }
}

fn camel(s: &str) -> String {
    let mut out = String::new();
    let mut upper = true;
    for c in s.chars() {
        if c == '_' || c == '-' {
            upper = true;
        } else if upper {
            out.extend(c.to_uppercase());
            upper = false;
        } else {
            out.push(c);
        }
    }
    out
}

/// Generate the complete source set of the `crates/generated` crate:
/// one module per bundled spec plus the crate root (module list, stack
/// assembly mirroring each spec's `uses` chain, and per-protocol channel
/// tables). Returns `(file name, contents)` pairs — the `regen` tool
/// writes them to disk, and CI's freshness gate re-runs it and fails on
/// any diff.
pub fn generate_bundled_crate() -> Result<Vec<(String, String)>, CodegenError> {
    let reg = crate::registry::SpecRegistry::bundled();
    let chain_err = |name: &str, e: crate::registry::ChainError| CodegenError {
        spec: name.to_string(),
        detail: format!("uses chain: {e}"),
    };
    let mut files = Vec::new();
    let mut names = Vec::new();
    for (name, src) in crate::bundled_specs() {
        let spec = crate::compile(src).map_err(|e| CodegenError {
            spec: name.to_string(),
            detail: format!("spec failed to compile: {e}"),
        })?;
        // Layered specs resolve their message classes against the
        // chain's lowest (tunneling) layer at generation time.
        let chain = reg.resolve_chain(name).map_err(|e| chain_err(name, e))?;
        let base = spec.uses.as_ref().map(|_| chain[0].transports.as_slice());
        files.push((format!("{name}.rs"), generate_with_base(&spec, base)?));
        names.push(name);
    }
    let mut w = String::new();
    let _ = writeln!(
        w,
        "//! # macedon-generated\n\
         //!\n\
         //! The Rust agents `macedon_lang::codegen` emits for the nine bundled\n\
         //! `.mac` specifications — the translator's output, checked in and built\n\
         //! as part of the workspace so the paper's spec → running code loop is\n\
         //! closed under CI.\n\
         //!\n\
         //! **Do not edit anything in `src/`**: regenerate with\n\
         //! `cargo run -p macedon-bench --bin regen`. CI re-runs that tool and\n\
         //! fails on `git diff crates/generated`, so hand edits and stale output\n\
         //! cannot merge.\n\
         //!\n\
         //! Generated agents are behaviorally identical to interpreting the same\n\
         //! spec (same RNG draws, byte-identical wire messages, same engine op\n\
         //! order); the integration suite cross-validates that on seeded runs.\n\
         #![allow(clippy::all)]\n"
    );
    for name in &names {
        let _ = writeln!(w, "pub mod {name};");
    }
    let _ = writeln!(w);
    let _ = writeln!(w, "#[rustfmt::skip]");
    let _ = writeln!(w, "mod assembly {{");
    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "use macedon_core::{{Agent, ChannelSpec, NodeId, TransportKind}};"
    );
    let _ = writeln!(w, "use super::*;");
    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "/// Protocols with a generated agent (the Figure 7 roster)."
    );
    let _ = write!(w, "pub const PROTOCOLS: &[&str] = &[");
    for name in &names {
        let _ = write!(w, "\"{name}\", ");
    }
    let _ = writeln!(w, "];");
    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "/// Assemble the all-generated stack for `proto`, lowest layer first,\n\
         /// following the spec's `uses` chain (`splitstream` → pastry + scribe +\n\
         /// splitstream). `bootstrap` is handed to every layer (`None` for the\n\
         /// designated root). Returns `None` for unknown protocol names."
    );
    let _ = writeln!(
        w,
        "pub fn build_stack(proto: &str, bootstrap: Option<NodeId>) -> \
         Option<Vec<Box<dyn Agent>>> {{"
    );
    let _ = writeln!(w, "    Some(match proto {{");
    for name in &names {
        let chain = reg.resolve_chain(name).map_err(|e| chain_err(name, e))?;
        let _ = writeln!(w, "        \"{name}\" => vec![");
        for layer in &chain {
            let _ = writeln!(
                w,
                "            Box::new({}::{}::new(bootstrap)),",
                layer.name,
                camel(&layer.name)
            );
        }
        let _ = writeln!(w, "        ],");
    }
    let _ = writeln!(w, "        _ => return None,");
    let _ = writeln!(w, "    }})");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "/// The channel table a `World` hosting this protocol's stack must be\n\
         /// built with: the lowest layer's transport declarations (upper layers\n\
         /// never touch the wire). Returns `None` for unknown protocol names."
    );
    let _ = writeln!(
        w,
        "pub fn channel_table(proto: &str) -> Option<Vec<ChannelSpec>> {{"
    );
    let _ = writeln!(w, "    Some(match proto {{");
    for name in &names {
        let chain = reg.resolve_chain(name).map_err(|e| chain_err(name, e))?;
        let _ = writeln!(w, "        \"{name}\" => vec![");
        for t in &chain[0].transports {
            let kind = match t.kind {
                TransportKindDecl::Tcp => "TransportKind::Tcp".to_string(),
                TransportKindDecl::Udp => "TransportKind::Udp".to_string(),
                TransportKindDecl::Swp => "TransportKind::Swp { window: 16 }".to_string(),
            };
            let _ = writeln!(w, "            ChannelSpec::new(\"{}\", {kind}),", t.name);
        }
        let _ = writeln!(w, "        ],");
    }
    let _ = writeln!(w, "        _ => return None,");
    let _ = writeln!(w, "    }})");
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "}}");
    let _ = writeln!(w);
    let _ = writeln!(w, "pub use assembly::*;");
    files.push(("lib.rs".to_string(), w));
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    const SRC: &str = r#"
        protocol toy_proto;
        addressing hash;
        states { joined; waiting; }
        neighbor_types { kid 4 { } }
        transports { TCP C; }
        messages { C ping { node who; } C pong { } }
        state_variables { kid kids; timer beat 500; int count; }
        transitions {
            any API init { count = 0; }
            !(joined) recv ping { neighbor_add(kids, from); pong(from); }
            joined|waiting timer beat { count = count + 1; }
        }
    "#;

    fn gen(src: &str) -> String {
        generate(&compile(src).unwrap()).unwrap()
    }

    #[test]
    fn generates_struct_and_state_enum() {
        let code = gen(SRC);
        assert!(code.contains("pub struct ToyProto"), "{code}");
        assert!(code.contains("pub enum ToyProtoState"));
        assert!(code.contains("    Init,"));
        assert!(code.contains("    Joined,"));
        assert!(code.contains("    Waiting,"));
    }

    #[test]
    fn generates_message_constants_and_demux() {
        let code = gen(SRC);
        assert!(code.contains("const MSG_PING: u16 = 0;"));
        assert!(code.contains("const MSG_PONG: u16 = 1;"));
        assert!(
            code.contains("MSG_PING => match dec_ping(&mut __r)"),
            "{code}"
        );
        assert!(code.contains("fn t_recv_ping"));
    }

    #[test]
    fn scope_conditions_translated() {
        let code = gen(SRC);
        assert!(code.contains("!(self.state == ToyProtoState::Joined)"));
        assert!(code.contains("|| self.state == ToyProtoState::Waiting"));
    }

    #[test]
    fn timer_dispatch_generated() {
        let code = gen(SRC);
        assert!(code.contains("const TIMER_BEAT: u16 = 0;"));
        assert!(code.contains("TIMER_BEAT => self.t_timer_beat(ctx)"));
        assert!(code.contains("ctx.timer_periodic(TIMER_BEAT, Duration::from_millis(500))"));
    }

    #[test]
    fn transition_bodies_are_full_code_not_comments() {
        let code = gen(SRC);
        assert!(
            code.contains("self.count = (self.count + (1i64));"),
            "{code}"
        );
        assert!(
            code.contains("if !self.kids.contains(&__n) && self.kids.len() < 4usize"),
            "{code}"
        );
        assert!(!code.contains("elided"), "nothing is elided anymore");
    }

    #[test]
    fn generated_loc_exceeds_spec_loc() {
        // The paper's point: a few hundred spec lines expand considerably.
        let spec = compile(SRC).unwrap();
        let spec_loc = SRC.lines().filter(|l| !l.trim().is_empty()).count();
        assert!(generated_loc(&spec, None) > 3 * spec_loc);
    }

    #[test]
    fn camel_case_conversion() {
        assert_eq!(camel("overcast"), "Overcast");
        assert_eq!(camel("split_stream"), "SplitStream");
    }

    #[test]
    fn all_bundled_specs_generate() {
        for (name, src) in crate::bundled_specs() {
            let spec = compile(src).unwrap();
            if let Err(e) = generate(&spec) {
                panic!("{name}.mac no longer generates: {e}");
            }
        }
    }

    #[test]
    fn bundled_crate_has_one_module_per_spec_plus_root() {
        let files = generate_bundled_crate().unwrap();
        assert_eq!(files.len(), crate::bundled_specs().len() + 1);
        assert!(files.iter().any(|(n, _)| n == "lib.rs"));
        let (_, lib) = files.iter().find(|(n, _)| n == "lib.rs").unwrap();
        assert!(lib.contains("pub mod overcast;"));
        assert!(lib.contains("\"splitstream\" => vec!["));
        assert!(lib.contains("scribe::Scribe::new(bootstrap)"));
    }

    #[test]
    fn rtt_goodput_builtins_render_to_ctx_calls() {
        let code = gen("protocol p; addressing hash; transports { TCP C; }
             neighbor_types { kid 4 { } }
             messages { C ping { } }
             state_variables { kid kids; node papa; int r; int g; }
             transitions { any API init {
                r = rtt(papa);
                g = goodput(neighbor_random(kids));
             } }");
        assert!(code.contains("ctx.rtt_ms(__p)"), "{code}");
        assert!(code.contains("ctx.goodput_kbps(__p)"), "{code}");
    }

    #[test]
    fn rtt_of_non_node_diagnosed() {
        let spec = compile(
            "protocol p; addressing hash; transports { TCP C; }
             messages { C ping { } }
             state_variables { int n; }
             transitions { any API init { n = rtt(n); } }",
        )
        .unwrap();
        let e = generate(&spec).unwrap_err();
        assert!(e.to_string().contains("rtt(..) needs a node"), "{e}");
    }

    #[test]
    fn non_constant_divisor_diagnosed() {
        let spec = compile(
            "protocol p; addressing ip;
             state_variables { int n; }
             transitions { any API init { n = n / n; } }",
        )
        .unwrap();
        let e = generate(&spec).unwrap_err();
        assert!(e.to_string().contains("non-constant divisor"), "{e}");
    }

    #[test]
    fn keyword_identifier_diagnosed() {
        let spec = compile(
            "protocol p; addressing ip;
             state_variables { int loop; }",
        )
        .unwrap();
        let e = generate(&spec).unwrap_err();
        assert!(e.to_string().contains("Rust keyword"), "{e}");
    }

    #[test]
    fn layered_null_dest_without_key_field_diagnosed() {
        let spec = compile(
            "protocol upper uses base; addressing hash;
             messages { hello { node who; } }
             transitions { any API init { hello(null, me); } }",
        )
        .unwrap();
        let e = generate(&spec).unwrap_err();
        assert!(e.to_string().contains("needs a key field"), "{e}");
    }
}
