//! Line-of-code accounting for Figure 7.
//!
//! The paper reports "lines of code used in various algorithm
//! specifications" and (for Pastry) a semicolon count comparison against
//! FreePastry. Both measures are provided: non-blank, non-comment lines,
//! and semicolon counts.

/// Non-blank, non-comment source lines.
pub fn spec_loc(source: &str) -> usize {
    let mut in_block_comment = false;
    source
        .lines()
        .filter(|line| {
            let mut t = line.trim();
            if in_block_comment {
                if let Some(end) = t.find("*/") {
                    in_block_comment = false;
                    t = t[end + 2..].trim();
                } else {
                    return false;
                }
            }
            if let Some(start) = t.find("/*") {
                // Content before the comment counts.
                let before = t[..start].trim();
                if !t[start..].contains("*/") {
                    in_block_comment = true;
                }
                return !before.is_empty();
            }
            let code = t.split("//").next().unwrap_or("").trim();
            !code.is_empty()
        })
        .count()
}

/// Semicolon count — the paper's metric for the FreePastry comparison
/// ("400 semicolons versus approximately 1,500").
pub fn semicolons(source: &str) -> usize {
    // Strip comments first so commented-out code doesn't count.
    let mut out = 0usize;
    let mut in_block = false;
    for line in source.lines() {
        let mut s = line;
        if in_block {
            match s.find("*/") {
                Some(e) => {
                    in_block = false;
                    s = &s[e + 2..];
                }
                None => continue,
            }
        }
        let s = s.split("//").next().unwrap_or("");
        let mut rest = s;
        loop {
            match rest.find("/*") {
                Some(b) => {
                    out += rest[..b].matches(';').count();
                    match rest[b..].find("*/") {
                        Some(e) => rest = &rest[b + e + 2..],
                        None => {
                            in_block = true;
                            rest = "";
                        }
                    }
                }
                None => {
                    out += rest.matches(';').count();
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_code_lines_only() {
        let src = "
// a comment

states { joined; }  // trailing
/* block
   comment */
int x;
";
        assert_eq!(spec_loc(src), 2);
    }

    #[test]
    fn block_comment_with_code_before() {
        assert_eq!(spec_loc("x; /* c */\ny;"), 2);
        assert_eq!(spec_loc("/* c */ x;"), 0); // code after block on same line not counted before
    }

    #[test]
    fn semicolon_counting_ignores_comments() {
        let src = "a; b; // c;\n/* d; e; */ f;";
        assert_eq!(semicolons(src), 3);
    }

    #[test]
    fn empty_source() {
        assert_eq!(spec_loc(""), 0);
        assert_eq!(semicolons(""), 0);
    }

    #[test]
    fn bundled_specs_have_expected_relative_sizes() {
        // Fig 7's shape: SplitStream and Scribe are the smallest (they
        // exploit layering). The DHTs carry full §2.1/§4 routing and
        // repair logic, so they are the largest standalone specs.
        let sizes: std::collections::HashMap<&str, usize> = crate::bundled_specs()
            .into_iter()
            .map(|(n, s)| (n, spec_loc(s)))
            .collect();
        assert!(sizes["splitstream"] < sizes["scribe"]);
        assert!(sizes["scribe"] < sizes["chord"]);
        assert!(sizes["chord"] <= sizes["pastry"]);
        assert!(sizes["overcast"] < sizes["pastry"]);
        for (name, loc) in &sizes {
            assert!(*loc >= 30, "{name}.mac suspiciously small ({loc})");
            assert!(*loc <= 600, "{name}.mac exceeds the paper's scale ({loc})");
        }
    }
}
