//! Semantic analysis: name resolution and well-formedness checks before
//! interpretation or code generation.

use crate::ast::*;
use crate::lexer::ParseError;
use std::collections::HashSet;

fn err(msg: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        col: 0,
        msg: msg.into(),
    }
}

/// Validate a parsed specification. Checks:
///
/// * duplicate declarations (states, neighbor types, transports,
///   messages, state variables, constants),
/// * transition scopes reference declared states (`init` is implicit),
/// * `recv`/`forward` transitions reference declared messages,
/// * `timer` transitions reference declared timer variables,
/// * message transports reference declared transport instances (lowest
///   layer only — layered protocols may omit transports entirely),
/// * statements reference declared timers/neighbor lists/messages,
/// * sends supply exactly as many arguments as the message has fields,
/// * assignment targets are declared state variables (not constants,
///   timers, or `foreach` iteration variables),
/// * every variable reference resolves — to a builtin (`from`, `me`,
///   `my_key`, `bootstrap`, `payload`, `null`, `true`, `false`, the API
///   arguments `dest`/`group`), a constant, a state variable, a neighbor
///   list, or an enclosing `foreach` variable,
/// * `field(..)` appears only in `recv`/`forward` transitions and names
///   a field of the triggering message,
/// * `uses` does not name the protocol itself (the degenerate layering
///   cycle; cross-spec chains are validated by
///   [`crate::registry::SpecRegistry::resolve_chain`]),
/// * `quash()` appears only inside `forward` transitions, and
///   `downcall(..)` only in layered specs with a known API name/arity.
///
/// These checks are exactly what lets both back ends trust the spec: the
/// interpreter turns violations it would otherwise hit at runtime into
/// compile-time diagnostics, and the code generator can emit typed Rust
/// without silently skipping anything it cannot express.
pub fn analyze(spec: &Spec) -> Result<(), ParseError> {
    if spec.uses.as_deref() == Some(spec.name.as_str()) {
        return Err(err(format!(
            "protocol '{}' cannot use itself as its base layer",
            spec.name
        )));
    }
    let mut seen = HashSet::new();
    for s in &spec.states {
        if s == "init" {
            return Err(err("the 'init' state is implicit; do not redeclare it"));
        }
        if !seen.insert(s.clone()) {
            return Err(err(format!("duplicate state '{s}'")));
        }
    }

    let mut nbr_names = HashSet::new();
    for n in &spec.neighbor_types {
        if !nbr_names.insert(n.name.clone()) {
            return Err(err(format!("duplicate neighbor type '{}'", n.name)));
        }
    }

    let mut transport_names = HashSet::new();
    for t in &spec.transports {
        if !transport_names.insert(t.name.clone()) {
            return Err(err(format!("duplicate transport '{}'", t.name)));
        }
    }

    let mut msg_names = HashSet::new();
    for m in &spec.messages {
        if !msg_names.insert(m.name.clone()) {
            return Err(err(format!("duplicate message '{}'", m.name)));
        }
        if let Some(tr) = &m.transport {
            if spec.uses.is_none() && !transport_names.contains(tr) {
                return Err(err(format!(
                    "message '{}' uses undeclared transport '{tr}'",
                    m.name
                )));
            }
        }
        for f in &m.fields {
            if let TypeName::Neighbor(t) = &f.ty {
                if !nbr_names.contains(t) {
                    return Err(err(format!(
                        "message '{}' field '{}' has unknown type '{t}'",
                        m.name, f.name
                    )));
                }
            }
        }
    }

    let mut timers = HashSet::new();
    let mut lists = HashSet::new();
    let mut scalars = HashSet::new();
    for v in &spec.state_vars {
        match v {
            StateVar::Timer { name, .. } => {
                if !timers.insert(name.clone()) {
                    return Err(err(format!("duplicate timer '{name}'")));
                }
            }
            StateVar::Neighbor { ty, name, .. } => {
                if !nbr_names.contains(ty) {
                    return Err(err(format!(
                        "state variable '{name}' has undeclared neighbor type '{ty}'"
                    )));
                }
                if !lists.insert(name.clone()) {
                    return Err(err(format!("duplicate neighbor list '{name}'")));
                }
            }
            StateVar::Scalar { name, .. } => {
                if !scalars.insert(name.clone()) {
                    return Err(err(format!("duplicate variable '{name}'")));
                }
            }
        }
    }

    let states: HashSet<&str> = spec
        .states
        .iter()
        .map(|s| s.as_str())
        .chain(std::iter::once("init"))
        .collect();

    let checker = Checker {
        spec,
        timers: &timers,
        lists: &lists,
        scalars: &scalars,
        states: &states,
    };
    for (i, t) in spec.transitions.iter().enumerate() {
        let mut names = Vec::new();
        t.scope.names(&mut names);
        for n in &names {
            if !states.contains(n.as_str()) {
                return Err(err(format!("transition {i}: unknown state '{n}' in scope")));
            }
        }
        let mut trigger_msg = None;
        match &t.trigger {
            Trigger::Recv(m) | Trigger::Forward(m) => {
                if !msg_names.contains(m) {
                    return Err(err(format!("transition {i}: unknown message '{m}'")));
                }
                trigger_msg = spec.message(m);
            }
            Trigger::Timer(name) => {
                if !timers.contains(name) {
                    return Err(err(format!("transition {i}: unknown timer '{name}'")));
                }
            }
            Trigger::Api(_) | Trigger::Error => {}
        }
        let in_forward = matches!(&t.trigger, Trigger::Forward(_));
        let mut fe_vars = Vec::new();
        checker.stmts(&t.body, i, trigger_msg, in_forward, &mut fe_vars)?;
    }
    Ok(())
}

/// Builtin value names every transition may reference. `dest` and
/// `group` are the API-transition argument bindings; outside an API
/// transition they fall back to a state variable of that name, or null.
const BUILTINS: &[&str] = &[
    "from",
    "me",
    "my_key",
    "bootstrap",
    "payload",
    "null",
    "true",
    "false",
    "dest",
    "group",
];

/// Name-resolution context for a transition body walk.
struct Checker<'a> {
    spec: &'a Spec,
    timers: &'a HashSet<String>,
    lists: &'a HashSet<String>,
    scalars: &'a HashSet<String>,
    states: &'a HashSet<&'a str>,
}

impl Checker<'_> {
    fn stmts(
        &self,
        stmts: &[Stmt],
        tidx: usize,
        msg: Option<&MessageDecl>,
        in_forward: bool,
        fe_vars: &mut Vec<String>,
    ) -> Result<(), ParseError> {
        for s in stmts {
            match s {
                Stmt::If { cond, then, els } => {
                    self.expr(cond, tidx, msg, fe_vars)?;
                    self.stmts(then, tidx, msg, in_forward, fe_vars)?;
                    self.stmts(els, tidx, msg, in_forward, fe_vars)?;
                }
                Stmt::ForEach { var, list, body } => {
                    if !self.lists.contains(list) {
                        return Err(err(format!(
                            "transition {tidx}: foreach over unknown list '{list}'"
                        )));
                    }
                    fe_vars.push(var.clone());
                    self.stmts(body, tidx, msg, in_forward, fe_vars)?;
                    fe_vars.pop();
                }
                Stmt::StateChange(st) => {
                    if !self.states.contains(st.as_str()) {
                        return Err(err(format!(
                            "transition {tidx}: state_change to unknown '{st}'"
                        )));
                    }
                }
                Stmt::TimerResched(name, e) => {
                    if !self.timers.contains(name) {
                        return Err(err(format!("transition {tidx}: unknown timer '{name}'")));
                    }
                    self.expr(e, tidx, msg, fe_vars)?;
                }
                Stmt::TimerCancel(name) => {
                    if !self.timers.contains(name) {
                        return Err(err(format!("transition {tidx}: unknown timer '{name}'")));
                    }
                }
                Stmt::NeighborAdd(l, e) | Stmt::NeighborRemove(l, e) | Stmt::UpcallNotify(l, e) => {
                    if !self.lists.contains(l) {
                        return Err(err(format!(
                            "transition {tidx}: unknown neighbor list '{l}'"
                        )));
                    }
                    self.expr(e, tidx, msg, fe_vars)?;
                }
                Stmt::NeighborClear(l) => {
                    if !self.lists.contains(l) {
                        return Err(err(format!(
                            "transition {tidx}: unknown neighbor list '{l}'"
                        )));
                    }
                }
                Stmt::Send {
                    message,
                    dest,
                    args,
                } => {
                    let Some(decl) = self.spec.message(message) else {
                        return Err(err(format!(
                            "transition {tidx}: send of unknown message '{message}'"
                        )));
                    };
                    if args.len() != decl.fields.len() {
                        return Err(err(format!(
                            "transition {tidx}: message '{message}' takes {} argument(s), \
                             got {}",
                            decl.fields.len(),
                            args.len()
                        )));
                    }
                    self.expr(dest, tidx, msg, fe_vars)?;
                    for a in args {
                        self.expr(a, tidx, msg, fe_vars)?;
                    }
                }
                Stmt::Assign(name, e) => {
                    if fe_vars.iter().any(|v| v == name) {
                        return Err(err(format!(
                            "transition {tidx}: cannot assign to foreach variable '{name}'"
                        )));
                    }
                    if !self.scalars.contains(name) && !self.lists.contains(name) {
                        return Err(err(format!(
                            "transition {tidx}: assignment to undeclared variable '{name}'"
                        )));
                    }
                    self.expr(e, tidx, msg, fe_vars)?;
                }
                Stmt::Deliver { src, payload } => {
                    self.expr(src, tidx, msg, fe_vars)?;
                    self.expr(payload, tidx, msg, fe_vars)?;
                }
                Stmt::Monitor(e) | Stmt::Unmonitor(e) | Stmt::Trace(e) => {
                    self.expr(e, tidx, msg, fe_vars)?;
                }
                Stmt::Quash => {
                    if !in_forward {
                        return Err(err(format!(
                            "transition {tidx}: quash() is only valid in a 'forward' transition"
                        )));
                    }
                }
                Stmt::DownCallApi { api, args } => {
                    if self.spec.uses.is_none() {
                        return Err(err(format!(
                            "transition {tidx}: downcall({api}, ..) requires a 'uses' base layer"
                        )));
                    }
                    let Some(arity) = downcall_arity(api) else {
                        return Err(err(format!(
                            "transition {tidx}: unknown downcall API '{api}'"
                        )));
                    };
                    if args.len() != arity {
                        return Err(err(format!(
                            "transition {tidx}: downcall({api}, ..) takes {arity} argument(s), \
                             got {}",
                            args.len()
                        )));
                    }
                    for a in args {
                        self.expr(a, tidx, msg, fe_vars)?;
                    }
                }
                Stmt::Return => {}
            }
        }
        Ok(())
    }

    fn expr(
        &self,
        e: &Expr,
        tidx: usize,
        msg: Option<&MessageDecl>,
        fe_vars: &[String],
    ) -> Result<(), ParseError> {
        let mut result = Ok(());
        e.walk(&mut |sub| {
            if result.is_err() {
                return;
            }
            result = self.check_one(sub, tidx, msg, fe_vars);
        });
        result
    }

    fn check_one(
        &self,
        e: &Expr,
        tidx: usize,
        msg: Option<&MessageDecl>,
        fe_vars: &[String],
    ) -> Result<(), ParseError> {
        match e {
            Expr::Var(name) => {
                let known = BUILTINS.contains(&name.as_str())
                    || fe_vars.iter().any(|v| v == name)
                    || self.spec.constants.iter().any(|(n, _)| n == name)
                    || self.scalars.contains(name)
                    || self.lists.contains(name);
                if !known {
                    return Err(err(format!("transition {tidx}: unknown variable '{name}'")));
                }
            }
            Expr::Field(name) => {
                let Some(decl) = msg else {
                    return Err(err(format!(
                        "transition {tidx}: field({name}) outside a recv/forward transition"
                    )));
                };
                if !decl.fields.iter().any(|f| f.name == *name) {
                    return Err(err(format!(
                        "transition {tidx}: message '{}' has no field '{name}'",
                        decl.name
                    )));
                }
            }
            Expr::NeighborSize(l)
            | Expr::NeighborQuery(l, _)
            | Expr::NeighborRandom(l)
            | Expr::OwnerOf(_, l)
                if !self.lists.contains(l) =>
            {
                return Err(err(format!(
                    "transition {tidx}: unknown neighbor list '{l}'"
                )));
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<(), ParseError> {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn owner_of_unknown_list_rejected() {
        let e = check(
            "protocol p; addressing ip;
             state_variables { node n; }
             transitions { any API init { n = owner_of(my_key, ghosts); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown neighbor list 'ghosts'"));
    }

    #[test]
    fn duplicate_state_rejected() {
        let e = check("protocol p; addressing ip; states { a; a; }").unwrap_err();
        assert!(e.msg.contains("duplicate state"));
    }

    #[test]
    fn init_redeclaration_rejected() {
        let e = check("protocol p; addressing ip; states { init; }").unwrap_err();
        assert!(e.msg.contains("implicit"));
    }

    #[test]
    fn unknown_scope_state_rejected() {
        let e = check("protocol p; addressing ip; states { a; } transitions { b API init { } }")
            .unwrap_err();
        assert!(e.msg.contains("unknown state 'b'"));
    }

    #[test]
    fn unknown_message_in_recv_rejected() {
        let e = check("protocol p; addressing ip; transitions { any recv nope { } }").unwrap_err();
        assert!(e.msg.contains("unknown message"));
    }

    #[test]
    fn undeclared_transport_rejected() {
        let e = check("protocol p; addressing ip; messages { FAST x { } }").unwrap_err();
        assert!(e.msg.contains("undeclared transport"));
    }

    #[test]
    fn layered_protocol_may_skip_transports() {
        // With `uses`, message transports refer to the base's classes.
        check("protocol s uses base; addressing hash; messages { HIGH x { } }").unwrap();
    }

    #[test]
    fn timer_transition_must_reference_declared_timer() {
        let e = check("protocol p; addressing ip; transitions { any timer t { } }").unwrap_err();
        assert!(e.msg.contains("unknown timer"));
    }

    #[test]
    fn state_change_target_checked() {
        let e = check(
            "protocol p; addressing ip; states { a; }
             transitions { any API init { state_change(zzz); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("state_change to unknown"));
    }

    #[test]
    fn fail_detect_requires_known_neighbor_type() {
        let e = check("protocol p; addressing ip; state_variables { fail_detect ghosts g; }")
            .unwrap_err();
        assert!(e.msg.contains("undeclared neighbor type"));
    }

    #[test]
    fn self_uses_rejected() {
        let e = check("protocol p uses p; addressing hash;").unwrap_err();
        assert!(e.msg.contains("cannot use itself"));
    }

    #[test]
    fn quash_outside_forward_rejected() {
        let e = check(
            "protocol s uses base; addressing hash;
             messages { m { } }
             transitions { any recv m { quash(); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("only valid in a 'forward'"));
    }

    #[test]
    fn quash_in_forward_accepted() {
        check(
            "protocol s uses base; addressing hash;
             messages { m { } }
             transitions { any forward m { quash(); } }",
        )
        .unwrap();
    }

    #[test]
    fn downcall_requires_layering() {
        let e = check(
            "protocol p; addressing hash;
             transitions { any API join { downcall(join, group); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("requires a 'uses'"));
    }

    #[test]
    fn downcall_arity_checked() {
        let e = check(
            "protocol s uses base; addressing hash;
             transitions { any API join { downcall(multicast, group); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("takes 2 argument"));
        let e = check(
            "protocol s uses base; addressing hash;
             transitions { any API init { downcall(frobnicate, group); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown downcall API"));
    }

    #[test]
    fn send_arity_checked() {
        let e = check(
            "protocol p; addressing ip; transports { TCP C; }
             messages { C hello { node who; int n; } }
             transitions { any API init { hello(me, me); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("takes 2 argument"));
    }

    #[test]
    fn assignment_to_undeclared_variable_rejected() {
        let e = check(
            "protocol p; addressing ip;
             transitions { any API init { ghost = 1; } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("undeclared variable 'ghost'"));
    }

    #[test]
    fn assignment_to_foreach_variable_rejected() {
        let e = check(
            "protocol p; addressing ip;
             neighbor_types { kid 4 { } }
             state_variables { kid kids; }
             transitions { any API init { foreach (k in kids) { k = 1; } } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("foreach variable 'k'"));
    }

    #[test]
    fn unknown_variable_reference_rejected() {
        let e = check(
            "protocol p; addressing ip;
             state_variables { int n; }
             transitions { any API init { n = n + phantom; } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown variable 'phantom'"));
    }

    #[test]
    fn field_outside_recv_rejected() {
        let e = check(
            "protocol p; addressing ip;
             state_variables { int n; }
             transitions { any API init { n = field(who); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("outside a recv/forward"));
    }

    #[test]
    fn field_must_exist_on_triggering_message() {
        let e = check(
            "protocol p; addressing ip; transports { TCP C; }
             messages { C hello { node who; } }
             state_variables { int n; }
             transitions { any recv hello { n = field(nope); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("no field 'nope'"));
    }

    #[test]
    fn foreach_variable_resolves_inside_body() {
        check(
            "protocol p; addressing ip; transports { TCP C; }
             neighbor_types { kid 4 { } }
             messages { C ping { } }
             state_variables { kid kids; }
             transitions { any API init { foreach (k in kids) { ping(k); } } }",
        )
        .unwrap();
    }

    #[test]
    fn valid_spec_passes() {
        check(
            "protocol p; addressing hash;
             states { joined; }
             neighbor_types { kid 4 { } }
             transports { TCP C; }
             messages { C hello { node who; } }
             state_variables { kid kids; timer t 100; int n; }
             transitions {
                any API init { timer_resched(t, 100); }
                any timer t { n = n + 1; hello(me, me); }
                any recv hello { neighbor_add(kids, from); state_change(joined); }
             }",
        )
        .unwrap();
    }
}
