//! Semantic analysis: name resolution and well-formedness checks before
//! interpretation or code generation.

use crate::ast::*;
use crate::lexer::ParseError;
use std::collections::HashSet;

fn err(msg: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        col: 0,
        msg: msg.into(),
    }
}

/// Validate a parsed specification. Checks:
///
/// * duplicate declarations (states, neighbor types, transports,
///   messages, state variables, constants),
/// * transition scopes reference declared states (`init` is implicit),
/// * `recv`/`forward` transitions reference declared messages,
/// * `timer` transitions reference declared timer variables,
/// * message transports reference declared transport instances (lowest
///   layer only — layered protocols may omit transports entirely),
/// * statements reference declared timers/neighbor lists/messages,
/// * `uses` does not name the protocol itself (the degenerate layering
///   cycle; cross-spec chains are validated by
///   [`crate::registry::SpecRegistry::resolve_chain`]),
/// * `quash()` appears only inside `forward` transitions, and
///   `downcall(..)` only in layered specs with a known API name/arity.
pub fn analyze(spec: &Spec) -> Result<(), ParseError> {
    if spec.uses.as_deref() == Some(spec.name.as_str()) {
        return Err(err(format!(
            "protocol '{}' cannot use itself as its base layer",
            spec.name
        )));
    }
    let mut seen = HashSet::new();
    for s in &spec.states {
        if s == "init" {
            return Err(err("the 'init' state is implicit; do not redeclare it"));
        }
        if !seen.insert(s.clone()) {
            return Err(err(format!("duplicate state '{s}'")));
        }
    }

    let mut nbr_names = HashSet::new();
    for n in &spec.neighbor_types {
        if !nbr_names.insert(n.name.clone()) {
            return Err(err(format!("duplicate neighbor type '{}'", n.name)));
        }
    }

    let mut transport_names = HashSet::new();
    for t in &spec.transports {
        if !transport_names.insert(t.name.clone()) {
            return Err(err(format!("duplicate transport '{}'", t.name)));
        }
    }

    let mut msg_names = HashSet::new();
    for m in &spec.messages {
        if !msg_names.insert(m.name.clone()) {
            return Err(err(format!("duplicate message '{}'", m.name)));
        }
        if let Some(tr) = &m.transport {
            if spec.uses.is_none() && !transport_names.contains(tr) {
                return Err(err(format!(
                    "message '{}' uses undeclared transport '{tr}'",
                    m.name
                )));
            }
        }
        for f in &m.fields {
            if let TypeName::Neighbor(t) = &f.ty {
                if !nbr_names.contains(t) {
                    return Err(err(format!(
                        "message '{}' field '{}' has unknown type '{t}'",
                        m.name, f.name
                    )));
                }
            }
        }
    }

    let mut timers = HashSet::new();
    let mut lists = HashSet::new();
    let mut scalars = HashSet::new();
    for v in &spec.state_vars {
        match v {
            StateVar::Timer { name, .. } => {
                if !timers.insert(name.clone()) {
                    return Err(err(format!("duplicate timer '{name}'")));
                }
            }
            StateVar::Neighbor { ty, name, .. } => {
                if !nbr_names.contains(ty) {
                    return Err(err(format!(
                        "state variable '{name}' has undeclared neighbor type '{ty}'"
                    )));
                }
                if !lists.insert(name.clone()) {
                    return Err(err(format!("duplicate neighbor list '{name}'")));
                }
            }
            StateVar::Scalar { name, .. } => {
                if !scalars.insert(name.clone()) {
                    return Err(err(format!("duplicate variable '{name}'")));
                }
            }
        }
    }

    let states: HashSet<&str> = spec
        .states
        .iter()
        .map(|s| s.as_str())
        .chain(std::iter::once("init"))
        .collect();

    for (i, t) in spec.transitions.iter().enumerate() {
        let mut names = Vec::new();
        t.scope.names(&mut names);
        for n in &names {
            if !states.contains(n.as_str()) {
                return Err(err(format!("transition {i}: unknown state '{n}' in scope")));
            }
        }
        match &t.trigger {
            Trigger::Recv(m) | Trigger::Forward(m) => {
                if !msg_names.contains(m) {
                    return Err(err(format!("transition {i}: unknown message '{m}'")));
                }
            }
            Trigger::Timer(name) => {
                if !timers.contains(name) {
                    return Err(err(format!("transition {i}: unknown timer '{name}'")));
                }
            }
            Trigger::Api(_) | Trigger::Error => {}
        }
        let in_forward = matches!(&t.trigger, Trigger::Forward(_));
        check_stmts(
            spec, &t.body, &timers, &lists, &msg_names, &states, i, in_forward,
        )?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_stmts(
    spec: &Spec,
    stmts: &[Stmt],
    timers: &HashSet<String>,
    lists: &HashSet<String>,
    msgs: &HashSet<String>,
    states: &HashSet<&str>,
    tidx: usize,
    in_forward: bool,
) -> Result<(), ParseError> {
    for s in stmts {
        match s {
            Stmt::If { then, els, .. } => {
                check_stmts(spec, then, timers, lists, msgs, states, tidx, in_forward)?;
                check_stmts(spec, els, timers, lists, msgs, states, tidx, in_forward)?;
            }
            Stmt::ForEach { list, body, .. } => {
                if !lists.contains(list) {
                    return Err(err(format!(
                        "transition {tidx}: foreach over unknown list '{list}'"
                    )));
                }
                check_stmts(spec, body, timers, lists, msgs, states, tidx, in_forward)?;
            }
            Stmt::StateChange(st) => {
                if !states.contains(st.as_str()) {
                    return Err(err(format!(
                        "transition {tidx}: state_change to unknown '{st}'"
                    )));
                }
            }
            Stmt::TimerResched(name, _) | Stmt::TimerCancel(name) => {
                if !timers.contains(name) {
                    return Err(err(format!("transition {tidx}: unknown timer '{name}'")));
                }
            }
            Stmt::NeighborAdd(l, _)
            | Stmt::NeighborRemove(l, _)
            | Stmt::NeighborClear(l)
            | Stmt::UpcallNotify(l, _) => {
                if !lists.contains(l) {
                    return Err(err(format!(
                        "transition {tidx}: unknown neighbor list '{l}'"
                    )));
                }
            }
            Stmt::Send { message, .. } => {
                if !msgs.contains(message) {
                    return Err(err(format!(
                        "transition {tidx}: send of unknown message '{message}'"
                    )));
                }
            }
            Stmt::Quash => {
                if !in_forward {
                    return Err(err(format!(
                        "transition {tidx}: quash() is only valid in a 'forward' transition"
                    )));
                }
            }
            Stmt::DownCallApi { api, args } => {
                if spec.uses.is_none() {
                    return Err(err(format!(
                        "transition {tidx}: downcall({api}, ..) requires a 'uses' base layer"
                    )));
                }
                let Some(arity) = downcall_arity(api) else {
                    return Err(err(format!(
                        "transition {tidx}: unknown downcall API '{api}'"
                    )));
                };
                if args.len() != arity {
                    return Err(err(format!(
                        "transition {tidx}: downcall({api}, ..) takes {arity} argument(s), \
                         got {}",
                        args.len()
                    )));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<(), ParseError> {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn duplicate_state_rejected() {
        let e = check("protocol p; addressing ip; states { a; a; }").unwrap_err();
        assert!(e.msg.contains("duplicate state"));
    }

    #[test]
    fn init_redeclaration_rejected() {
        let e = check("protocol p; addressing ip; states { init; }").unwrap_err();
        assert!(e.msg.contains("implicit"));
    }

    #[test]
    fn unknown_scope_state_rejected() {
        let e = check("protocol p; addressing ip; states { a; } transitions { b API init { } }")
            .unwrap_err();
        assert!(e.msg.contains("unknown state 'b'"));
    }

    #[test]
    fn unknown_message_in_recv_rejected() {
        let e = check("protocol p; addressing ip; transitions { any recv nope { } }").unwrap_err();
        assert!(e.msg.contains("unknown message"));
    }

    #[test]
    fn undeclared_transport_rejected() {
        let e = check("protocol p; addressing ip; messages { FAST x { } }").unwrap_err();
        assert!(e.msg.contains("undeclared transport"));
    }

    #[test]
    fn layered_protocol_may_skip_transports() {
        // With `uses`, message transports refer to the base's classes.
        check("protocol s uses base; addressing hash; messages { HIGH x { } }").unwrap();
    }

    #[test]
    fn timer_transition_must_reference_declared_timer() {
        let e = check("protocol p; addressing ip; transitions { any timer t { } }").unwrap_err();
        assert!(e.msg.contains("unknown timer"));
    }

    #[test]
    fn state_change_target_checked() {
        let e = check(
            "protocol p; addressing ip; states { a; }
             transitions { any API init { state_change(zzz); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("state_change to unknown"));
    }

    #[test]
    fn fail_detect_requires_known_neighbor_type() {
        let e = check("protocol p; addressing ip; state_variables { fail_detect ghosts g; }")
            .unwrap_err();
        assert!(e.msg.contains("undeclared neighbor type"));
    }

    #[test]
    fn self_uses_rejected() {
        let e = check("protocol p uses p; addressing hash;").unwrap_err();
        assert!(e.msg.contains("cannot use itself"));
    }

    #[test]
    fn quash_outside_forward_rejected() {
        let e = check(
            "protocol s uses base; addressing hash;
             messages { m { } }
             transitions { any recv m { quash(); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("only valid in a 'forward'"));
    }

    #[test]
    fn quash_in_forward_accepted() {
        check(
            "protocol s uses base; addressing hash;
             messages { m { } }
             transitions { any forward m { quash(); } }",
        )
        .unwrap();
    }

    #[test]
    fn downcall_requires_layering() {
        let e = check(
            "protocol p; addressing hash;
             transitions { any API join { downcall(join, group); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("requires a 'uses'"));
    }

    #[test]
    fn downcall_arity_checked() {
        let e = check(
            "protocol s uses base; addressing hash;
             transitions { any API join { downcall(multicast, group); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("takes 2 argument"));
        let e = check(
            "protocol s uses base; addressing hash;
             transitions { any API init { downcall(frobnicate, group); } }",
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown downcall API"));
    }

    #[test]
    fn valid_spec_passes() {
        check(
            "protocol p; addressing hash;
             states { joined; }
             neighbor_types { kid 4 { } }
             transports { TCP C; }
             messages { C hello { node who; } }
             state_variables { kid kids; timer t 100; int n; }
             transitions {
                any API init { timer_resched(t, 100); }
                any timer t { n = n + 1; hello(me, me); }
                any recv hello { neighbor_add(kids, from); state_change(joined); }
             }",
        )
        .unwrap();
    }
}
