//! The specification interpreter: runs a compiled [`Spec`] as a live
//! [`macedon_core::Agent`].
//!
//! The paper's `macedon` tool translates specs to C++ compiled against
//! the engine. This interpreter is the equivalent executable semantics —
//! the same FSM dispatch (transition = (event, state-scope) → actions),
//! the same primitives (§3.3), over the same engine — without a compile
//! step, which lets the test suite cross-validate the bundled specs
//! against the hand-written agents in `macedon-overlays`.
//!
//! The interpreter does not walk the AST. [`InterpretedAgent`] executes
//! the slot-indexed IR of [`crate::ir`]: every variable, neighbor list,
//! timer, FSM state, message, and message field was resolved to a dense
//! index when the spec was lowered (once, shared as an `Arc<IrSpec>`
//! across all nodes and layers interpreting it), so the per-event path
//! is jump-table dispatch plus `Vec` slot access — no string hashing,
//! no per-message declaration clones, and no `HashMap` frames. The IR
//! is purely a faster representation: execution order, RNG draw points,
//! wire bytes, and engine op order are identical to AST semantics, so
//! interpreted agents stay bit-for-bit cross-validatable against the
//! generated ones (`tests/integration_generated.rs`).
//!
//! Interpretation covers the whole roster, layered specs included. An
//! [`InterpretedAgent`] is a first-class citizen of the engine's
//! multi-layer [`macedon_core::Stack`]:
//!
//! * A **lowest-layer** spec (no `uses`) owns the transports: message
//!   sends go straight to the wire, `routeIP` downcalls from layers
//!   above are served natively by tunneling the payload to the target
//!   host, and sends that carry tunneled upper-layer data are vetted
//!   through the engine's `forward` query so the layers above may
//!   redirect or quash them — exactly what native routers do.
//! * A **layered** spec (`uses base`) never touches the wire: message
//!   sends become `route`/`routeIP` downcalls on the layer below
//!   (destination `null` routes toward the message's first key field),
//!   incoming messages arrive as `deliver` upcalls demultiplexed by
//!   protocol id, `forward <msg>` transitions fire from the layer
//!   below's forward queries (with `quash();` available to swallow the
//!   message), and `downcall(<api>, ..)` statements invoke the base
//!   layer's API. API calls the spec declares no transition for are
//!   relayed down the stack unchanged.
//!
//! Interpreted and native agents compose freely in one stack (e.g. a
//! native Pastry under an interpreted `scribe.mac`), because both speak
//! the same [`macedon_core::DownCall`]/[`macedon_core::UpCall`] API.
//! Use [`crate::registry::SpecRegistry`] to resolve a spec's `uses`
//! chain and assemble the ready-to-run stack (sharing one lowered
//! `IrSpec` per protocol).

use crate::ast::{Spec, TransportKindDecl};
use crate::ir::{ApiArgKind, ApiKind, FieldKind, IrDown, IrExpr, IrMessage, IrSpec, IrStmt, Table};
use macedon_core::key;
use macedon_core::wire::{read_tunnel_ref, WireRef};
use macedon_core::{
    Addressing, Agent, Bytes, ChannelId, ChannelSpec, Ctx, DownCall, Duration, ForwardInfo,
    MacedonKey, NodeId, ProtocolId, TraceLevel, TransportKind, UpCall, WireWriter,
    DEFAULT_PRIORITY,
};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

use crate::ast::BinOp;

/// Pseudo protocol id framing payloads a lowest layer tunnels on behalf
/// of the layers above (the native engine's `macedon_routeIP` service).
/// Re-exported from the engine: the interpreter and the generated agents
/// share one frame format ([`macedon_core::wire::tunnel_frame`]) so they
/// can tunnel for each other inside mixed stacks.
pub use macedon_core::TUNNEL_PROTOCOL;

/// Runtime values of the action language.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Int(i64),
    Bool(bool),
    Node(NodeId),
    Key(MacedonKey),
    Bytes(Bytes),
    List(Vec<NodeId>),
    Null,
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Bool(b) => *b,
            Value::Node(_) | Value::Key(_) | Value::List(_) => true,
            Value::Bytes(b) => !b.is_empty(),
            Value::Null => false,
        }
    }

    fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(format!("expected int, got {other:?}")),
        }
    }

    fn as_node(&self) -> Result<NodeId, String> {
        match self {
            Value::Node(n) => Ok(*n),
            other => Err(format!("expected node, got {other:?}")),
        }
    }

    /// Coerce to an optional key, the way every key-typed position does
    /// (message key fields, `route` destinations, the key builtins):
    /// keys pass through, nodes hash under the world's addressing mode,
    /// ints truncate onto the ring, null stays null.
    fn as_key_opt(&self, mode: Addressing) -> Result<Option<MacedonKey>, String> {
        match self {
            Value::Key(k) => Ok(Some(*k)),
            Value::Node(n) => Ok(Some(MacedonKey::of_node(*n, mode))),
            Value::Int(v) => Ok(Some(MacedonKey(*v as u32))),
            Value::Null => Ok(None),
            other => Err(format!("expected key, got {other:?}")),
        }
    }
}

/// Per-transition bindings (decoded message fields by slot, `from`,
/// `payload`, API arguments).
#[derive(Default)]
struct Frame {
    fields: Vec<Value>,
    from: Option<NodeId>,
    payload: Option<Bytes>,
    api_dest: Option<Value>,
    api_group: Option<Value>,
    /// Set by `quash();` inside a `forward` transition.
    quash: bool,
}

enum Flow {
    Continue,
    Return,
}

/// A dispatch point: which jump table, which slot.
#[derive(Clone, Copy)]
enum At {
    Api(ApiKind),
    Timer(u16),
    Recv(u16),
    Forward(u16),
    Error,
}

fn table_of(ir: &IrSpec, at: At) -> &Table {
    match at {
        At::Api(k) => &ir.tables.api[k as usize],
        At::Timer(i) => &ir.tables.timer[i as usize],
        At::Recv(i) => &ir.tables.recv[i as usize],
        At::Forward(i) => &ir.tables.forward[i as usize],
        At::Error => &ir.tables.error,
    }
}

/// Derive the channel table a world must be built with to host this spec.
pub fn channel_table(spec: &Spec) -> Vec<ChannelSpec> {
    spec.transports
        .iter()
        .map(|t| {
            let kind = match t.kind {
                TransportKindDecl::Tcp => TransportKind::Tcp,
                TransportKindDecl::Udp => TransportKind::Udp,
                TransportKindDecl::Swp => TransportKind::Swp { window: 16 },
            };
            ChannelSpec::new(t.name.clone(), kind)
        })
        .collect()
}

/// Well-known protocol id derived from the protocol name.
pub fn protocol_id_of(name: &str) -> ProtocolId {
    let h = macedon_core::sha1::sha1_u32(name.as_bytes()) as u16;
    // Stay clear of reserved values (engine heartbeat, app wrapper,
    // interpreter tunnel).
    match h {
        0xFFFD..=0xFFFF => 0x7FFF,
        v => v,
    }
}

/// An interpreted protocol instance executing a shared [`IrSpec`].
///
/// The mutable runtime lives in `Core`, a separate field from the
/// shared `Arc<IrSpec>`, so the executor borrows the program and the
/// state disjointly — no per-event `Arc` refcount traffic.
pub struct InterpretedAgent {
    ir: Arc<IrSpec>,
    core: Core,
    /// Transitions fired, per trigger kind (observability / tests).
    pub transitions_fired: u64,
}

/// The mutable interpreter runtime (everything a transition touches).
struct Core {
    proto: ProtocolId,
    bootstrap: Option<NodeId>,
    /// Has a `uses` base: sends become downcalls, receives come as
    /// `deliver` upcalls, and the wire is never touched directly.
    layered: bool,
    /// Index into `ir.states`.
    state: u16,
    /// Scalar slots (constants, declared scalars, `foreach` bindings).
    vars: Vec<Value>,
    /// Neighbor-list slots.
    lists: Vec<Vec<NodeId>>,
    /// Number of transport channels of this spec (lowest layers only;
    /// bounds the `priority` values the `routeIP` tunnel honors).
    num_channels: u16,
    /// Per-message transport priority for layered sends: the base
    /// (tunneling) layer's channel index the message's declared class
    /// maps onto, or [`DEFAULT_PRIORITY`] when unresolved. Populated by
    /// [`InterpretedAgent::set_base_transports`]; indexed by message id.
    msg_prio: Vec<i8>,
    /// Encoded sends awaiting their forward-query verdict, FIFO (the
    /// dispatcher resolves queries in emission order).
    pending_fwd: VecDeque<(NodeId, ChannelId, Bytes)>,
    /// Recycled field buffer: decoded message values live here between
    /// events instead of a fresh allocation per decode.
    fields_pool: Vec<Value>,
    /// Recycled node-list buffers for decoded `Value::List` fields and
    /// replaced neighbor lists (bounded; see [`NODE_POOL_MAX`]).
    node_pool: Vec<Vec<NodeId>>,
}

/// Cap on pooled node-list buffers per agent.
const NODE_POOL_MAX: usize = 8;

impl InterpretedAgent {
    /// Instantiate a compiled spec as one layer of a stack, lowering it
    /// to IR on the spot. `bootstrap` is bound to the variable
    /// `bootstrap` inside transitions (`Null` for the designated root).
    /// Specs with a `uses` clause must be stacked above an agent serving
    /// their base protocol's API — interpreted or native;
    /// [`crate::registry::SpecRegistry`] builds whole chains **and
    /// shares one lowered `Arc<IrSpec>` across every node**, which this
    /// convenience constructor cannot.
    ///
    /// Panics if the spec fails IR lowering — only possible when it
    /// never passed [`crate::sema::analyze`] (use [`crate::compile`]).
    pub fn new(spec: Arc<Spec>, bootstrap: Option<NodeId>) -> InterpretedAgent {
        let ir = IrSpec::lower(&spec).unwrap_or_else(|e| {
            panic!(
                "spec '{}' cannot be interpreted: {e} (was it sema-analyzed?)",
                spec.name
            )
        });
        InterpretedAgent::from_ir(Arc::new(ir), bootstrap)
    }

    /// Instantiate from an already-lowered spec, sharing the `IrSpec`
    /// with every other node interpreting the same protocol.
    pub fn from_ir(ir: Arc<IrSpec>, bootstrap: Option<NodeId>) -> InterpretedAgent {
        let vars = ir.vars.iter().map(|v| v.init.clone()).collect();
        let lists = vec![Vec::new(); ir.lists.len()];
        InterpretedAgent {
            core: Core {
                proto: ir.proto,
                layered: ir.layered,
                bootstrap,
                state: 0,
                vars,
                lists,
                num_channels: ir.num_channels,
                msg_prio: vec![DEFAULT_PRIORITY; ir.messages.len()],
                pending_fwd: VecDeque::new(),
                fields_pool: Vec::new(),
                node_pool: Vec::new(),
            },
            transitions_fired: 0,
            ir,
        }
    }

    /// The shared lowered spec this agent executes.
    pub fn ir(&self) -> &Arc<IrSpec> {
        &self.ir
    }

    /// Resolve this layered spec's message class names (`HIGH`,
    /// `BEST_EFFORT`, …) against the base (tunneling) layer's transport
    /// table, so sends carry a transport priority instead of
    /// [`DEFAULT_PRIORITY`]. [`crate::registry::SpecRegistry::build_stack`]
    /// calls this with the chain's lowest spec; standalone agents keep
    /// default priorities (channel 0 at the tunnel).
    ///
    /// The priority is honored by the engine-served `routeIP` tunnel —
    /// i.e. for node-addressed sends. A key-addressed send becomes a
    /// `Route` downcall served by the base spec's own `route`
    /// transition, which sends its *own* declared message on that
    /// message's class; the priority cannot override a spec-level
    /// transport choice (see ROADMAP).
    pub fn set_base_transports(&mut self, base: &[crate::ast::TransportDecl]) {
        for (i, m) in self.ir.messages.iter().enumerate() {
            if let Some(class) = &m.transport {
                if let Some(ch) = crate::ast::map_class_to_channel(base, class) {
                    if let Ok(p) = i8::try_from(ch) {
                        self.core.msg_prio[i] = p;
                    }
                }
            }
        }
    }

    pub fn state(&self) -> &str {
        &self.ir.states[self.core.state as usize]
    }

    pub fn list(&self, name: &str) -> Option<&Vec<NodeId>> {
        self.ir
            .list_slot(name)
            .map(|s| &self.core.lists[s as usize])
    }

    pub fn var(&self, name: &str) -> Option<&Value> {
        self.ir.var_slot(name).map(|s| &self.core.vars[s as usize])
    }

    // ---- dispatch --------------------------------------------------------

    /// Fire the transition matching the dispatch point in the current
    /// state, if any; returns the frame's quash flag (only `forward`
    /// transitions set it).
    fn fire(&mut self, ctx: &mut Ctx, at: At, mut frame: Frame) -> bool {
        let ir = &*self.ir;
        let core = &mut self.core;
        let hit = table_of(ir, at)
            .iter()
            .find(|(mask, _)| mask.contains(core.state));
        let Some(&(_, tidx)) = hit else {
            // No trace here: the generated back end cannot observe a
            // missed dispatch either, and the two trace streams must
            // stay byte-identical.
            core.recycle(frame);
            return false;
        };
        let t = &ir.transitions[tidx as usize];
        if t.read_locked {
            ctx.locking_read();
        }
        self.transitions_fired += 1;
        if let Err(e) = core.exec_block(ir, ctx, &mut frame, &t.body) {
            if ctx.trace_on(TraceLevel::Low) {
                ctx.trace(TraceLevel::Low, format!("{}: runtime error: {e}", ir.name));
            }
            debug_assert!(false, "interpreter runtime error: {e}");
        }
        let quash = frame.quash;
        core.recycle(frame);
        quash
    }
}

impl Core {
    /// Return a frame's field buffer (and any node-list values still in
    /// it) to the pools so the next decode reuses the allocations.
    fn recycle(&mut self, frame: Frame) {
        let mut fields = frame.fields;
        for v in fields.drain(..) {
            if let Value::List(l) = v {
                self.pool_nodes(l);
            }
        }
        if fields.capacity() > self.fields_pool.capacity() {
            self.fields_pool = fields;
        }
    }

    fn pool_nodes(&mut self, mut l: Vec<NodeId>) {
        if self.node_pool.len() < NODE_POOL_MAX && l.capacity() > 0 {
            l.clear();
            self.node_pool.push(l);
        }
    }

    fn exec_block(
        &mut self,
        ir: &IrSpec,
        ctx: &mut Ctx,
        frame: &mut Frame,
        stmts: &[IrStmt],
    ) -> Result<Flow, String> {
        for s in stmts {
            match self.exec(ir, ctx, frame, s)? {
                Flow::Return => return Ok(Flow::Return),
                Flow::Continue => {}
            }
        }
        Ok(Flow::Continue)
    }

    fn exec(
        &mut self,
        ir: &IrSpec,
        ctx: &mut Ctx,
        frame: &mut Frame,
        stmt: &IrStmt,
    ) -> Result<Flow, String> {
        match stmt {
            IrStmt::If { cond, then, els } => {
                if self.eval(ctx, frame, cond)?.truthy() {
                    self.exec_block(ir, ctx, frame, then)
                } else {
                    self.exec_block(ir, ctx, frame, els)
                }
            }
            IrStmt::Return => Ok(Flow::Return),
            IrStmt::StateChange(s) => {
                ctx.trace_fsm(&ir.states[self.state as usize], &ir.states[*s as usize]);
                self.state = *s;
                Ok(Flow::Continue)
            }
            IrStmt::TimerResched(id, e) => {
                let ms = self.eval(ctx, frame, e)?.as_int()?;
                ctx.timer_set(*id, Duration::from_millis(ms.max(0) as u64));
                Ok(Flow::Continue)
            }
            IrStmt::TimerCancel(id) => {
                ctx.timer_cancel(*id);
                Ok(Flow::Continue)
            }
            IrStmt::NeighborAdd(slot, e) => {
                let node = self.eval(ctx, frame, e)?.as_node()?;
                let decl = &ir.lists[*slot as usize];
                let l = &mut self.lists[*slot as usize];
                if !l.contains(&node) && l.len() < decl.max {
                    l.push(node);
                    if decl.fail_detect {
                        ctx.monitor(node);
                    }
                }
                Ok(Flow::Continue)
            }
            IrStmt::NeighborRemove(slot, e) => {
                let node = self.eval(ctx, frame, e)?.as_node()?;
                self.lists[*slot as usize].retain(|&n| n != node);
                if ir.lists[*slot as usize].fail_detect {
                    ctx.unmonitor(node);
                }
                Ok(Flow::Continue)
            }
            IrStmt::NeighborClear(slot) => {
                let fd = ir.lists[*slot as usize].fail_detect;
                for n in self.lists[*slot as usize].drain(..) {
                    if fd {
                        ctx.unmonitor(n);
                    }
                }
                Ok(Flow::Continue)
            }
            IrStmt::Send { msg, dest, args } => {
                let dest = self.eval(ctx, frame, dest)?;
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(ctx, frame, a)?);
                }
                self.send_message(ir, ctx, frame.from, *msg, dest, values)?;
                Ok(Flow::Continue)
            }
            IrStmt::Quash => {
                frame.quash = true;
                Ok(Flow::Continue)
            }
            IrStmt::DownCall(down) => {
                let call = self.build_downcall(ctx, frame, down)?;
                ctx.down(call);
                Ok(Flow::Continue)
            }
            IrStmt::UpcallNotify(slot, e) => {
                let ty = self.eval(ctx, frame, e)?.as_int()? as u32;
                ctx.up(UpCall::Notify {
                    nbr_type: ty,
                    neighbors: self.lists[*slot as usize].clone(),
                });
                Ok(Flow::Continue)
            }
            IrStmt::Deliver { src, payload } => {
                let src = match self.eval(ctx, frame, src)? {
                    Value::Key(k) => k,
                    Value::Node(n) => MacedonKey(n.0),
                    other => return Err(format!("deliver src must be key/node, got {other:?}")),
                };
                let payload = match self.eval(ctx, frame, payload)? {
                    Value::Bytes(b) => b,
                    Value::Null => Bytes::new(),
                    other => return Err(format!("deliver payload must be bytes, got {other:?}")),
                };
                let from = frame.from.unwrap_or(ctx.me);
                ctx.up(UpCall::Deliver { src, from, payload });
                Ok(Flow::Continue)
            }
            IrStmt::Monitor(e) => {
                let n = self.eval(ctx, frame, e)?.as_node()?;
                ctx.monitor(n);
                Ok(Flow::Continue)
            }
            IrStmt::Unmonitor(e) => {
                let n = self.eval(ctx, frame, e)?.as_node()?;
                ctx.unmonitor(n);
                Ok(Flow::Continue)
            }
            IrStmt::ForEach { var, list, body } => {
                // Snapshot (into a pooled buffer) so the body may mutate
                // the list; the loop variable owns a dedicated slot, so
                // no save/restore.
                let mut snapshot = self.node_pool.pop().unwrap_or_default();
                snapshot.extend_from_slice(&self.lists[*list as usize]);
                let mut i = 0;
                while i < snapshot.len() {
                    self.vars[*var as usize] = Value::Node(snapshot[i]);
                    i += 1;
                    if let Flow::Return = self.exec_block(ir, ctx, frame, body)? {
                        self.pool_nodes(snapshot);
                        return Ok(Flow::Return);
                    }
                }
                self.pool_nodes(snapshot);
                Ok(Flow::Continue)
            }
            IrStmt::AssignVar(slot, e) => {
                let v = self.eval(ctx, frame, e)?;
                self.vars[*slot as usize] = v;
                Ok(Flow::Continue)
            }
            IrStmt::AssignList(slot, e) => {
                let v = self.eval(ctx, frame, e)?;
                self.assign_list(ir, ctx, *slot, v)?;
                Ok(Flow::Continue)
            }
            IrStmt::AssignVarTakeField(slot, i) => {
                self.vars[*slot as usize] = take_field(frame, *i)?;
                Ok(Flow::Continue)
            }
            IrStmt::AssignListTakeField(slot, i) => {
                let v = take_field(frame, *i)?;
                self.assign_list(ir, ctx, *slot, v)?;
                Ok(Flow::Continue)
            }
            IrStmt::Trace(e) => {
                // Always evaluate — the expression may draw from the RNG
                // (`trace(neighbor_random(..))`); only the formatting is
                // gated on the trace threshold.
                let v = self.eval(ctx, frame, e)?;
                if ctx.trace_on(TraceLevel::Med) {
                    ctx.trace(TraceLevel::Med, format!("{}: trace {v:?}", ir.name));
                }
                Ok(Flow::Continue)
            }
        }
    }

    /// Whole-list assignment (e.g. `brothers = field(sibs);`):
    /// replaces contents; own id is filtered out.
    fn assign_list(
        &mut self,
        ir: &IrSpec,
        ctx: &mut Ctx,
        slot: u16,
        v: Value,
    ) -> Result<(), String> {
        let Value::List(mut ns) = v else {
            return Err(format!(
                "assigning non-list to neighbor list '{}'",
                ir.lists[slot as usize].name
            ));
        };
        ns.retain(|&n| n != ctx.me);
        let decl = &ir.lists[slot as usize];
        ns.truncate(decl.max);
        let l = &mut self.lists[slot as usize];
        if decl.fail_detect {
            for n in l.iter() {
                ctx.unmonitor(*n);
            }
            for n in &ns {
                ctx.monitor(*n);
            }
        }
        let old = std::mem::replace(l, ns);
        self.pool_nodes(old);
        Ok(())
    }

    /// Translate a lowered `downcall(<api>, args...)` into the engine
    /// API call it names (value shapes checked here; name and arity were
    /// resolved at lowering).
    fn build_downcall(
        &mut self,
        ctx: &mut Ctx,
        frame: &Frame,
        down: &IrDown,
    ) -> Result<DownCall, String> {
        let api = down.api();
        let as_key = |v: &Value| match v {
            Value::Key(k) => Ok(*k),
            Value::Node(n) => Ok(MacedonKey(n.0)),
            other => Err(format!("downcall({api}, ..): expected key, got {other:?}")),
        };
        let as_payload = |v: Value| match v {
            Value::Bytes(b) => Ok(b),
            Value::Null => Ok(Bytes::new()),
            other => Err(format!(
                "downcall({api}, ..): expected payload, got {other:?}"
            )),
        };
        Ok(match down {
            IrDown::Join(g) => DownCall::Join {
                group: as_key(&self.eval(ctx, frame, g)?)?,
            },
            IrDown::Leave(g) => DownCall::Leave {
                group: as_key(&self.eval(ctx, frame, g)?)?,
            },
            IrDown::CreateGroup(g) => DownCall::CreateGroup {
                group: as_key(&self.eval(ctx, frame, g)?)?,
            },
            IrDown::Multicast(g, p) => DownCall::Multicast {
                group: as_key(&self.eval(ctx, frame, g)?)?,
                payload: as_payload(self.eval(ctx, frame, p)?)?,
                priority: DEFAULT_PRIORITY,
            },
            IrDown::Anycast(g, p) => DownCall::Anycast {
                group: as_key(&self.eval(ctx, frame, g)?)?,
                payload: as_payload(self.eval(ctx, frame, p)?)?,
                priority: DEFAULT_PRIORITY,
            },
            IrDown::Collect(g, p) => DownCall::Collect {
                group: as_key(&self.eval(ctx, frame, g)?)?,
                payload: as_payload(self.eval(ctx, frame, p)?)?,
                priority: DEFAULT_PRIORITY,
            },
            IrDown::Route(d, p) => DownCall::Route {
                dest: as_key(&self.eval(ctx, frame, d)?)?,
                payload: as_payload(self.eval(ctx, frame, p)?)?,
                priority: DEFAULT_PRIORITY,
            },
            IrDown::RouteIp(d, p) => match self.eval(ctx, frame, d)? {
                Value::Node(n) => DownCall::RouteIp {
                    dest: n,
                    payload: as_payload(self.eval(ctx, frame, p)?)?,
                    priority: DEFAULT_PRIORITY,
                },
                other => {
                    return Err(format!(
                        "downcall(routeIP, ..): expected node, got {other:?}"
                    ))
                }
            },
        })
    }

    fn send_message(
        &mut self,
        ir: &IrSpec,
        ctx: &mut Ctx,
        from: Option<NodeId>,
        msg: u16,
        dest: Value,
        values: Vec<Value>,
    ) -> Result<(), String> {
        let decl = &ir.messages[msg as usize];
        debug_assert_eq!(values.len(), decl.fields.len(), "lowering checked arity");
        let mut w = WireWriter::new();
        w.u16(self.proto).u16(msg);
        for (f, v) in decl.fields.iter().zip(&values) {
            match (f.kind, v) {
                (FieldKind::Int, v) => {
                    w.u64(v.as_int()? as u64);
                }
                (FieldKind::Bool, v) => {
                    w.u8(v.truthy() as u8);
                }
                (FieldKind::Node, Value::Node(n)) => {
                    w.node(*n);
                }
                (FieldKind::Node, Value::Null) => {
                    w.node(NodeId(u32::MAX));
                }
                (FieldKind::Key, Value::Key(k)) => {
                    w.key(*k);
                }
                (FieldKind::Key, Value::Node(n)) => {
                    w.key(MacedonKey(n.0));
                }
                (FieldKind::Payload, Value::Bytes(b)) => {
                    w.bytes(b);
                }
                (FieldKind::Payload, Value::Null) => {
                    w.bytes(&[]);
                }
                (FieldKind::Nodes, Value::List(ns)) => {
                    w.nodes(ns);
                }
                (kind, v) => {
                    return Err(format!("field {}: cannot encode {v:?} as {kind:?}", f.name))
                }
            }
        }
        let bytes = w.finish();

        // First key field holding a key/node value, if any: the routing
        // destination when the message addresses a key rather than a
        // host. Candidate positions were precomputed at lowering.
        let key_of = |decl: &IrMessage, values: &[Value]| {
            decl.key_fields
                .iter()
                .find_map(|&i| match &values[i as usize] {
                    Value::Key(k) => Some(*k),
                    Value::Node(n) => Some(MacedonKey(n.0)),
                    _ => None,
                })
        };

        if self.layered {
            // Layered specs never touch the wire: sends tunnel through
            // the base layer's API. A node destination is a direct
            // `routeIP`; `null` routes toward the message's first key
            // field (Scribe's `subscribe(null, group, me)` idiom). The
            // priority carries the base channel the message's declared
            // transport class maps onto (see `set_base_transports`).
            let priority = self.msg_prio[msg as usize];
            let call = match dest {
                Value::Node(n) => DownCall::RouteIp {
                    dest: n,
                    payload: bytes,
                    priority,
                },
                Value::Key(k) => DownCall::Route {
                    dest: k,
                    payload: bytes,
                    priority,
                },
                Value::Null => {
                    let Some(k) = key_of(decl, &values) else {
                        return Err(format!(
                            "message {}: null destination needs a key field to route toward",
                            decl.name
                        ));
                    };
                    DownCall::Route {
                        dest: k,
                        payload: bytes,
                        priority,
                    }
                }
                other => return Err(format!("message dest must be node/key, got {other:?}")),
            };
            ctx.down(call);
            return Ok(());
        }

        let dest = match dest {
            Value::Node(n) => n,
            Value::Null => return Ok(()), // sending to nobody is a no-op
            other => return Err(format!("message dest must be a node, got {other:?}")),
        };
        let ch = decl.channel;
        // A send carrying tunneled upper-layer data is an in-transit
        // forwarding decision: when layers are stacked above, vet it
        // through the engine's forward query (they may redirect or
        // quash) and transmit in `forward_resolved`, as native routers
        // do. Single-layer stacks transmit directly.
        let tunneled = decl
            .payload_fields
            .iter()
            .find_map(|&i| match &values[i as usize] {
                Value::Bytes(b) if !b.is_empty() => Some(b.clone()),
                _ => None,
            });
        match tunneled {
            Some(payload) if !ctx.is_top_layer() => {
                let dest_key = key_of(decl, &values).unwrap_or(ctx.my_key);
                self.pending_fwd.push_back((dest, ch, bytes));
                ctx.forward_query(ForwardInfo {
                    src: ctx.my_key,
                    dest: dest_key,
                    prev_hop: from.unwrap_or(ctx.me),
                    next_hop: dest,
                    payload,
                    quash: false,
                });
            }
            _ => ctx.send(dest, ch, bytes),
        }
        Ok(())
    }

    /// Serve a `routeIP` downcall from the layers above natively: frame
    /// the payload and transmit it straight to the target host (the
    /// engine service the paper's `macedon_routeIP` provides).
    ///
    /// A non-negative `priority` names one of this spec's transport
    /// channels (the layers above resolve their message class names
    /// against this table — see
    /// [`InterpretedAgent::set_base_transports`]); the default priority
    /// or an out-of-range value pins the frame to the first declared
    /// transport (channel 0 — reliable in every bundled spec), as the
    /// native agents do.
    fn tunnel_send(&mut self, ctx: &mut Ctx, dest: NodeId, payload: Bytes, priority: i8) {
        let ch = if priority >= 0 && (priority as u16) < self.num_channels {
            ChannelId(priority as u16)
        } else {
            ChannelId(0)
        };
        let frame = macedon_core::wire::tunnel_frame(ctx.my_key, &payload);
        ctx.send(dest, ch, frame);
    }

    /// If `bytes` is one of this protocol's messages, decode it into
    /// slot-ordered field values (in a pooled buffer); otherwise
    /// (foreign protocol, malformed, truncated) `None`. Borrows the
    /// buffer — no clone.
    fn decode_own(&mut self, ir: &IrSpec, bytes: &Bytes) -> Option<(u16, Vec<Value>)> {
        let mut r = WireRef::new(bytes);
        let (Ok(proto), Ok(id)) = (r.u16(), r.u16()) else {
            return None;
        };
        if proto != self.proto || id as usize >= ir.messages.len() {
            return None;
        }
        let mut fields = std::mem::take(&mut self.fields_pool);
        match decode_fields_into(
            &ir.messages[id as usize],
            &mut r,
            &mut fields,
            &mut self.node_pool,
        ) {
            Ok(()) => Some((id, fields)),
            Err(_) => {
                fields.clear();
                self.fields_pool = fields;
                None
            }
        }
    }

    fn eval(&mut self, ctx: &mut Ctx, frame: &Frame, e: &IrExpr) -> Result<Value, String> {
        Ok(match e {
            IrExpr::Int(v) => Value::Int(*v),
            IrExpr::From => frame.from.map(Value::Node).unwrap_or(Value::Null),
            IrExpr::Me => Value::Node(ctx.me),
            IrExpr::MyKey => Value::Key(ctx.my_key),
            IrExpr::Bootstrap => self.bootstrap.map(Value::Node).unwrap_or(Value::Null),
            IrExpr::Payload => frame
                .payload
                .clone()
                .map(Value::Bytes)
                .unwrap_or(Value::Null),
            IrExpr::Null => Value::Null,
            IrExpr::True => Value::Bool(true),
            IrExpr::False => Value::Bool(false),
            IrExpr::ApiArg { which, fallback } => {
                let bound = match which {
                    ApiArgKind::Dest => &frame.api_dest,
                    ApiArgKind::Group => &frame.api_group,
                };
                bound
                    .clone()
                    .or_else(|| fallback.map(|s| self.vars[s as usize].clone()))
                    .unwrap_or(Value::Null)
            }
            IrExpr::Var(slot) => self.vars[*slot as usize].clone(),
            IrExpr::ListValue(slot) => {
                let mut v = self.node_pool.pop().unwrap_or_default();
                v.extend_from_slice(&self.lists[*slot as usize]);
                Value::List(v)
            }
            IrExpr::Field(i) => frame
                .fields
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| format!("unknown message field #{i}"))?,
            IrExpr::NeighborSize(slot) => Value::Int(self.lists[*slot as usize].len() as i64),
            IrExpr::NeighborQuery(slot, e) => {
                let n = self.eval(ctx, frame, e)?;
                let l = &self.lists[*slot as usize];
                match n {
                    Value::Node(n) => Value::Bool(l.contains(&n)),
                    Value::Null => Value::Bool(false),
                    other => return Err(format!("neighbor_query needs node, got {other:?}")),
                }
            }
            IrExpr::NeighborRandom(slot) => {
                let l = &self.lists[*slot as usize];
                if l.is_empty() {
                    Value::Null
                } else {
                    Value::Node(l[ctx.rng.index(l.len())])
                }
            }
            IrExpr::Rtt(e) => match self.eval(ctx, frame, e)? {
                Value::Node(n) => Value::Int(ctx.rtt_ms(n)),
                Value::Null => Value::Int(0),
                other => return Err(format!("rtt(..) needs a node, got {other:?}")),
            },
            IrExpr::Goodput(e) => match self.eval(ctx, frame, e)? {
                Value::Node(n) => Value::Int(ctx.goodput_kbps(n)),
                Value::Null => Value::Int(0),
                other => return Err(format!("goodput(..) needs a node, got {other:?}")),
            },
            IrExpr::RingDist(a, b) => {
                let a = self.eval(ctx, frame, a)?.as_key_opt(ctx.addressing)?;
                let b = self.eval(ctx, frame, b)?.as_key_opt(ctx.addressing)?;
                Value::Int(key::dsl_ring_dist(a, b))
            }
            IrExpr::RingBetween(x, lo, hi) => {
                let x = self.eval(ctx, frame, x)?.as_key_opt(ctx.addressing)?;
                let lo = self.eval(ctx, frame, lo)?.as_key_opt(ctx.addressing)?;
                let hi = self.eval(ctx, frame, hi)?.as_key_opt(ctx.addressing)?;
                Value::Bool(key::dsl_ring_between(x, lo, hi))
            }
            IrExpr::Digit(k, i, base) => {
                let k = self.eval(ctx, frame, k)?.as_key_opt(ctx.addressing)?;
                let i = self.eval(ctx, frame, i)?.as_int()?;
                let base = self.eval(ctx, frame, base)?.as_int()?;
                Value::Int(key::dsl_digit(k, i, base))
            }
            IrExpr::PrefixLen(a, b) => {
                let a = self.eval(ctx, frame, a)?.as_key_opt(ctx.addressing)?;
                let b = self.eval(ctx, frame, b)?.as_key_opt(ctx.addressing)?;
                Value::Int(key::dsl_prefix_len(a, b))
            }
            IrExpr::OwnerOf(k, slot) => {
                let k = self.eval(ctx, frame, k)?.as_key_opt(ctx.addressing)?;
                match key::dsl_owner_of(k, &self.lists[*slot as usize], ctx.addressing) {
                    Some(n) => Value::Node(n),
                    None => Value::Null,
                }
            }
            IrExpr::Not(e) => Value::Bool(!self.eval(ctx, frame, e)?.truthy()),
            IrExpr::Neg(e) => Value::Int(-self.eval(ctx, frame, e)?.as_int()?),
            IrExpr::Bin(op, a, b) => {
                let a = self.eval(ctx, frame, a)?;
                let b = self.eval(ctx, frame, b)?;
                match op {
                    BinOp::And => Value::Bool(a.truthy() && b.truthy()),
                    BinOp::Or => Value::Bool(a.truthy() || b.truthy()),
                    BinOp::Eq => Value::Bool(values_eq(&a, &b)),
                    BinOp::Ne => Value::Bool(!values_eq(&a, &b)),
                    BinOp::Lt => Value::Bool(a.as_int()? < b.as_int()?),
                    BinOp::Gt => Value::Bool(a.as_int()? > b.as_int()?),
                    BinOp::Le => Value::Bool(a.as_int()? <= b.as_int()?),
                    BinOp::Ge => Value::Bool(a.as_int()? >= b.as_int()?),
                    // Key ± int wraps on the 2^32 ring (Chord's
                    // `my_key + pow2` finger targets).
                    BinOp::Add => match &a {
                        Value::Key(k) => Value::Key(key::dsl_key_add(*k, b.as_int()?)),
                        _ => Value::Int(a.as_int()? + b.as_int()?),
                    },
                    BinOp::Sub => match &a {
                        Value::Key(k) => Value::Key(key::dsl_key_add(*k, -b.as_int()?)),
                        _ => Value::Int(a.as_int()? - b.as_int()?),
                    },
                    BinOp::Mul => Value::Int(a.as_int()? * b.as_int()?),
                    BinOp::Div => {
                        let d = b.as_int()?;
                        if d == 0 {
                            return Err("division by zero".into());
                        }
                        Value::Int(a.as_int()? / d)
                    }
                    BinOp::Mod => {
                        let d = b.as_int()?;
                        if d == 0 {
                            return Err("modulo by zero".into());
                        }
                        Value::Int(a.as_int()? % d)
                    }
                }
            }
        })
    }
}
/// Decode one message's fields into a slot-ordered buffer (`out` must
/// be empty; pooled by the caller), drawing node-list buffers from
/// `node_pool`.
fn decode_fields_into(
    decl: &IrMessage,
    r: &mut WireRef,
    out: &mut Vec<Value>,
    node_pool: &mut Vec<Vec<NodeId>>,
) -> Result<(), String> {
    debug_assert!(out.is_empty());
    out.reserve(decl.fields.len());
    for f in &decl.fields {
        let v = match f.kind {
            FieldKind::Int => Value::Int(r.u64().map_err(|e| e.to_string())? as i64),
            FieldKind::Bool => Value::Bool(r.u8().map_err(|e| e.to_string())? != 0),
            FieldKind::Node => {
                let n = r.node().map_err(|e| e.to_string())?;
                if n == NodeId(u32::MAX) {
                    Value::Null
                } else {
                    Value::Node(n)
                }
            }
            FieldKind::Key => Value::Key(r.key().map_err(|e| e.to_string())?),
            FieldKind::Payload => Value::Bytes(r.bytes().map_err(|e| e.to_string())?),
            FieldKind::Nodes => {
                let mut l = node_pool.pop().unwrap_or_default();
                r.nodes_into(&mut l).map_err(|e| e.to_string())?;
                Value::List(l)
            }
        };
        out.push(v);
    }
    Ok(())
}

/// Move a single-use field value out of the frame (leaving `Null`; the
/// lowering guarantees no later read).
fn take_field(frame: &mut Frame, i: u16) -> Result<Value, String> {
    frame
        .fields
        .get_mut(i as usize)
        .map(|f| std::mem::replace(f, Value::Null))
        .ok_or_else(|| format!("unknown message field #{i}"))
}

fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Bool(y)) => (*x != 0) == *y,
        (Value::Bool(x), Value::Int(y)) => *x == (*y != 0),
        (Value::Node(n), Value::Key(k)) | (Value::Key(k), Value::Node(n)) => n.0 == k.0,
        _ => a == b,
    }
}

impl Agent for InterpretedAgent {
    fn protocol_id(&self) -> ProtocolId {
        self.core.proto
    }

    fn name(&self) -> &'static str {
        "interpreted"
    }

    fn init(&mut self, ctx: &mut Ctx) {
        // A layered spec at the bottom of a stack has nobody to tunnel
        // its sends through — every message would be silently dropped.
        debug_assert!(
            !self.core.layered || ctx.layer > 0,
            "'{}' uses '{}' and must be stacked above an agent serving that protocol \
             (see macedon_lang::registry::SpecRegistry)",
            self.ir.name,
            self.ir.uses.as_deref().unwrap_or_default()
        );
        // Auto-arm timers that declare a period (slot = engine timer id).
        for (id, t) in self.ir.timers.iter().enumerate() {
            if let Some(ms) = t.period_ms {
                ctx.timer_periodic(id as u16, Duration::from_millis(ms as u64));
            }
        }
        self.fire(ctx, At::Api(ApiKind::Init), Frame::default());
    }

    fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
        let kind = match &call {
            DownCall::Route { .. } => ApiKind::Route,
            DownCall::RouteIp { .. } => ApiKind::RouteIp,
            DownCall::Multicast { .. } => ApiKind::Multicast,
            DownCall::Anycast { .. } => ApiKind::Anycast,
            DownCall::Collect { .. } => ApiKind::Collect,
            DownCall::CreateGroup { .. } => ApiKind::CreateGroup,
            DownCall::Join { .. } => ApiKind::Join,
            DownCall::Leave { .. } => ApiKind::Leave,
            DownCall::Ext { .. } => ApiKind::Ext,
        };
        if !self.ir.tables.api[kind as usize].is_empty() {
            let mut f = Frame::default();
            match call {
                DownCall::Route { dest, payload, .. } => {
                    f.api_dest = Some(Value::Key(dest));
                    f.payload = Some(payload);
                }
                DownCall::RouteIp { dest, payload, .. } => {
                    f.api_dest = Some(Value::Node(dest));
                    f.payload = Some(payload);
                }
                DownCall::Multicast { group, payload, .. }
                | DownCall::Anycast { group, payload, .. }
                | DownCall::Collect { group, payload, .. } => {
                    f.api_group = Some(Value::Key(group));
                    f.payload = Some(payload);
                }
                DownCall::CreateGroup { group }
                | DownCall::Join { group }
                | DownCall::Leave { group } => {
                    f.api_group = Some(Value::Key(group));
                }
                DownCall::Ext { .. } => {}
            }
            self.fire(ctx, At::Api(kind), f);
            return;
        }
        if self.core.layered {
            // Unhandled API calls fall through to the base layer — the
            // stack relaying every pass-through agent performs.
            ctx.down(call);
            return;
        }
        // Lowest layer: `routeIP` is an engine service (direct
        // transmission); everything else the spec chose not to handle.
        match call {
            DownCall::RouteIp {
                dest,
                payload,
                priority,
            } => self.core.tunnel_send(ctx, dest, payload, priority),
            other => {
                if ctx.trace_on(TraceLevel::Low) {
                    ctx.trace(
                        TraceLevel::Low,
                        format!("{}: unhandled API call {other:?}", self.ir.name),
                    );
                }
            }
        }
    }

    fn upcall(&mut self, ctx: &mut Ctx, up: UpCall) {
        match up {
            UpCall::Deliver { src, from, payload } => {
                // Demultiplex by protocol id: our own tunneled messages
                // fire `recv` transitions, anything else continues up.
                if let Some((id, fields)) = self.core.decode_own(&self.ir, &payload) {
                    let frame = Frame {
                        fields,
                        from: Some(from),
                        ..Default::default()
                    };
                    self.fire(ctx, At::Recv(id), frame);
                } else {
                    ctx.up(UpCall::Deliver { src, from, payload });
                }
            }
            other => ctx.up(other),
        }
    }

    fn on_forward(&mut self, ctx: &mut Ctx, fwd: &mut ForwardInfo) {
        // An in-transit message of ours passing through the layer below:
        // fire the spec's `forward` transition, which may `quash();` it.
        // Peek only the 4-byte header first — most messages declare no
        // forward transition, and the common case must not pay a field
        // decode (or drop pooled buffers).
        let mut r = WireRef::new(&fwd.payload);
        let (Ok(proto), Ok(id)) = (r.u16(), r.u16()) else {
            return;
        };
        if proto != self.core.proto
            || id as usize >= self.ir.messages.len()
            || self.ir.tables.forward[id as usize].is_empty()
        {
            return;
        }
        let mut fields = std::mem::take(&mut self.core.fields_pool);
        if decode_fields_into(
            &self.ir.messages[id as usize],
            &mut r,
            &mut fields,
            &mut self.core.node_pool,
        )
        .is_err()
        {
            fields.clear();
            self.core.fields_pool = fields;
            return;
        }
        let frame = Frame {
            fields,
            from: Some(fwd.prev_hop),
            ..Default::default()
        };
        if self.fire(ctx, At::Forward(id), frame) {
            fwd.quash = true;
        }
    }

    fn forward_resolved(&mut self, ctx: &mut Ctx, fwd: ForwardInfo) {
        let Some((_dest, ch, bytes)) = self.core.pending_fwd.pop_front() else {
            debug_assert!(false, "forward_resolved without a pending send");
            return;
        };
        if !fwd.quash {
            // The layers above may have redirected the hop.
            ctx.send(fwd.next_hop, ch, bytes);
        }
    }

    fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes) {
        debug_assert!(
            !self.core.layered,
            "layered interpreted agents never touch the wire"
        );
        let mut r = WireRef::new(&msg);
        let (Ok(proto), Ok(id)) = (r.u16(), r.u16()) else {
            return;
        };
        if proto == TUNNEL_PROTOCOL {
            // A `routeIP` frame tunneled on behalf of the layers above:
            // unwrap and deliver up.
            let Ok((src, payload)) = read_tunnel_ref(&mut r) else {
                return;
            };
            ctx.up(UpCall::Deliver { src, from, payload });
            return;
        }
        if proto != self.core.proto || id as usize >= self.ir.messages.len() {
            return;
        }
        let mut fields = std::mem::take(&mut self.core.fields_pool);
        if let Err(e) = decode_fields_into(
            &self.ir.messages[id as usize],
            &mut r,
            &mut fields,
            &mut self.core.node_pool,
        ) {
            if ctx.trace_on(TraceLevel::Low) {
                ctx.trace(
                    TraceLevel::Low,
                    format!("{}: decode error: {e}", self.ir.name),
                );
            }
            fields.clear();
            self.core.fields_pool = fields;
            return;
        }
        let frame = Frame {
            fields,
            from: Some(from),
            ..Default::default()
        };
        self.fire(ctx, At::Recv(id), frame);
    }

    fn timer(&mut self, ctx: &mut Ctx, timer: u16) {
        if (timer as usize) >= self.ir.timers.len() {
            return;
        }
        self.fire(ctx, At::Timer(timer), Frame::default());
    }

    fn neighbor_failed(&mut self, ctx: &mut Ctx, peer: NodeId) {
        // Engine convention: drop the peer from fail_detect lists, then
        // fire the error transition.
        for (slot, decl) in self.ir.lists.iter().enumerate() {
            if decl.fail_detect {
                self.core.lists[slot].retain(|&n| n != peer);
            }
        }
        let frame = Frame {
            from: Some(peer),
            ..Default::default()
        };
        self.fire(ctx, At::Error, frame);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use macedon_core::{NullApp, Time, World, WorldConfig};
    use macedon_net::topology::{canned, LinkSpec};

    /// A toy protocol: everyone joins a star around the bootstrap.
    const STAR: &str = r#"
        protocol star;
        addressing hash;
        states { joined; }
        neighbor_types { member 64 { } }
        transports { TCP CTRL; }
        messages {
            CTRL hello { node who; }
            CTRL welcome { }
        }
        state_variables {
            fail_detect member members;
            int hellos;
        }
        transitions {
            init API init {
                if (bootstrap != null) {
                    hello(bootstrap, me);
                } else {
                    state_change(joined);
                }
            }
            any recv hello {
                hellos = hellos + 1;
                neighbor_add(members, field(who));
                welcome(from);
            }
            init recv welcome {
                neighbor_add(members, from);
                state_change(joined);
            }
        }
    "#;

    fn star_world(n: usize) -> (World, Vec<NodeId>, Arc<Spec>) {
        let spec = Arc::new(compile(STAR).unwrap());
        let topo = canned::star(n, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut cfg = WorldConfig {
            seed: 5,
            ..Default::default()
        };
        cfg.channels = channel_table(&spec);
        let mut w = World::new(topo, cfg);
        for (i, &h) in hosts.iter().enumerate() {
            let agent = InterpretedAgent::new(spec.clone(), (i > 0).then(|| hosts[0]));
            w.spawn_at(
                Time::from_millis(i as u64 * 10),
                h,
                vec![Box::new(agent)],
                Box::new(NullApp),
            );
        }
        (w, hosts, spec)
    }

    fn agent_of(w: &World, n: NodeId) -> &InterpretedAgent {
        w.stack(n)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap()
    }

    #[test]
    fn interpreted_protocol_runs_end_to_end() {
        let (mut w, hosts, _) = star_world(6);
        w.run_until(Time::from_secs(10));
        for &h in &hosts {
            assert_eq!(agent_of(&w, h).state(), "joined", "{h:?}");
        }
        // The bootstrap heard from everyone.
        let boot = agent_of(&w, hosts[0]);
        assert_eq!(boot.var("hellos"), Some(&Value::Int(5)));
        assert_eq!(boot.list("members").unwrap().len(), 5);
    }

    #[test]
    fn transitions_scoped_by_state() {
        // `init recv welcome` must not fire once joined.
        let (mut w, hosts, _) = star_world(3);
        w.run_until(Time::from_secs(10));
        let a = agent_of(&w, hosts[1]);
        assert_eq!(a.state(), "joined");
        // Joined members got exactly one welcome each (scoped transition
        // consumed it once).
        assert_eq!(a.list("members").unwrap().len(), 1);
    }

    #[test]
    fn shared_ir_instance_across_agents() {
        // The registry path: every node executes the same Arc<IrSpec>.
        let spec = Arc::new(compile(STAR).unwrap());
        let ir = Arc::new(IrSpec::lower(&spec).unwrap());
        let a = InterpretedAgent::from_ir(ir.clone(), None);
        let b = InterpretedAgent::from_ir(ir.clone(), Some(NodeId(1)));
        assert!(Arc::ptr_eq(a.ir(), b.ir()));
        assert_eq!(Arc::strong_count(&ir), 3);
        assert_eq!(a.state(), "init");
    }

    #[test]
    fn protocol_id_is_stable_and_safe() {
        let a = protocol_id_of("overcast");
        let b = protocol_id_of("overcast");
        assert_eq!(a, b);
        assert_ne!(protocol_id_of("x"), 0xFFFF);
        assert_ne!(protocol_id_of("x"), 0xFFFE);
    }

    #[test]
    fn channel_table_mirrors_transports() {
        let spec = compile(STAR).unwrap();
        let table = channel_table(&spec);
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].name, "CTRL");
        assert_eq!(table[0].kind, TransportKind::Tcp);
    }

    #[test]
    fn value_semantics() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Null.truthy());
        assert!(values_eq(&Value::Int(1), &Value::Bool(true)));
        assert!(values_eq(
            &Value::Node(NodeId(5)),
            &Value::Key(MacedonKey(5))
        ));
        assert!(!values_eq(&Value::Int(2), &Value::Int(3)));
    }

    /// A trivial lowest layer owning one transport; it serves `routeIP`
    /// natively and has no behavior of its own.
    const BASE: &str = r#"
        protocol base;
        addressing hash;
        transports { TCP CTRL; }
    "#;

    /// The STAR protocol re-expressed as a layer above `base`: sends
    /// tunnel through the base's API instead of touching the wire.
    const STAR_OVER_BASE: &str = r#"
        protocol starup uses base;
        addressing hash;
        states { joined; }
        neighbor_types { member 64 { } }
        messages {
            hello { node who; }
            welcome { }
        }
        state_variables {
            member members;
            int hellos;
        }
        transitions {
            init API init {
                if (bootstrap != null) {
                    hello(bootstrap, me);
                } else {
                    state_change(joined);
                }
            }
            any recv hello {
                hellos = hellos + 1;
                neighbor_add(members, field(who));
                welcome(from);
            }
            init recv welcome {
                neighbor_add(members, from);
                state_change(joined);
            }
        }
    "#;

    #[test]
    fn layered_spec_runs_above_interpreted_base() {
        let base = Arc::new(compile(BASE).unwrap());
        let upper = Arc::new(compile(STAR_OVER_BASE).unwrap());
        let topo = canned::star(5, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut cfg = WorldConfig {
            seed: 9,
            ..Default::default()
        };
        cfg.channels = channel_table(&base);
        let mut w = World::new(topo, cfg);
        for (i, &h) in hosts.iter().enumerate() {
            let boot = (i > 0).then(|| hosts[0]);
            w.spawn_at(
                Time::from_millis(i as u64 * 10),
                h,
                vec![
                    Box::new(InterpretedAgent::new(base.clone(), boot)),
                    Box::new(InterpretedAgent::new(upper.clone(), boot)),
                ],
                Box::new(NullApp),
            );
        }
        w.run_until(Time::from_secs(10));
        for &h in &hosts {
            let a: &InterpretedAgent = w
                .stack(h)
                .unwrap()
                .agent(1)
                .as_any()
                .downcast_ref()
                .unwrap();
            assert_eq!(a.state(), "joined", "{h:?}");
        }
        let boot: &InterpretedAgent = w
            .stack(hosts[0])
            .unwrap()
            .agent(1)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert_eq!(boot.var("hellos"), Some(&Value::Int(4)));
        assert_eq!(boot.list("members").unwrap().len(), 4);
    }

    #[test]
    fn periodic_timer_autoarms() {
        const TICKER: &str = r#"
            protocol ticker;
            addressing ip;
            transports { UDP U; }
            messages { U noop { } }
            state_variables { timer tick 100; int n; }
            transitions {
                any timer tick { n = n + 1; }
            }
        "#;
        let spec = Arc::new(compile(TICKER).unwrap());
        let topo = canned::star(1, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let cfg = WorldConfig {
            channels: channel_table(&spec),
            ..Default::default()
        };
        let mut w = World::new(topo, cfg);
        w.spawn_at(
            Time::ZERO,
            hosts[0],
            vec![Box::new(InterpretedAgent::new(spec, None))],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(1));
        let a = agent_of(&w, hosts[0]);
        let Some(&Value::Int(n)) = a.var("n") else {
            panic!()
        };
        assert!((8..=10).contains(&n), "ticked ~10 times in 1s, got {n}");
    }

    /// Peers blast traffic at each other; a timer snapshots the engine
    /// measurements through the `rtt()`/`goodput()` builtins.
    const METERED: &str = r#"
        protocol metered;
        addressing hash;
        states { running; }
        neighbor_types { peer 4 { } }
        transports { TCP CTRL; }
        messages { CTRL blast { int pad1; int pad2; int pad3; } }
        state_variables {
            peer peers;
            timer tick 100;
            timer snap 2000;
            node target;
            int last_rtt;
            int last_goodput;
        }
        transitions {
            init API init {
                if (bootstrap != null) { target = bootstrap; }
                state_change(running);
            }
            running timer tick {
                if (target != null) { blast(target, 1, 2, 3); }
            }
            any recv blast { }
            running timer snap {
                last_rtt = rtt(target);
                last_goodput = goodput(from);
                if (target != null) { last_goodput = goodput(target); }
            }
        }
    "#;

    #[test]
    fn rtt_and_goodput_builtins_read_engine_measurements() {
        let spec = Arc::new(compile(METERED).unwrap());
        let topo = canned::two_hosts(LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let cfg = WorldConfig {
            seed: 77,
            channels: channel_table(&spec),
            ..Default::default()
        };
        let mut w = World::new(topo, cfg);
        // hosts[1] blasts at hosts[0]; hosts[0] (bootstrap-less) idles.
        w.spawn_at(
            Time::ZERO,
            hosts[0],
            vec![Box::new(InterpretedAgent::new(
                spec.clone(),
                Some(hosts[1]),
            ))],
            Box::new(NullApp),
        );
        w.spawn_at(
            Time::ZERO,
            hosts[1],
            vec![Box::new(InterpretedAgent::new(
                spec.clone(),
                Some(hosts[0]),
            ))],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(10));
        let a = agent_of(&w, hosts[0]);
        // The sender sees a sub-5ms LAN RTT (>= 1 ms after rounding may
        // floor to 0, so only assert the goodput side is positive and
        // the rtt is small).
        let Some(&Value::Int(rtt)) = a.var("last_rtt") else {
            panic!()
        };
        assert!((0..50).contains(&rtt), "LAN rtt_ms, got {rtt}");
        let Some(&Value::Int(gp)) = a.var("last_goodput") else {
            panic!()
        };
        // 28-byte messages every 100 ms ≈ 2.2 kbit/s inbound.
        assert!(gp > 0, "goodput measured, got {gp}");
        assert!(gp < 1_000, "sane kbps magnitude, got {gp}");
    }

    #[test]
    fn foreach_loop_variable_restores_outer_binding() {
        // The loop variable shadows a declared scalar; after the loop,
        // the scalar's own value is visible again (AST semantics, now
        // expressed by dedicated slots).
        const SHADOW: &str = r#"
            protocol shadow;
            addressing ip;
            neighbor_types { kid 8 { } }
            transports { TCP C; }
            messages { C ping { } }
            state_variables { kid kids; node n; int count; }
            transitions {
                any API init {
                    n = me;
                    neighbor_add(kids, me);
                    foreach (n in kids) { count = count + 1; }
                    if (n == me) { count = count + 100; }
                }
            }
        "#;
        let spec = Arc::new(compile(SHADOW).unwrap());
        let topo = canned::star(2, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let cfg = WorldConfig {
            channels: channel_table(&spec),
            ..Default::default()
        };
        let mut w = World::new(topo, cfg);
        w.spawn_at(
            Time::ZERO,
            hosts[1],
            vec![Box::new(InterpretedAgent::new(spec, None))],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(1));
        let a: &InterpretedAgent = w
            .stack(hosts[1])
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        // `neighbor_add(kids, me)` filters nothing here (me is allowed
        // in adds), so the loop ran once; afterwards `n` reads the
        // declared scalar (me) again: 1 + 100.
        assert_eq!(a.var("count"), Some(&Value::Int(101)));
    }

    #[test]
    fn key_builtins_evaluate_via_shared_helpers() {
        // Ip addressing makes keys the raw node ids, so every expected
        // value is computable from the host list with the same
        // macedon_core::key helpers the interpreter calls.
        const KEYS: &str = r#"
            protocol keys;
            addressing ip;
            neighbor_types { succ 4 { } }
            transports { TCP C; }
            messages { C nop { } }
            state_variables {
                succ ring;
                key target;
                int dist; bool between; int dig; int plen; node owner;
            }
            transitions {
                any API init {
                    if (bootstrap != null) { neighbor_add(ring, bootstrap); }
                    target = my_key + 10;
                    dist = ring_dist(me, bootstrap);
                    between = ring_between(bootstrap, my_key, my_key);
                    dig = digit(my_key, 7, 16);
                    plen = prefix_len(my_key, target);
                    owner = owner_of(target, ring);
                }
            }
        "#;
        let spec = Arc::new(compile(KEYS).unwrap());
        let topo = canned::star(3, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let cfg = WorldConfig {
            addressing: Addressing::Ip,
            channels: channel_table(&spec),
            ..Default::default()
        };
        let mut w = World::new(topo, cfg);
        for (i, &h) in hosts.iter().enumerate() {
            let agent = InterpretedAgent::new(spec.clone(), (i > 0).then(|| hosts[0]));
            w.spawn_at(Time::ZERO, h, vec![Box::new(agent)], Box::new(NullApp));
        }
        w.run_until(Time::from_secs(1));

        let boot_key = MacedonKey(hosts[0].0);
        let a = agent_of(&w, hosts[1]);
        let me_key = MacedonKey(hosts[1].0);
        let target = key::dsl_key_add(me_key, 10);
        assert_eq!(
            a.var("dist"),
            Some(&Value::Int(key::dsl_ring_dist(
                Some(me_key),
                Some(boot_key)
            )))
        );
        // Degenerate interval (lo == hi) is the full ring.
        assert_eq!(a.var("between"), Some(&Value::Bool(true)));
        assert_eq!(a.var("dig"), Some(&Value::Int((hosts[1].0 & 0xF) as i64)));
        assert_eq!(
            a.var("plen"),
            Some(&Value::Int(key::dsl_prefix_len(Some(me_key), Some(target))))
        );
        assert_eq!(a.var("target"), Some(&Value::Key(target)));
        // The only ring member is the bootstrap, so it owns everything.
        assert_eq!(a.var("owner"), Some(&Value::Node(hosts[0])));

        // Without a bootstrap the null-operand sentinels apply: RING
        // distance, false interval test, null owner.
        let b = agent_of(&w, hosts[0]);
        assert_eq!(b.var("dist"), Some(&Value::Int(key::RING as i64)));
        assert_eq!(b.var("between"), Some(&Value::Bool(false)));
        assert_eq!(b.var("owner"), Some(&Value::Null));
    }
}
