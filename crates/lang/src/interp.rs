//! The specification interpreter: runs a compiled [`Spec`] as a live
//! [`macedon_core::Agent`].
//!
//! The paper's `macedon` tool translates specs to C++ compiled against
//! the engine. This interpreter is the equivalent executable semantics —
//! the same FSM dispatch (transition = (event, state-scope) → actions),
//! the same primitives (§3.3), over the same engine — without a compile
//! step, which lets the test suite cross-validate the bundled specs
//! against the hand-written agents in `macedon-overlays`.
//!
//! Interpretation covers the whole roster, layered specs included. An
//! [`InterpretedAgent`] is a first-class citizen of the engine's
//! multi-layer [`macedon_core::Stack`]:
//!
//! * A **lowest-layer** spec (no `uses`) owns the transports: message
//!   sends go straight to the wire, `routeIP` downcalls from layers
//!   above are served natively by tunneling the payload to the target
//!   host, and sends that carry tunneled upper-layer data are vetted
//!   through the engine's `forward` query so the layers above may
//!   redirect or quash them — exactly what native routers do.
//! * A **layered** spec (`uses base`) never touches the wire: message
//!   sends become `route`/`routeIP` downcalls on the layer below
//!   (destination `null` routes toward the message's first key field),
//!   incoming messages arrive as `deliver` upcalls demultiplexed by
//!   protocol id, `forward <msg>` transitions fire from the layer
//!   below's forward queries (with `quash();` available to swallow the
//!   message), and `downcall(<api>, ..)` statements invoke the base
//!   layer's API. API calls the spec declares no transition for are
//!   relayed down the stack unchanged.
//!
//! Interpreted and native agents compose freely in one stack (e.g. a
//! native Pastry under an interpreted `scribe.mac`), because both speak
//! the same [`macedon_core::DownCall`]/[`macedon_core::UpCall`] API.
//! Use [`crate::registry::SpecRegistry`] to resolve a spec's `uses`
//! chain and assemble the ready-to-run stack.

use crate::ast::*;
use macedon_core::{
    Agent, Bytes, ChannelId, ChannelSpec, Ctx, DownCall, Duration, ForwardInfo, MacedonKey, NodeId,
    ProtocolId, TraceLevel, TransportKind, UpCall, WireReader, WireWriter, DEFAULT_PRIORITY,
};
use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Pseudo protocol id framing payloads a lowest layer tunnels on behalf
/// of the layers above (the native engine's `macedon_routeIP` service).
/// Re-exported from the engine: the interpreter and the generated agents
/// share one frame format ([`macedon_core::wire::tunnel_frame`]) so they
/// can tunnel for each other inside mixed stacks.
pub use macedon_core::TUNNEL_PROTOCOL;

/// Runtime values of the action language.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Int(i64),
    Bool(bool),
    Node(NodeId),
    Key(MacedonKey),
    Bytes(Bytes),
    List(Vec<NodeId>),
    Null,
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Bool(b) => *b,
            Value::Node(_) | Value::Key(_) | Value::List(_) => true,
            Value::Bytes(b) => !b.is_empty(),
            Value::Null => false,
        }
    }

    fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(format!("expected int, got {other:?}")),
        }
    }

    fn as_node(&self) -> Result<NodeId, String> {
        match self {
            Value::Node(n) => Ok(*n),
            other => Err(format!("expected node, got {other:?}")),
        }
    }
}

/// Per-transition bindings (decoded message fields, `from`, `payload`).
#[derive(Default)]
struct Frame {
    fields: HashMap<String, Value>,
    from: Option<NodeId>,
    payload: Option<Bytes>,
    api_args: HashMap<&'static str, Value>,
    /// Set by `quash();` inside a `forward` transition.
    quash: bool,
}

enum Flow {
    Continue,
    Return,
}

/// Derive the channel table a world must be built with to host this spec.
pub fn channel_table(spec: &Spec) -> Vec<ChannelSpec> {
    spec.transports
        .iter()
        .map(|t| {
            let kind = match t.kind {
                TransportKindDecl::Tcp => TransportKind::Tcp,
                TransportKindDecl::Udp => TransportKind::Udp,
                TransportKindDecl::Swp => TransportKind::Swp { window: 16 },
            };
            ChannelSpec::new(t.name.clone(), kind)
        })
        .collect()
}

/// Well-known protocol id derived from the protocol name.
pub fn protocol_id_of(name: &str) -> ProtocolId {
    let h = macedon_core::sha1::sha1_u32(name.as_bytes()) as u16;
    // Stay clear of reserved values (engine heartbeat, app wrapper,
    // interpreter tunnel).
    match h {
        0xFFFD..=0xFFFF => 0x7FFF,
        v => v,
    }
}

/// An interpreted protocol instance.
pub struct InterpretedAgent {
    spec: Arc<Spec>,
    proto: ProtocolId,
    bootstrap: Option<NodeId>,
    /// Has a `uses` base: sends become downcalls, receives come as
    /// `deliver` upcalls, and the wire is never touched directly.
    layered: bool,
    state: String,
    vars: HashMap<String, Value>,
    lists: HashMap<String, Vec<NodeId>>,
    list_max: HashMap<String, usize>,
    fail_detect: HashSet<String>,
    timer_ids: HashMap<String, u16>,
    timer_names: Vec<String>,
    msg_ids: HashMap<String, u16>,
    msg_channel: HashMap<String, ChannelId>,
    /// Encoded sends awaiting their forward-query verdict, FIFO (the
    /// dispatcher resolves queries in emission order).
    pending_fwd: VecDeque<(NodeId, ChannelId, Bytes)>,
    /// Transitions fired, per trigger kind (observability / tests).
    pub transitions_fired: u64,
}

impl InterpretedAgent {
    /// Instantiate a compiled spec as one layer of a stack. `bootstrap`
    /// is bound to the variable `bootstrap` inside transitions (`Null`
    /// for the designated root). Specs with a `uses` clause must be
    /// stacked above an agent serving their base protocol's API —
    /// interpreted or native; [`crate::registry::SpecRegistry`] builds
    /// whole chains.
    pub fn new(spec: Arc<Spec>, bootstrap: Option<NodeId>) -> InterpretedAgent {
        let layered = spec.uses.is_some();
        let mut vars = HashMap::new();
        for (name, v) in &spec.constants {
            vars.insert(name.clone(), Value::Int(*v));
        }
        let mut lists = HashMap::new();
        let mut list_max = HashMap::new();
        let mut fail_detect = HashSet::new();
        let mut timer_ids = HashMap::new();
        let mut timer_names = Vec::new();
        for v in &spec.state_vars {
            match v {
                StateVar::Neighbor {
                    ty,
                    name,
                    fail_detect: fd,
                } => {
                    let max = spec
                        .neighbor_types
                        .iter()
                        .find(|n| &n.name == ty)
                        .map(|n| n.max)
                        .unwrap_or(1);
                    lists.insert(name.clone(), Vec::new());
                    list_max.insert(name.clone(), max);
                    if *fd {
                        fail_detect.insert(name.clone());
                    }
                }
                StateVar::Timer { name, .. } => {
                    let id = timer_names.len() as u16;
                    timer_ids.insert(name.clone(), id);
                    timer_names.push(name.clone());
                }
                StateVar::Scalar { ty, name } => {
                    let init = match ty {
                        TypeName::Int => Value::Int(0),
                        TypeName::Bool => Value::Bool(false),
                        TypeName::Node => Value::Null,
                        TypeName::Key => Value::Key(MacedonKey(0)),
                        TypeName::Payload => Value::Null,
                        TypeName::Neighbor(_) => Value::Null,
                    };
                    vars.insert(name.clone(), init);
                }
            }
        }
        let mut msg_ids = HashMap::new();
        let mut msg_channel = HashMap::new();
        for (i, m) in spec.messages.iter().enumerate() {
            msg_ids.insert(m.name.clone(), i as u16);
            let ch = m
                .transport
                .as_ref()
                .and_then(|t| spec.transports.iter().position(|d| &d.name == t))
                .unwrap_or(0);
            msg_channel.insert(m.name.clone(), ChannelId(ch as u16));
        }
        let proto = protocol_id_of(&spec.name);
        InterpretedAgent {
            spec,
            proto,
            bootstrap,
            layered,
            state: "init".to_string(),
            vars,
            lists,
            list_max,
            fail_detect,
            timer_ids,
            timer_names,
            msg_ids,
            msg_channel,
            pending_fwd: VecDeque::new(),
            transitions_fired: 0,
        }
    }

    pub fn state(&self) -> &str {
        &self.state
    }

    pub fn list(&self, name: &str) -> Option<&Vec<NodeId>> {
        self.lists.get(name)
    }

    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    // ---- dispatch --------------------------------------------------------

    /// Does any transition (in any state scope) answer this trigger?
    fn has_transition(&self, trigger: &Trigger) -> bool {
        self.spec.transitions.iter().any(|t| &t.trigger == trigger)
    }

    /// Fire the transition matching `trigger` in the current state, if
    /// any; returns the frame's quash flag (only `forward` transitions
    /// set it).
    fn fire(&mut self, ctx: &mut Ctx, trigger: &Trigger, mut frame: Frame) -> bool {
        let spec = self.spec.clone();
        let Some(t) = spec
            .transitions
            .iter()
            .find(|t| &t.trigger == trigger && t.scope.matches(&self.state))
        else {
            ctx.trace(
                TraceLevel::High,
                format!(
                    "{}: no transition for {trigger:?} in state {}",
                    spec.name, self.state
                ),
            );
            return false;
        };
        if t.locking == LockingOpt::Read {
            ctx.locking_read();
        }
        self.transitions_fired += 1;
        if let Err(e) = self.exec_block(ctx, &mut frame, &t.body) {
            ctx.trace(
                TraceLevel::Low,
                format!("{}: runtime error: {e}", spec.name),
            );
            debug_assert!(false, "interpreter runtime error: {e}");
        }
        frame.quash
    }

    fn exec_block(
        &mut self,
        ctx: &mut Ctx,
        frame: &mut Frame,
        stmts: &[Stmt],
    ) -> Result<Flow, String> {
        for s in stmts {
            match self.exec(ctx, frame, s)? {
                Flow::Return => return Ok(Flow::Return),
                Flow::Continue => {}
            }
        }
        Ok(Flow::Continue)
    }

    fn exec(&mut self, ctx: &mut Ctx, frame: &mut Frame, stmt: &Stmt) -> Result<Flow, String> {
        match stmt {
            Stmt::If { cond, then, els } => {
                if self.eval(ctx, frame, cond)?.truthy() {
                    self.exec_block(ctx, frame, then)
                } else {
                    self.exec_block(ctx, frame, els)
                }
            }
            Stmt::Return => Ok(Flow::Return),
            Stmt::StateChange(s) => {
                ctx.trace(
                    TraceLevel::High,
                    format!("{}: {} -> {s}", self.spec.name, self.state),
                );
                self.state = s.clone();
                Ok(Flow::Continue)
            }
            Stmt::TimerResched(name, e) => {
                let ms = self.eval(ctx, frame, e)?.as_int()?;
                let id = *self
                    .timer_ids
                    .get(name)
                    .ok_or_else(|| format!("timer {name}?"))?;
                ctx.timer_set(id, Duration::from_millis(ms.max(0) as u64));
                Ok(Flow::Continue)
            }
            Stmt::TimerCancel(name) => {
                let id = *self
                    .timer_ids
                    .get(name)
                    .ok_or_else(|| format!("timer {name}?"))?;
                ctx.timer_cancel(id);
                Ok(Flow::Continue)
            }
            Stmt::NeighborAdd(list, e) => {
                let node = self.eval(ctx, frame, e)?.as_node()?;
                let max = *self.list_max.get(list).unwrap_or(&usize::MAX);
                let fd = self.fail_detect.contains(list);
                let l = self
                    .lists
                    .get_mut(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                if !l.contains(&node) && l.len() < max {
                    l.push(node);
                    if fd {
                        ctx.monitor(node);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::NeighborRemove(list, e) => {
                let node = self.eval(ctx, frame, e)?.as_node()?;
                let fd = self.fail_detect.contains(list);
                let l = self
                    .lists
                    .get_mut(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                l.retain(|&n| n != node);
                if fd {
                    ctx.unmonitor(node);
                }
                Ok(Flow::Continue)
            }
            Stmt::NeighborClear(list) => {
                let fd = self.fail_detect.contains(list);
                let l = self
                    .lists
                    .get_mut(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                for n in l.drain(..) {
                    if fd {
                        ctx.unmonitor(n);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Send {
                message,
                dest,
                args,
            } => {
                let dest = self.eval(ctx, frame, dest)?;
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(ctx, frame, a)?);
                }
                self.send_message(ctx, frame.from, message, dest, values)?;
                Ok(Flow::Continue)
            }
            Stmt::Quash => {
                frame.quash = true;
                Ok(Flow::Continue)
            }
            Stmt::DownCallApi { api, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(ctx, frame, a)?);
                }
                let call = build_downcall(api, values)?;
                ctx.down(call);
                Ok(Flow::Continue)
            }
            Stmt::UpcallNotify(list, e) => {
                let ty = self.eval(ctx, frame, e)?.as_int()? as u32;
                let l = self
                    .lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                ctx.up(UpCall::Notify {
                    nbr_type: ty,
                    neighbors: l.clone(),
                });
                Ok(Flow::Continue)
            }
            Stmt::Deliver { src, payload } => {
                let src = match self.eval(ctx, frame, src)? {
                    Value::Key(k) => k,
                    Value::Node(n) => MacedonKey(n.0),
                    other => return Err(format!("deliver src must be key/node, got {other:?}")),
                };
                let payload = match self.eval(ctx, frame, payload)? {
                    Value::Bytes(b) => b,
                    Value::Null => Bytes::new(),
                    other => return Err(format!("deliver payload must be bytes, got {other:?}")),
                };
                let from = frame.from.unwrap_or(ctx.me);
                ctx.up(UpCall::Deliver { src, from, payload });
                Ok(Flow::Continue)
            }
            Stmt::Monitor(e) => {
                let n = self.eval(ctx, frame, e)?.as_node()?;
                ctx.monitor(n);
                Ok(Flow::Continue)
            }
            Stmt::Unmonitor(e) => {
                let n = self.eval(ctx, frame, e)?.as_node()?;
                ctx.unmonitor(n);
                Ok(Flow::Continue)
            }
            Stmt::ForEach { var, list, body } => {
                let snapshot = self
                    .lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?
                    .clone();
                let saved = self.vars.get(var).cloned();
                for n in snapshot {
                    self.vars.insert(var.clone(), Value::Node(n));
                    if let Flow::Return = self.exec_block(ctx, frame, body)? {
                        // restore before propagating
                        match &saved {
                            Some(v) => self.vars.insert(var.clone(), v.clone()),
                            None => self.vars.remove(var),
                        };
                        return Ok(Flow::Return);
                    }
                }
                match saved {
                    Some(v) => self.vars.insert(var.clone(), v),
                    None => self.vars.remove(var),
                };
                Ok(Flow::Continue)
            }
            Stmt::Assign(name, e) => {
                let v = self.eval(ctx, frame, e)?;
                if self.lists.contains_key(name) {
                    // Whole-list assignment (e.g. `brothers = field(sibs);`)
                    // replaces contents; own id is filtered out.
                    let Value::List(mut ns) = v else {
                        return Err(format!("assigning non-list to neighbor list '{name}'"));
                    };
                    ns.retain(|&n| n != ctx.me);
                    let max = *self.list_max.get(name).unwrap_or(&usize::MAX);
                    ns.truncate(max);
                    let fd = self.fail_detect.contains(name);
                    let l = self.lists.get_mut(name).expect("checked");
                    if fd {
                        for n in l.iter() {
                            ctx.unmonitor(*n);
                        }
                        for n in &ns {
                            ctx.monitor(*n);
                        }
                    }
                    *l = ns;
                } else {
                    self.vars.insert(name.clone(), v);
                }
                Ok(Flow::Continue)
            }
            Stmt::Trace(e) => {
                let v = self.eval(ctx, frame, e)?;
                ctx.trace(TraceLevel::Med, format!("{}: trace {v:?}", self.spec.name));
                Ok(Flow::Continue)
            }
        }
    }

    fn send_message(
        &mut self,
        ctx: &mut Ctx,
        from: Option<NodeId>,
        message: &str,
        dest: Value,
        values: Vec<Value>,
    ) -> Result<(), String> {
        let id = *self
            .msg_ids
            .get(message)
            .ok_or_else(|| format!("message {message}?"))?;
        let decl = self.spec.messages[id as usize].clone();
        if values.len() != decl.fields.len() {
            return Err(format!(
                "message {message} takes {} fields, got {}",
                decl.fields.len(),
                values.len()
            ));
        }
        let mut w = WireWriter::new();
        w.u16(self.proto).u16(id);
        for (f, v) in decl.fields.iter().zip(&values) {
            match (&f.ty, v) {
                (TypeName::Int, v) => {
                    w.u64(v.as_int()? as u64);
                }
                (TypeName::Bool, v) => {
                    w.u8(v.truthy() as u8);
                }
                (TypeName::Node, Value::Node(n)) => {
                    w.node(*n);
                }
                (TypeName::Node, Value::Null) => {
                    w.node(NodeId(u32::MAX));
                }
                (TypeName::Key, Value::Key(k)) => {
                    w.key(*k);
                }
                (TypeName::Key, Value::Node(n)) => {
                    w.key(MacedonKey(n.0));
                }
                (TypeName::Payload, Value::Bytes(b)) => {
                    w.bytes(b);
                }
                (TypeName::Payload, Value::Null) => {
                    w.bytes(&[]);
                }
                (TypeName::Neighbor(_), Value::List(ns)) => {
                    w.nodes(ns);
                }
                (ty, v) => return Err(format!("field {}: cannot encode {v:?} as {ty:?}", f.name)),
            }
        }
        let bytes = w.finish();

        // First key field, if any: the routing destination when the
        // message addresses a key rather than a host.
        let key_of = |fields: &[Field], values: &[Value]| {
            fields
                .iter()
                .zip(values)
                .find_map(|(f, v)| match (&f.ty, v) {
                    (TypeName::Key, Value::Key(k)) => Some(*k),
                    (TypeName::Key, Value::Node(n)) => Some(MacedonKey(n.0)),
                    _ => None,
                })
        };

        if self.layered {
            // Layered specs never touch the wire: sends tunnel through
            // the base layer's API. A node destination is a direct
            // `routeIP`; `null` routes toward the message's first key
            // field (Scribe's `subscribe(null, group, me)` idiom).
            let call = match dest {
                Value::Node(n) => DownCall::RouteIp {
                    dest: n,
                    payload: bytes,
                    priority: DEFAULT_PRIORITY,
                },
                Value::Key(k) => DownCall::Route {
                    dest: k,
                    payload: bytes,
                    priority: DEFAULT_PRIORITY,
                },
                Value::Null => {
                    let Some(k) = key_of(&decl.fields, &values) else {
                        return Err(format!(
                            "message {message}: null destination needs a key field to route toward"
                        ));
                    };
                    DownCall::Route {
                        dest: k,
                        payload: bytes,
                        priority: DEFAULT_PRIORITY,
                    }
                }
                other => return Err(format!("message dest must be node/key, got {other:?}")),
            };
            ctx.down(call);
            return Ok(());
        }

        let dest = match dest {
            Value::Node(n) => n,
            Value::Null => return Ok(()), // sending to nobody is a no-op
            other => return Err(format!("message dest must be a node, got {other:?}")),
        };
        let ch = self.msg_channel[message];
        // A send carrying tunneled upper-layer data is an in-transit
        // forwarding decision: when layers are stacked above, vet it
        // through the engine's forward query (they may redirect or
        // quash) and transmit in `forward_resolved`, as native routers
        // do. Single-layer stacks transmit directly.
        let tunneled = decl
            .fields
            .iter()
            .zip(&values)
            .find_map(|(f, v)| match (&f.ty, v) {
                (TypeName::Payload, Value::Bytes(b)) if !b.is_empty() => Some(b.clone()),
                _ => None,
            });
        match tunneled {
            Some(payload) if !ctx.is_top_layer() => {
                let dest_key = key_of(&decl.fields, &values).unwrap_or(ctx.my_key);
                self.pending_fwd.push_back((dest, ch, bytes));
                ctx.forward_query(ForwardInfo {
                    src: ctx.my_key,
                    dest: dest_key,
                    prev_hop: from.unwrap_or(ctx.me),
                    next_hop: dest,
                    payload,
                    quash: false,
                });
            }
            _ => ctx.send(dest, ch, bytes),
        }
        Ok(())
    }

    /// Serve a `routeIP` downcall from the layers above natively: frame
    /// the payload and transmit it straight to the target host (the
    /// engine service the paper's `macedon_routeIP` provides).
    ///
    /// The frame rides the spec's first declared transport (channel 0 —
    /// reliable in every bundled spec), because a `RouteIp` call carries
    /// no transport class; this mirrors the native agents, which also
    /// pin `routeIP` traffic to one configured channel and send layered
    /// messages at `DEFAULT_PRIORITY`. Mapping an upper layer's declared
    /// message classes onto base-layer channels is future work (see
    /// ROADMAP).
    fn tunnel_send(&mut self, ctx: &mut Ctx, dest: NodeId, payload: Bytes) {
        let frame = macedon_core::wire::tunnel_frame(ctx.my_key, &payload);
        ctx.send(dest, ChannelId(0), frame);
    }

    /// If `bytes` is one of this protocol's messages, decode it;
    /// otherwise (foreign protocol, malformed, truncated) `None`.
    fn decode_own(&self, bytes: &Bytes) -> Option<(u16, HashMap<String, Value>)> {
        let mut r = WireReader::new(bytes.clone());
        let (Ok(proto), Ok(id)) = (r.u16(), r.u16()) else {
            return None;
        };
        if proto != self.proto || id as usize >= self.spec.messages.len() {
            return None;
        }
        self.decode(id, &mut r).ok().map(|fields| (id, fields))
    }

    fn decode(&self, msg_id: u16, r: &mut WireReader) -> Result<HashMap<String, Value>, String> {
        let decl = &self.spec.messages[msg_id as usize];
        let mut out = HashMap::new();
        for f in &decl.fields {
            let v = match &f.ty {
                TypeName::Int => Value::Int(r.u64().map_err(|e| e.to_string())? as i64),
                TypeName::Bool => Value::Bool(r.u8().map_err(|e| e.to_string())? != 0),
                TypeName::Node => {
                    let n = r.node().map_err(|e| e.to_string())?;
                    if n == NodeId(u32::MAX) {
                        Value::Null
                    } else {
                        Value::Node(n)
                    }
                }
                TypeName::Key => Value::Key(r.key().map_err(|e| e.to_string())?),
                TypeName::Payload => Value::Bytes(r.bytes().map_err(|e| e.to_string())?),
                TypeName::Neighbor(_) => Value::List(r.nodes().map_err(|e| e.to_string())?),
            };
            out.insert(f.name.clone(), v);
        }
        Ok(out)
    }

    fn eval(&self, ctx: &mut Ctx, frame: &Frame, e: &Expr) -> Result<Value, String> {
        Ok(match e {
            Expr::Int(v) => Value::Int(*v),
            Expr::Var(name) => match name.as_str() {
                "from" => frame.from.map(Value::Node).unwrap_or(Value::Null),
                "me" => Value::Node(ctx.me),
                "my_key" => Value::Key(ctx.my_key),
                "bootstrap" => self.bootstrap.map(Value::Node).unwrap_or(Value::Null),
                "payload" => frame
                    .payload
                    .clone()
                    .map(Value::Bytes)
                    .unwrap_or(Value::Null),
                "null" => Value::Null,
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                "dest" | "group" => frame
                    .api_args
                    .get(name.as_str())
                    .cloned()
                    .or_else(|| self.vars.get(name).cloned())
                    .unwrap_or(Value::Null),
                other => {
                    if let Some(v) = self.vars.get(other) {
                        v.clone()
                    } else if let Some(l) = self.lists.get(other) {
                        Value::List(l.clone())
                    } else {
                        return Err(format!("unknown variable '{other}'"));
                    }
                }
            },
            Expr::Field(name) => frame
                .fields
                .get(name)
                .cloned()
                .ok_or_else(|| format!("unknown message field '{name}'"))?,
            Expr::NeighborSize(list) => Value::Int(
                self.lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?
                    .len() as i64,
            ),
            Expr::NeighborQuery(list, e) => {
                let n = self.eval(ctx, frame, e)?;
                let l = self
                    .lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                match n {
                    Value::Node(n) => Value::Bool(l.contains(&n)),
                    Value::Null => Value::Bool(false),
                    other => return Err(format!("neighbor_query needs node, got {other:?}")),
                }
            }
            Expr::NeighborRandom(list) => {
                let l = self
                    .lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                if l.is_empty() {
                    Value::Null
                } else {
                    Value::Node(l[ctx.rng.index(l.len())])
                }
            }
            Expr::Not(e) => Value::Bool(!self.eval(ctx, frame, e)?.truthy()),
            Expr::Neg(e) => Value::Int(-self.eval(ctx, frame, e)?.as_int()?),
            Expr::Bin(op, a, b) => {
                let a = self.eval(ctx, frame, a)?;
                let b = self.eval(ctx, frame, b)?;
                match op {
                    BinOp::And => Value::Bool(a.truthy() && b.truthy()),
                    BinOp::Or => Value::Bool(a.truthy() || b.truthy()),
                    BinOp::Eq => Value::Bool(values_eq(&a, &b)),
                    BinOp::Ne => Value::Bool(!values_eq(&a, &b)),
                    BinOp::Lt => Value::Bool(a.as_int()? < b.as_int()?),
                    BinOp::Gt => Value::Bool(a.as_int()? > b.as_int()?),
                    BinOp::Le => Value::Bool(a.as_int()? <= b.as_int()?),
                    BinOp::Ge => Value::Bool(a.as_int()? >= b.as_int()?),
                    BinOp::Add => Value::Int(a.as_int()? + b.as_int()?),
                    BinOp::Sub => Value::Int(a.as_int()? - b.as_int()?),
                    BinOp::Mul => Value::Int(a.as_int()? * b.as_int()?),
                    BinOp::Div => {
                        let d = b.as_int()?;
                        if d == 0 {
                            return Err("division by zero".into());
                        }
                        Value::Int(a.as_int()? / d)
                    }
                    BinOp::Mod => {
                        let d = b.as_int()?;
                        if d == 0 {
                            return Err("modulo by zero".into());
                        }
                        Value::Int(a.as_int()? % d)
                    }
                }
            }
        })
    }
}

/// Translate a `downcall(<api>, args...)` statement into the engine API
/// call it names. The name/arity contract is [`crate::ast::downcall_arity`]
/// (shared with sema, which rejects violations at compile time); value
/// shapes are checked here.
fn build_downcall(api: &str, mut values: Vec<Value>) -> Result<DownCall, String> {
    match crate::ast::downcall_arity(api) {
        Some(arity) if arity == values.len() => {}
        Some(arity) => {
            return Err(format!(
                "downcall({api}, ..): takes {arity} argument(s), got {}",
                values.len()
            ))
        }
        None => return Err(format!("unknown downcall API '{api}'")),
    }
    let as_key = |v: &Value| match v {
        Value::Key(k) => Ok(*k),
        Value::Node(n) => Ok(MacedonKey(n.0)),
        other => Err(format!("downcall({api}, ..): expected key, got {other:?}")),
    };
    let as_payload = |v: Value| match v {
        Value::Bytes(b) => Ok(b),
        Value::Null => Ok(Bytes::new()),
        other => Err(format!(
            "downcall({api}, ..): expected payload, got {other:?}"
        )),
    };
    Ok(match api {
        "join" => DownCall::Join {
            group: as_key(&values[0])?,
        },
        "leave" => DownCall::Leave {
            group: as_key(&values[0])?,
        },
        "create_group" => DownCall::CreateGroup {
            group: as_key(&values[0])?,
        },
        "multicast" => DownCall::Multicast {
            group: as_key(&values[0])?,
            payload: as_payload(values.remove(1))?,
            priority: DEFAULT_PRIORITY,
        },
        "anycast" => DownCall::Anycast {
            group: as_key(&values[0])?,
            payload: as_payload(values.remove(1))?,
            priority: DEFAULT_PRIORITY,
        },
        "collect" => DownCall::Collect {
            group: as_key(&values[0])?,
            payload: as_payload(values.remove(1))?,
            priority: DEFAULT_PRIORITY,
        },
        "route" => DownCall::Route {
            dest: as_key(&values[0])?,
            payload: as_payload(values.remove(1))?,
            priority: DEFAULT_PRIORITY,
        },
        "routeIP" => match &values[0] {
            Value::Node(n) => DownCall::RouteIp {
                dest: *n,
                payload: as_payload(values.remove(1))?,
                priority: DEFAULT_PRIORITY,
            },
            other => {
                return Err(format!(
                    "downcall(routeIP, ..): expected node, got {other:?}"
                ))
            }
        },
        other => return Err(format!("unknown downcall API '{other}'")),
    })
}

fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Bool(y)) => (*x != 0) == *y,
        (Value::Bool(x), Value::Int(y)) => *x == (*y != 0),
        (Value::Node(n), Value::Key(k)) | (Value::Key(k), Value::Node(n)) => n.0 == k.0,
        _ => a == b,
    }
}

impl Agent for InterpretedAgent {
    fn protocol_id(&self) -> ProtocolId {
        self.proto
    }

    fn name(&self) -> &'static str {
        "interpreted"
    }

    fn init(&mut self, ctx: &mut Ctx) {
        // A layered spec at the bottom of a stack has nobody to tunnel
        // its sends through — every message would be silently dropped.
        debug_assert!(
            !self.layered || ctx.layer > 0,
            "'{}' uses '{}' and must be stacked above an agent serving that protocol \
             (see macedon_lang::registry::SpecRegistry)",
            self.spec.name,
            self.spec.uses.as_deref().unwrap_or_default()
        );
        // Auto-arm timers that declare a period.
        let spec = self.spec.clone();
        for v in &spec.state_vars {
            if let StateVar::Timer {
                name,
                period_ms: Some(ms),
            } = v
            {
                let id = self.timer_ids[name];
                ctx.timer_periodic(id, Duration::from_millis(*ms as u64));
            }
        }
        self.fire(ctx, &Trigger::Api("init".to_string()), Frame::default());
    }

    fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
        let api = match &call {
            DownCall::Route { .. } => "route",
            DownCall::RouteIp { .. } => "routeIP",
            DownCall::Multicast { .. } => "multicast",
            DownCall::Anycast { .. } => "anycast",
            DownCall::Collect { .. } => "collect",
            DownCall::CreateGroup { .. } => "create_group",
            DownCall::Join { .. } => "join",
            DownCall::Leave { .. } => "leave",
            DownCall::Ext { .. } => "downcall_ext",
        };
        if self.has_transition(&Trigger::Api(api.to_string())) {
            let mut f = Frame::default();
            match call {
                DownCall::Route { dest, payload, .. } => {
                    f.api_args.insert("dest", Value::Key(dest));
                    f.payload = Some(payload);
                }
                DownCall::RouteIp { dest, payload, .. } => {
                    f.api_args.insert("dest", Value::Node(dest));
                    f.payload = Some(payload);
                }
                DownCall::Multicast { group, payload, .. }
                | DownCall::Anycast { group, payload, .. }
                | DownCall::Collect { group, payload, .. } => {
                    f.api_args.insert("group", Value::Key(group));
                    f.payload = Some(payload);
                }
                DownCall::CreateGroup { group }
                | DownCall::Join { group }
                | DownCall::Leave { group } => {
                    f.api_args.insert("group", Value::Key(group));
                }
                DownCall::Ext { .. } => {}
            }
            self.fire(ctx, &Trigger::Api(api.to_string()), f);
            return;
        }
        if self.layered {
            // Unhandled API calls fall through to the base layer — the
            // stack relaying every pass-through agent performs.
            ctx.down(call);
            return;
        }
        // Lowest layer: `routeIP` is an engine service (direct
        // transmission); everything else the spec chose not to handle.
        match call {
            DownCall::RouteIp { dest, payload, .. } => self.tunnel_send(ctx, dest, payload),
            other => ctx.trace(
                TraceLevel::Low,
                format!("{}: unhandled API call {other:?}", self.spec.name),
            ),
        }
    }

    fn upcall(&mut self, ctx: &mut Ctx, up: UpCall) {
        match up {
            UpCall::Deliver { src, from, payload } => {
                // Demultiplex by protocol id: our own tunneled messages
                // fire `recv` transitions, anything else continues up.
                if let Some((id, fields)) = self.decode_own(&payload) {
                    let name = self.spec.messages[id as usize].name.clone();
                    let frame = Frame {
                        fields,
                        from: Some(from),
                        ..Default::default()
                    };
                    self.fire(ctx, &Trigger::Recv(name), frame);
                } else {
                    ctx.up(UpCall::Deliver { src, from, payload });
                }
            }
            other => ctx.up(other),
        }
    }

    fn on_forward(&mut self, ctx: &mut Ctx, fwd: &mut ForwardInfo) {
        // An in-transit message of ours passing through the layer below:
        // fire the spec's `forward` transition, which may `quash();` it.
        let Some((id, fields)) = self.decode_own(&fwd.payload) else {
            return;
        };
        let name = self.spec.messages[id as usize].name.clone();
        if !self.has_transition(&Trigger::Forward(name.clone())) {
            return;
        }
        let frame = Frame {
            fields,
            from: Some(fwd.prev_hop),
            ..Default::default()
        };
        if self.fire(ctx, &Trigger::Forward(name), frame) {
            fwd.quash = true;
        }
    }

    fn forward_resolved(&mut self, ctx: &mut Ctx, fwd: ForwardInfo) {
        let Some((_dest, ch, bytes)) = self.pending_fwd.pop_front() else {
            debug_assert!(false, "forward_resolved without a pending send");
            return;
        };
        if !fwd.quash {
            // The layers above may have redirected the hop.
            ctx.send(fwd.next_hop, ch, bytes);
        }
    }

    fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes) {
        debug_assert!(
            !self.layered,
            "layered interpreted agents never touch the wire"
        );
        let mut r = WireReader::new(msg);
        let (Ok(proto), Ok(id)) = (r.u16(), r.u16()) else {
            return;
        };
        if proto == TUNNEL_PROTOCOL {
            // A `routeIP` frame tunneled on behalf of the layers above:
            // unwrap and deliver up.
            let Ok((src, payload)) = macedon_core::wire::read_tunnel(&mut r) else {
                return;
            };
            ctx.up(UpCall::Deliver { src, from, payload });
            return;
        }
        if proto != self.proto || id as usize >= self.spec.messages.len() {
            return;
        }
        let fields = match self.decode(id, &mut r) {
            Ok(f) => f,
            Err(e) => {
                ctx.trace(
                    TraceLevel::Low,
                    format!("{}: decode error: {e}", self.spec.name),
                );
                return;
            }
        };
        let name = self.spec.messages[id as usize].name.clone();
        let frame = Frame {
            fields,
            from: Some(from),
            ..Default::default()
        };
        self.fire(ctx, &Trigger::Recv(name), frame);
    }

    fn timer(&mut self, ctx: &mut Ctx, timer: u16) {
        let Some(name) = self.timer_names.get(timer as usize).cloned() else {
            return;
        };
        self.fire(ctx, &Trigger::Timer(name), Frame::default());
    }

    fn neighbor_failed(&mut self, ctx: &mut Ctx, peer: NodeId) {
        // Engine convention: drop the peer from fail_detect lists, then
        // fire the error transition.
        for name in self.fail_detect.clone() {
            if let Some(l) = self.lists.get_mut(&name) {
                l.retain(|&n| n != peer);
            }
        }
        let frame = Frame {
            from: Some(peer),
            ..Default::default()
        };
        self.fire(ctx, &Trigger::Error, frame);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use macedon_core::{NullApp, Time, World, WorldConfig};
    use macedon_net::topology::{canned, LinkSpec};

    /// A toy protocol: everyone joins a star around the bootstrap.
    const STAR: &str = r#"
        protocol star;
        addressing hash;
        states { joined; }
        neighbor_types { member 64 { } }
        transports { TCP CTRL; }
        messages {
            CTRL hello { node who; }
            CTRL welcome { }
        }
        state_variables {
            fail_detect member members;
            int hellos;
        }
        transitions {
            init API init {
                if (bootstrap != null) {
                    hello(bootstrap, me);
                } else {
                    state_change(joined);
                }
            }
            any recv hello {
                hellos = hellos + 1;
                neighbor_add(members, field(who));
                welcome(from);
            }
            init recv welcome {
                neighbor_add(members, from);
                state_change(joined);
            }
        }
    "#;

    fn star_world(n: usize) -> (World, Vec<NodeId>, Arc<Spec>) {
        let spec = Arc::new(compile(STAR).unwrap());
        let topo = canned::star(n, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut cfg = WorldConfig {
            seed: 5,
            ..Default::default()
        };
        cfg.channels = channel_table(&spec);
        let mut w = World::new(topo, cfg);
        for (i, &h) in hosts.iter().enumerate() {
            let agent = InterpretedAgent::new(spec.clone(), (i > 0).then(|| hosts[0]));
            w.spawn_at(
                Time::from_millis(i as u64 * 10),
                h,
                vec![Box::new(agent)],
                Box::new(NullApp),
            );
        }
        (w, hosts, spec)
    }

    fn agent_of(w: &World, n: NodeId) -> &InterpretedAgent {
        w.stack(n)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap()
    }

    #[test]
    fn interpreted_protocol_runs_end_to_end() {
        let (mut w, hosts, _) = star_world(6);
        w.run_until(Time::from_secs(10));
        for &h in &hosts {
            assert_eq!(agent_of(&w, h).state(), "joined", "{h:?}");
        }
        // The bootstrap heard from everyone.
        let boot = agent_of(&w, hosts[0]);
        assert_eq!(boot.var("hellos"), Some(&Value::Int(5)));
        assert_eq!(boot.list("members").unwrap().len(), 5);
    }

    #[test]
    fn transitions_scoped_by_state() {
        // `init recv welcome` must not fire once joined.
        let (mut w, hosts, _) = star_world(3);
        w.run_until(Time::from_secs(10));
        let a = agent_of(&w, hosts[1]);
        assert_eq!(a.state(), "joined");
        // Joined members got exactly one welcome each (scoped transition
        // consumed it once).
        assert_eq!(a.list("members").unwrap().len(), 1);
    }

    #[test]
    fn protocol_id_is_stable_and_safe() {
        let a = protocol_id_of("overcast");
        let b = protocol_id_of("overcast");
        assert_eq!(a, b);
        assert_ne!(protocol_id_of("x"), 0xFFFF);
        assert_ne!(protocol_id_of("x"), 0xFFFE);
    }

    #[test]
    fn channel_table_mirrors_transports() {
        let spec = compile(STAR).unwrap();
        let table = channel_table(&spec);
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].name, "CTRL");
        assert_eq!(table[0].kind, TransportKind::Tcp);
    }

    #[test]
    fn value_semantics() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Null.truthy());
        assert!(values_eq(&Value::Int(1), &Value::Bool(true)));
        assert!(values_eq(
            &Value::Node(NodeId(5)),
            &Value::Key(MacedonKey(5))
        ));
        assert!(!values_eq(&Value::Int(2), &Value::Int(3)));
    }

    /// A trivial lowest layer owning one transport; it serves `routeIP`
    /// natively and has no behavior of its own.
    const BASE: &str = r#"
        protocol base;
        addressing hash;
        transports { TCP CTRL; }
    "#;

    /// The STAR protocol re-expressed as a layer above `base`: sends
    /// tunnel through the base's API instead of touching the wire.
    const STAR_OVER_BASE: &str = r#"
        protocol starup uses base;
        addressing hash;
        states { joined; }
        neighbor_types { member 64 { } }
        messages {
            hello { node who; }
            welcome { }
        }
        state_variables {
            member members;
            int hellos;
        }
        transitions {
            init API init {
                if (bootstrap != null) {
                    hello(bootstrap, me);
                } else {
                    state_change(joined);
                }
            }
            any recv hello {
                hellos = hellos + 1;
                neighbor_add(members, field(who));
                welcome(from);
            }
            init recv welcome {
                neighbor_add(members, from);
                state_change(joined);
            }
        }
    "#;

    #[test]
    fn layered_spec_runs_above_interpreted_base() {
        let base = Arc::new(compile(BASE).unwrap());
        let upper = Arc::new(compile(STAR_OVER_BASE).unwrap());
        let topo = canned::star(5, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut cfg = WorldConfig {
            seed: 9,
            ..Default::default()
        };
        cfg.channels = channel_table(&base);
        let mut w = World::new(topo, cfg);
        for (i, &h) in hosts.iter().enumerate() {
            let boot = (i > 0).then(|| hosts[0]);
            w.spawn_at(
                Time::from_millis(i as u64 * 10),
                h,
                vec![
                    Box::new(InterpretedAgent::new(base.clone(), boot)),
                    Box::new(InterpretedAgent::new(upper.clone(), boot)),
                ],
                Box::new(NullApp),
            );
        }
        w.run_until(Time::from_secs(10));
        for &h in &hosts {
            let a: &InterpretedAgent = w
                .stack(h)
                .unwrap()
                .agent(1)
                .as_any()
                .downcast_ref()
                .unwrap();
            assert_eq!(a.state(), "joined", "{h:?}");
        }
        let boot: &InterpretedAgent = w
            .stack(hosts[0])
            .unwrap()
            .agent(1)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert_eq!(boot.var("hellos"), Some(&Value::Int(4)));
        assert_eq!(boot.list("members").unwrap().len(), 4);
    }

    #[test]
    fn periodic_timer_autoarms() {
        const TICKER: &str = r#"
            protocol ticker;
            addressing ip;
            transports { UDP U; }
            messages { U noop { } }
            state_variables { timer tick 100; int n; }
            transitions {
                any timer tick { n = n + 1; }
            }
        "#;
        let spec = Arc::new(compile(TICKER).unwrap());
        let topo = canned::star(1, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let cfg = WorldConfig {
            channels: channel_table(&spec),
            ..Default::default()
        };
        let mut w = World::new(topo, cfg);
        w.spawn_at(
            Time::ZERO,
            hosts[0],
            vec![Box::new(InterpretedAgent::new(spec, None))],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(1));
        let a = agent_of(&w, hosts[0]);
        let Some(&Value::Int(n)) = a.var("n") else {
            panic!()
        };
        assert!((8..=10).contains(&n), "ticked ~10 times in 1s, got {n}");
    }
}
