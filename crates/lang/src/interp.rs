//! The specification interpreter: runs a compiled [`Spec`] as a live
//! [`macedon_core::Agent`].
//!
//! The paper's `macedon` tool translates specs to C++ compiled against
//! the engine. This interpreter is the equivalent executable semantics —
//! the same FSM dispatch (transition = (event, state-scope) → actions),
//! the same primitives (§3.3), over the same engine — without a compile
//! step, which lets the test suite cross-validate the bundled specs
//! against the hand-written agents in `macedon-overlays`.
//!
//! Interpretation currently covers lowest-layer protocols (a spec with a
//! `uses` clause parses and code-gens, but layered interpretation is
//! future work, as §6 of the paper frames extensions).

use crate::ast::*;
use macedon_core::{
    Agent, Bytes, ChannelId, ChannelSpec, Ctx, DownCall, Duration, MacedonKey, NodeId, ProtocolId,
    TraceLevel, TransportKind, UpCall, WireReader, WireWriter,
};
use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Runtime values of the action language.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Int(i64),
    Bool(bool),
    Node(NodeId),
    Key(MacedonKey),
    Bytes(Bytes),
    List(Vec<NodeId>),
    Null,
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Bool(b) => *b,
            Value::Node(_) | Value::Key(_) | Value::List(_) => true,
            Value::Bytes(b) => !b.is_empty(),
            Value::Null => false,
        }
    }

    fn as_int(&self) -> Result<i64, String> {
        match self {
            Value::Int(v) => Ok(*v),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(format!("expected int, got {other:?}")),
        }
    }

    fn as_node(&self) -> Result<NodeId, String> {
        match self {
            Value::Node(n) => Ok(*n),
            other => Err(format!("expected node, got {other:?}")),
        }
    }
}

/// Per-transition bindings (decoded message fields, `from`, `payload`).
#[derive(Default)]
struct Frame {
    fields: HashMap<String, Value>,
    from: Option<NodeId>,
    payload: Option<Bytes>,
    api_args: HashMap<&'static str, Value>,
}

enum Flow {
    Continue,
    Return,
}

/// Derive the channel table a world must be built with to host this spec.
pub fn channel_table(spec: &Spec) -> Vec<ChannelSpec> {
    spec.transports
        .iter()
        .map(|t| {
            let kind = match t.kind {
                TransportKindDecl::Tcp => TransportKind::Tcp,
                TransportKindDecl::Udp => TransportKind::Udp,
                TransportKindDecl::Swp => TransportKind::Swp { window: 16 },
            };
            ChannelSpec::new(t.name.clone(), kind)
        })
        .collect()
}

/// Well-known protocol id derived from the protocol name.
pub fn protocol_id_of(name: &str) -> ProtocolId {
    let h = macedon_core::sha1::sha1_u32(name.as_bytes()) as u16;
    // Stay clear of reserved values.
    match h {
        0xFFFE | 0xFFFF => 0x7FFF,
        v => v,
    }
}

/// An interpreted protocol instance.
pub struct InterpretedAgent {
    spec: Arc<Spec>,
    proto: ProtocolId,
    bootstrap: Option<NodeId>,
    state: String,
    vars: HashMap<String, Value>,
    lists: HashMap<String, Vec<NodeId>>,
    list_max: HashMap<String, usize>,
    fail_detect: HashSet<String>,
    timer_ids: HashMap<String, u16>,
    timer_names: Vec<String>,
    msg_ids: HashMap<String, u16>,
    msg_channel: HashMap<String, ChannelId>,
    /// Transitions fired, per trigger kind (observability / tests).
    pub transitions_fired: u64,
}

impl InterpretedAgent {
    /// Instantiate a compiled spec. `bootstrap` is bound to the variable
    /// `bootstrap` inside transitions (`Null` for the designated root).
    pub fn new(spec: Arc<Spec>, bootstrap: Option<NodeId>) -> InterpretedAgent {
        assert!(
            spec.uses.is_none(),
            "interpreter runs lowest-layer specs; '{}' uses '{}'",
            spec.name,
            spec.uses.as_deref().unwrap_or_default()
        );
        let mut vars = HashMap::new();
        for (name, v) in &spec.constants {
            vars.insert(name.clone(), Value::Int(*v));
        }
        let mut lists = HashMap::new();
        let mut list_max = HashMap::new();
        let mut fail_detect = HashSet::new();
        let mut timer_ids = HashMap::new();
        let mut timer_names = Vec::new();
        for v in &spec.state_vars {
            match v {
                StateVar::Neighbor {
                    ty,
                    name,
                    fail_detect: fd,
                } => {
                    let max = spec
                        .neighbor_types
                        .iter()
                        .find(|n| &n.name == ty)
                        .map(|n| n.max)
                        .unwrap_or(1);
                    lists.insert(name.clone(), Vec::new());
                    list_max.insert(name.clone(), max);
                    if *fd {
                        fail_detect.insert(name.clone());
                    }
                }
                StateVar::Timer { name, .. } => {
                    let id = timer_names.len() as u16;
                    timer_ids.insert(name.clone(), id);
                    timer_names.push(name.clone());
                }
                StateVar::Scalar { ty, name } => {
                    let init = match ty {
                        TypeName::Int => Value::Int(0),
                        TypeName::Bool => Value::Bool(false),
                        TypeName::Node => Value::Null,
                        TypeName::Key => Value::Key(MacedonKey(0)),
                        TypeName::Payload => Value::Null,
                        TypeName::Neighbor(_) => Value::Null,
                    };
                    vars.insert(name.clone(), init);
                }
            }
        }
        let mut msg_ids = HashMap::new();
        let mut msg_channel = HashMap::new();
        for (i, m) in spec.messages.iter().enumerate() {
            msg_ids.insert(m.name.clone(), i as u16);
            let ch = m
                .transport
                .as_ref()
                .and_then(|t| spec.transports.iter().position(|d| &d.name == t))
                .unwrap_or(0);
            msg_channel.insert(m.name.clone(), ChannelId(ch as u16));
        }
        let proto = protocol_id_of(&spec.name);
        InterpretedAgent {
            spec,
            proto,
            bootstrap,
            state: "init".to_string(),
            vars,
            lists,
            list_max,
            fail_detect,
            timer_ids,
            timer_names,
            msg_ids,
            msg_channel,
            transitions_fired: 0,
        }
    }

    pub fn state(&self) -> &str {
        &self.state
    }

    pub fn list(&self, name: &str) -> Option<&Vec<NodeId>> {
        self.lists.get(name)
    }

    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    // ---- dispatch --------------------------------------------------------

    fn fire(&mut self, ctx: &mut Ctx, trigger: &Trigger, mut frame: Frame) {
        let spec = self.spec.clone();
        let Some(t) = spec
            .transitions
            .iter()
            .find(|t| &t.trigger == trigger && t.scope.matches(&self.state))
        else {
            ctx.trace(
                TraceLevel::High,
                format!(
                    "{}: no transition for {trigger:?} in state {}",
                    spec.name, self.state
                ),
            );
            return;
        };
        if t.locking == LockingOpt::Read {
            ctx.locking_read();
        }
        self.transitions_fired += 1;
        if let Err(e) = self.exec_block(ctx, &mut frame, &t.body) {
            ctx.trace(
                TraceLevel::Low,
                format!("{}: runtime error: {e}", spec.name),
            );
            debug_assert!(false, "interpreter runtime error: {e}");
        }
    }

    fn exec_block(
        &mut self,
        ctx: &mut Ctx,
        frame: &mut Frame,
        stmts: &[Stmt],
    ) -> Result<Flow, String> {
        for s in stmts {
            match self.exec(ctx, frame, s)? {
                Flow::Return => return Ok(Flow::Return),
                Flow::Continue => {}
            }
        }
        Ok(Flow::Continue)
    }

    fn exec(&mut self, ctx: &mut Ctx, frame: &mut Frame, stmt: &Stmt) -> Result<Flow, String> {
        match stmt {
            Stmt::If { cond, then, els } => {
                if self.eval(ctx, frame, cond)?.truthy() {
                    self.exec_block(ctx, frame, then)
                } else {
                    self.exec_block(ctx, frame, els)
                }
            }
            Stmt::Return => Ok(Flow::Return),
            Stmt::StateChange(s) => {
                ctx.trace(
                    TraceLevel::High,
                    format!("{}: {} -> {s}", self.spec.name, self.state),
                );
                self.state = s.clone();
                Ok(Flow::Continue)
            }
            Stmt::TimerResched(name, e) => {
                let ms = self.eval(ctx, frame, e)?.as_int()?;
                let id = *self
                    .timer_ids
                    .get(name)
                    .ok_or_else(|| format!("timer {name}?"))?;
                ctx.timer_set(id, Duration::from_millis(ms.max(0) as u64));
                Ok(Flow::Continue)
            }
            Stmt::TimerCancel(name) => {
                let id = *self
                    .timer_ids
                    .get(name)
                    .ok_or_else(|| format!("timer {name}?"))?;
                ctx.timer_cancel(id);
                Ok(Flow::Continue)
            }
            Stmt::NeighborAdd(list, e) => {
                let node = self.eval(ctx, frame, e)?.as_node()?;
                let max = *self.list_max.get(list).unwrap_or(&usize::MAX);
                let fd = self.fail_detect.contains(list);
                let l = self
                    .lists
                    .get_mut(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                if !l.contains(&node) && l.len() < max {
                    l.push(node);
                    if fd {
                        ctx.monitor(node);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::NeighborRemove(list, e) => {
                let node = self.eval(ctx, frame, e)?.as_node()?;
                let fd = self.fail_detect.contains(list);
                let l = self
                    .lists
                    .get_mut(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                l.retain(|&n| n != node);
                if fd {
                    ctx.unmonitor(node);
                }
                Ok(Flow::Continue)
            }
            Stmt::NeighborClear(list) => {
                let fd = self.fail_detect.contains(list);
                let l = self
                    .lists
                    .get_mut(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                for n in l.drain(..) {
                    if fd {
                        ctx.unmonitor(n);
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Send {
                message,
                dest,
                args,
            } => {
                let dest = self.eval(ctx, frame, dest)?;
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(self.eval(ctx, frame, a)?);
                }
                self.send_message(ctx, message, dest, values)?;
                Ok(Flow::Continue)
            }
            Stmt::UpcallNotify(list, e) => {
                let ty = self.eval(ctx, frame, e)?.as_int()? as u32;
                let l = self
                    .lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                ctx.up(UpCall::Notify {
                    nbr_type: ty,
                    neighbors: l.clone(),
                });
                Ok(Flow::Continue)
            }
            Stmt::Deliver { src, payload } => {
                let src = match self.eval(ctx, frame, src)? {
                    Value::Key(k) => k,
                    Value::Node(n) => MacedonKey(n.0),
                    other => return Err(format!("deliver src must be key/node, got {other:?}")),
                };
                let payload = match self.eval(ctx, frame, payload)? {
                    Value::Bytes(b) => b,
                    Value::Null => Bytes::new(),
                    other => return Err(format!("deliver payload must be bytes, got {other:?}")),
                };
                let from = frame.from.unwrap_or(ctx.me);
                ctx.up(UpCall::Deliver { src, from, payload });
                Ok(Flow::Continue)
            }
            Stmt::Monitor(e) => {
                let n = self.eval(ctx, frame, e)?.as_node()?;
                ctx.monitor(n);
                Ok(Flow::Continue)
            }
            Stmt::Unmonitor(e) => {
                let n = self.eval(ctx, frame, e)?.as_node()?;
                ctx.unmonitor(n);
                Ok(Flow::Continue)
            }
            Stmt::ForEach { var, list, body } => {
                let snapshot = self
                    .lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?
                    .clone();
                let saved = self.vars.get(var).cloned();
                for n in snapshot {
                    self.vars.insert(var.clone(), Value::Node(n));
                    if let Flow::Return = self.exec_block(ctx, frame, body)? {
                        // restore before propagating
                        match &saved {
                            Some(v) => self.vars.insert(var.clone(), v.clone()),
                            None => self.vars.remove(var),
                        };
                        return Ok(Flow::Return);
                    }
                }
                match saved {
                    Some(v) => self.vars.insert(var.clone(), v),
                    None => self.vars.remove(var),
                };
                Ok(Flow::Continue)
            }
            Stmt::Assign(name, e) => {
                let v = self.eval(ctx, frame, e)?;
                if self.lists.contains_key(name) {
                    // Whole-list assignment (e.g. `brothers = field(sibs);`)
                    // replaces contents; own id is filtered out.
                    let Value::List(mut ns) = v else {
                        return Err(format!("assigning non-list to neighbor list '{name}'"));
                    };
                    ns.retain(|&n| n != ctx.me);
                    let max = *self.list_max.get(name).unwrap_or(&usize::MAX);
                    ns.truncate(max);
                    let fd = self.fail_detect.contains(name);
                    let l = self.lists.get_mut(name).expect("checked");
                    if fd {
                        for n in l.iter() {
                            ctx.unmonitor(*n);
                        }
                        for n in &ns {
                            ctx.monitor(*n);
                        }
                    }
                    *l = ns;
                } else {
                    self.vars.insert(name.clone(), v);
                }
                Ok(Flow::Continue)
            }
            Stmt::Trace(e) => {
                let v = self.eval(ctx, frame, e)?;
                ctx.trace(TraceLevel::Med, format!("{}: trace {v:?}", self.spec.name));
                Ok(Flow::Continue)
            }
        }
    }

    fn send_message(
        &mut self,
        ctx: &mut Ctx,
        message: &str,
        dest: Value,
        values: Vec<Value>,
    ) -> Result<(), String> {
        let dest = match dest {
            Value::Node(n) => n,
            Value::Null => return Ok(()), // sending to nobody is a no-op
            other => return Err(format!("message dest must be a node, got {other:?}")),
        };
        let id = *self
            .msg_ids
            .get(message)
            .ok_or_else(|| format!("message {message}?"))?;
        let decl = self.spec.messages[id as usize].clone();
        if values.len() != decl.fields.len() {
            return Err(format!(
                "message {message} takes {} fields, got {}",
                decl.fields.len(),
                values.len()
            ));
        }
        let mut w = WireWriter::new();
        w.u16(self.proto).u16(id);
        for (f, v) in decl.fields.iter().zip(&values) {
            match (&f.ty, v) {
                (TypeName::Int, v) => {
                    w.u64(v.as_int()? as u64);
                }
                (TypeName::Bool, v) => {
                    w.u8(v.truthy() as u8);
                }
                (TypeName::Node, Value::Node(n)) => {
                    w.node(*n);
                }
                (TypeName::Node, Value::Null) => {
                    w.node(NodeId(u32::MAX));
                }
                (TypeName::Key, Value::Key(k)) => {
                    w.key(*k);
                }
                (TypeName::Key, Value::Node(n)) => {
                    w.key(MacedonKey(n.0));
                }
                (TypeName::Payload, Value::Bytes(b)) => {
                    w.bytes(b);
                }
                (TypeName::Payload, Value::Null) => {
                    w.bytes(&[]);
                }
                (TypeName::Neighbor(_), Value::List(ns)) => {
                    w.nodes(ns);
                }
                (ty, v) => return Err(format!("field {}: cannot encode {v:?} as {ty:?}", f.name)),
            }
        }
        let ch = self.msg_channel[message];
        ctx.send(dest, ch, w.finish());
        Ok(())
    }

    fn decode(&self, msg_id: u16, r: &mut WireReader) -> Result<HashMap<String, Value>, String> {
        let decl = &self.spec.messages[msg_id as usize];
        let mut out = HashMap::new();
        for f in &decl.fields {
            let v = match &f.ty {
                TypeName::Int => Value::Int(r.u64().map_err(|e| e.to_string())? as i64),
                TypeName::Bool => Value::Bool(r.u8().map_err(|e| e.to_string())? != 0),
                TypeName::Node => {
                    let n = r.node().map_err(|e| e.to_string())?;
                    if n == NodeId(u32::MAX) {
                        Value::Null
                    } else {
                        Value::Node(n)
                    }
                }
                TypeName::Key => Value::Key(r.key().map_err(|e| e.to_string())?),
                TypeName::Payload => Value::Bytes(r.bytes().map_err(|e| e.to_string())?),
                TypeName::Neighbor(_) => Value::List(r.nodes().map_err(|e| e.to_string())?),
            };
            out.insert(f.name.clone(), v);
        }
        Ok(out)
    }

    fn eval(&self, ctx: &mut Ctx, frame: &Frame, e: &Expr) -> Result<Value, String> {
        Ok(match e {
            Expr::Int(v) => Value::Int(*v),
            Expr::Var(name) => match name.as_str() {
                "from" => frame.from.map(Value::Node).unwrap_or(Value::Null),
                "me" => Value::Node(ctx.me),
                "my_key" => Value::Key(ctx.my_key),
                "bootstrap" => self.bootstrap.map(Value::Node).unwrap_or(Value::Null),
                "payload" => frame
                    .payload
                    .clone()
                    .map(Value::Bytes)
                    .unwrap_or(Value::Null),
                "null" => Value::Null,
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                "dest" | "group" => frame
                    .api_args
                    .get(name.as_str())
                    .cloned()
                    .or_else(|| self.vars.get(name).cloned())
                    .unwrap_or(Value::Null),
                other => {
                    if let Some(v) = self.vars.get(other) {
                        v.clone()
                    } else if let Some(l) = self.lists.get(other) {
                        Value::List(l.clone())
                    } else {
                        return Err(format!("unknown variable '{other}'"));
                    }
                }
            },
            Expr::Field(name) => frame
                .fields
                .get(name)
                .cloned()
                .ok_or_else(|| format!("unknown message field '{name}'"))?,
            Expr::NeighborSize(list) => Value::Int(
                self.lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?
                    .len() as i64,
            ),
            Expr::NeighborQuery(list, e) => {
                let n = self.eval(ctx, frame, e)?;
                let l = self
                    .lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                match n {
                    Value::Node(n) => Value::Bool(l.contains(&n)),
                    Value::Null => Value::Bool(false),
                    other => return Err(format!("neighbor_query needs node, got {other:?}")),
                }
            }
            Expr::NeighborRandom(list) => {
                let l = self
                    .lists
                    .get(list)
                    .ok_or_else(|| format!("list {list}?"))?;
                if l.is_empty() {
                    Value::Null
                } else {
                    Value::Node(l[ctx.rng.index(l.len())])
                }
            }
            Expr::Not(e) => Value::Bool(!self.eval(ctx, frame, e)?.truthy()),
            Expr::Neg(e) => Value::Int(-self.eval(ctx, frame, e)?.as_int()?),
            Expr::Bin(op, a, b) => {
                let a = self.eval(ctx, frame, a)?;
                let b = self.eval(ctx, frame, b)?;
                match op {
                    BinOp::And => Value::Bool(a.truthy() && b.truthy()),
                    BinOp::Or => Value::Bool(a.truthy() || b.truthy()),
                    BinOp::Eq => Value::Bool(values_eq(&a, &b)),
                    BinOp::Ne => Value::Bool(!values_eq(&a, &b)),
                    BinOp::Lt => Value::Bool(a.as_int()? < b.as_int()?),
                    BinOp::Gt => Value::Bool(a.as_int()? > b.as_int()?),
                    BinOp::Le => Value::Bool(a.as_int()? <= b.as_int()?),
                    BinOp::Ge => Value::Bool(a.as_int()? >= b.as_int()?),
                    BinOp::Add => Value::Int(a.as_int()? + b.as_int()?),
                    BinOp::Sub => Value::Int(a.as_int()? - b.as_int()?),
                    BinOp::Mul => Value::Int(a.as_int()? * b.as_int()?),
                    BinOp::Div => {
                        let d = b.as_int()?;
                        if d == 0 {
                            return Err("division by zero".into());
                        }
                        Value::Int(a.as_int()? / d)
                    }
                    BinOp::Mod => {
                        let d = b.as_int()?;
                        if d == 0 {
                            return Err("modulo by zero".into());
                        }
                        Value::Int(a.as_int()? % d)
                    }
                }
            }
        })
    }
}

fn values_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Bool(y)) => (*x != 0) == *y,
        (Value::Bool(x), Value::Int(y)) => *x == (*y != 0),
        (Value::Node(n), Value::Key(k)) | (Value::Key(k), Value::Node(n)) => n.0 == k.0,
        _ => a == b,
    }
}

impl Agent for InterpretedAgent {
    fn protocol_id(&self) -> ProtocolId {
        self.proto
    }

    fn name(&self) -> &'static str {
        "interpreted"
    }

    fn init(&mut self, ctx: &mut Ctx) {
        // Auto-arm timers that declare a period.
        let spec = self.spec.clone();
        for v in &spec.state_vars {
            if let StateVar::Timer {
                name,
                period_ms: Some(ms),
            } = v
            {
                let id = self.timer_ids[name];
                ctx.timer_periodic(id, Duration::from_millis(*ms as u64));
            }
        }
        self.fire(ctx, &Trigger::Api("init".to_string()), Frame::default());
    }

    fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
        let (api, frame) = match call {
            DownCall::Route { dest, payload, .. } => {
                let mut f = Frame::default();
                f.api_args.insert("dest", Value::Key(dest));
                f.payload = Some(payload);
                ("route", f)
            }
            DownCall::RouteIp { dest, payload, .. } => {
                let mut f = Frame::default();
                f.api_args.insert("dest", Value::Node(dest));
                f.payload = Some(payload);
                ("routeIP", f)
            }
            DownCall::Multicast { group, payload, .. } => {
                let mut f = Frame::default();
                f.api_args.insert("group", Value::Key(group));
                f.payload = Some(payload);
                ("multicast", f)
            }
            DownCall::Anycast { group, payload, .. } => {
                let mut f = Frame::default();
                f.api_args.insert("group", Value::Key(group));
                f.payload = Some(payload);
                ("anycast", f)
            }
            DownCall::Collect { group, payload, .. } => {
                let mut f = Frame::default();
                f.api_args.insert("group", Value::Key(group));
                f.payload = Some(payload);
                ("collect", f)
            }
            DownCall::CreateGroup { group } => {
                let mut f = Frame::default();
                f.api_args.insert("group", Value::Key(group));
                ("create_group", f)
            }
            DownCall::Join { group } => {
                let mut f = Frame::default();
                f.api_args.insert("group", Value::Key(group));
                ("join", f)
            }
            DownCall::Leave { group } => {
                let mut f = Frame::default();
                f.api_args.insert("group", Value::Key(group));
                ("leave", f)
            }
            DownCall::Ext { .. } => ("downcall_ext", Frame::default()),
        };
        self.fire(ctx, &Trigger::Api(api.to_string()), frame);
    }

    fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes) {
        let mut r = WireReader::new(msg);
        let (Ok(proto), Ok(id)) = (r.u16(), r.u16()) else {
            return;
        };
        if proto != self.proto || id as usize >= self.spec.messages.len() {
            return;
        }
        let fields = match self.decode(id, &mut r) {
            Ok(f) => f,
            Err(e) => {
                ctx.trace(
                    TraceLevel::Low,
                    format!("{}: decode error: {e}", self.spec.name),
                );
                return;
            }
        };
        let name = self.spec.messages[id as usize].name.clone();
        let frame = Frame {
            fields,
            from: Some(from),
            payload: None,
            api_args: HashMap::new(),
        };
        self.fire(ctx, &Trigger::Recv(name), frame);
    }

    fn timer(&mut self, ctx: &mut Ctx, timer: u16) {
        let Some(name) = self.timer_names.get(timer as usize).cloned() else {
            return;
        };
        self.fire(ctx, &Trigger::Timer(name), Frame::default());
    }

    fn neighbor_failed(&mut self, ctx: &mut Ctx, peer: NodeId) {
        // Engine convention: drop the peer from fail_detect lists, then
        // fire the error transition.
        for name in self.fail_detect.clone() {
            if let Some(l) = self.lists.get_mut(&name) {
                l.retain(|&n| n != peer);
            }
        }
        let frame = Frame {
            from: Some(peer),
            ..Default::default()
        };
        self.fire(ctx, &Trigger::Error, frame);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use macedon_core::{NullApp, Time, World, WorldConfig};
    use macedon_net::topology::{canned, LinkSpec};

    /// A toy protocol: everyone joins a star around the bootstrap.
    const STAR: &str = r#"
        protocol star;
        addressing hash;
        states { joined; }
        neighbor_types { member 64 { } }
        transports { TCP CTRL; }
        messages {
            CTRL hello { node who; }
            CTRL welcome { }
        }
        state_variables {
            fail_detect member members;
            int hellos;
        }
        transitions {
            init API init {
                if (bootstrap != null) {
                    hello(bootstrap, me);
                } else {
                    state_change(joined);
                }
            }
            any recv hello {
                hellos = hellos + 1;
                neighbor_add(members, field(who));
                welcome(from);
            }
            init recv welcome {
                neighbor_add(members, from);
                state_change(joined);
            }
        }
    "#;

    fn star_world(n: usize) -> (World, Vec<NodeId>, Arc<Spec>) {
        let spec = Arc::new(compile(STAR).unwrap());
        let topo = canned::star(n, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut cfg = WorldConfig {
            seed: 5,
            ..Default::default()
        };
        cfg.channels = channel_table(&spec);
        let mut w = World::new(topo, cfg);
        for (i, &h) in hosts.iter().enumerate() {
            let agent = InterpretedAgent::new(spec.clone(), (i > 0).then(|| hosts[0]));
            w.spawn_at(
                Time::from_millis(i as u64 * 10),
                h,
                vec![Box::new(agent)],
                Box::new(NullApp),
            );
        }
        (w, hosts, spec)
    }

    fn agent_of<'a>(w: &'a World, n: NodeId) -> &'a InterpretedAgent {
        w.stack(n)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap()
    }

    #[test]
    fn interpreted_protocol_runs_end_to_end() {
        let (mut w, hosts, _) = star_world(6);
        w.run_until(Time::from_secs(10));
        for &h in &hosts {
            assert_eq!(agent_of(&w, h).state(), "joined", "{h:?}");
        }
        // The bootstrap heard from everyone.
        let boot = agent_of(&w, hosts[0]);
        assert_eq!(boot.var("hellos"), Some(&Value::Int(5)));
        assert_eq!(boot.list("members").unwrap().len(), 5);
    }

    #[test]
    fn transitions_scoped_by_state() {
        // `init recv welcome` must not fire once joined.
        let (mut w, hosts, _) = star_world(3);
        w.run_until(Time::from_secs(10));
        let a = agent_of(&w, hosts[1]);
        assert_eq!(a.state(), "joined");
        // Joined members got exactly one welcome each (scoped transition
        // consumed it once).
        assert_eq!(a.list("members").unwrap().len(), 1);
    }

    #[test]
    fn protocol_id_is_stable_and_safe() {
        let a = protocol_id_of("overcast");
        let b = protocol_id_of("overcast");
        assert_eq!(a, b);
        assert_ne!(protocol_id_of("x"), 0xFFFF);
        assert_ne!(protocol_id_of("x"), 0xFFFE);
    }

    #[test]
    fn channel_table_mirrors_transports() {
        let spec = compile(STAR).unwrap();
        let table = channel_table(&spec);
        assert_eq!(table.len(), 1);
        assert_eq!(table[0].name, "CTRL");
        assert_eq!(table[0].kind, TransportKind::Tcp);
    }

    #[test]
    fn value_semantics() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Null.truthy());
        assert!(values_eq(&Value::Int(1), &Value::Bool(true)));
        assert!(values_eq(
            &Value::Node(NodeId(5)),
            &Value::Key(MacedonKey(5))
        ));
        assert!(!values_eq(&Value::Int(2), &Value::Int(3)));
    }

    #[test]
    #[should_panic]
    fn layered_spec_rejected_by_interpreter() {
        let spec = Arc::new(compile("protocol s uses base; addressing hash;").unwrap());
        let _ = InterpretedAgent::new(spec, None);
    }

    #[test]
    fn periodic_timer_autoarms() {
        const TICKER: &str = r#"
            protocol ticker;
            addressing ip;
            transports { UDP U; }
            messages { U noop { } }
            state_variables { timer tick 100; int n; }
            transitions {
                any timer tick { n = n + 1; }
            }
        "#;
        let spec = Arc::new(compile(TICKER).unwrap());
        let topo = canned::star(1, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut cfg = WorldConfig::default();
        cfg.channels = channel_table(&spec);
        let mut w = World::new(topo, cfg);
        w.spawn_at(
            Time::ZERO,
            hosts[0],
            vec![Box::new(InterpretedAgent::new(spec, None))],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(1));
        let a = agent_of(&w, hosts[0]);
        let Some(&Value::Int(n)) = a.var("n") else {
            panic!()
        };
        assert!((8..=10).contains(&n), "ticked ~10 times in 1s, got {n}");
    }
}
