//! Abstract syntax of a MACEDON protocol specification (Figure 4).

/// A complete `PROTOCOL SPECIFICATION`.
#[derive(Clone, Debug)]
pub struct Spec {
    /// `protocol <name>`.
    pub name: String,
    /// `uses <base>` — the layering declaration ("protocol scribe uses
    /// pastry").
    pub uses: Option<String>,
    /// `addressing hash|ip`.
    pub addressing: AddressingMode,
    /// `trace_ off|low|med|high`.
    pub trace: TraceMode,
    pub constants: Vec<(String, i64)>,
    /// FSM states; `init` is implicit and always present.
    pub states: Vec<String>,
    pub neighbor_types: Vec<NeighborType>,
    pub transports: Vec<TransportDecl>,
    pub messages: Vec<MessageDecl>,
    pub state_vars: Vec<StateVar>,
    pub transitions: Vec<Transition>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AddressingMode {
    Hash,
    Ip,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceMode {
    Off,
    Low,
    Med,
    High,
}

/// `neighbor_types { <name> <max>? { fields } ... }`.
#[derive(Clone, Debug)]
pub struct NeighborType {
    pub name: String,
    /// Maximum entries (`MAX_CHILDREN` style); default 1.
    pub max: usize,
    pub fields: Vec<Field>,
}

/// One typed field of a message or neighbor entry.
#[derive(Clone, Debug)]
pub struct Field {
    pub ty: TypeName,
    pub name: String,
}

/// Surface types of the language.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeName {
    Int,
    Bool,
    Node,
    Key,
    /// Opaque tunneled application data (the paper's buffaddr/buffsize
    /// transmission arguments).
    Payload,
    /// A declared neighbor type (sets of neighbors may ride in messages).
    Neighbor(String),
}

/// `transports { TCP HIGH; ... }`.
#[derive(Clone, Debug)]
pub struct TransportDecl {
    pub kind: TransportKindDecl,
    pub name: String,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportKindDecl {
    Tcp,
    Udp,
    Swp,
}

/// Resolve a layered spec's message class name (`HIGH`, `BEST_EFFORT`,
/// …) against the base (tunneling) spec's transport table, returning
/// the base channel index the class maps onto. Single source of truth
/// for the interpreter's runtime mapping and the code generator's baked
/// constants, so both back ends agree bit-for-bit.
///
/// Resolution order:
/// 1. exact name match in the base table;
/// 2. the conventional class ladder by transport kind — `BEST_EFFORT`
///    prefers the base's first UDP channel, `HIGHEST` its first SWP,
///    and `HIGH`/`MED`/`LOW` its first reliable (TCP, then SWP)
///    channel, each falling back to any reliable/unreliable channel;
/// 3. `None` — the send travels at the default priority (channel 0).
pub fn map_class_to_channel(base: &[TransportDecl], class: &str) -> Option<u16> {
    if let Some(i) = base.iter().position(|t| t.name == class) {
        return Some(i as u16);
    }
    let first = |k: TransportKindDecl| base.iter().position(|t| t.kind == k);
    let idx = match class {
        "BEST_EFFORT" => first(TransportKindDecl::Udp)
            .or_else(|| first(TransportKindDecl::Tcp))
            .or_else(|| first(TransportKindDecl::Swp)),
        "HIGHEST" => first(TransportKindDecl::Swp)
            .or_else(|| first(TransportKindDecl::Tcp))
            .or_else(|| first(TransportKindDecl::Udp)),
        "HIGH" | "MED" | "LOW" => first(TransportKindDecl::Tcp)
            .or_else(|| first(TransportKindDecl::Swp))
            .or_else(|| first(TransportKindDecl::Udp)),
        _ => None,
    }?;
    u16::try_from(idx).ok()
}

/// `messages { <transport>? <name> { fields } ... }`.
#[derive(Clone, Debug)]
pub struct MessageDecl {
    /// Named transport instance carrying this message (lowest layer), or
    /// `None` for a default-priority message in a layered protocol.
    pub transport: Option<String>,
    pub name: String,
    pub fields: Vec<Field>,
}

/// One entry of `state_variables { ... }` / `auxiliary_data { ... }`.
#[derive(Clone, Debug)]
pub enum StateVar {
    /// `fail_detect? <neighbor-type> <name>;`
    Neighbor {
        ty: String,
        name: String,
        fail_detect: bool,
    },
    /// `timer <name> <period>?;` — period in milliseconds, given either
    /// as an integer literal or as the name of a previously declared
    /// constant (the parser resolves the name).
    Timer {
        name: String,
        period_ms: Option<i64>,
    },
    /// `int <name>;` etc.
    Scalar { ty: TypeName, name: String },
}

/// FSM-state scope expression for a transition (`!(joining|init)`).
#[derive(Clone, Debug)]
pub enum StateExpr {
    Any,
    Is(String),
    Not(Box<StateExpr>),
    Or(Box<StateExpr>, Box<StateExpr>),
}

impl StateExpr {
    /// Does this scope admit the given current state?
    pub fn matches(&self, state: &str) -> bool {
        match self {
            StateExpr::Any => true,
            StateExpr::Is(s) => s == state,
            StateExpr::Not(e) => !e.matches(state),
            StateExpr::Or(a, b) => a.matches(state) || b.matches(state),
        }
    }

    /// All state names referenced (for semantic checking).
    pub fn names(&self, out: &mut Vec<String>) {
        match self {
            StateExpr::Any => {}
            StateExpr::Is(s) => out.push(s.clone()),
            StateExpr::Not(e) => e.names(out),
            StateExpr::Or(a, b) => {
                a.names(out);
                b.names(out);
            }
        }
    }
}

/// What triggers a transition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Trigger {
    /// `API init`, `API route`, `API multicast`, ...
    Api(String),
    /// `timer <name>`.
    Timer(String),
    /// `recv <message>` — message delivered to this node.
    Recv(String),
    /// `forward <message>` — message passing through (upper layers).
    Forward(String),
    /// `error` — the failure-detection API.
    Error,
}

/// Locking class annotation (`[locking read;]`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LockingOpt {
    Read,
    #[default]
    Write,
}

/// One transition: scope, trigger, options, body.
#[derive(Clone, Debug)]
pub struct Transition {
    pub scope: StateExpr,
    pub trigger: Trigger,
    pub locking: LockingOpt,
    pub body: Vec<Stmt>,
}

/// Statements of the action language (§3.3).
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `if (cond) { .. } else { .. }`.
    If {
        cond: Expr,
        then: Vec<Stmt>,
        els: Vec<Stmt>,
    },
    /// `state_change(joined);`
    StateChange(String),
    /// `timer_resched(name, expr_ms);`
    TimerResched(String, Expr),
    /// `timer_cancel(name);`
    TimerCancel(String),
    /// `neighbor_add(list, expr);`
    NeighborAdd(String, Expr),
    /// `neighbor_remove(list, expr);`
    NeighborRemove(String, Expr),
    /// `neighbor_clear(list);`
    NeighborClear(String),
    /// `<message>(dest, field-args...);` — the transmission primitive.
    Send {
        message: String,
        dest: Expr,
        args: Vec<Expr>,
    },
    /// `upcall_notify(list, type);`
    UpcallNotify(String, Expr),
    /// `deliver(src, payload);` — hand data to the layer above.
    Deliver {
        src: Expr,
        payload: Expr,
    },
    /// `monitor(expr);` / `unmonitor(expr);` — failure detection.
    Monitor(Expr),
    Unmonitor(Expr),
    /// `foreach (x in list) { ... }` — iterate a neighbor list.
    ForEach {
        var: String,
        list: String,
        body: Vec<Stmt>,
    },
    /// `x = expr;`
    Assign(String, Expr),
    /// `trace("..."-less): trace(expr);` — numeric trace records.
    Trace(Expr),
    /// `return;` — leave the transition early.
    Return,
    /// `quash();` — inside a `forward` transition, swallow the in-transit
    /// message instead of letting the layer below transmit it (the
    /// paper's mutable forward() query).
    Quash,
    /// `downcall(<api>, args...);` — issue a MACEDON API call to the
    /// layer below (`downcall(join, group)`, `downcall(route, dest,
    /// payload)`). Only meaningful in layered (`uses`) specifications.
    DownCallApi {
        api: String,
        args: Vec<Expr>,
    },
}

/// Argument count of a `downcall(<api>, args...)` statement, or `None`
/// for an unknown API name. Single source of truth for the semantic
/// checker and the interpreter's call builder.
pub fn downcall_arity(api: &str) -> Option<usize> {
    match api {
        "join" | "leave" | "create_group" => Some(1),
        "multicast" | "anycast" | "collect" | "route" | "routeIP" => Some(2),
        _ => None,
    }
}

/// Expressions.
#[derive(Clone, Debug)]
pub enum Expr {
    Int(i64),
    /// State variable, constant, or builtin (`from`, `me`, `my_key`,
    /// `payload`).
    Var(String),
    /// `field(name)` — field of the triggering message.
    Field(String),
    /// `neighbor_size(list)`.
    NeighborSize(String),
    /// `neighbor_query(list, expr)` — membership test.
    NeighborQuery(String, Box<Expr>),
    /// `neighbor_random(list)`.
    NeighborRandom(String),
    /// `rtt(node)` — engine-measured smoothed round-trip time to a peer
    /// in whole milliseconds (`0` when unmeasured). Fed by the
    /// transport's acknowledgement samples; see `macedon_core::measure`.
    Rtt(Box<Expr>),
    /// `goodput(node)` — engine-measured smoothed inbound goodput from
    /// a peer in kilobits/s (`0` when unmeasured).
    Goodput(Box<Expr>),
    /// `ring_dist(a, b)` — symmetric distance between two keys on the
    /// 2^32 identifier ring; `RING` (2^32) when either operand is null.
    RingDist(Box<Expr>, Box<Expr>),
    /// `ring_between(x, lo, hi)` — true iff `x` lies in the half-open
    /// clockwise interval `(lo, hi]`; false when any operand is null.
    RingBetween(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `digit(key, i, base)` — digit `i` (0 = most significant) of the
    /// key written in `base`; 0 when the key is null or the base/index
    /// is unusable.
    Digit(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `prefix_len(a, b)` — shared hex-digit prefix length of two keys
    /// (Pastry's radix-16 metric); 0 when either operand is null.
    PrefixLen(Box<Expr>, Box<Expr>),
    /// `owner_of(key, list)` — the list member whose key is
    /// clockwise-nearest at-or-after `key` (ties by node id); null when
    /// the key is null or the list empty.
    OwnerOf(Box<Expr>, String),
    /// Unary ops.
    Not(Box<Expr>),
    Neg(Box<Expr>),
    /// Binary ops.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Visit this expression and every subexpression, preorder. Shared
    /// by the semantic checker and the code generator so both resolve
    /// names over the same traversal.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::NeighborQuery(_, e)
            | Expr::Rtt(e)
            | Expr::Goodput(e)
            | Expr::OwnerOf(e, _)
            | Expr::Not(e)
            | Expr::Neg(e) => e.walk(f),
            Expr::Bin(_, a, b) | Expr::RingDist(a, b) | Expr::PrefixLen(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Expr::RingBetween(a, b, c) | Expr::Digit(a, b, c) => {
                a.walk(f);
                b.walk(f);
                c.walk(f);
            }
            Expr::Int(_)
            | Expr::Var(_)
            | Expr::Field(_)
            | Expr::NeighborSize(_)
            | Expr::NeighborRandom(_) => {}
        }
    }
}

impl Spec {
    /// Message declaration by name.
    pub fn message(&self, name: &str) -> Option<&MessageDecl> {
        self.messages.iter().find(|m| m.name == name)
    }

    /// Declared maximum size of a neighbor list state variable (the
    /// neighbor type's `max`), defaulting to 1 as the interpreter does.
    pub fn list_max(&self, ty: &str) -> usize {
        self.neighbor_types
            .iter()
            .find(|n| n.name == ty)
            .map(|n| n.max)
            .unwrap_or(1)
    }

    /// Timers in declaration order — the order that assigns their
    /// dispatch ids in both the interpreter and the generated code.
    pub fn timer_decls(&self) -> impl Iterator<Item = (&str, Option<i64>)> {
        self.state_vars.iter().filter_map(|v| match v {
            StateVar::Timer { name, period_ms } => Some((name.as_str(), *period_ms)),
            _ => None,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Gt,
    Le,
    Ge,
    And,
    Or,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_expr_matching() {
        let e = StateExpr::Not(Box::new(StateExpr::Or(
            Box::new(StateExpr::Is("joining".into())),
            Box::new(StateExpr::Is("init".into())),
        )));
        assert!(!e.matches("joining"));
        assert!(!e.matches("init"));
        assert!(e.matches("joined"));
        assert!(StateExpr::Any.matches("anything"));
    }

    #[test]
    fn class_mapping_prefers_exact_then_kind() {
        let base = vec![
            TransportDecl {
                kind: TransportKindDecl::Tcp,
                name: "CTRL".into(),
            },
            TransportDecl {
                kind: TransportKindDecl::Udp,
                name: "DATA".into(),
            },
        ];
        // Exact name wins.
        assert_eq!(map_class_to_channel(&base, "DATA"), Some(1));
        // Conventional ladder by kind.
        assert_eq!(map_class_to_channel(&base, "HIGH"), Some(0));
        assert_eq!(map_class_to_channel(&base, "LOW"), Some(0));
        assert_eq!(map_class_to_channel(&base, "BEST_EFFORT"), Some(1));
        // HIGHEST prefers SWP but falls back to TCP here.
        assert_eq!(map_class_to_channel(&base, "HIGHEST"), Some(0));
        // Unknown class: unmapped (default priority).
        assert_eq!(map_class_to_channel(&base, "WEIRD"), None);
        assert_eq!(map_class_to_channel(&[], "HIGH"), None);
    }

    #[test]
    fn state_expr_name_collection() {
        let e = StateExpr::Or(
            Box::new(StateExpr::Is("a".into())),
            Box::new(StateExpr::Not(Box::new(StateExpr::Is("b".into())))),
        );
        let mut names = Vec::new();
        e.names(&mut names);
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }
}
