//! Slot-indexed intermediate representation of a compiled [`Spec`].
//!
//! The interpreter used to walk the AST directly, resolving every
//! variable, list, timer, message, and field *by string name* on every
//! event — a `HashMap<String, Value>` lookup (and often a `String`
//! allocation) per step of every transition. [`IrSpec::lower`] performs
//! that name resolution **once per spec**: sema has already proven every
//! name resolves, so each one collapses to a dense index — `u16` slots
//! into plain `Vec`s for variables, neighbor lists, timers, messages,
//! and message fields, and FSM states become indices checked against
//! per-transition [`StateMask`] bitsets. Transition dispatch becomes a
//! per-trigger jump table: `(trigger kind, id) → [(state mask, body)]`
//! in declaration order, so firing an event is an array index plus a
//! bitmask test instead of a linear scan with `String` comparisons.
//!
//! One `Arc<IrSpec>` is shared by every node interpreting the spec
//! (see [`crate::registry::SpecRegistry`], which lowers each spec once
//! at registration). Lowering is purely a change of representation:
//! execution order, RNG draw points, wire bytes, and engine op order
//! are identical to the AST-walking interpreter, which is what keeps
//! the interpreted/generated exact-equality cross-validation intact.

use crate::ast::*;
use crate::interp::{protocol_id_of, Value};
use macedon_core::{ChannelId, MacedonKey, ProtocolId};
use std::collections::HashMap;
use std::fmt;

/// A spec that cannot be lowered — either it never passed
/// [`crate::sema::analyze`] (unresolved names) or it exceeds an IR
/// capacity bound (more than 128 FSM states).
#[derive(Clone, Debug)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR lowering: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

fn err(msg: impl Into<String>) -> LowerError {
    LowerError(msg.into())
}

/// Set of FSM states (by index) a transition's scope admits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StateMask(u128);

impl StateMask {
    #[inline]
    pub fn contains(self, state: u16) -> bool {
        self.0 & (1u128 << state) != 0
    }
}

/// One scalar variable slot (constants, declared scalars, and one
/// dedicated slot per `foreach` binding site).
#[derive(Clone, Debug)]
pub struct IrVar {
    pub name: String,
    pub init: Value,
}

/// One neighbor-list slot.
#[derive(Clone, Debug)]
pub struct IrList {
    pub name: String,
    pub max: usize,
    pub fail_detect: bool,
}

/// One timer slot; the slot index is the engine timer id (declaration
/// order, exactly as the AST interpreter assigned them).
#[derive(Clone, Debug)]
pub struct IrTimer {
    pub name: String,
    pub period_ms: Option<i64>,
}

/// Wire shape of one message field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldKind {
    Int,
    Bool,
    Node,
    Key,
    Payload,
    Nodes,
}

impl FieldKind {
    fn of(ty: &TypeName) -> FieldKind {
        match ty {
            TypeName::Int => FieldKind::Int,
            TypeName::Bool => FieldKind::Bool,
            TypeName::Node => FieldKind::Node,
            TypeName::Key => FieldKind::Key,
            TypeName::Payload => FieldKind::Payload,
            TypeName::Neighbor(_) => FieldKind::Nodes,
        }
    }
}

#[derive(Clone, Debug)]
pub struct IrField {
    pub name: String,
    pub kind: FieldKind,
}

/// One message declaration, field order fixed; the message id is the
/// slot index (declaration order — the wire id both back ends use).
#[derive(Clone, Debug)]
pub struct IrMessage {
    pub name: String,
    pub channel: ChannelId,
    /// Declared transport class name, as written in the spec. For
    /// layered specs this names a class of the base (tunneling) layer's
    /// table — resolved per stack by
    /// [`crate::interp::InterpretedAgent::set_base_transports`].
    pub transport: Option<String>,
    pub fields: Vec<IrField>,
    /// Positions of `key`-typed fields (routing destination candidates
    /// for `null`-destination layered sends).
    pub key_fields: Vec<u16>,
    /// Positions of `payload`-typed fields (tunneled-data candidates
    /// for the forward-query vetting of lowest-layer sends).
    pub payload_fields: Vec<u16>,
}

/// A lowered transition body.
#[derive(Clone, Debug)]
pub struct IrTransition {
    pub read_locked: bool,
    pub body: Vec<IrStmt>,
}

/// Per-trigger dispatch entries in declaration order: the first entry
/// whose mask admits the current state fires.
pub type Table = Vec<(StateMask, u16)>;

/// The MACEDON API calls a transition can be keyed on. The fixed-arity
/// `downcall(..)` surface plus `init` and the extension hook — the only
/// API triggers the engine can ever deliver (a transition declared for
/// any other API name is unreachable, in the AST interpreter too).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApiKind {
    Init,
    Route,
    RouteIp,
    Multicast,
    Anycast,
    Collect,
    CreateGroup,
    Join,
    Leave,
    Ext,
}

impl ApiKind {
    pub const COUNT: usize = 10;

    pub fn from_name(name: &str) -> Option<ApiKind> {
        Some(match name {
            "init" => ApiKind::Init,
            "route" => ApiKind::Route,
            "routeIP" => ApiKind::RouteIp,
            "multicast" => ApiKind::Multicast,
            "anycast" => ApiKind::Anycast,
            "collect" => ApiKind::Collect,
            "create_group" => ApiKind::CreateGroup,
            "join" => ApiKind::Join,
            "leave" => ApiKind::Leave,
            "downcall_ext" => ApiKind::Ext,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            ApiKind::Init => "init",
            ApiKind::Route => "route",
            ApiKind::RouteIp => "routeIP",
            ApiKind::Multicast => "multicast",
            ApiKind::Anycast => "anycast",
            ApiKind::Collect => "collect",
            ApiKind::CreateGroup => "create_group",
            ApiKind::Join => "join",
            ApiKind::Leave => "leave",
            ApiKind::Ext => "downcall_ext",
        }
    }
}

/// The jump tables: trigger → ordered dispatch entries.
#[derive(Clone, Debug)]
pub struct Tables {
    /// Indexed by message id.
    pub recv: Vec<Table>,
    /// Indexed by message id.
    pub forward: Vec<Table>,
    /// Indexed by timer id.
    pub timer: Vec<Table>,
    /// Indexed by `ApiKind as usize`.
    pub api: [Table; ApiKind::COUNT],
    pub error: Table,
}

/// Which API-argument binding an expression reads (`dest` / `group`),
/// with the variable slot it falls back to outside an API transition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApiArgKind {
    Dest,
    Group,
}

/// Lowered expression: every name is a slot.
#[derive(Clone, Debug)]
pub enum IrExpr {
    Int(i64),
    From,
    Me,
    MyKey,
    Bootstrap,
    Payload,
    Null,
    True,
    False,
    /// `dest` / `group`: the API-transition argument, else the variable
    /// slot of that name, else null — the builtin fallback chain.
    ApiArg {
        which: ApiArgKind,
        fallback: Option<u16>,
    },
    Var(u16),
    /// A neighbor list read as a value (`Value::List` clone).
    ListValue(u16),
    /// Field of the triggering message, by position.
    Field(u16),
    NeighborSize(u16),
    NeighborQuery(u16, Box<IrExpr>),
    NeighborRandom(u16),
    /// Engine-measured smoothed RTT to a peer, ms (0 = unmeasured).
    Rtt(Box<IrExpr>),
    /// Engine-measured smoothed inbound goodput from a peer, kbit/s
    /// (0 = unmeasured).
    Goodput(Box<IrExpr>),
    /// `ring_dist(a, b)` — symmetric ring distance; RING when either
    /// operand is null.
    RingDist(Box<IrExpr>, Box<IrExpr>),
    /// `ring_between(x, lo, hi)` — x ∈ (lo, hi] clockwise; false on
    /// null operands.
    RingBetween(Box<IrExpr>, Box<IrExpr>, Box<IrExpr>),
    /// `digit(key, i, base)` — radix digit of a key; 0 on null/invalid.
    Digit(Box<IrExpr>, Box<IrExpr>, Box<IrExpr>),
    /// `prefix_len(a, b)` — shared hex-digit prefix length; 0 on null.
    PrefixLen(Box<IrExpr>, Box<IrExpr>),
    /// `owner_of(key, list)` — clockwise at-or-after owner within a
    /// neighbor list; null on a null key or empty list.
    OwnerOf(Box<IrExpr>, u16),
    Not(Box<IrExpr>),
    Neg(Box<IrExpr>),
    Bin(BinOp, Box<IrExpr>, Box<IrExpr>),
}

/// Lowered `downcall(<api>, args..)` — name and arity resolved.
#[derive(Clone, Debug)]
pub enum IrDown {
    Join(IrExpr),
    Leave(IrExpr),
    CreateGroup(IrExpr),
    Multicast(IrExpr, IrExpr),
    Anycast(IrExpr, IrExpr),
    Collect(IrExpr, IrExpr),
    Route(IrExpr, IrExpr),
    RouteIp(IrExpr, IrExpr),
}

impl IrDown {
    /// The API name, for runtime value-shape diagnostics.
    pub fn api(&self) -> &'static str {
        match self {
            IrDown::Join(_) => "join",
            IrDown::Leave(_) => "leave",
            IrDown::CreateGroup(_) => "create_group",
            IrDown::Multicast(..) => "multicast",
            IrDown::Anycast(..) => "anycast",
            IrDown::Collect(..) => "collect",
            IrDown::Route(..) => "route",
            IrDown::RouteIp(..) => "routeIP",
        }
    }
}

/// Lowered statement: every name is a slot.
#[derive(Clone, Debug)]
pub enum IrStmt {
    If {
        cond: IrExpr,
        then: Vec<IrStmt>,
        els: Vec<IrStmt>,
    },
    Return,
    StateChange(u16),
    TimerResched(u16, IrExpr),
    TimerCancel(u16),
    NeighborAdd(u16, IrExpr),
    NeighborRemove(u16, IrExpr),
    NeighborClear(u16),
    Send {
        msg: u16,
        dest: IrExpr,
        args: Vec<IrExpr>,
    },
    Quash,
    DownCall(IrDown),
    UpcallNotify(u16, IrExpr),
    Deliver {
        src: IrExpr,
        payload: IrExpr,
    },
    Monitor(IrExpr),
    Unmonitor(IrExpr),
    ForEach {
        var: u16,
        list: u16,
        body: Vec<IrStmt>,
    },
    AssignVar(u16, IrExpr),
    AssignList(u16, IrExpr),
    /// `x = field(f);` where the field is read exactly once in the
    /// body: the decoded value is moved out of the frame instead of
    /// cloned (for list fields that skips a whole `Vec` copy). Emitted
    /// by the lowering's single-use analysis; never inside a `foreach`.
    AssignVarTakeField(u16, u16),
    /// `list = field(f);`, single-use — move instead of clone.
    AssignListTakeField(u16, u16),
    Trace(IrExpr),
}

/// A fully lowered specification, shared (`Arc`) by every interpreting
/// node.
#[derive(Clone, Debug)]
pub struct IrSpec {
    pub name: String,
    pub uses: Option<String>,
    pub proto: ProtocolId,
    pub layered: bool,
    /// State names; index 0 is the implicit `init`.
    pub states: Vec<String>,
    /// Number of transport channels this spec declares (a lowest
    /// layer's channel-table size; `0` for layered specs). Bounds the
    /// `priority` values the engine-served `routeIP` tunnel honors.
    pub num_channels: u16,
    pub vars: Vec<IrVar>,
    pub lists: Vec<IrList>,
    pub timers: Vec<IrTimer>,
    pub messages: Vec<IrMessage>,
    pub transitions: Vec<IrTransition>,
    pub tables: Tables,
    /// Name → slot for declared constants and scalars (introspection;
    /// `foreach` slots are deliberately absent, as the AST interpreter
    /// removed those bindings after each loop).
    var_index: HashMap<String, u16>,
    list_index: HashMap<String, u16>,
}

impl IrSpec {
    pub fn var_slot(&self, name: &str) -> Option<u16> {
        self.var_index.get(name).copied()
    }

    pub fn list_slot(&self, name: &str) -> Option<u16> {
        self.list_index.get(name).copied()
    }

    /// Index of a declared FSM state.
    pub fn state_index(&self, name: &str) -> Option<u16> {
        self.states.iter().position(|s| s == name).map(|i| i as u16)
    }

    /// Lower an analyzed spec. Fails only on specs that never passed
    /// [`crate::sema::analyze`] (unresolved names) or that exceed the
    /// 128-state capacity of [`StateMask`].
    pub fn lower(spec: &Spec) -> Result<IrSpec, LowerError> {
        Lowerer::new(spec)?.run()
    }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

struct Lowerer<'s> {
    spec: &'s Spec,
    states: Vec<String>,
    vars: Vec<IrVar>,
    var_index: HashMap<String, u16>,
    lists: Vec<IrList>,
    list_index: HashMap<String, u16>,
    timers: Vec<IrTimer>,
    timer_index: HashMap<String, u16>,
    messages: Vec<IrMessage>,
    msg_index: HashMap<String, u16>,
    /// Active `foreach` bindings, innermost last: (name, var slot).
    fe_stack: Vec<(String, u16)>,
    /// Message supplying `field(..)` in the transition being lowered.
    trigger_msg: Option<u16>,
}

impl<'s> Lowerer<'s> {
    fn new(spec: &'s Spec) -> Result<Lowerer<'s>, LowerError> {
        let mut states = Vec::with_capacity(spec.states.len() + 1);
        states.push("init".to_string());
        states.extend(spec.states.iter().cloned());
        if states.len() > 128 {
            return Err(err(format!(
                "protocol '{}' declares {} states; the IR state mask holds at most 128",
                spec.name,
                states.len()
            )));
        }

        // Variable slots: constants first, then declared scalars — the
        // same insertion order the AST interpreter used for its map, so
        // a name collision resolves identically (latest declaration
        // shadows, both slots exist).
        let mut vars = Vec::new();
        let mut var_index = HashMap::new();
        for (name, v) in &spec.constants {
            var_index.insert(name.clone(), vars.len() as u16);
            vars.push(IrVar {
                name: name.clone(),
                init: Value::Int(*v),
            });
        }
        let mut lists = Vec::new();
        let mut list_index = HashMap::new();
        let mut timers = Vec::new();
        let mut timer_index = HashMap::new();
        for v in &spec.state_vars {
            match v {
                StateVar::Neighbor {
                    ty,
                    name,
                    fail_detect,
                } => {
                    list_index.insert(name.clone(), lists.len() as u16);
                    lists.push(IrList {
                        name: name.clone(),
                        max: spec.list_max(ty),
                        fail_detect: *fail_detect,
                    });
                }
                StateVar::Timer { name, period_ms } => {
                    timer_index.insert(name.clone(), timers.len() as u16);
                    timers.push(IrTimer {
                        name: name.clone(),
                        period_ms: *period_ms,
                    });
                }
                StateVar::Scalar { ty, name } => {
                    let init = match ty {
                        TypeName::Int => Value::Int(0),
                        TypeName::Bool => Value::Bool(false),
                        TypeName::Node => Value::Null,
                        TypeName::Key => Value::Key(MacedonKey(0)),
                        TypeName::Payload => Value::Null,
                        TypeName::Neighbor(_) => Value::Null,
                    };
                    var_index.insert(name.clone(), vars.len() as u16);
                    vars.push(IrVar {
                        name: name.clone(),
                        init,
                    });
                }
            }
        }

        let mut messages = Vec::new();
        let mut msg_index = HashMap::new();
        for m in &spec.messages {
            let channel = m
                .transport
                .as_ref()
                .and_then(|t| spec.transports.iter().position(|d| &d.name == t))
                .unwrap_or(0);
            let fields: Vec<IrField> = m
                .fields
                .iter()
                .map(|f| IrField {
                    name: f.name.clone(),
                    kind: FieldKind::of(&f.ty),
                })
                .collect();
            let pos_of = |k: FieldKind| {
                fields
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.kind == k)
                    .map(|(i, _)| i as u16)
                    .collect::<Vec<u16>>()
            };
            msg_index.insert(m.name.clone(), messages.len() as u16);
            messages.push(IrMessage {
                name: m.name.clone(),
                channel: ChannelId(channel as u16),
                transport: m.transport.clone(),
                key_fields: pos_of(FieldKind::Key),
                payload_fields: pos_of(FieldKind::Payload),
                fields,
            });
        }

        Ok(Lowerer {
            spec,
            states,
            vars,
            var_index,
            lists,
            list_index,
            timers,
            timer_index,
            messages,
            msg_index,
            fe_stack: Vec::new(),
            trigger_msg: None,
        })
    }

    fn run(mut self) -> Result<IrSpec, LowerError> {
        let mut tables = Tables {
            recv: vec![Vec::new(); self.messages.len()],
            forward: vec![Vec::new(); self.messages.len()],
            timer: vec![Vec::new(); self.timers.len()],
            api: Default::default(),
            error: Vec::new(),
        };
        let mut transitions = Vec::with_capacity(self.spec.transitions.len());
        for t in &self.spec.transitions {
            let mask = self.scope_mask(&t.scope)?;
            self.trigger_msg = match &t.trigger {
                Trigger::Recv(m) | Trigger::Forward(m) => Some(self.msg(m)?),
                _ => None,
            };
            let tidx = transitions.len() as u16;
            let mut body = self.stmts(&t.body)?;
            steal_single_use_fields(&mut body);
            transitions.push(IrTransition {
                read_locked: t.locking == LockingOpt::Read,
                body,
            });
            match &t.trigger {
                Trigger::Recv(m) => tables.recv[self.msg(m)? as usize].push((mask, tidx)),
                Trigger::Forward(m) => tables.forward[self.msg(m)? as usize].push((mask, tidx)),
                Trigger::Timer(name) => {
                    let id = *self
                        .timer_index
                        .get(name)
                        .ok_or_else(|| err(format!("unknown timer '{name}'")))?;
                    tables.timer[id as usize].push((mask, tidx));
                }
                Trigger::Api(name) => {
                    // An API name outside the engine surface can never be
                    // delivered; the transition stays (declaration-order
                    // indices) but no table reaches it — exactly as
                    // unreachable as it was under AST dispatch.
                    if let Some(kind) = ApiKind::from_name(name) {
                        tables.api[kind as usize].push((mask, tidx));
                    }
                }
                Trigger::Error => tables.error.push((mask, tidx)),
            }
        }
        Ok(IrSpec {
            name: self.spec.name.clone(),
            uses: self.spec.uses.clone(),
            proto: protocol_id_of(&self.spec.name),
            layered: self.spec.uses.is_some(),
            num_channels: self.spec.transports.len() as u16,
            states: self.states,
            vars: self.vars,
            lists: self.lists,
            timers: self.timers,
            messages: self.messages,
            transitions,
            tables,
            var_index: self.var_index,
            list_index: self.list_index,
        })
    }

    fn scope_mask(&self, scope: &StateExpr) -> Result<StateMask, LowerError> {
        let mut bits = 0u128;
        for (i, s) in self.states.iter().enumerate() {
            if scope.matches(s) {
                bits |= 1u128 << i;
            }
        }
        Ok(StateMask(bits))
    }

    fn msg(&self, name: &str) -> Result<u16, LowerError> {
        self.msg_index
            .get(name)
            .copied()
            .ok_or_else(|| err(format!("unknown message '{name}'")))
    }

    fn list(&self, name: &str) -> Result<u16, LowerError> {
        self.list_index
            .get(name)
            .copied()
            .ok_or_else(|| err(format!("unknown neighbor list '{name}'")))
    }

    fn timer(&self, name: &str) -> Result<u16, LowerError> {
        self.timer_index
            .get(name)
            .copied()
            .ok_or_else(|| err(format!("unknown timer '{name}'")))
    }

    /// Resolve a value name through the lexical scope the AST
    /// interpreter's mutable variable map produced: innermost `foreach`
    /// binding first, then constants/scalars.
    fn value_slot(&self, name: &str) -> Option<u16> {
        self.fe_stack
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
            .or_else(|| self.var_index.get(name).copied())
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<Vec<IrStmt>, LowerError> {
        stmts.iter().map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, s: &Stmt) -> Result<IrStmt, LowerError> {
        Ok(match s {
            Stmt::If { cond, then, els } => IrStmt::If {
                cond: self.expr(cond)?,
                then: self.stmts(then)?,
                els: self.stmts(els)?,
            },
            Stmt::Return => IrStmt::Return,
            Stmt::StateChange(name) => {
                let idx = self
                    .states
                    .iter()
                    .position(|s| s == name)
                    .ok_or_else(|| err(format!("state_change to unknown state '{name}'")))?;
                IrStmt::StateChange(idx as u16)
            }
            Stmt::TimerResched(name, e) => IrStmt::TimerResched(self.timer(name)?, self.expr(e)?),
            Stmt::TimerCancel(name) => IrStmt::TimerCancel(self.timer(name)?),
            Stmt::NeighborAdd(l, e) => IrStmt::NeighborAdd(self.list(l)?, self.expr(e)?),
            Stmt::NeighborRemove(l, e) => IrStmt::NeighborRemove(self.list(l)?, self.expr(e)?),
            Stmt::NeighborClear(l) => IrStmt::NeighborClear(self.list(l)?),
            Stmt::Send {
                message,
                dest,
                args,
            } => {
                let msg = self.msg(message)?;
                if args.len() != self.messages[msg as usize].fields.len() {
                    return Err(err(format!(
                        "message '{message}' takes {} field(s), got {}",
                        self.messages[msg as usize].fields.len(),
                        args.len()
                    )));
                }
                IrStmt::Send {
                    msg,
                    dest: self.expr(dest)?,
                    args: args
                        .iter()
                        .map(|a| self.expr(a))
                        .collect::<Result<_, _>>()?,
                }
            }
            Stmt::Quash => IrStmt::Quash,
            Stmt::DownCallApi { api, args } => {
                let mut lowered: Vec<IrExpr> = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<_, _>>()?;
                let arity = crate::ast::downcall_arity(api)
                    .ok_or_else(|| err(format!("unknown downcall API '{api}'")))?;
                if lowered.len() != arity {
                    return Err(err(format!(
                        "downcall({api}, ..) takes {arity} argument(s), got {}",
                        lowered.len()
                    )));
                }
                let two = |l: &mut Vec<IrExpr>| {
                    let b = l.pop().expect("arity 2");
                    let a = l.pop().expect("arity 2");
                    (a, b)
                };
                IrStmt::DownCall(match api.as_str() {
                    "join" => IrDown::Join(lowered.pop().expect("arity 1")),
                    "leave" => IrDown::Leave(lowered.pop().expect("arity 1")),
                    "create_group" => IrDown::CreateGroup(lowered.pop().expect("arity 1")),
                    "multicast" => {
                        let (a, b) = two(&mut lowered);
                        IrDown::Multicast(a, b)
                    }
                    "anycast" => {
                        let (a, b) = two(&mut lowered);
                        IrDown::Anycast(a, b)
                    }
                    "collect" => {
                        let (a, b) = two(&mut lowered);
                        IrDown::Collect(a, b)
                    }
                    "route" => {
                        let (a, b) = two(&mut lowered);
                        IrDown::Route(a, b)
                    }
                    "routeIP" => {
                        let (a, b) = two(&mut lowered);
                        IrDown::RouteIp(a, b)
                    }
                    other => return Err(err(format!("unknown downcall API '{other}'"))),
                })
            }
            Stmt::UpcallNotify(l, e) => IrStmt::UpcallNotify(self.list(l)?, self.expr(e)?),
            Stmt::Deliver { src, payload } => IrStmt::Deliver {
                src: self.expr(src)?,
                payload: self.expr(payload)?,
            },
            Stmt::Monitor(e) => IrStmt::Monitor(self.expr(e)?),
            Stmt::Unmonitor(e) => IrStmt::Unmonitor(self.expr(e)?),
            Stmt::ForEach { var, list, body } => {
                let list = self.list(list)?;
                // A dedicated slot per binding site: lexical resolution
                // replaces the AST interpreter's insert/save/restore
                // dance over one shared map.
                let slot = self.vars.len() as u16;
                self.vars.push(IrVar {
                    name: var.clone(),
                    init: Value::Null,
                });
                self.fe_stack.push((var.clone(), slot));
                let body = self.stmts(body);
                self.fe_stack.pop();
                IrStmt::ForEach {
                    var: slot,
                    list,
                    body: body?,
                }
            }
            Stmt::Assign(name, e) => {
                let e = self.expr(e)?;
                // Mirror the AST interpreter's order: a neighbor list
                // wins over a scalar of the same name as an assignment
                // target (while reads resolve scalar-first).
                if let Some(slot) = self.list_index.get(name) {
                    IrStmt::AssignList(*slot, e)
                } else if let Some(slot) = self.var_index.get(name) {
                    IrStmt::AssignVar(*slot, e)
                } else {
                    return Err(err(format!("assignment to undeclared variable '{name}'")));
                }
            }
            Stmt::Trace(e) => IrStmt::Trace(self.expr(e)?),
        })
    }

    fn expr(&mut self, e: &Expr) -> Result<IrExpr, LowerError> {
        Ok(match e {
            Expr::Int(v) => IrExpr::Int(*v),
            Expr::Var(name) => match name.as_str() {
                // Builtins shadow everything — the AST interpreter
                // matched these names before consulting its map.
                "from" => IrExpr::From,
                "me" => IrExpr::Me,
                "my_key" => IrExpr::MyKey,
                "bootstrap" => IrExpr::Bootstrap,
                "payload" => IrExpr::Payload,
                "null" => IrExpr::Null,
                "true" => IrExpr::True,
                "false" => IrExpr::False,
                "dest" => IrExpr::ApiArg {
                    which: ApiArgKind::Dest,
                    fallback: self.value_slot(name),
                },
                "group" => IrExpr::ApiArg {
                    which: ApiArgKind::Group,
                    fallback: self.value_slot(name),
                },
                other => {
                    if let Some(slot) = self.value_slot(other) {
                        IrExpr::Var(slot)
                    } else if let Some(slot) = self.list_index.get(other) {
                        IrExpr::ListValue(*slot)
                    } else {
                        return Err(err(format!("unknown variable '{other}'")));
                    }
                }
            },
            Expr::Field(name) => {
                let Some(msg) = self.trigger_msg else {
                    return Err(err(format!(
                        "field({name}) outside a recv/forward transition"
                    )));
                };
                let decl = &self.messages[msg as usize];
                let idx = decl
                    .fields
                    .iter()
                    .position(|f| f.name == *name)
                    .ok_or_else(|| err(format!("message '{}' has no field '{name}'", decl.name)))?;
                IrExpr::Field(idx as u16)
            }
            Expr::NeighborSize(l) => IrExpr::NeighborSize(self.list(l)?),
            Expr::NeighborQuery(l, e) => {
                IrExpr::NeighborQuery(self.list(l)?, Box::new(self.expr(e)?))
            }
            Expr::NeighborRandom(l) => IrExpr::NeighborRandom(self.list(l)?),
            Expr::Rtt(e) => IrExpr::Rtt(Box::new(self.expr(e)?)),
            Expr::Goodput(e) => IrExpr::Goodput(Box::new(self.expr(e)?)),
            Expr::RingDist(a, b) => {
                IrExpr::RingDist(Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            Expr::RingBetween(x, lo, hi) => IrExpr::RingBetween(
                Box::new(self.expr(x)?),
                Box::new(self.expr(lo)?),
                Box::new(self.expr(hi)?),
            ),
            Expr::Digit(k, i, base) => IrExpr::Digit(
                Box::new(self.expr(k)?),
                Box::new(self.expr(i)?),
                Box::new(self.expr(base)?),
            ),
            Expr::PrefixLen(a, b) => {
                IrExpr::PrefixLen(Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            Expr::OwnerOf(k, l) => IrExpr::OwnerOf(Box::new(self.expr(k)?), self.list(l)?),
            Expr::Not(e) => IrExpr::Not(Box::new(self.expr(e)?)),
            Expr::Neg(e) => IrExpr::Neg(Box::new(self.expr(e)?)),
            Expr::Bin(op, a, b) => {
                IrExpr::Bin(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Single-use field analysis
// ---------------------------------------------------------------------------

fn bump_field(counts: &mut Vec<u32>, idx: u16, weight: u32) {
    let i = idx as usize;
    if counts.len() <= i {
        counts.resize(i + 1, 0);
    }
    counts[i] = counts[i].saturating_add(weight);
}

fn count_expr_fields(e: &IrExpr, weight: u32, counts: &mut Vec<u32>) {
    match e {
        IrExpr::Field(i) => bump_field(counts, *i, weight),
        IrExpr::NeighborQuery(_, e)
        | IrExpr::Rtt(e)
        | IrExpr::Goodput(e)
        | IrExpr::OwnerOf(e, _)
        | IrExpr::Not(e)
        | IrExpr::Neg(e) => count_expr_fields(e, weight, counts),
        IrExpr::Bin(_, a, b) | IrExpr::RingDist(a, b) | IrExpr::PrefixLen(a, b) => {
            count_expr_fields(a, weight, counts);
            count_expr_fields(b, weight, counts);
        }
        IrExpr::RingBetween(a, b, c) | IrExpr::Digit(a, b, c) => {
            count_expr_fields(a, weight, counts);
            count_expr_fields(b, weight, counts);
            count_expr_fields(c, weight, counts);
        }
        _ => {}
    }
}

fn count_down_fields(d: &IrDown, weight: u32, counts: &mut Vec<u32>) {
    match d {
        IrDown::Join(a) | IrDown::Leave(a) | IrDown::CreateGroup(a) => {
            count_expr_fields(a, weight, counts)
        }
        IrDown::Multicast(a, b)
        | IrDown::Anycast(a, b)
        | IrDown::Collect(a, b)
        | IrDown::Route(a, b)
        | IrDown::RouteIp(a, b) => {
            count_expr_fields(a, weight, counts);
            count_expr_fields(b, weight, counts);
        }
    }
}

fn count_stmt_fields(s: &IrStmt, weight: u32, counts: &mut Vec<u32>) {
    match s {
        IrStmt::If { cond, then, els } => {
            count_expr_fields(cond, weight, counts);
            for t in then.iter().chain(els) {
                count_stmt_fields(t, weight, counts);
            }
        }
        // A loop body re-reads its fields every iteration: weight 2
        // disqualifies anything inside from the single-use rewrite.
        IrStmt::ForEach { body, .. } => {
            for t in body {
                count_stmt_fields(t, 2, counts);
            }
        }
        IrStmt::TimerResched(_, e)
        | IrStmt::NeighborAdd(_, e)
        | IrStmt::NeighborRemove(_, e)
        | IrStmt::UpcallNotify(_, e)
        | IrStmt::Monitor(e)
        | IrStmt::Unmonitor(e)
        | IrStmt::AssignVar(_, e)
        | IrStmt::AssignList(_, e)
        | IrStmt::Trace(e) => count_expr_fields(e, weight, counts),
        IrStmt::Send { dest, args, .. } => {
            count_expr_fields(dest, weight, counts);
            for a in args {
                count_expr_fields(a, weight, counts);
            }
        }
        IrStmt::DownCall(d) => count_down_fields(d, weight, counts),
        IrStmt::Deliver { src, payload } => {
            count_expr_fields(src, weight, counts);
            count_expr_fields(payload, weight, counts);
        }
        IrStmt::Return
        | IrStmt::Quash
        | IrStmt::StateChange(_)
        | IrStmt::TimerCancel(_)
        | IrStmt::NeighborClear(_)
        | IrStmt::AssignVarTakeField(..)
        | IrStmt::AssignListTakeField(..) => {}
    }
}

fn apply_field_steals(stmts: &mut [IrStmt], counts: &[u32]) {
    for s in stmts {
        match s {
            IrStmt::If { then, els, .. } => {
                apply_field_steals(then, counts);
                apply_field_steals(els, counts);
            }
            // Deliberately not descending into ForEach: a loop body
            // executes repeatedly, so a steal there would null the
            // field for later iterations.
            IrStmt::AssignVar(slot, IrExpr::Field(i)) if counts.get(*i as usize) == Some(&1) => {
                *s = IrStmt::AssignVarTakeField(*slot, *i);
            }
            IrStmt::AssignList(slot, IrExpr::Field(i)) if counts.get(*i as usize) == Some(&1) => {
                *s = IrStmt::AssignListTakeField(*slot, *i);
            }
            _ => {}
        }
    }
}

/// Rewrite `x = field(f);` into a move when `f` is read exactly once in
/// the transition body — semantics identical, one clone (for list
/// fields, one `Vec` allocation) cheaper per firing.
fn steal_single_use_fields(body: &mut [IrStmt]) {
    let mut counts = Vec::new();
    for s in body.iter() {
        count_stmt_fields(s, 1, &mut counts);
    }
    apply_field_steals(body, &counts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn lower(src: &str) -> IrSpec {
        IrSpec::lower(&compile(src).unwrap()).unwrap()
    }

    #[test]
    fn slots_follow_declaration_order() {
        let ir = lower(
            "protocol p; addressing hash;
             constants { K = 7; }
             states { a; b; }
             neighbor_types { kid 4 { } }
             transports { TCP C; UDP D; }
             messages { D ping { node who; } C pong { } }
             state_variables { kid kids; timer t1; timer t2 100; int n; }
             transitions { any timer t2 { n = K; } }",
        );
        assert_eq!(ir.states, ["init", "a", "b"]);
        assert_eq!(ir.var_slot("K"), Some(0));
        assert_eq!(ir.var_slot("n"), Some(1));
        assert_eq!(ir.vars[0].init, Value::Int(7));
        assert_eq!(ir.list_slot("kids"), Some(0));
        assert_eq!(ir.lists[0].max, 4);
        assert_eq!(ir.timers.len(), 2);
        assert_eq!(ir.timers[1].name, "t2");
        assert_eq!(ir.timers[1].period_ms, Some(100));
        // ping rides the second declared transport; pong the first.
        assert_eq!(ir.messages[0].channel, ChannelId(1));
        assert_eq!(ir.messages[1].channel, ChannelId(0));
        // The timer table keys t2 (slot 1) to the only transition.
        assert_eq!(ir.tables.timer[1].len(), 1);
        assert!(ir.tables.timer[0].is_empty());
    }

    #[test]
    fn scope_masks_match_state_expressions() {
        let ir = lower(
            "protocol p; addressing hash;
             states { joining; joined; }
             transports { TCP C; }
             messages { C m { } }
             transitions {
                !(joining|init) recv m { }
                any recv m { }
             }",
        );
        let table = &ir.tables.recv[0];
        assert_eq!(table.len(), 2);
        let (mask, first) = table[0];
        assert_eq!(first, 0, "declaration order preserved");
        assert!(!mask.contains(0), "init excluded");
        assert!(!mask.contains(1), "joining excluded");
        assert!(mask.contains(2), "joined admitted");
        let (any, _) = table[1];
        for s in 0..3 {
            assert!(any.contains(s));
        }
    }

    #[test]
    fn foreach_gets_dedicated_shadow_slot() {
        let ir = lower(
            "protocol p; addressing hash;
             neighbor_types { kid 4 { } }
             transports { TCP C; }
             messages { C ping { node who; } }
             state_variables { kid kids; node n; }
             transitions { any API init { foreach (n in kids) { ping(n, n); } n = null; } }",
        );
        // Declared scalar keeps slot 0; the loop binding gets its own.
        assert_eq!(ir.var_slot("n"), Some(0));
        assert_eq!(ir.vars.len(), 2);
        let body = &ir.transitions[0].body;
        let IrStmt::ForEach {
            var, body: inner, ..
        } = &body[0]
        else {
            panic!("expected foreach, got {body:?}");
        };
        assert_eq!(*var, 1, "loop variable shadows into a fresh slot");
        let IrStmt::Send { dest, .. } = &inner[0] else {
            panic!("expected send");
        };
        assert!(matches!(dest, IrExpr::Var(1)), "body reads the loop slot");
        let IrStmt::AssignVar(slot, _) = &body[1] else {
            panic!("expected assignment");
        };
        assert_eq!(*slot, 0, "after the loop the declared scalar is back");
    }

    #[test]
    fn key_and_payload_field_positions_precomputed() {
        let ir = lower(
            "protocol p uses base; addressing hash;
             messages { m { int a; key g; payload d; key h; } }",
        );
        assert_eq!(ir.messages[0].key_fields, [1, 3]);
        assert_eq!(ir.messages[0].payload_fields, [2]);
        assert!(ir.layered);
    }

    #[test]
    fn unreachable_api_names_get_no_table() {
        let ir = lower(
            "protocol p; addressing hash;
             transitions { any API init { } }",
        );
        assert_eq!(ir.tables.api[ApiKind::Init as usize].len(), 1);
        for kind in 1..ApiKind::COUNT {
            assert!(ir.tables.api[kind].is_empty());
        }
    }

    #[test]
    fn all_bundled_specs_lower() {
        for (name, src) in crate::bundled_specs() {
            let spec = compile(src).unwrap();
            let ir = IrSpec::lower(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(ir.name, name);
            assert_eq!(ir.messages.len(), spec.messages.len());
            assert_eq!(ir.transitions.len(), spec.transitions.len());
        }
    }

    #[test]
    fn unanalyzed_spec_diagnosed() {
        let spec = crate::parse(
            "protocol p; addressing hash;
             transitions { any API init { ghost = 1; } }",
        )
        .unwrap();
        let e = IrSpec::lower(&spec).unwrap_err();
        assert!(e.to_string().contains("undeclared variable 'ghost'"));
    }

    #[test]
    fn state_mask_capacity_guarded() {
        let mut src = String::from("protocol p; addressing hash; states { ");
        for i in 0..128 {
            src.push_str(&format!("s{i}; "));
        }
        src.push('}');
        let e = IrSpec::lower(&compile(&src).unwrap()).unwrap_err();
        assert!(e.to_string().contains("at most 128"));
    }
}
