//! Recursive-descent parser for the grammar of Figure 4 plus the action
//! language of §3.3.

use crate::ast::*;
use crate::lexer::{Lexer, ParseError, Token, TokenKind};

/// Parse a complete specification.
pub fn parse(source: &str) -> Result<Spec, ParseError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { tokens, pos: 0 }.spec()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            line: t.line,
            col: t.col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek().kind)))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Is the next token this keyword?
    fn at_word(&self, word: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == word)
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.at_word(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_word(word) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{word}', found {:?}", self.peek().kind)))
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(self.err("expected integer literal")),
        }
    }

    // ---- top level ----------------------------------------------------

    fn spec(&mut self) -> Result<Spec, ParseError> {
        self.expect_word("protocol")?;
        let name = self.ident()?;
        let uses = if self.eat_word("uses") {
            Some(self.ident()?)
        } else {
            None
        };
        self.eat(&TokenKind::Semi);

        self.expect_word("addressing")?;
        let addressing = match self.ident()?.as_str() {
            "hash" => AddressingMode::Hash,
            "ip" => AddressingMode::Ip,
            other => return Err(self.err(format!("unknown addressing mode '{other}'"))),
        };
        self.eat(&TokenKind::Semi);

        let mut trace = TraceMode::Off;
        if self.eat_word("trace_") {
            trace = match self.ident()?.as_str() {
                "off" => TraceMode::Off,
                "low" => TraceMode::Low,
                "med" => TraceMode::Med,
                "high" => TraceMode::High,
                other => return Err(self.err(format!("unknown trace level '{other}'"))),
            };
            self.eat(&TokenKind::Semi);
        }

        let mut spec = Spec {
            name,
            uses,
            addressing,
            trace,
            constants: Vec::new(),
            states: Vec::new(),
            neighbor_types: Vec::new(),
            transports: Vec::new(),
            messages: Vec::new(),
            state_vars: Vec::new(),
            transitions: Vec::new(),
        };

        while !matches!(self.peek().kind, TokenKind::Eof) {
            let section = self.ident()?;
            match section.as_str() {
                "constants" => self.constants(&mut spec)?,
                "states" => self.states(&mut spec)?,
                "neighbor_types" => self.neighbor_types(&mut spec)?,
                "transports" => self.transports(&mut spec)?,
                "messages" => self.messages(&mut spec)?,
                "state_variables" | "auxiliary_data" => self.state_vars(&mut spec)?,
                "transitions" => self.transitions(&mut spec)?,
                other => return Err(self.err(format!("unknown section '{other}'"))),
            }
        }
        Ok(spec)
    }

    fn constants(&mut self, spec: &mut Spec) -> Result<(), ParseError> {
        self.expect(TokenKind::LBrace)?;
        while !self.eat(&TokenKind::RBrace) {
            let name = self.ident()?;
            self.expect(TokenKind::Assign)?;
            let neg = self.eat(&TokenKind::Minus);
            let mut v = self.int()?;
            if neg {
                v = -v;
            }
            self.expect(TokenKind::Semi)?;
            spec.constants.push((name, v));
        }
        Ok(())
    }

    fn states(&mut self, spec: &mut Spec) -> Result<(), ParseError> {
        self.expect(TokenKind::LBrace)?;
        while !self.eat(&TokenKind::RBrace) {
            let s = self.ident()?;
            self.expect(TokenKind::Semi)?;
            spec.states.push(s);
        }
        Ok(())
    }

    fn type_name(&mut self) -> Result<TypeName, ParseError> {
        let w = self.ident()?;
        Ok(match w.as_str() {
            "int" => TypeName::Int,
            "bool" => TypeName::Bool,
            "node" => TypeName::Node,
            "key" => TypeName::Key,
            "payload" => TypeName::Payload,
            other => TypeName::Neighbor(other.to_string()),
        })
    }

    fn fields(&mut self) -> Result<Vec<Field>, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let ty = self.type_name()?;
            let name = self.ident()?;
            self.expect(TokenKind::Semi)?;
            out.push(Field { ty, name });
        }
        Ok(out)
    }

    fn neighbor_types(&mut self, spec: &mut Spec) -> Result<(), ParseError> {
        self.expect(TokenKind::LBrace)?;
        while !self.eat(&TokenKind::RBrace) {
            let name = self.ident()?;
            let max = if let TokenKind::Int(v) = self.peek().kind {
                self.bump();
                v.max(1) as usize
            } else {
                1
            };
            let fields = self.fields()?;
            spec.neighbor_types.push(NeighborType { name, max, fields });
        }
        Ok(())
    }

    fn transports(&mut self, spec: &mut Spec) -> Result<(), ParseError> {
        self.expect(TokenKind::LBrace)?;
        while !self.eat(&TokenKind::RBrace) {
            let kind = match self.ident()?.as_str() {
                "TCP" => TransportKindDecl::Tcp,
                "UDP" => TransportKindDecl::Udp,
                "SWP" => TransportKindDecl::Swp,
                other => return Err(self.err(format!("unknown transport kind '{other}'"))),
            };
            let name = self.ident()?;
            self.expect(TokenKind::Semi)?;
            spec.transports.push(TransportDecl { kind, name });
        }
        Ok(())
    }

    fn messages(&mut self, spec: &mut Spec) -> Result<(), ParseError> {
        self.expect(TokenKind::LBrace)?;
        while !self.eat(&TokenKind::RBrace) {
            let first = self.ident()?;
            // `<transport> <name> { .. }` or `<name> { .. }` — decide by
            // whether another identifier follows.
            let (transport, name) = if matches!(self.peek().kind, TokenKind::Ident(_)) {
                (Some(first), self.ident()?)
            } else {
                (None, first)
            };
            let fields = self.fields()?;
            spec.messages.push(MessageDecl {
                transport,
                name,
                fields,
            });
        }
        Ok(())
    }

    fn state_vars(&mut self, spec: &mut Spec) -> Result<(), ParseError> {
        self.expect(TokenKind::LBrace)?;
        while !self.eat(&TokenKind::RBrace) {
            if self.eat_word("timer") {
                let name = self.ident()?;
                let period_ms = match self.peek().kind.clone() {
                    TokenKind::Int(v) => {
                        self.bump();
                        Some(v)
                    }
                    // A constant name in declaration position: resolve it
                    // against the constants declared so far.
                    TokenKind::Ident(c) => {
                        self.bump();
                        match spec.constants.iter().find(|(n, _)| *n == c) {
                            Some(&(_, v)) => Some(v),
                            None => {
                                return Err(self.err(format!(
                                    "timer '{name}' period references unknown constant '{c}' \
                                     (constants must be declared before use)"
                                )))
                            }
                        }
                    }
                    _ => None,
                };
                self.expect(TokenKind::Semi)?;
                spec.state_vars.push(StateVar::Timer { name, period_ms });
                continue;
            }
            let fail_detect = self.eat_word("fail_detect");
            let ty = self.type_name()?;
            let name = self.ident()?;
            self.expect(TokenKind::Semi)?;
            match ty {
                TypeName::Neighbor(t) => spec.state_vars.push(StateVar::Neighbor {
                    ty: t,
                    name,
                    fail_detect,
                }),
                scalar => {
                    if fail_detect {
                        return Err(self.err("fail_detect applies to neighbor lists only"));
                    }
                    spec.state_vars.push(StateVar::Scalar { ty: scalar, name });
                }
            }
        }
        Ok(())
    }

    // ---- transitions ---------------------------------------------------

    fn transitions(&mut self, spec: &mut Spec) -> Result<(), ParseError> {
        self.expect(TokenKind::LBrace)?;
        while !self.eat(&TokenKind::RBrace) {
            let scope = self.state_expr()?;
            let trigger = if self.eat_word("API") {
                Trigger::Api(self.ident()?)
            } else if self.eat_word("timer") {
                Trigger::Timer(self.ident()?)
            } else if self.eat_word("recv") {
                Trigger::Recv(self.ident()?)
            } else if self.eat_word("forward") {
                Trigger::Forward(self.ident()?)
            } else if self.eat_word("error") {
                Trigger::Error
            } else {
                return Err(self.err("expected API/timer/recv/forward/error trigger"));
            };
            let mut locking = LockingOpt::Write;
            if self.eat(&TokenKind::LBracket) {
                while !self.eat(&TokenKind::RBracket) {
                    self.expect_word("locking")?;
                    locking = match self.ident()?.as_str() {
                        "read" => LockingOpt::Read,
                        "write" => LockingOpt::Write,
                        other => return Err(self.err(format!("unknown locking '{other}'"))),
                    };
                    self.eat(&TokenKind::Semi);
                }
            }
            let body = self.block()?;
            spec.transitions.push(Transition {
                scope,
                trigger,
                locking,
                body,
            });
        }
        Ok(())
    }

    /// `any`, a state name, `!expr`, `(e|e|..)`.
    fn state_expr(&mut self) -> Result<StateExpr, ParseError> {
        let mut lhs = self.state_atom()?;
        while self.eat(&TokenKind::Pipe) {
            let rhs = self.state_atom()?;
            lhs = StateExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn state_atom(&mut self) -> Result<StateExpr, ParseError> {
        if self.eat(&TokenKind::Bang) {
            return Ok(StateExpr::Not(Box::new(self.state_atom()?)));
        }
        if self.eat(&TokenKind::LParen) {
            let e = self.state_expr()?;
            self.expect(TokenKind::RParen)?;
            return Ok(e);
        }
        let w = self.ident()?;
        if w == "any" {
            Ok(StateExpr::Any)
        } else {
            Ok(StateExpr::Is(w))
        }
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_word("if") {
            self.expect(TokenKind::LParen)?;
            let cond = self.expr()?;
            self.expect(TokenKind::RParen)?;
            let then = self.block()?;
            let els = if self.eat_word("else") {
                if self.at_word("if") {
                    vec![self.stmt()?]
                } else {
                    self.block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_word("foreach") {
            self.expect(TokenKind::LParen)?;
            let var = self.ident()?;
            self.expect_word("in")?;
            let list = self.ident()?;
            self.expect(TokenKind::RParen)?;
            let body = self.block()?;
            return Ok(Stmt::ForEach { var, list, body });
        }
        if self.eat_word("return") {
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::Return);
        }
        if self.eat_word("state_change") {
            self.expect(TokenKind::LParen)?;
            let s = self.ident()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::StateChange(s));
        }
        if self.eat_word("timer_resched") {
            self.expect(TokenKind::LParen)?;
            let name = self.ident()?;
            self.expect(TokenKind::Comma)?;
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::TimerResched(name, e));
        }
        if self.eat_word("timer_cancel") {
            self.expect(TokenKind::LParen)?;
            let name = self.ident()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::TimerCancel(name));
        }
        if self.eat_word("neighbor_add") {
            self.expect(TokenKind::LParen)?;
            let list = self.ident()?;
            self.expect(TokenKind::Comma)?;
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::NeighborAdd(list, e));
        }
        if self.eat_word("neighbor_remove") {
            self.expect(TokenKind::LParen)?;
            let list = self.ident()?;
            self.expect(TokenKind::Comma)?;
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::NeighborRemove(list, e));
        }
        if self.eat_word("neighbor_clear") {
            self.expect(TokenKind::LParen)?;
            let list = self.ident()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::NeighborClear(list));
        }
        if self.eat_word("upcall_notify") {
            self.expect(TokenKind::LParen)?;
            let list = self.ident()?;
            self.expect(TokenKind::Comma)?;
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::UpcallNotify(list, e));
        }
        if self.eat_word("deliver") {
            self.expect(TokenKind::LParen)?;
            let src = self.expr()?;
            self.expect(TokenKind::Comma)?;
            let payload = self.expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::Deliver { src, payload });
        }
        if self.eat_word("monitor") {
            self.expect(TokenKind::LParen)?;
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::Monitor(e));
        }
        if self.eat_word("unmonitor") {
            self.expect(TokenKind::LParen)?;
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::Unmonitor(e));
        }
        if self.eat_word("trace") {
            self.expect(TokenKind::LParen)?;
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::Trace(e));
        }
        if self.eat_word("quash") {
            self.expect(TokenKind::LParen)?;
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::Quash);
        }
        if self.eat_word("downcall") {
            self.expect(TokenKind::LParen)?;
            let api = self.ident()?;
            let mut args = Vec::new();
            while self.eat(&TokenKind::Comma) {
                args.push(self.expr()?);
            }
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::DownCallApi { api, args });
        }
        // Either `ident = expr;` (assignment) or `msg(dest, args...);`.
        let name = self.ident()?;
        if self.eat(&TokenKind::Assign) {
            let e = self.expr()?;
            self.expect(TokenKind::Semi)?;
            return Ok(Stmt::Assign(name, e));
        }
        if self.eat(&TokenKind::LParen) {
            let mut args = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if self.eat(&TokenKind::RParen) {
                        break;
                    }
                    self.expect(TokenKind::Comma)?;
                }
            }
            self.expect(TokenKind::Semi)?;
            if args.is_empty() {
                return Err(self.err(format!("message send '{name}' needs a destination")));
            }
            let dest = args.remove(0);
            return Ok(Stmt::Send {
                message: name,
                dest,
                args,
            });
        }
        Err(self.err(format!("unexpected statement starting with '{name}'")))
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Bang) {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.eat(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if let TokenKind::Int(v) = self.peek().kind {
            self.bump();
            return Ok(Expr::Int(v));
        }
        if self.eat(&TokenKind::LParen) {
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            return Ok(e);
        }
        let name = self.ident()?;
        match name.as_str() {
            "field" => {
                self.expect(TokenKind::LParen)?;
                let f = self.ident()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Field(f))
            }
            "neighbor_size" => {
                self.expect(TokenKind::LParen)?;
                let l = self.ident()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::NeighborSize(l))
            }
            "neighbor_query" => {
                self.expect(TokenKind::LParen)?;
                let l = self.ident()?;
                self.expect(TokenKind::Comma)?;
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::NeighborQuery(l, Box::new(e)))
            }
            "neighbor_random" => {
                self.expect(TokenKind::LParen)?;
                let l = self.ident()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::NeighborRandom(l))
            }
            "rtt" => {
                self.expect(TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Rtt(Box::new(e)))
            }
            "goodput" => {
                self.expect(TokenKind::LParen)?;
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Goodput(Box::new(e)))
            }
            "ring_dist" => {
                self.expect(TokenKind::LParen)?;
                let a = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let b = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::RingDist(Box::new(a), Box::new(b)))
            }
            "ring_between" => {
                self.expect(TokenKind::LParen)?;
                let x = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let lo = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let hi = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::RingBetween(Box::new(x), Box::new(lo), Box::new(hi)))
            }
            "digit" => {
                self.expect(TokenKind::LParen)?;
                let k = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let i = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let base = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Digit(Box::new(k), Box::new(i), Box::new(base)))
            }
            "prefix_len" => {
                self.expect(TokenKind::LParen)?;
                let a = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let b = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::PrefixLen(Box::new(a), Box::new(b)))
            }
            "owner_of" => {
                self.expect(TokenKind::LParen)?;
                let k = self.expr()?;
                self.expect(TokenKind::Comma)?;
                let l = self.ident()?;
                self.expect(TokenKind::RParen)?;
                Ok(Expr::OwnerOf(Box::new(k), l))
            }
            _ => Ok(Expr::Var(name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"
        protocol mini;
        addressing hash;
        trace_ low;
        constants { PINT = 500; }
        states { joining; joined; }
        neighbor_types { parent 1 { } kids 4 { int delay; } }
        transports { TCP CTRL; UDP BULK; }
        messages { CTRL join { node who; } BULK data { key src; } }
        state_variables {
            parent papa;
            fail_detect kids children;
            timer q 1000;
            int count;
        }
        transitions {
            any API init {
                count = 0;
                state_change(joining);
            }
            joining recv join [locking read;] {
                if (field(who) == me) { return; }
                neighbor_add(children, from);
            }
            !(joining) timer q {
                count = count + 1;
                timer_resched(q, PINT);
            }
        }
    "#;

    #[test]
    fn parses_mini_spec() {
        let s = parse(MINI).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.addressing, AddressingMode::Hash);
        assert_eq!(s.trace, TraceMode::Low);
        assert_eq!(s.constants, vec![("PINT".to_string(), 500)]);
        assert_eq!(s.states, vec!["joining", "joined"]);
        assert_eq!(s.neighbor_types.len(), 2);
        assert_eq!(s.neighbor_types[1].max, 4);
        assert_eq!(s.transports.len(), 2);
        assert_eq!(s.messages.len(), 2);
        assert_eq!(s.messages[0].transport.as_deref(), Some("CTRL"));
        assert_eq!(s.state_vars.len(), 4);
        assert_eq!(s.transitions.len(), 3);
    }

    #[test]
    fn uses_clause() {
        let s = parse("protocol scribe uses pastry; addressing hash;").unwrap();
        assert_eq!(s.uses.as_deref(), Some("pastry"));
    }

    #[test]
    fn transition_scoping_and_locking() {
        let s = parse(MINI).unwrap();
        let t = &s.transitions[1];
        assert!(t.scope.matches("joining"));
        assert!(!t.scope.matches("joined"));
        assert_eq!(t.locking, LockingOpt::Read);
        assert!(matches!(&t.trigger, Trigger::Recv(m) if m == "join"));
    }

    #[test]
    fn negated_scope() {
        let s = parse(MINI).unwrap();
        let t = &s.transitions[2];
        assert!(!t.scope.matches("joining"));
        assert!(t.scope.matches("joined"));
    }

    #[test]
    fn fail_detect_flag() {
        let s = parse(MINI).unwrap();
        assert!(matches!(
            &s.state_vars[1],
            StateVar::Neighbor { fail_detect: true, name, .. } if name == "children"
        ));
    }

    #[test]
    fn timer_with_period() {
        let s = parse(MINI).unwrap();
        assert!(matches!(
            &s.state_vars[2],
            StateVar::Timer {
                period_ms: Some(1000),
                ..
            }
        ));
    }

    #[test]
    fn expression_precedence() {
        let s = parse(
            "protocol p; addressing ip; transitions { any API init { x = 1 + 2 * 3 == 7; } }",
        )
        .unwrap();
        let Stmt::Assign(_, e) = &s.transitions[0].body[0] else {
            panic!()
        };
        // (1 + (2*3)) == 7
        let Expr::Bin(BinOp::Eq, lhs, _) = e else {
            panic!("top is ==")
        };
        let Expr::Bin(BinOp::Add, _, rhs) = &**lhs else {
            panic!("lhs is +")
        };
        assert!(matches!(&**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn message_send_statement() {
        let s = parse(
            "protocol p; addressing ip; messages { hello { node who; } }
             transitions { any API init { hello(me, me); } }",
        )
        .unwrap();
        assert!(matches!(
            &s.transitions[0].body[0],
            Stmt::Send { message, args, .. } if message == "hello" && args.len() == 1
        ));
    }

    #[test]
    fn else_if_chains() {
        let s = parse(
            "protocol p; addressing ip; transitions { any API init {
                if (x == 1) { y = 1; } else if (x == 2) { y = 2; } else { y = 3; }
            } }",
        )
        .unwrap();
        let Stmt::If { els, .. } = &s.transitions[0].body[0] else {
            panic!()
        };
        assert!(matches!(&els[0], Stmt::If { .. }));
    }

    #[test]
    fn timer_period_resolves_constant_name() {
        let s = parse(
            "protocol p; addressing ip;
             constants { BEAT_MS = 750; }
             state_variables { timer t BEAT_MS; }",
        )
        .unwrap();
        assert!(matches!(
            &s.state_vars[0],
            StateVar::Timer {
                period_ms: Some(750),
                ..
            }
        ));
    }

    #[test]
    fn timer_period_unknown_constant_rejected() {
        let e = parse("protocol p; addressing ip; state_variables { timer t NOPE; }").unwrap_err();
        assert!(e.msg.contains("unknown constant 'NOPE'"), "{e}");
    }

    #[test]
    fn quash_and_downcall_statements() {
        let s = parse(
            "protocol s uses base; addressing hash;
             messages { ping { node who; } }
             transitions {
                any forward ping { quash(); }
                any API join { downcall(join, group); downcall(multicast, group, payload); }
             }",
        )
        .unwrap();
        assert!(matches!(&s.transitions[0].body[0], Stmt::Quash));
        assert!(matches!(
            &s.transitions[1].body[0],
            Stmt::DownCallApi { api, args } if api == "join" && args.len() == 1
        ));
        assert!(matches!(
            &s.transitions[1].body[1],
            Stmt::DownCallApi { api, args } if api == "multicast" && args.len() == 2
        ));
    }

    #[test]
    fn rtt_goodput_builtin_expressions() {
        let s = parse(
            "protocol p; addressing ip;
             state_variables { node papa; int x; }
             transitions { any API init { x = rtt(papa) + goodput(papa); } }",
        )
        .unwrap();
        let Stmt::Assign(_, Expr::Bin(BinOp::Add, lhs, rhs)) = &s.transitions[0].body[0] else {
            panic!()
        };
        assert!(matches!(&**lhs, Expr::Rtt(_)));
        assert!(matches!(&**rhs, Expr::Goodput(_)));
    }

    #[test]
    fn key_builtin_expressions() {
        let s = parse(
            "protocol p; addressing hash;
             neighbor_types { succs 4 { } }
             state_variables { key target; int x; bool b; node n; }
             transitions { any API init {
                 x = ring_dist(my_key, target);
                 b = ring_between(target, my_key, target);
                 x = digit(target, 0, 16) + prefix_len(my_key, target);
                 n = owner_of(target, succs);
                 target = my_key + 1024;
             } }",
        )
        .unwrap();
        let body = &s.transitions[0].body;
        assert!(matches!(&body[0], Stmt::Assign(_, Expr::RingDist(_, _))));
        assert!(matches!(
            &body[1],
            Stmt::Assign(_, Expr::RingBetween(_, _, _))
        ));
        let Stmt::Assign(_, Expr::Bin(BinOp::Add, lhs, rhs)) = &body[2] else {
            panic!()
        };
        assert!(matches!(&**lhs, Expr::Digit(_, _, _)));
        assert!(matches!(&**rhs, Expr::PrefixLen(_, _)));
        assert!(matches!(
            &body[3],
            Stmt::Assign(_, Expr::OwnerOf(_, l)) if l == "succs"
        ));
    }

    #[test]
    fn error_messages_carry_position() {
        let e = parse("protocol p; addressing nowhere;").unwrap_err();
        assert!(e.to_string().contains("unknown addressing"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn unknown_section_rejected() {
        let e = parse("protocol p; addressing ip; bogus { }").unwrap_err();
        assert!(e.msg.contains("unknown section"));
    }
}
