//! Pretty-printer: render a parsed [`Spec`] back to canonical `.mac`
//! source. `parse(pretty(parse(src)))` is structurally identical to
//! `parse(src)` — the round-trip property the `prop` tests pin down —
//! which makes the printer usable as a formatter for spec files.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a specification as canonical source text.
pub fn pretty(spec: &Spec) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = write!(w, "protocol {}", spec.name);
    if let Some(u) = &spec.uses {
        let _ = write!(w, " uses {u}");
    }
    let _ = writeln!(w, ";");
    let _ = writeln!(
        w,
        "addressing {};",
        match spec.addressing {
            AddressingMode::Hash => "hash",
            AddressingMode::Ip => "ip",
        }
    );
    if spec.trace != TraceMode::Off {
        let _ = writeln!(
            w,
            "trace_ {};",
            match spec.trace {
                TraceMode::Off => "off",
                TraceMode::Low => "low",
                TraceMode::Med => "med",
                TraceMode::High => "high",
            }
        );
    }
    if !spec.constants.is_empty() {
        let _ = writeln!(w, "\nconstants {{");
        for (n, v) in &spec.constants {
            let _ = writeln!(w, "    {n} = {v};");
        }
        let _ = writeln!(w, "}}");
    }
    if !spec.states.is_empty() {
        let _ = write!(w, "\nstates {{ ");
        for s in &spec.states {
            let _ = write!(w, "{s}; ");
        }
        let _ = writeln!(w, "}}");
    }
    if !spec.neighbor_types.is_empty() {
        let _ = writeln!(w, "\nneighbor_types {{");
        for n in &spec.neighbor_types {
            let _ = write!(w, "    {} {} {{ ", n.name, n.max);
            for f in &n.fields {
                let _ = write!(w, "{} {}; ", type_name(&f.ty), f.name);
            }
            let _ = writeln!(w, "}}");
        }
        let _ = writeln!(w, "}}");
    }
    if !spec.transports.is_empty() {
        let _ = writeln!(w, "\ntransports {{");
        for t in &spec.transports {
            let kind = match t.kind {
                TransportKindDecl::Tcp => "TCP",
                TransportKindDecl::Udp => "UDP",
                TransportKindDecl::Swp => "SWP",
            };
            let _ = writeln!(w, "    {kind} {};", t.name);
        }
        let _ = writeln!(w, "}}");
    }
    if !spec.messages.is_empty() {
        let _ = writeln!(w, "\nmessages {{");
        for m in &spec.messages {
            let _ = write!(w, "    ");
            if let Some(t) = &m.transport {
                let _ = write!(w, "{t} ");
            }
            let _ = write!(w, "{} {{ ", m.name);
            for f in &m.fields {
                let _ = write!(w, "{} {}; ", type_name(&f.ty), f.name);
            }
            let _ = writeln!(w, "}}");
        }
        let _ = writeln!(w, "}}");
    }
    if !spec.state_vars.is_empty() {
        let _ = writeln!(w, "\nstate_variables {{");
        for v in &spec.state_vars {
            match v {
                StateVar::Neighbor {
                    ty,
                    name,
                    fail_detect,
                } => {
                    let fd = if *fail_detect { "fail_detect " } else { "" };
                    let _ = writeln!(w, "    {fd}{ty} {name};");
                }
                StateVar::Timer { name, period_ms } => match period_ms {
                    Some(p) => {
                        let _ = writeln!(w, "    timer {name} {p};");
                    }
                    None => {
                        let _ = writeln!(w, "    timer {name};");
                    }
                },
                StateVar::Scalar { ty, name } => {
                    let _ = writeln!(w, "    {} {name};", type_name(ty));
                }
            }
        }
        let _ = writeln!(w, "}}");
    }
    if !spec.transitions.is_empty() {
        let _ = writeln!(w, "\ntransitions {{");
        for t in &spec.transitions {
            let _ = write!(w, "    {} {}", scope(&t.scope), trigger(&t.trigger));
            if t.locking == LockingOpt::Read {
                let _ = write!(w, " [locking read;]");
            }
            let _ = writeln!(w, " {{");
            stmts(w, &t.body, 8);
            let _ = writeln!(w, "    }}");
        }
        let _ = writeln!(w, "}}");
    }
    out
}

fn type_name(t: &TypeName) -> String {
    match t {
        TypeName::Int => "int".into(),
        TypeName::Bool => "bool".into(),
        TypeName::Node => "node".into(),
        TypeName::Key => "key".into(),
        TypeName::Payload => "payload".into(),
        TypeName::Neighbor(n) => n.clone(),
    }
}

fn scope(s: &StateExpr) -> String {
    match s {
        StateExpr::Any => "any".into(),
        StateExpr::Is(n) => n.clone(),
        StateExpr::Not(e) => format!("!({})", scope(e)),
        StateExpr::Or(a, b) => format!("({}|{})", scope(a), scope(b)),
    }
}

fn trigger(t: &Trigger) -> String {
    match t {
        Trigger::Api(a) => format!("API {a}"),
        Trigger::Timer(n) => format!("timer {n}"),
        Trigger::Recv(m) => format!("recv {m}"),
        Trigger::Forward(m) => format!("forward {m}"),
        Trigger::Error => "error".into(),
    }
}

fn stmts(w: &mut String, body: &[Stmt], indent: usize) {
    let pad = " ".repeat(indent);
    for s in body {
        match s {
            Stmt::If { cond, then, els } => {
                let _ = writeln!(w, "{pad}if ({}) {{", expr(cond));
                stmts(w, then, indent + 4);
                if els.is_empty() {
                    let _ = writeln!(w, "{pad}}}");
                } else {
                    let _ = writeln!(w, "{pad}}} else {{");
                    stmts(w, els, indent + 4);
                    let _ = writeln!(w, "{pad}}}");
                }
            }
            Stmt::ForEach { var, list, body } => {
                let _ = writeln!(w, "{pad}foreach ({var} in {list}) {{");
                stmts(w, body, indent + 4);
                let _ = writeln!(w, "{pad}}}");
            }
            Stmt::StateChange(st) => {
                let _ = writeln!(w, "{pad}state_change({st});");
            }
            Stmt::TimerResched(t, e) => {
                let _ = writeln!(w, "{pad}timer_resched({t}, {});", expr(e));
            }
            Stmt::TimerCancel(t) => {
                let _ = writeln!(w, "{pad}timer_cancel({t});");
            }
            Stmt::NeighborAdd(l, e) => {
                let _ = writeln!(w, "{pad}neighbor_add({l}, {});", expr(e));
            }
            Stmt::NeighborRemove(l, e) => {
                let _ = writeln!(w, "{pad}neighbor_remove({l}, {});", expr(e));
            }
            Stmt::NeighborClear(l) => {
                let _ = writeln!(w, "{pad}neighbor_clear({l});");
            }
            Stmt::Send {
                message,
                dest,
                args,
            } => {
                let mut parts = vec![expr(dest)];
                parts.extend(args.iter().map(expr));
                let _ = writeln!(w, "{pad}{message}({});", parts.join(", "));
            }
            Stmt::UpcallNotify(l, e) => {
                let _ = writeln!(w, "{pad}upcall_notify({l}, {});", expr(e));
            }
            Stmt::Deliver { src, payload } => {
                let _ = writeln!(w, "{pad}deliver({}, {});", expr(src), expr(payload));
            }
            Stmt::Monitor(e) => {
                let _ = writeln!(w, "{pad}monitor({});", expr(e));
            }
            Stmt::Unmonitor(e) => {
                let _ = writeln!(w, "{pad}unmonitor({});", expr(e));
            }
            Stmt::Assign(n, e) => {
                let _ = writeln!(w, "{pad}{n} = {};", expr(e));
            }
            Stmt::Trace(e) => {
                let _ = writeln!(w, "{pad}trace({});", expr(e));
            }
            Stmt::Return => {
                let _ = writeln!(w, "{pad}return;");
            }
            Stmt::Quash => {
                let _ = writeln!(w, "{pad}quash();");
            }
            Stmt::DownCallApi { api, args } => {
                let mut parts = vec![api.clone()];
                parts.extend(args.iter().map(expr));
                let _ = writeln!(w, "{pad}downcall({});", parts.join(", "));
            }
        }
    }
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Field(f) => format!("field({f})"),
        Expr::NeighborSize(l) => format!("neighbor_size({l})"),
        Expr::NeighborQuery(l, e) => format!("neighbor_query({l}, {})", expr(e)),
        Expr::NeighborRandom(l) => format!("neighbor_random({l})"),
        Expr::Rtt(e) => format!("rtt({})", expr(e)),
        Expr::Goodput(e) => format!("goodput({})", expr(e)),
        Expr::RingDist(a, b) => format!("ring_dist({}, {})", expr(a), expr(b)),
        Expr::RingBetween(x, lo, hi) => {
            format!("ring_between({}, {}, {})", expr(x), expr(lo), expr(hi))
        }
        Expr::Digit(k, i, base) => format!("digit({}, {}, {})", expr(k), expr(i), expr(base)),
        Expr::PrefixLen(a, b) => format!("prefix_len({}, {})", expr(a), expr(b)),
        Expr::OwnerOf(k, l) => format!("owner_of({}, {l})", expr(k)),
        Expr::Not(e) => format!("!({})", expr(e)),
        Expr::Neg(e) => format!("-({})", expr(e)),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Le => "<=",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {sym} {})", expr(a), expr(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Structural equality through a second parse.
    fn roundtrips(src: &str) {
        let once = parse(src).unwrap();
        let printed = pretty(&once);
        let twice = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        // Compare the debug views of the two ASTs.
        assert_eq!(
            format!("{once:?}"),
            format!("{twice:?}"),
            "pretty output:\n{printed}"
        );
    }

    #[test]
    fn bundled_specs_roundtrip() {
        for (name, src) in crate::bundled_specs() {
            let _ = name;
            roundtrips(src);
        }
    }

    #[test]
    fn minimal_spec_roundtrips() {
        roundtrips("protocol p; addressing ip;");
    }

    #[test]
    fn printing_is_idempotent() {
        for (_, src) in crate::bundled_specs() {
            let spec = parse(src).unwrap();
            let p1 = pretty(&spec);
            let p2 = pretty(&parse(&p1).unwrap());
            assert_eq!(p1, p2);
        }
    }
}
