//! # macedon-lang
//!
//! The MACEDON domain-specific language (Figure 4 of the paper): lexer,
//! recursive-descent parser, semantic analysis, an **interpreter** that
//! executes `.mac` specifications as live [`macedon_core::Agent`]s, and a
//! **code generator** that emits the Rust agent source the paper's
//! `macedon` translator would produce (it emitted C++; the artifact here
//! is the idiomatic equivalent).
//!
//! A protocol specification has the shape:
//!
//! ```text
//! protocol overcast;
//! addressing hash;
//! trace_ med;
//!
//! constants { PINT = 10000; }
//! states { joining; probing; probed; joined; }
//! neighbor_types { oparent 1 { } ochildren 8 { int delay; } }
//! transports { SWP HIGHEST; TCP HIGH; UDP BEST_EFFORT; }
//! messages { BEST_EFFORT join { node who; } HIGHEST join_reply { int response; } }
//! state_variables {
//!     oparent papa;
//!     fail_detect ochildren kids;
//!     timer probe_requester;
//!     int count;
//! }
//! transitions {
//!     any API init { ... }
//!     joining recv join_reply [locking write;] { ... }
//!     probing timer keep_probing [locking read;] { ... }
//!     !(joining|init) recv join { ... }
//! }
//! ```
//!
//! The `specs/` directory ships specifications for all eight overlays the
//! paper implements (plus RandTree, Bullet's base). Every spec — layered
//! ones included — runs under the interpreter: [`registry::SpecRegistry`]
//! resolves a spec's `uses` chain (splitstream → scribe → pastry) and
//! assembles the interpreted layers into a ready-to-run stack, and the
//! integration suite cross-validates interpreted overlays against the
//! native agents.

pub mod ast;
pub mod codegen;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod loc;
pub mod parser;
pub mod pretty;
pub mod registry;
pub mod sema;

pub use ast::Spec;
pub use interp::InterpretedAgent;
pub use ir::IrSpec;
pub use lexer::{Lexer, ParseError, Token, TokenKind};
pub use parser::parse;
pub use registry::{ChainError, SpecRegistry};
pub use sema::analyze;

/// Parse + semantically check a specification in one call.
pub fn compile(source: &str) -> Result<Spec, ParseError> {
    let spec = parse(source)?;
    analyze(&spec)?;
    Ok(spec)
}

/// The bundled specifications (name, source): the eight overlays of the
/// paper's Figure 7 plus RandTree (Bullet's base layer, Figure 2).
pub fn bundled_specs() -> Vec<(&'static str, &'static str)> {
    vec![
        ("ammo", include_str!("../specs/ammo.mac")),
        ("bullet", include_str!("../specs/bullet.mac")),
        ("chord", include_str!("../specs/chord.mac")),
        ("nice", include_str!("../specs/nice.mac")),
        ("overcast", include_str!("../specs/overcast.mac")),
        ("pastry", include_str!("../specs/pastry.mac")),
        ("randtree", include_str!("../specs/randtree.mac")),
        ("scribe", include_str!("../specs/scribe.mac")),
        ("splitstream", include_str!("../specs/splitstream.mac")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bundled_specs_compile() {
        for (name, src) in bundled_specs() {
            match compile(src) {
                Ok(spec) => assert_eq!(spec.name, name, "protocol name matches file"),
                Err(e) => panic!("{name}.mac failed to compile: {e}"),
            }
        }
    }

    #[test]
    fn scribe_uses_pastry_by_default() {
        let (_, src) = bundled_specs()
            .into_iter()
            .find(|(n, _)| *n == "scribe")
            .unwrap();
        let spec = compile(src).unwrap();
        assert_eq!(spec.uses.as_deref(), Some("pastry"));
    }
}
