//! The spec registry and stack assembler: resolve a specification's
//! `uses` chain against a set of compiled specs and compose the
//! interpreted layers into a ready-to-run stack for
//! [`macedon_core::World::spawn_at`].
//!
//! The paper's layering declaration ("protocol scribe uses pastry")
//! is transitive: `splitstream` uses `scribe` uses `pastry`. The
//! registry walks that chain, diagnosing dangling bases and cycles
//! properly (instead of a panic at instantiation time), and returns the
//! layers lowest-first — the order [`macedon_core::Stack`] expects.
//!
//! Mixed stacks are first-class: [`SpecRegistry::resolve_chain`] hands
//! back the ordered specs so a caller can substitute a native agent for
//! any layer (e.g. native Pastry under an interpreted `scribe.mac`),
//! while [`SpecRegistry::build_stack`] is the all-interpreted
//! convenience path.

use crate::ast::{Spec, TraceMode};
use crate::interp::{channel_table, InterpretedAgent};
use crate::ir::IrSpec;
use macedon_core::{Agent, ChannelSpec, NodeId, TraceLevel};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Why a `uses` chain failed to resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The requested protocol is not in the registry.
    UnknownSpec(String),
    /// `spec` declares `uses base` but `base` is not in the registry.
    UnknownBase { spec: String, base: String },
    /// Following `uses` revisited a protocol; the cycle is reported in
    /// walk order starting at the revisited name.
    Cycle(Vec<String>),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownSpec(name) => {
                write!(f, "no specification named '{name}' in the registry")
            }
            ChainError::UnknownBase { spec, base } => {
                write!(f, "'{spec}' uses '{base}', which is not in the registry")
            }
            ChainError::Cycle(names) => {
                write!(f, "cyclic 'uses' chain: {}", names.join(" -> "))
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// A set of compiled specifications addressable by protocol name.
///
/// Each spec is lowered to its slot-indexed [`IrSpec`] once, at
/// registration; every stack the registry assembles shares that one
/// `Arc<IrSpec>` across all nodes and layers (instead of re-deriving
/// per-agent name tables, as the pre-IR interpreter did).
#[derive(Default)]
pub struct SpecRegistry {
    specs: HashMap<String, Arc<Spec>>,
    irs: HashMap<String, Arc<IrSpec>>,
}

impl SpecRegistry {
    pub fn new() -> SpecRegistry {
        SpecRegistry::default()
    }

    /// Registry preloaded with the nine bundled `.mac` specs.
    pub fn bundled() -> SpecRegistry {
        let mut r = SpecRegistry::new();
        for (_, src) in crate::bundled_specs() {
            let spec = crate::compile(src).expect("bundled spec compiles");
            r.insert(Arc::new(spec));
        }
        r
    }

    /// Register a compiled spec under its protocol name (replacing any
    /// previous spec of the same name), lowering it to IR once for all
    /// future stacks.
    ///
    /// Panics if the spec fails IR lowering — only possible when it
    /// never passed [`crate::sema::analyze`] (use [`crate::compile`]).
    pub fn insert(&mut self, spec: Arc<Spec>) {
        let ir = IrSpec::lower(&spec).unwrap_or_else(|e| {
            panic!(
                "spec '{}' cannot be registered: {e} (was it sema-analyzed?)",
                spec.name
            )
        });
        self.irs.insert(spec.name.clone(), Arc::new(ir));
        self.specs.insert(spec.name.clone(), spec);
    }

    pub fn get(&self, name: &str) -> Option<&Arc<Spec>> {
        self.specs.get(name)
    }

    /// The shared lowered form of a registered spec.
    pub fn ir(&self, name: &str) -> Option<&Arc<IrSpec>> {
        self.irs.get(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.specs.keys().map(|s| s.as_str())
    }

    /// Resolve `name`'s transitive `uses` chain. Returns the specs
    /// **lowest layer first** (`splitstream` → `[pastry, scribe,
    /// splitstream]`), or a diagnostic for dangling or cyclic chains.
    pub fn resolve_chain(&self, name: &str) -> Result<Vec<Arc<Spec>>, ChainError> {
        let mut chain = Vec::new(); // top-first while walking
        let mut walked: Vec<String> = Vec::new();
        let mut cur = self
            .specs
            .get(name)
            .ok_or_else(|| ChainError::UnknownSpec(name.to_string()))?;
        loop {
            if walked.contains(&cur.name) {
                let mut cycle = walked.clone();
                cycle.push(cur.name.clone());
                // Trim to the cycle proper: start at the revisited name.
                let start = cycle.iter().position(|n| n == &cur.name).unwrap_or(0);
                return Err(ChainError::Cycle(cycle.split_off(start)));
            }
            walked.push(cur.name.clone());
            chain.push(cur.clone());
            match cur.uses.as_deref() {
                None => break,
                Some(base) => {
                    cur = self
                        .specs
                        .get(base)
                        .ok_or_else(|| ChainError::UnknownBase {
                            spec: cur.name.clone(),
                            base: base.to_string(),
                        })?;
                }
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// Assemble the all-interpreted stack for `name`, lowest layer
    /// first, ready for [`macedon_core::World::spawn_at`]. `bootstrap`
    /// is handed to every layer (`None` for the designated root). Every
    /// layer executes the registry's shared `Arc<IrSpec>` — spawning a
    /// thousand nodes lowers nothing.
    pub fn build_stack(
        &self,
        name: &str,
        bootstrap: Option<NodeId>,
    ) -> Result<Vec<Box<dyn Agent>>, ChainError> {
        let chain = self.resolve_chain(name)?;
        let base_transports = chain[0].transports.clone();
        Ok(chain
            .into_iter()
            .map(|spec| {
                let ir = self.irs[&spec.name].clone();
                let mut agent = InterpretedAgent::from_ir(ir, bootstrap);
                if spec.uses.is_some() {
                    // Layered message classes resolve against the
                    // lowest (tunneling) layer's transport table.
                    agent.set_base_transports(&base_transports);
                }
                Box::new(agent) as Box<dyn Agent>
            })
            .collect())
    }

    /// The channel table a `World` hosting this stack must be built
    /// with: the lowest layer's transport declarations (upper layers
    /// never touch the wire).
    pub fn channel_table_for(&self, name: &str) -> Result<Vec<ChannelSpec>, ChainError> {
        let chain = self.resolve_chain(name)?;
        Ok(channel_table(&chain[0]))
    }

    /// The engine trace level the spec's `trace_` header asks for —
    /// the **top** spec of the chain decides (it names the deployment;
    /// its bases keep whatever verbosity the stack runs at).
    pub fn trace_level_for(&self, name: &str) -> Result<TraceLevel, ChainError> {
        let spec = self
            .specs
            .get(name)
            .ok_or_else(|| ChainError::UnknownSpec(name.to_string()))?;
        Ok(match spec.trace {
            TraceMode::Off => TraceLevel::Off,
            TraceMode::Low => TraceLevel::Low,
            TraceMode::Med => TraceLevel::Med,
            TraceMode::High => TraceLevel::High,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn spec_of(src: &str) -> Arc<Spec> {
        Arc::new(compile(src).unwrap())
    }

    fn registry(srcs: &[&str]) -> SpecRegistry {
        let mut r = SpecRegistry::new();
        for s in srcs {
            r.insert(spec_of(s));
        }
        r
    }

    #[test]
    fn chain_resolves_lowest_first() {
        let r = registry(&[
            "protocol c uses b; addressing hash;",
            "protocol b uses a; addressing hash;",
            "protocol a; addressing hash; transports { TCP T; }",
        ]);
        let chain = r.resolve_chain("c").unwrap();
        let names: Vec<&str> = chain.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        // A mid-chain protocol resolves to its own suffix.
        let names: Vec<String> = r
            .resolve_chain("b")
            .unwrap()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn unknown_spec_and_base_diagnosed() {
        let r = registry(&["protocol top uses ghost; addressing hash;"]);
        assert_eq!(
            r.resolve_chain("nope").unwrap_err(),
            ChainError::UnknownSpec("nope".into())
        );
        let e = r.resolve_chain("top").unwrap_err();
        assert_eq!(
            e,
            ChainError::UnknownBase {
                spec: "top".into(),
                base: "ghost".into()
            }
        );
        assert!(e.to_string().contains("'top' uses 'ghost'"));
    }

    #[test]
    fn cycle_diagnosed() {
        let r = registry(&[
            "protocol x uses y; addressing hash;",
            "protocol y uses x; addressing hash;",
        ]);
        let e = r.resolve_chain("x").unwrap_err();
        let ChainError::Cycle(names) = &e else {
            panic!("expected cycle, got {e:?}");
        };
        assert_eq!(names.first(), names.last());
        assert!(e.to_string().contains("cyclic"));
    }

    #[test]
    fn bundled_registry_resolves_the_roster() {
        let r = SpecRegistry::bundled();
        let names: Vec<String> = r
            .resolve_chain("splitstream")
            .unwrap()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(names, ["pastry", "scribe", "splitstream"]);
        let names: Vec<String> = r
            .resolve_chain("bullet")
            .unwrap()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(names, ["randtree", "bullet"]);
        // Channel table comes from the lowest layer.
        let table = r.channel_table_for("splitstream").unwrap();
        assert_eq!(table[0].name, "CTRL");
    }

    #[test]
    fn stacks_share_one_ir_per_spec() {
        let r = SpecRegistry::bundled();
        let ir = r.ir("pastry").expect("lowered at registration").clone();
        let base_refs = Arc::strong_count(&ir);
        let stacks: Vec<_> = (0..4)
            .map(|_| r.build_stack("scribe", None).unwrap())
            .collect();
        // Four stacks added four handles to the registry's single IR.
        assert_eq!(Arc::strong_count(&ir), base_refs + stacks.len());
        for s in &stacks {
            let a: &InterpretedAgent = s[0].as_any().downcast_ref().unwrap();
            assert!(Arc::ptr_eq(a.ir(), &ir));
        }
    }

    #[test]
    fn build_stack_orders_layers() {
        let r = SpecRegistry::bundled();
        let stack = r.build_stack("scribe", None).unwrap();
        assert_eq!(stack.len(), 2);
        assert_eq!(
            stack[0].protocol_id(),
            crate::interp::protocol_id_of("pastry")
        );
        assert_eq!(
            stack[1].protocol_id(),
            crate::interp::protocol_id_of("scribe")
        );
    }
}
