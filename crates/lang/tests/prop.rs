//! Property tests on the DSL front end.

use macedon_lang::ast::StateExpr;
use macedon_lang::{parse, Lexer};
use proptest::prelude::*;

/// Random state-scope expressions as source text plus the oracle AST.
fn state_expr_strategy() -> impl Strategy<Value = (String, StateExpr)> {
    let leaf = prop_oneof![
        Just(("any".to_string(), StateExpr::Any)),
        proptest::sample::select(vec!["alpha", "beta", "gamma", "delta"])
            .prop_map(|s| (s.to_string(), StateExpr::Is(s.to_string()))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner
                .clone()
                .prop_map(|(s, e)| (format!("!({s})"), StateExpr::Not(Box::new(e)))),
            (inner.clone(), inner).prop_map(|((s1, e1), (s2, e2))| {
                (
                    format!("({s1}|{s2})"),
                    StateExpr::Or(Box::new(e1), Box::new(e2)),
                )
            }),
        ]
    })
}

proptest! {
    /// Parsing a rendered scope expression evaluates identically to the
    /// oracle on all states.
    #[test]
    fn state_scope_roundtrip((src, oracle) in state_expr_strategy()) {
        let program = format!(
            "protocol p; addressing ip; states {{ alpha; beta; gamma; delta; }}\
             transitions {{ {src} API init {{ }} }}"
        );
        let spec = parse(&program).unwrap();
        let parsed = &spec.transitions[0].scope;
        for st in ["alpha", "beta", "gamma", "delta", "init"] {
            prop_assert_eq!(parsed.matches(st), oracle.matches(st), "state {}", st);
        }
    }

    /// The lexer never panics on arbitrary printable input.
    #[test]
    fn lexer_total_on_ascii(s in "[ -~]{0,200}") {
        let _ = Lexer::new(&s).tokenize();
    }

    /// Integer literals roundtrip through the lexer.
    #[test]
    fn int_literals_roundtrip(v in 0i64..i64::MAX / 2) {
        let toks = Lexer::new(&v.to_string()).tokenize().unwrap();
        prop_assert!(matches!(toks[0].kind, macedon_lang::TokenKind::Int(x) if x == v));
    }

    /// spec_loc never exceeds physical lines; semicolons never exceeds
    /// byte count.
    #[test]
    fn loc_bounds(s in "[ -~\n]{0,500}") {
        prop_assert!(macedon_lang::loc::spec_loc(&s) <= s.lines().count());
        prop_assert!(macedon_lang::loc::semicolons(&s) <= s.len());
    }
}
