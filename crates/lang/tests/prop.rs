//! Property tests on the DSL front end.

use macedon_lang::ast::StateExpr;
use macedon_lang::registry::{ChainError, SpecRegistry};
use macedon_lang::{compile, parse, Lexer};
use proptest::prelude::*;
use std::sync::Arc;

/// Random state-scope expressions as source text plus the oracle AST.
fn state_expr_strategy() -> impl Strategy<Value = (String, StateExpr)> {
    let leaf = prop_oneof![
        Just(("any".to_string(), StateExpr::Any)),
        proptest::sample::select(vec!["alpha", "beta", "gamma", "delta"])
            .prop_map(|s| (s.to_string(), StateExpr::Is(s.to_string()))),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner
                .clone()
                .prop_map(|(s, e)| (format!("!({s})"), StateExpr::Not(Box::new(e)))),
            (inner.clone(), inner).prop_map(|((s1, e1), (s2, e2))| {
                (
                    format!("({s1}|{s2})"),
                    StateExpr::Or(Box::new(e1), Box::new(e2)),
                )
            }),
        ]
    })
}

proptest! {
    /// Parsing a rendered scope expression evaluates identically to the
    /// oracle on all states.
    #[test]
    fn state_scope_roundtrip((src, oracle) in state_expr_strategy()) {
        let program = format!(
            "protocol p; addressing ip; states {{ alpha; beta; gamma; delta; }}\
             transitions {{ {src} API init {{ }} }}"
        );
        let spec = parse(&program).unwrap();
        let parsed = &spec.transitions[0].scope;
        for st in ["alpha", "beta", "gamma", "delta", "init"] {
            prop_assert_eq!(parsed.matches(st), oracle.matches(st), "state {}", st);
        }
    }

    /// The lexer never panics on arbitrary printable input.
    #[test]
    fn lexer_total_on_ascii(s in "[ -~]{0,200}") {
        let _ = Lexer::new(&s).tokenize();
    }

    /// Integer literals roundtrip through the lexer.
    #[test]
    fn int_literals_roundtrip(v in 0i64..i64::MAX / 2) {
        let toks = Lexer::new(&v.to_string()).tokenize().unwrap();
        prop_assert!(matches!(toks[0].kind, macedon_lang::TokenKind::Int(x) if x == v));
    }

    /// spec_loc never exceeds physical lines; semicolons never exceeds
    /// byte count.
    #[test]
    fn loc_bounds(s in "[ -~\n]{0,500}") {
        prop_assert!(macedon_lang::loc::spec_loc(&s) <= s.lines().count());
        prop_assert!(macedon_lang::loc::semicolons(&s) <= s.len());
    }
}

/// Build a registry holding the linear chain `p0 uses p1 uses ... p{k-1}`
/// (with `p{k-1}` the lowest layer owning a transport), inserted in a
/// seed-shuffled order so resolution cannot depend on insertion order.
fn chain_registry(k: usize, shuffle_seed: u64) -> SpecRegistry {
    let mut srcs: Vec<String> = (0..k)
        .map(|i| {
            if i + 1 < k {
                format!("protocol p{i} uses p{}; addressing hash;", i + 1)
            } else {
                format!("protocol p{i}; addressing hash; transports {{ TCP T; }}")
            }
        })
        .collect();
    // Fisher–Yates with a splitmix-style step: deterministic per seed.
    let mut s = shuffle_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    for i in (1..srcs.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        srcs.swap(i, (s % (i as u64 + 1)) as usize);
    }
    let mut reg = SpecRegistry::new();
    for src in &srcs {
        reg.insert(Arc::new(compile(src).unwrap()));
    }
    reg
}

proptest! {
    /// Arbitrary linear `uses` chains resolve bottom-up in topological
    /// order, from any entry point along the chain.
    #[test]
    fn uses_chains_resolve_in_topological_order(
        k in 1usize..9,
        entry_frac in 0u64..1000,
        seed in 0u64..u64::MAX / 2,
    ) {
        let reg = chain_registry(k, seed);
        let entry = (entry_frac as usize) % k;
        let chain = reg.resolve_chain(&format!("p{entry}")).unwrap();
        // Lowest (deepest) layer first; each layer uses its predecessor.
        prop_assert_eq!(chain.len(), k - entry);
        prop_assert!(chain[0].uses.is_none());
        for w in chain.windows(2) {
            prop_assert_eq!(w[1].uses.as_deref(), Some(w[0].name.as_str()));
        }
        let entry_name = format!("p{entry}");
        prop_assert_eq!(chain.last().unwrap().name.as_str(), entry_name.as_str());
    }

    /// Removing any non-entry link from the chain yields an
    /// UnknownSpec/UnknownBase diagnostic, never a panic or bogus chain.
    #[test]
    fn dangling_bases_are_diagnosed(
        k in 2usize..9,
        hole_frac in 0u64..1000,
        seed in 0u64..u64::MAX / 2,
    ) {
        let hole = (hole_frac as usize) % k;
        let mut reg = SpecRegistry::new();
        for i in 0..k {
            if i == hole {
                continue;
            }
            let src = if i + 1 < k {
                format!("protocol p{i} uses p{}; addressing hash;", i + 1)
            } else {
                format!("protocol p{i}; addressing hash; transports {{ TCP T; }}")
            };
            reg.insert(Arc::new(compile(&src).unwrap()));
        }
        let _ = seed;
        match reg.resolve_chain("p0") {
            Err(ChainError::UnknownSpec(n)) => prop_assert_eq!(n, format!("p{hole}")),
            Err(ChainError::UnknownBase { base, .. }) => prop_assert_eq!(base, format!("p{hole}")),
            Err(other) => prop_assert!(false, "unexpected diagnostic {:?}", other),
            Ok(_) => prop_assert!(false, "hole at p{} resolved anyway", hole),
        }
    }

    /// Closing the chain back on itself at any point is reported as a
    /// cycle whose walk starts and ends at the revisited protocol.
    #[test]
    fn cyclic_chains_are_diagnosed(
        k in 2usize..8,
        back_frac in 0u64..1000,
    ) {
        // Close the chain anywhere except onto the last spec itself
        // (sema already rejects `p uses p` at compile time).
        let back = (back_frac as usize) % (k - 1);
        let mut reg = SpecRegistry::new();
        for i in 0..k {
            let base = if i + 1 < k { i + 1 } else { back };
            reg.insert(Arc::new(compile(
                &format!("protocol p{i} uses p{base}; addressing hash;"),
            ).unwrap()));
        }
        let Err(ChainError::Cycle(names)) = reg.resolve_chain("p0") else {
            return Err(TestCaseError::fail("expected a cycle diagnostic".into()));
        };
        prop_assert_eq!(names.first(), names.last());
        let back_name = format!("p{back}");
        prop_assert_eq!(names.first().unwrap().as_str(), back_name.as_str());
        prop_assert_eq!(names.len(), k - back + 1);
    }
}
