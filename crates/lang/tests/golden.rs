//! Golden-file snapshots of the generated code for all nine bundled
//! specs. A codegen change that alters output shows up here as a
//! readable diff instead of an opaque downstream failure; the checked-in
//! `crates/generated` sources are the same text (its `lib.rs` aside).
//!
//! To refresh after an intentional codegen or spec change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p macedon-lang --test golden
//! cargo run -p macedon-bench --bin regen
//! ```

use macedon_lang::{bundled_specs, codegen, compile, SpecRegistry};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}.rs.golden"))
}

/// First differing line, for a readable failure message.
fn first_diff(want: &str, got: &str) -> String {
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        if w != g {
            return format!("line {}:\n  golden:    {w}\n  generated: {g}", i + 1);
        }
    }
    format!(
        "line counts differ: golden {} vs generated {}",
        want.lines().count(),
        got.lines().count()
    )
}

#[test]
fn generated_code_matches_golden_snapshots() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let reg = SpecRegistry::bundled();
    for (name, src) in bundled_specs() {
        let spec = compile(src).expect("bundled spec compiles");
        // Same generation path as `regen`: layered specs resolve their
        // message classes against the chain's base transport table.
        let chain = reg.resolve_chain(name).expect("bundled chain resolves");
        let base = spec.uses.as_ref().map(|_| chain[0].transports.as_slice());
        let got = codegen::generate_with_base(&spec, base).expect("bundled spec generates");
        let path = golden_path(name);
        if update {
            std::fs::write(&path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden file {}; run UPDATE_GOLDEN=1 cargo test -p macedon-lang \
                 --test golden",
                path.display()
            )
        });
        assert!(
            want == got,
            "{name}.mac codegen drifted from its golden snapshot.\n{}\n\
             If intentional: UPDATE_GOLDEN=1 cargo test -p macedon-lang --test golden \
             && cargo run -p macedon-bench --bin regen",
            first_diff(&want, &got)
        );
    }
}

#[test]
fn golden_snapshots_cover_exactly_the_bundled_roster() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut on_disk: Vec<String> = std::fs::read_dir(dir)
        .expect("golden dir exists")
        .flatten()
        .filter_map(|e| {
            e.file_name()
                .to_string_lossy()
                .strip_suffix(".rs.golden")
                .map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = bundled_specs()
        .into_iter()
        .map(|(n, _)| n.to_string())
        .collect();
    expected.sort();
    assert_eq!(on_disk, expected, "stale or missing golden files");
}
