//! Time-series telemetry sampler: a registry of engine-wide counters
//! and gauges snapshotted every N sim-milliseconds, exported as
//! schema-pinned JSONL or CSV.
//!
//! Each [`TelemetrySample`] is a point-in-time read of the whole
//! deployment — cumulative event-class counters, scheduler queue depth,
//! network drops, per-interval link stress (mirroring
//! `macedon_net::metrics::link_stress` but over the sampling interval
//! and in integer milli-units), trace-ring pressure, membership, and
//! the order-independent RTT/goodput aggregates from every alive
//! node's measurement ledger. Sampling reads only — it never mutates
//! simulation state, so a run with telemetry enabled produces exactly
//! the same results as one without.

use crate::world::World;
use macedon_sim::{Duration, Time};

/// One snapshot of the world's counters and gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Virtual instant of the snapshot, µs.
    pub at_us: u64,
    /// Cumulative fired events: packet motion through the network.
    pub events_net: u64,
    /// Cumulative fired events: transport connection timers.
    pub events_conn_timer: u64,
    /// Cumulative fired events: protocol timers declared by agents.
    pub events_agent_timer: u64,
    /// Cumulative fired events: failure-detector sweeps.
    pub events_fd_tick: u64,
    /// Cumulative fired events: scripted spawns/API calls/crashes.
    pub events_control: u64,
    /// Scheduler queue depth across all shards at the snapshot.
    pub pending_events: u64,
    /// Cumulative packets dropped anywhere in the network.
    pub net_drops: u64,
    /// Max packets any one physical link carried this interval.
    pub link_stress_max: u64,
    /// Mean packets per used link this interval, in 1/1000 packets
    /// (integer milli-mean; 0 when no link carried traffic).
    pub link_stress_mean_milli: u64,
    /// Physical links that carried traffic this interval.
    pub links_used: u64,
    /// Trace records currently held in the bounded rings.
    pub trace_records: u64,
    /// Cumulative trace records evicted by ring overflow.
    pub trace_dropped: u64,
    /// Nodes alive at the snapshot.
    pub alive_nodes: u64,
    /// Mean smoothed RTT across all (node, peer) estimates, µs.
    pub mean_rtt_us: u64,
    /// Mean smoothed goodput across all (node, peer) estimates, bits/s.
    pub mean_goodput_bps: u64,
}

/// The schema-pinned column order shared by [`TelemetryReport::to_csv`]
/// and [`TelemetryReport::to_jsonl`] — append-only by convention; tests
/// pin it.
pub const TELEMETRY_COLUMNS: [&str; 16] = [
    "at_us",
    "events_net",
    "events_conn_timer",
    "events_agent_timer",
    "events_fd_tick",
    "events_control",
    "pending_events",
    "net_drops",
    "link_stress_max",
    "link_stress_mean_milli",
    "links_used",
    "trace_records",
    "trace_dropped",
    "alive_nodes",
    "mean_rtt_us",
    "mean_goodput_bps",
];

impl TelemetrySample {
    fn values(&self) -> [u64; 16] {
        [
            self.at_us,
            self.events_net,
            self.events_conn_timer,
            self.events_agent_timer,
            self.events_fd_tick,
            self.events_control,
            self.pending_events,
            self.net_drops,
            self.link_stress_max,
            self.link_stress_mean_milli,
            self.links_used,
            self.trace_records,
            self.trace_dropped,
            self.alive_nodes,
            self.mean_rtt_us,
            self.mean_goodput_bps,
        ]
    }

    /// One JSON object, keys in [`TELEMETRY_COLUMNS`] order.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in TELEMETRY_COLUMNS.iter().zip(self.values()).enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{k}\":{v}"));
        }
        s.push('}');
        s
    }
}

/// The sampler: holds the interval, the per-interval link baseline and
/// the samples taken so far.
pub struct Telemetry {
    every: Duration,
    prev_link: Vec<(u64, u64, u64)>,
    samples: Vec<TelemetrySample>,
}

impl Telemetry {
    /// A sampler snapshotting every `every` of virtual time.
    pub fn new(every: Duration) -> Telemetry {
        assert!(every.as_micros() > 0, "sampling interval must be nonzero");
        Telemetry {
            every,
            prev_link: Vec::new(),
            samples: Vec::new(),
        }
    }

    pub fn every(&self) -> Duration {
        self.every
    }

    /// Virtual instant the next sample is due, given the last one (the
    /// run loop slices its `run_until` calls at these boundaries).
    pub fn next_due(&self, start: Time) -> Time {
        match self.samples.last() {
            Some(s) => Time::from_micros(s.at_us) + self.every,
            None => start + self.every,
        }
    }

    /// Snapshot the world now. Read-only: result-invariant.
    pub fn sample(&mut self, world: &World) {
        let counts = world.event_counts();
        let link = world.link_counters();
        // Per-interval link stress: same delta arithmetic as
        // `macedon_net::metrics::link_stress`, in integers.
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut used = 0u64;
        for (i, &(pkts, _, _)) in link.iter().enumerate() {
            let base = self.prev_link.get(i).map(|b| b.0).unwrap_or(0);
            let delta = pkts.saturating_sub(base);
            if delta > 0 {
                used += 1;
                sum += delta;
                max = max.max(delta);
            }
        }
        self.prev_link = link;
        let m = world.measure_summary();
        self.samples.push(TelemetrySample {
            at_us: world.now().as_micros(),
            events_net: counts.net,
            events_conn_timer: counts.conn_timer,
            events_agent_timer: counts.agent_timer,
            events_fd_tick: counts.fd_tick,
            events_control: counts.control,
            pending_events: world.pending_events() as u64,
            net_drops: world.total_net_drops(),
            link_stress_max: max,
            link_stress_mean_milli: (sum * 1000).checked_div(used).unwrap_or(0),
            links_used: used,
            trace_records: world.trace_records_total(),
            trace_dropped: world.trace_dropped_total(),
            alive_nodes: world.alive_nodes().count() as u64,
            mean_rtt_us: m.mean_rtt_us(),
            mean_goodput_bps: m.mean_goodput_bps(),
        });
    }

    pub fn samples(&self) -> &[TelemetrySample] {
        &self.samples
    }

    /// Freeze into an exportable report.
    pub fn into_report(self) -> TelemetryReport {
        TelemetryReport {
            every_us: self.every.as_micros(),
            samples: self.samples,
        }
    }
}

/// A finished time series, ready for export.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Sampling interval, µs.
    pub every_us: u64,
    pub samples: Vec<TelemetrySample>,
}

impl TelemetryReport {
    /// One JSON object per line, keys in [`TELEMETRY_COLUMNS`] order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// CSV with the [`TELEMETRY_COLUMNS`] header.
    pub fn to_csv(&self) -> String {
        let mut out = TELEMETRY_COLUMNS.join(",");
        out.push('\n');
        for s in &self.samples {
            let row: Vec<String> = s.values().iter().map(|v| v.to_string()).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_and_csv_schemas_are_pinned() {
        let report = TelemetryReport {
            every_us: 1000,
            samples: vec![TelemetrySample {
                at_us: 1000,
                events_net: 2,
                pending_events: 3,
                alive_nodes: 4,
                ..Default::default()
            }],
        };
        assert_eq!(
            report.to_csv(),
            "at_us,events_net,events_conn_timer,events_agent_timer,events_fd_tick,\
             events_control,pending_events,net_drops,link_stress_max,\
             link_stress_mean_milli,links_used,trace_records,trace_dropped,\
             alive_nodes,mean_rtt_us,mean_goodput_bps\n\
             1000,2,0,0,0,0,3,0,0,0,0,0,0,4,0,0\n"
        );
        assert_eq!(
            report.to_jsonl(),
            "{\"at_us\":1000,\"events_net\":2,\"events_conn_timer\":0,\
             \"events_agent_timer\":0,\"events_fd_tick\":0,\"events_control\":0,\
             \"pending_events\":3,\"net_drops\":0,\"link_stress_max\":0,\
             \"link_stress_mean_milli\":0,\"links_used\":0,\"trace_records\":0,\
             \"trace_dropped\":0,\"alive_nodes\":4,\"mean_rtt_us\":0,\
             \"mean_goodput_bps\":0}\n"
        );
    }

    #[test]
    fn next_due_steps_by_interval() {
        let mut t = Telemetry::new(Duration::from_millis(10));
        assert_eq!(t.next_due(Time::ZERO), Time::from_millis(10));
        t.samples.push(TelemetrySample {
            at_us: 10_000,
            ..Default::default()
        });
        assert_eq!(t.next_due(Time::ZERO), Time::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_interval_rejected() {
        let _ = Telemetry::new(Duration::ZERO);
    }
}
