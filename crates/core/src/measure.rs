//! The per-node measurement ledger: engine-observed smoothed RTT and
//! goodput per peer, exposed to protocol transitions through
//! [`crate::agent::Ctx::rtt_ms`] / [`crate::agent::Ctx::goodput_kbps`]
//! (and, from there, to `.mac` specifications as the `rtt(peer)` /
//! `goodput(peer)` builtins).
//!
//! The paper's adaptive overlays (Overcast's probe epochs, AMMO's
//! metric-driven reconfiguration) decide from *measured* network
//! performance. The engine already observes everything needed — the
//! transport takes Karn-filtered RTT samples from acknowledgements, and
//! the world sees every delivered byte — so this ledger simply funnels
//! those observations into per-peer estimators a transition can read:
//!
//! * **RTT** — sender-side, fed from reliable-transport ACKs
//!   ([`MeasureLedger::on_ack`]); smoothed with the classic 7/8 EWMA.
//!   Peers spoken to only over UDP have no estimate.
//! * **Goodput** — receiver-side, fed from every fully reassembled
//!   message a peer delivers to this node ([`MeasureLedger::on_bytes_in`]);
//!   bytes are accumulated into windows of at least
//!   [`GOODPUT_WINDOW`], each closed window's rate folded into a 1/2
//!   EWMA. Receiver-side measurement is what Overcast's bandwidth
//!   estimation wants: the rate a candidate parent can actually push
//!   data *to us*, as throttled by the emulated network.
//!
//! All arithmetic is integer, so seeded runs stay bit-for-bit
//! reproducible across builds, and the two translator back ends
//! (interpreter and generated code) observe identical values.

use macedon_net::NodeId;
use macedon_sim::{Duration, FxHashMap, Time};

/// Minimum span a goodput window covers before its rate is folded into
/// the estimate. Short enough that an 8-probe train at 50 ms spacing
/// closes several windows; long enough to average out per-packet
/// serialization jitter.
pub const GOODPUT_WINDOW: Duration = Duration(100_000); // 100 ms

#[derive(Clone, Copy, Debug, Default)]
struct PeerMeasure {
    /// Smoothed RTT in µs; `0` = no sample yet.
    srtt_us: u64,
    /// Open goodput window: start instant and bytes received in it.
    win_start: Time,
    win_bytes: u64,
    /// Smoothed goodput in bits/s; meaningful only when `has_goodput`.
    goodput_bps: u64,
    has_goodput: bool,
    /// Has the first inbound byte been seen (window opened)?
    win_open: bool,
}

/// Per-peer engine measurements for one node.
#[derive(Default)]
pub struct MeasureLedger {
    peers: FxHashMap<NodeId, PeerMeasure>,
}

/// Integer aggregate of one ledger's estimates (see
/// [`MeasureLedger::summary`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MeasureSummary {
    /// Peers with an RTT estimate.
    pub rtt_peers: u64,
    /// Sum of smoothed RTTs over those peers, µs.
    pub srtt_us_sum: u64,
    /// Peers with a goodput estimate.
    pub goodput_peers: u64,
    /// Sum of smoothed goodputs over those peers, bits/s.
    pub goodput_bps_sum: u64,
}

impl MeasureSummary {
    /// Fold another summary in (cross-node aggregation).
    pub fn add(&mut self, o: &MeasureSummary) {
        self.rtt_peers += o.rtt_peers;
        self.srtt_us_sum += o.srtt_us_sum;
        self.goodput_peers += o.goodput_peers;
        self.goodput_bps_sum += o.goodput_bps_sum;
    }

    /// Mean smoothed RTT in µs (0 when no estimates exist).
    pub fn mean_rtt_us(&self) -> u64 {
        self.srtt_us_sum.checked_div(self.rtt_peers).unwrap_or(0)
    }

    /// Mean smoothed goodput in bits/s (0 when no estimates exist).
    pub fn mean_goodput_bps(&self) -> u64 {
        self.goodput_bps_sum
            .checked_div(self.goodput_peers)
            .unwrap_or(0)
    }
}

impl MeasureLedger {
    pub fn new() -> MeasureLedger {
        MeasureLedger::default()
    }

    /// A reliable-transport acknowledgement from `peer` advanced the
    /// send window: `rtt` is the Karn-filtered sample (None when only
    /// retransmitted segments were acked).
    pub fn on_ack(&mut self, _now: Time, peer: NodeId, rtt: Option<Duration>) {
        let Some(rtt) = rtt else { return };
        let m = self.peers.entry(peer).or_default();
        m.srtt_us = if m.srtt_us == 0 {
            rtt.as_micros().max(1)
        } else {
            ((7 * m.srtt_us + rtt.as_micros()) / 8).max(1)
        };
    }

    /// A fully reassembled message of `bytes` bytes arrived from `peer`.
    pub fn on_bytes_in(&mut self, now: Time, peer: NodeId, bytes: usize) {
        let m = self.peers.entry(peer).or_default();
        if !m.win_open {
            m.win_open = true;
            m.win_start = now;
            m.win_bytes = bytes as u64;
            return;
        }
        m.win_bytes += bytes as u64;
        let elapsed = now.saturating_since(m.win_start);
        if elapsed >= GOODPUT_WINDOW {
            let inst_bps = m.win_bytes * 8 * 1_000_000 / elapsed.as_micros().max(1);
            m.goodput_bps = if m.has_goodput {
                (m.goodput_bps + inst_bps) / 2
            } else {
                inst_bps
            };
            m.has_goodput = true;
            m.win_start = now;
            m.win_bytes = 0;
        }
    }

    /// Smoothed round-trip time to `peer`, if any reliable-transport
    /// sample exists.
    pub fn rtt(&self, peer: NodeId) -> Option<Duration> {
        self.peers
            .get(&peer)
            .filter(|m| m.srtt_us > 0)
            .map(|m| Duration(m.srtt_us))
    }

    /// Smoothed inbound goodput from `peer` in bits/s, if at least one
    /// measurement window has closed.
    pub fn goodput_bps(&self, peer: NodeId) -> Option<u64> {
        self.peers
            .get(&peer)
            .filter(|m| m.has_goodput)
            .map(|m| m.goodput_bps)
    }

    /// Drop all state for `peer` (its measurements describe a dead
    /// incarnation after a crash).
    pub fn forget(&mut self, peer: NodeId) {
        self.peers.remove(&peer);
    }

    /// Order-independent aggregate over all peers (integer sums, so the
    /// result is identical whatever the hash-map iteration order) — the
    /// telemetry sampler's per-node RTT/goodput gauges.
    pub fn summary(&self) -> MeasureSummary {
        let mut s = MeasureSummary::default();
        for m in self.peers.values() {
            if m.srtt_us > 0 {
                s.rtt_peers += 1;
                s.srtt_us_sum += m.srtt_us;
            }
            if m.has_goodput {
                s.goodput_peers += 1;
                s.goodput_bps_sum += m.goodput_bps;
            }
        }
        s
    }

    /// Number of peers with any measurement state.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn rtt_smooths_toward_samples() {
        let mut l = MeasureLedger::new();
        let p = NodeId(1);
        assert_eq!(l.rtt(p), None);
        l.on_ack(t(0), p, Some(Duration::from_millis(100)));
        assert_eq!(l.rtt(p), Some(Duration::from_millis(100)));
        for _ in 0..64 {
            l.on_ack(t(1), p, Some(Duration::from_millis(20)));
        }
        let srtt = l.rtt(p).unwrap();
        assert!(srtt <= Duration::from_millis(22), "{srtt:?}");
        assert!(srtt >= Duration::from_millis(19), "{srtt:?}");
    }

    #[test]
    fn karn_suppressed_samples_ignored() {
        let mut l = MeasureLedger::new();
        let p = NodeId(1);
        l.on_ack(t(0), p, None);
        assert_eq!(l.rtt(p), None);
    }

    #[test]
    fn goodput_needs_a_closed_window() {
        let mut l = MeasureLedger::new();
        let p = NodeId(2);
        l.on_bytes_in(t(0), p, 1000);
        // Window opened but not yet closed: no estimate.
        assert_eq!(l.goodput_bps(p), None);
        l.on_bytes_in(t(50), p, 1000);
        assert_eq!(l.goodput_bps(p), None, "window shorter than minimum");
        l.on_bytes_in(t(100), p, 1000);
        // 3000 bytes over the 100 ms window = 240 kbit/s.
        assert_eq!(l.goodput_bps(p), Some(240_000));
    }

    #[test]
    fn goodput_ewma_tracks_rate_changes() {
        let mut l = MeasureLedger::new();
        let p = NodeId(3);
        // 1000 B every 100 ms: 80 kbit/s steady.
        let mut now = 0;
        l.on_bytes_in(t(now), p, 1000);
        for _ in 0..8 {
            now += 100;
            l.on_bytes_in(t(now), p, 1000);
        }
        // Each closed window carries 1000 B / 100 ms = 80 kbit/s; the
        // EWMA converges there (the opening window briefly reads high).
        let g = l.goodput_bps(p).unwrap();
        assert!((80_000..=82_000).contains(&g), "{g}");
        // Rate collapses to 1000 B per second: estimate halves each window.
        now += 1000;
        l.on_bytes_in(t(now), p, 1000);
        let g1 = l.goodput_bps(p).unwrap();
        assert!(g1 < 80_000, "{g1}");
        now += 1000;
        l.on_bytes_in(t(now), p, 1000);
        assert!(l.goodput_bps(p).unwrap() < g1);
    }

    #[test]
    fn forget_clears_peer_state() {
        let mut l = MeasureLedger::new();
        let p = NodeId(4);
        l.on_ack(t(0), p, Some(Duration::from_millis(5)));
        assert!(!l.is_empty());
        l.forget(p);
        assert_eq!(l.rtt(p), None);
        assert!(l.is_empty());
    }

    #[test]
    fn peers_are_independent() {
        let mut l = MeasureLedger::new();
        l.on_ack(t(0), NodeId(1), Some(Duration::from_millis(10)));
        l.on_ack(t(0), NodeId(2), Some(Duration::from_millis(30)));
        assert_eq!(l.rtt(NodeId(1)), Some(Duration::from_millis(10)));
        assert_eq!(l.rtt(NodeId(2)), Some(Duration::from_millis(30)));
        assert_eq!(l.len(), 2);
    }
}
