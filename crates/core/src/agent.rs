//! The [`Agent`] trait — the interface MACEDON-generated code implements —
//! and the [`Ctx`] handed to every transition.
//!
//! In the paper, `macedon` translates a `.mac` specification into a C++
//! *agent* class whose methods are the protocol's transitions; the engine
//! (thread pools, timer and transport subsystems) invokes them. Here the
//! same contract is a Rust trait: native overlay implementations in
//! `macedon-overlays` and the DSL interpreter in `macedon-lang` both
//! implement it.
//!
//! Transitions never call other layers directly (that would be reentrant);
//! instead they buffer [`Op`]s on the [`Ctx`], and the stack dispatcher
//! drains the queue after the transition returns. This mirrors the
//! serialization the paper's per-instance read/write locks provide, and
//! gives deterministic cross-layer ordering.

use crate::api::{DownCall, ForwardInfo, ProtocolId, UpCall};
use crate::key::{Addressing, MacedonKey};
use crate::measure::MeasureLedger;
use crate::trace::{TraceEvent, TraceLevel};
use bytes::Bytes;
use macedon_net::NodeId;
use macedon_sim::{Duration, SimRng, Time};
use macedon_transport::ChannelId;
use std::any::Any;
use std::collections::VecDeque;

/// Transition locking class (§2.1.2): control transitions take the write
/// lock; data transitions share a read lock. The DES is single-threaded,
/// but the classification is tracked for the concurrency-ablation stats.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Locking {
    Read,
    Write,
}

/// Buffered effect emitted by a transition.
#[derive(Debug)]
pub enum Op {
    /// Invoke the layer below.
    Down(DownCall),
    /// Invoke the layer above (or the application at the top).
    Up(UpCall),
    /// Ask the layers above to vet a forwarding decision, then continue
    /// in this layer's `forward_resolved`.
    ForwardQuery(ForwardInfo),
    /// Transmit bytes to a peer host (lowest layer only).
    Send {
        dst: NodeId,
        channel: ChannelId,
        bytes: Bytes,
    },
    /// Arm (or re-arm) a named timer.
    TimerSet {
        timer: u16,
        delay: Duration,
        periodic: bool,
    },
    /// Cancel a named timer.
    TimerCancel { timer: u16 },
    /// Start engine failure-detection of a peer.
    Monitor { peer: NodeId },
    /// Stop monitoring a peer.
    Unmonitor { peer: NodeId },
    /// Emit a trace record.
    Trace {
        level: TraceLevel,
        event: TraceEvent,
    },
}

/// Everything a transition may observe and request.
pub struct Ctx<'a> {
    /// Current virtual time.
    pub now: Time,
    /// This node's address.
    pub me: NodeId,
    /// This node's key under the world's addressing mode.
    pub my_key: MacedonKey,
    /// The world's addressing mode — how `my_key` (and every peer's
    /// key) derives from a node id.
    pub addressing: Addressing,
    /// Index of the executing layer (0 = lowest).
    pub layer: usize,
    /// Total protocol layers in this stack (the application sits at
    /// index `layers`). Lets an agent tell whether anything is stacked
    /// above it — e.g. whether a forward query would reach anyone.
    pub layers: usize,
    /// Per-node deterministic RNG.
    pub rng: &'a mut SimRng,
    /// This node's engine measurement ledger (smoothed RTT and inbound
    /// goodput per peer — see [`crate::measure`]).
    pub(crate) measures: &'a MeasureLedger,
    pub(crate) ops: &'a mut VecDeque<(usize, Op)>,
    pub(crate) locking: Locking,
    /// Verbosity threshold traces are collected at (the world's
    /// configured level; see [`Ctx::trace_on`]).
    pub(crate) trace_level: TraceLevel,
}

impl<'a> Ctx<'a> {
    /// Invoke the layer below with an API downcall.
    pub fn down(&mut self, call: DownCall) {
        self.ops.push_back((self.layer, Op::Down(call)));
    }

    /// Invoke the layer above (application at the top) with an upcall.
    pub fn up(&mut self, up: UpCall) {
        self.ops.push_back((self.layer, Op::Up(up)));
    }

    /// Route a forwarding decision past the layers above; the dispatcher
    /// calls back `forward_resolved` on this layer with the (possibly
    /// modified) result.
    pub fn forward_query(&mut self, fwd: ForwardInfo) {
        self.ops.push_back((self.layer, Op::ForwardQuery(fwd)));
    }

    /// Transmit raw protocol bytes to a peer over a named transport
    /// instance. Only the lowest layer may use this (upper layers tunnel
    /// through `down`).
    pub fn send(&mut self, dst: NodeId, channel: ChannelId, bytes: Bytes) {
        debug_assert_eq!(self.layer, 0, "only the lowest layer touches transports");
        self.ops.push_back((
            self.layer,
            Op::Send {
                dst,
                channel,
                bytes,
            },
        ));
    }

    /// Arm a one-shot timer (the paper's `timer_resched`): any previous
    /// pending expiration of the same timer id is superseded.
    pub fn timer_set(&mut self, timer: u16, delay: Duration) {
        self.ops.push_back((
            self.layer,
            Op::TimerSet {
                timer,
                delay,
                periodic: false,
            },
        ));
    }

    /// Arm a periodic timer that re-fires every `period` until cancelled.
    pub fn timer_periodic(&mut self, timer: u16, period: Duration) {
        self.ops.push_back((
            self.layer,
            Op::TimerSet {
                timer,
                delay: period,
                periodic: true,
            },
        ));
    }

    /// Cancel a pending timer.
    pub fn timer_cancel(&mut self, timer: u16) {
        self.ops.push_back((self.layer, Op::TimerCancel { timer }));
    }

    /// Register `peer` with the engine failure detector (`fail_detect`
    /// neighbor lists); `neighbor_failed` fires if it goes silent.
    pub fn monitor(&mut self, peer: NodeId) {
        self.ops.push_back((self.layer, Op::Monitor { peer }));
    }

    pub fn unmonitor(&mut self, peer: NodeId) {
        self.ops.push_back((self.layer, Op::Unmonitor { peer }));
    }

    /// Would a trace record at `level` survive the sink's verbosity
    /// filter? Hot paths use this to skip building the message string
    /// entirely (the sink drops filtered records unread, so skipping
    /// emission is unobservable); the check mirrors
    /// [`crate::trace::TraceSink::record`].
    pub fn trace_on(&self, level: TraceLevel) -> bool {
        level != TraceLevel::Off && level <= self.trace_level
    }

    /// Emit a free-form trace record at the given level (wrapped as a
    /// [`TraceEvent::Custom`]).
    pub fn trace(&mut self, level: TraceLevel, msg: impl Into<String>) {
        self.ops.push_back((
            self.layer,
            Op::Trace {
                level,
                event: TraceEvent::Custom { msg: msg.into() },
            },
        ));
    }

    /// Emit a structured FSM state-change event (High level). Both
    /// translator back ends call this with the IR's state-name strings,
    /// so the trace streams agree byte-for-byte.
    pub fn trace_fsm(&mut self, from: &str, to: &str) {
        if self.trace_on(TraceLevel::High) {
            self.ops.push_back((
                self.layer,
                Op::Trace {
                    level: TraceLevel::High,
                    event: TraceEvent::FsmTransition {
                        from: from.to_string(),
                        to: to.to_string(),
                    },
                },
            ));
        }
    }

    /// Is this the topmost protocol layer (only the application above)?
    pub fn is_top_layer(&self) -> bool {
        self.layer + 1 >= self.layers
    }

    /// Engine-measured smoothed round-trip time to `peer` (from
    /// reliable-transport acknowledgements), if any sample exists.
    pub fn rtt(&self, peer: NodeId) -> Option<Duration> {
        self.measures.rtt(peer)
    }

    /// Engine-measured smoothed inbound goodput from `peer` in bits/s,
    /// if at least one measurement window has closed.
    pub fn goodput_bps(&self, peer: NodeId) -> Option<u64> {
        self.measures.goodput_bps(peer)
    }

    /// [`Ctx::rtt`] in whole milliseconds, `0` when unmeasured — the
    /// value surface of the spec language's `rtt(peer)` builtin (both
    /// translator back ends call this one method, so they agree
    /// bit-for-bit). Rounds *up*, so a measured sub-millisecond RTT
    /// reads as `1`, never colliding with the unmeasured sentinel.
    pub fn rtt_ms(&self, peer: NodeId) -> i64 {
        self.measures
            .rtt(peer)
            .map(|d| d.as_micros().div_ceil(1_000).max(1) as i64)
            .unwrap_or(0)
    }

    /// [`Ctx::goodput_bps`] in whole kilobits/s, `0` when unmeasured —
    /// the value surface of the spec language's `goodput(peer)`
    /// builtin. Rounds *up*, so a measured trickle below 1 kbit/s
    /// reads as `1`, never colliding with the unmeasured sentinel.
    pub fn goodput_kbps(&self, peer: NodeId) -> i64 {
        self.measures
            .goodput_bps(peer)
            .map(|b| b.div_ceil(1_000).max(1) as i64)
            .unwrap_or(0)
    }

    /// Declare this transition a data (read-locked) transition; the
    /// default is control/write, matching the paper's default semantics.
    pub fn locking_read(&mut self) {
        self.locking = Locking::Read;
    }

    pub(crate) fn locking(&self) -> Locking {
        self.locking
    }
}

/// A protocol layer instance — what generated code implements.
///
/// All methods receive the [`Ctx`] for buffering effects. Default bodies
/// make pass-through layering painless: an agent that doesn't understand
/// an upcall forwards it up the stack.
pub trait Agent: Any + Send {
    /// Well-known protocol value.
    fn protocol_id(&self) -> ProtocolId;

    /// Human-readable protocol name (tracing).
    fn name(&self) -> &'static str;

    /// The `init` API transition, fired when the node spawns.
    fn init(&mut self, ctx: &mut Ctx);

    /// An API downcall from the layer above (or the application).
    fn downcall(&mut self, ctx: &mut Ctx, call: DownCall);

    /// An upcall from the layer below. Default: pass it further up.
    fn upcall(&mut self, ctx: &mut Ctx, up: UpCall) {
        ctx.up(up);
    }

    /// The `forward` query from the layer below. Default: leave untouched.
    fn on_forward(&mut self, _ctx: &mut Ctx, _fwd: &mut ForwardInfo) {}

    /// Continuation after this layer's own [`Ctx::forward_query`] came
    /// back from the layers above. Routers transmit here (unless quashed).
    fn forward_resolved(&mut self, _ctx: &mut Ctx, _fwd: ForwardInfo) {}

    /// A message of this layer's own protocol arrived. Only the lowest
    /// layer receives from the transport; upper layers receive tunneled
    /// payloads via their own decoding of `Deliver` upcalls.
    fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes);

    /// A named timer expired.
    fn timer(&mut self, ctx: &mut Ctx, timer: u16);

    /// The engine failure detector declared `peer` dead (the `error` API).
    fn neighbor_failed(&mut self, _ctx: &mut Ctx, _peer: NodeId) {}

    /// Downcast support so tests and experiment harnesses can inspect
    /// protocol state (the paper's equivalent: debug dumps of routing
    /// tables).
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The application atop a stack: registered handlers (Figure 3's
/// `macedon_register_handlers`) plus timers for workload generation.
pub trait AppHandler: Any + Send {
    /// Called once when the node spawns (after all layers' `init`).
    fn start(&mut self, _ctx: &mut Ctx) {}

    /// `macedon_deliver_handler`.
    fn on_deliver(&mut self, _ctx: &mut Ctx, _src: MacedonKey, _from: NodeId, _payload: Bytes) {}

    /// `macedon_notify_handler`.
    fn on_notify(&mut self, _ctx: &mut Ctx, _nbr_type: u32, _neighbors: &[NodeId]) {}

    /// `macedon_forward_handler`.
    fn on_forward(&mut self, _ctx: &mut Ctx, _fwd: &mut ForwardInfo) {}

    /// Generic extensible upcall.
    fn on_upcall_ext(&mut self, _ctx: &mut Ctx, _op: u32, _payload: Bytes) {}

    /// Application timer (workload ticks).
    fn on_timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}

    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// An application with no handlers — "having null handlers would be used
/// when evaluating just the construction process of different overlays".
pub struct NullApp;

impl AppHandler for NullApp {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_ops_with_layer_tags() {
        let mut ops = VecDeque::new();
        let mut rng = SimRng::new(1);
        let measures = MeasureLedger::new();
        let mut ctx = Ctx {
            now: Time::ZERO,
            me: NodeId(0),
            my_key: MacedonKey(0),
            addressing: Addressing::Hash,
            layer: 2,
            layers: 3,
            rng: &mut rng,
            measures: &measures,
            ops: &mut ops,
            locking: Locking::Write,
            trace_level: TraceLevel::High,
        };
        ctx.down(DownCall::Join {
            group: MacedonKey(5),
        });
        ctx.up(UpCall::Notify {
            nbr_type: 1,
            neighbors: vec![],
        });
        ctx.timer_set(3, Duration::from_secs(1));
        ctx.monitor(NodeId(8));
        assert_eq!(ops.len(), 4);
        assert!(ops.iter().all(|(l, _)| *l == 2));
    }

    #[test]
    fn measured_values_never_collide_with_unmeasured_sentinel() {
        use crate::measure::MeasureLedger;
        let mut ops = VecDeque::new();
        let mut rng = SimRng::new(1);
        let mut measures = MeasureLedger::new();
        let peer = NodeId(9);
        // Sub-millisecond RTT and a sub-kilobit goodput trickle.
        measures.on_ack(Time::ZERO, peer, Some(Duration::from_micros(300)));
        measures.on_bytes_in(Time::ZERO, peer, 10);
        measures.on_bytes_in(Time::from_millis(200), peer, 10);
        let ctx = Ctx {
            now: Time::ZERO,
            me: NodeId(0),
            my_key: MacedonKey(0),
            addressing: Addressing::Hash,
            layer: 0,
            layers: 1,
            rng: &mut rng,
            measures: &measures,
            ops: &mut ops,
            locking: Locking::Write,
            trace_level: TraceLevel::High,
        };
        // Measured values round *up*: never 0, which is the
        // unmeasured sentinel.
        assert_eq!(ctx.rtt_ms(peer), 1);
        assert_eq!(ctx.goodput_kbps(peer), 1);
        assert_eq!(ctx.rtt_ms(NodeId(1)), 0, "unmeasured peer");
        assert_eq!(ctx.goodput_kbps(NodeId(1)), 0, "unmeasured peer");
    }

    #[test]
    fn locking_defaults_to_write() {
        let mut ops = VecDeque::new();
        let mut rng = SimRng::new(1);
        let measures = MeasureLedger::new();
        let mut ctx = Ctx {
            now: Time::ZERO,
            me: NodeId(0),
            my_key: MacedonKey(0),
            addressing: Addressing::Hash,
            layer: 0,
            layers: 1,
            rng: &mut rng,
            measures: &measures,
            ops: &mut ops,
            locking: Locking::Write,
            trace_level: TraceLevel::High,
        };
        assert_eq!(ctx.locking(), Locking::Write);
        ctx.locking_read();
        assert_eq!(ctx.locking(), Locking::Read);
    }
}
