//! Neighbor list management (§3.3.2 of the paper).
//!
//! `neighbor_types` declarations become [`NeighborList`]s: bounded,
//! ordered sets of peers with per-entry protocol fields (delay estimates,
//! bandwidth measurements, sub-lists — anything `T` holds). The paper's
//! primitives map directly:
//!
//! | paper                  | here                      |
//! |------------------------|---------------------------|
//! | `neighbor_add`         | [`NeighborList::add`]     |
//! | `neighbor_clear`       | [`NeighborList::clear`]   |
//! | `neighbor_size`        | [`NeighborList::len`]     |
//! | `neighbor_query`       | [`NeighborList::contains`]|
//! | `neighbor_entry`       | [`NeighborList::get`]     |
//! | `neighbor_random`      | [`NeighborList::random`]  |

use macedon_net::NodeId;
use macedon_sim::SimRng;

/// A bounded, insertion-ordered neighbor set with per-entry data.
#[derive(Clone, Debug)]
pub struct NeighborList<T> {
    max: usize,
    entries: Vec<(NodeId, T)>,
}

impl<T> NeighborList<T> {
    /// Create a list bounded at `max` entries (the declared maximum
    /// number, e.g. `ochildren MAX_CHILDREN`).
    pub fn new(max: usize) -> NeighborList<T> {
        assert!(max > 0, "neighbor list must allow at least one entry");
        NeighborList {
            max,
            entries: Vec::new(),
        }
    }

    /// Add or update a neighbor. Returns `false` (without inserting) when
    /// the list is full and the node is new.
    pub fn add(&mut self, node: NodeId, data: T) -> bool {
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| *n == node) {
            slot.1 = data;
            return true;
        }
        if self.entries.len() >= self.max {
            return false;
        }
        self.entries.push((node, data));
        true
    }

    /// Remove a neighbor; returns its data if present.
    pub fn remove(&mut self, node: NodeId) -> Option<T> {
        let idx = self.entries.iter().position(|(n, _)| *n == node)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max
    }

    pub fn max(&self) -> usize {
        self.max
    }

    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|(n, _)| *n == node)
    }

    pub fn get(&self, node: NodeId) -> Option<&T> {
        self.entries
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, d)| d)
    }

    pub fn get_mut(&mut self, node: NodeId) -> Option<&mut T> {
        self.entries
            .iter_mut()
            .find(|(n, _)| *n == node)
            .map(|(_, d)| d)
    }

    /// A uniformly random member (`neighbor_random`).
    pub fn random(&self, rng: &mut SimRng) -> Option<NodeId> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries[rng.index(self.entries.len())].0)
        }
    }

    /// First entry in insertion order (common for singleton lists like a
    /// parent pointer).
    pub fn first(&self) -> Option<NodeId> {
        self.entries.first().map(|(n, _)| *n)
    }

    pub fn nodes(&self) -> Vec<NodeId> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> {
        self.entries.iter().map(|(n, d)| (*n, d))
    }

    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut T)> {
        self.entries.iter_mut().map(|(n, d)| (*n, d))
    }

    /// Retain entries satisfying the predicate.
    pub fn retain(&mut self, mut f: impl FnMut(NodeId, &mut T) -> bool) {
        self.entries.retain_mut(|(n, d)| f(*n, d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Meta {
        delay_ms: u32,
    }

    #[test]
    fn add_query_remove() {
        let mut l: NeighborList<Meta> = NeighborList::new(4);
        assert!(l.add(NodeId(1), Meta { delay_ms: 10 }));
        assert!(l.contains(NodeId(1)));
        assert_eq!(l.get(NodeId(1)).unwrap().delay_ms, 10);
        assert_eq!(l.remove(NodeId(1)).unwrap().delay_ms, 10);
        assert!(!l.contains(NodeId(1)));
        assert!(l.remove(NodeId(1)).is_none());
    }

    #[test]
    fn add_existing_updates_in_place() {
        let mut l = NeighborList::new(2);
        l.add(NodeId(1), Meta { delay_ms: 10 });
        l.add(NodeId(2), Meta { delay_ms: 20 });
        // Full, but updating existing works.
        assert!(l.add(NodeId(1), Meta { delay_ms: 99 }));
        assert_eq!(l.get(NodeId(1)).unwrap().delay_ms, 99);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut l = NeighborList::new(2);
        assert!(l.add(NodeId(1), ()));
        assert!(l.add(NodeId(2), ()));
        assert!(!l.add(NodeId(3), ()));
        assert!(l.is_full());
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn insertion_order_preserved() {
        let mut l = NeighborList::new(8);
        for i in [5u32, 3, 9] {
            l.add(NodeId(i), ());
        }
        assert_eq!(l.nodes(), vec![NodeId(5), NodeId(3), NodeId(9)]);
        assert_eq!(l.first(), Some(NodeId(5)));
    }

    #[test]
    fn random_selection_is_member() {
        let mut l = NeighborList::new(8);
        for i in 0..5u32 {
            l.add(NodeId(i), ());
        }
        let mut rng = SimRng::new(3);
        for _ in 0..50 {
            let pick = l.random(&mut rng).unwrap();
            assert!(l.contains(pick));
        }
        let empty: NeighborList<()> = NeighborList::new(1);
        assert!(empty.random(&mut rng).is_none());
    }

    #[test]
    fn retain_filters() {
        let mut l = NeighborList::new(8);
        for i in 0..6u32 {
            l.add(NodeId(i), Meta { delay_ms: i * 10 });
        }
        l.retain(|_, m| m.delay_ms < 30);
        assert_eq!(l.len(), 3);
        assert!(l.contains(NodeId(2)));
        assert!(!l.contains(NodeId(3)));
    }

    #[test]
    fn get_mut_updates_fields() {
        let mut l = NeighborList::new(2);
        l.add(NodeId(1), Meta { delay_ms: 1 });
        l.get_mut(NodeId(1)).unwrap().delay_ms = 42;
        assert_eq!(l.get(NodeId(1)).unwrap().delay_ms, 42);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _: NeighborList<()> = NeighborList::new(0);
    }
}
