//! The MACEDON API (Figure 3 of the paper).
//!
//! Layers communicate through a standard, overlay-generic interface:
//! **downcalls** request services from the layer below (`route`,
//! `routeIP`, `multicast`, `anycast`, `collect`, group management and an
//! extensible escape hatch), and **upcalls** notify the layer above
//! (`deliver`, `notify`, extensibles). The `forward` upcall is special:
//! it is a *query* — the upper layer may modify the message, its next
//! hop, or quash it entirely before the router transmits.
//!
//! Because every overlay speaks this API, "the Scribe application-layer
//! multicast protocol can be switched from using Pastry to Chord by
//! changing a single line in its MACEDON specification" — reproduced in
//! this repo by constructing the Scribe agent over either DHT agent.

use crate::key::MacedonKey;
use bytes::Bytes;
use macedon_net::NodeId;

/// Well-known protocol number (akin to IP protocol values); used to demux
/// messages and to label layers.
pub type ProtocolId = u16;

/// Reserved protocol id for engine-internal traffic (heartbeats).
pub const ENGINE_PROTOCOL: ProtocolId = 0xFFFF;

/// Reserved protocol id framing payloads a lowest layer tunnels on
/// behalf of the layers above (the engine's `macedon_routeIP` service).
/// Shared by the spec interpreter and the generated agents so that both
/// artifacts speak one wire format; see [`crate::wire::tunnel_frame`].
pub const TUNNEL_PROTOCOL: ProtocolId = 0xFFFD;

/// Default priority: "the -1 priority requests use of the message's
/// default transport" (§3.3.1).
pub const DEFAULT_PRIORITY: i8 = -1;

/// A request to the layer below (or, from the application, to the top
/// layer of the stack).
#[derive(Clone, Debug)]
pub enum DownCall {
    /// Route `payload` through the overlay toward the key `dest`
    /// (`macedon_route`).
    Route {
        dest: MacedonKey,
        payload: Bytes,
        priority: i8,
    },
    /// Send directly to an IP host (`macedon_routeIP`).
    RouteIp {
        dest: NodeId,
        payload: Bytes,
        priority: i8,
    },
    /// Disseminate to all members of `group` (`macedon_multicast`).
    Multicast {
        group: MacedonKey,
        payload: Bytes,
        priority: i8,
    },
    /// Deliver to exactly one member of `group` (`macedon_anycast`).
    Anycast {
        group: MacedonKey,
        payload: Bytes,
        priority: i8,
    },
    /// Reverse-multicast: aggregate `payload` up the tree toward the root
    /// (`macedon_collect`, the paper's new primitive).
    Collect {
        group: MacedonKey,
        payload: Bytes,
        priority: i8,
    },
    /// Create a multicast session (`macedon_create_group`).
    CreateGroup { group: MacedonKey },
    /// Join a session (`macedon_join`).
    Join { group: MacedonKey },
    /// Leave a session (`macedon_leave`).
    Leave { group: MacedonKey },
    /// Protocol-specific extension (`downcall_ext`).
    Ext { op: u32, payload: Bytes },
}

impl DownCall {
    /// Stable API name for trace events (the paper's `macedon_*` verbs).
    pub fn name(&self) -> &'static str {
        match self {
            DownCall::Route { .. } => "route",
            DownCall::RouteIp { .. } => "route_ip",
            DownCall::Multicast { .. } => "multicast",
            DownCall::Anycast { .. } => "anycast",
            DownCall::Collect { .. } => "collect",
            DownCall::CreateGroup { .. } => "create_group",
            DownCall::Join { .. } => "join",
            DownCall::Leave { .. } => "leave",
            DownCall::Ext { .. } => "ext",
        }
    }
}

/// A notification to the layer above.
#[derive(Clone, Debug)]
pub enum UpCall {
    /// Message reached this node as final destination
    /// (`macedon_deliver_handler`).
    Deliver {
        src: MacedonKey,
        from: NodeId,
        payload: Bytes,
    },
    /// Neighbor set changed (`macedon_notify_handler`); `nbr_type` is
    /// protocol-defined (e.g. [`NBR_TYPE_PARENT`]).
    Notify {
        nbr_type: u32,
        neighbors: Vec<NodeId>,
    },
    /// Protocol-specific extension (`upcall_ext`).
    Ext { op: u32, payload: Bytes },
}

/// Neighbor-type constants for `Notify`, mirroring the paper's
/// `NBR_TYPE_PARENT` in the sample Overcast transition.
pub const NBR_TYPE_PARENT: u32 = 1;
pub const NBR_TYPE_CHILDREN: u32 = 2;
pub const NBR_TYPE_PEERS: u32 = 3;

/// The mutable `forward()` query: the routing layer proposes a next hop
/// for an in-transit message; each layer above may rewrite the payload,
/// redirect the destination, or quash it.
#[derive(Clone, Debug)]
pub struct ForwardInfo {
    /// Key of the message's origin.
    pub src: MacedonKey,
    /// Key the message is routed toward.
    pub dest: MacedonKey,
    /// Node this message arrived from (== this node when originating);
    /// reverse-path protocols like Scribe build trees from it.
    pub prev_hop: NodeId,
    /// Node the router intends to transmit to next.
    pub next_hop: NodeId,
    /// Tunneled upper-layer payload.
    pub payload: Bytes,
    /// Set to true to drop the message instead of forwarding.
    pub quash: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_info_mutation() {
        let mut f = ForwardInfo {
            src: MacedonKey(1),
            prev_hop: NodeId(0),
            dest: MacedonKey(2),
            next_hop: NodeId(3),
            payload: Bytes::from_static(b"x"),
            quash: false,
        };
        f.quash = true;
        f.next_hop = NodeId(9);
        assert!(f.quash);
        assert_eq!(f.next_hop, NodeId(9));
    }

    #[test]
    fn downcall_is_cloneable_for_relays() {
        let c = DownCall::Join {
            group: MacedonKey(7),
        };
        let c2 = c.clone();
        assert!(matches!(c2, DownCall::Join { group } if group == MacedonKey(7)));
    }
}
