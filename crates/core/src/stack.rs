//! The per-node protocol stack and its effect dispatcher.
//!
//! A node runs a linear chain of [`Agent`]s — e.g. SplitStream over
//! Scribe over Pastry (Figure 2) — with an [`AppHandler`] on top. Only
//! layer 0 talks to the transport subsystem; only the top layer talks to
//! the application (Figure 5). Transitions buffer [`Op`]s, and the
//! dispatcher here drains them in FIFO order, invoking neighbor layers
//! until the queue settles. Effects that escape the stack (sends, timers,
//! failure-detector registrations, traces) are returned to the world.

use crate::agent::{Agent, AppHandler, Ctx, Locking, Op};
use crate::api::{DownCall, UpCall};
use crate::key::{Addressing, MacedonKey};
use crate::measure::MeasureLedger;
use crate::trace::{SpanId, TraceEvent, TraceLevel};
use bytes::Bytes;
use macedon_net::NodeId;
use macedon_sim::{Duration, SimRng, Time};
use macedon_transport::ChannelId;
use std::collections::VecDeque;

/// Cap on ops processed per external event — a runaway upcall/downcall
/// cycle trips this instead of hanging the simulation.
const OP_BUDGET: usize = 100_000;

/// An effect escaping the stack, handled by the world.
#[derive(Debug)]
pub enum StackEffect {
    Send {
        dst: NodeId,
        channel: ChannelId,
        bytes: Bytes,
        /// Causal span minted for this message; rides with it through
        /// transport and network out-of-band (never in wire bytes).
        span: SpanId,
    },
    TimerSet {
        layer: usize,
        timer: u16,
        delay: Duration,
        periodic: bool,
    },
    TimerCancel {
        layer: usize,
        timer: u16,
    },
    Monitor {
        layer: usize,
        peer: NodeId,
    },
    Unmonitor {
        layer: usize,
        peer: NodeId,
    },
    Trace {
        layer: usize,
        level: TraceLevel,
        /// Causal context active when the record was emitted.
        span: SpanId,
        event: TraceEvent,
    },
}

/// One node's protocol stack.
pub struct Stack {
    node: NodeId,
    key: MacedonKey,
    /// Addressing mode `key` was derived under, handed to every [`Ctx`]
    /// so agents derive peer keys the same way the world derived `key`.
    addressing: Addressing,
    agents: Vec<Box<dyn Agent>>,
    app: Box<dyn AppHandler>,
    rng: SimRng,
    /// Trace verbosity threshold handed to every [`Ctx`] (see
    /// [`Ctx::trace_on`]). Defaults to `High` — emit everything — so
    /// bare stacks behave as before; the world lowers it to its
    /// configured collection level, letting agents skip building
    /// records the sink would drop.
    trace_level: TraceLevel,
    /// Master observability switch: when false every engine emission
    /// branch is skipped and transitions observe `trace_on == false`
    /// regardless of `trace_level` — the honest untraced baseline the
    /// bench overhead gate compares against.
    observability: bool,
    /// Causal context of the event currently dispatching: the span of
    /// the inbound message, or `NONE` for timers/API/engine entries.
    current_span: SpanId,
    /// Per-stack send counter; the low 32 bits of every minted span.
    sends_minted: u32,
    /// Scratch op queue reused across events (drained empty between
    /// dispatches; kept for its capacity). Transitions push into it
    /// directly through [`Ctx`].
    queue: VecDeque<(usize, Op)>,
    /// Engine measurements for this node (per-peer smoothed RTT and
    /// inbound goodput), fed by the world from transport observations
    /// and read by transitions through [`Ctx::rtt_ms`] /
    /// [`Ctx::goodput_kbps`].
    measures: MeasureLedger,
    /// Read/write transition counters (locking ablation).
    pub read_transitions: u64,
    pub write_transitions: u64,
}

impl Stack {
    /// Build a stack; `agents[0]` is the lowest layer.
    pub fn new(
        node: NodeId,
        key: MacedonKey,
        agents: Vec<Box<dyn Agent>>,
        app: Box<dyn AppHandler>,
        rng: SimRng,
    ) -> Stack {
        assert!(
            !agents.is_empty(),
            "a stack needs at least one protocol layer"
        );
        Stack {
            node,
            key,
            addressing: Addressing::Hash,
            agents,
            app,
            rng,
            trace_level: TraceLevel::High,
            observability: true,
            current_span: SpanId::NONE,
            sends_minted: 0,
            queue: VecDeque::new(),
            measures: MeasureLedger::new(),
            read_transitions: 0,
            write_transitions: 0,
        }
    }

    /// Set the trace verbosity threshold transitions observe through
    /// [`Ctx::trace_on`] (the world sets its configured level here).
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace_level = level;
    }

    /// Disable (or re-enable) the whole observability machinery for
    /// this stack. Span minting stays on — spans are part of message
    /// identity and must not depend on trace settings — but no trace
    /// effects are emitted and transitions observe `trace_on == false`.
    pub fn set_observability(&mut self, on: bool) {
        self.observability = on;
    }

    /// Set the addressing mode the node's key was derived under (the
    /// world sets its configured mode here at spawn).
    pub fn set_addressing(&mut self, mode: Addressing) {
        self.addressing = mode;
    }

    /// How many spans this stack has minted so far (the low 32 bits of
    /// the last minted [`SpanId`]).
    pub fn sends_minted(&self) -> u32 {
        self.sends_minted
    }

    /// Resume span minting from `base` instead of 0. The world calls
    /// this when respawning a previously despawned node so the new
    /// incarnation's spans never collide with the historical ones —
    /// span ids must stay unique per node across reboots for the trace
    /// parentage to remain a forest.
    pub fn resume_span_counter(&mut self, base: u32) {
        debug_assert_eq!(self.sends_minted, 0, "resume before any send");
        self.sends_minted = base;
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn key(&self) -> MacedonKey {
        self.key
    }

    pub fn num_layers(&self) -> usize {
        self.agents.len()
    }

    /// Inspect a layer (downcast in tests / experiment harnesses).
    pub fn agent(&self, layer: usize) -> &dyn Agent {
        self.agents[layer].as_ref()
    }

    pub fn agent_mut(&mut self, layer: usize) -> &mut dyn Agent {
        self.agents[layer].as_mut()
    }

    pub fn app(&self) -> &dyn AppHandler {
        self.app.as_ref()
    }

    pub fn app_mut(&mut self) -> &mut dyn AppHandler {
        self.app.as_mut()
    }

    /// This node's measurement ledger (read side).
    pub fn measures(&self) -> &MeasureLedger {
        &self.measures
    }

    /// This node's measurement ledger (the world feeds samples here).
    pub fn measures_mut(&mut self) -> &mut MeasureLedger {
        &mut self.measures
    }

    /// Push an engine trace event if observability is on and `level`
    /// clears the stack's verbosity threshold (the [`Ctx::trace_on`]
    /// predicate, evaluated engine-side).
    #[inline]
    fn emit(&self, fx: &mut Vec<StackEffect>, layer: usize, level: TraceLevel, event: TraceEvent) {
        if self.observability && level != TraceLevel::Off && level <= self.trace_level {
            fx.push(StackEffect::Trace {
                layer,
                level,
                span: self.current_span,
                event,
            });
        }
    }

    /// Fire all `init` transitions bottom-up, then the app's `start`.
    pub fn init(&mut self, now: Time, fx: &mut Vec<StackEffect>) {
        self.current_span = SpanId::NONE;
        self.emit(
            fx,
            self.agents.len(),
            TraceLevel::Med,
            TraceEvent::ApiCall { call: "init" },
        );
        let mut queue = std::mem::take(&mut self.queue);
        for layer in 0..self.agents.len() {
            self.step_agent(now, layer, &mut queue, fx, |a, ctx| a.init(ctx));
        }
        self.step_app(now, &mut queue, fx, |app, ctx| app.start(ctx));
        self.drain(now, &mut queue, fx);
        self.queue = queue;
    }

    /// A transport message arrived for the lowest layer; `span` is the
    /// causal span that rode with it (NONE for engine traffic).
    pub fn recv(
        &mut self,
        now: Time,
        from: NodeId,
        msg: Bytes,
        span: SpanId,
        fx: &mut Vec<StackEffect>,
    ) {
        self.current_span = span;
        self.emit(
            fx,
            0,
            TraceLevel::High,
            TraceEvent::Dispatch {
                from,
                bytes: msg.len(),
            },
        );
        let mut queue = std::mem::take(&mut self.queue);
        self.step_agent(now, 0, &mut queue, fx, |a, ctx| a.recv(ctx, from, msg));
        self.drain(now, &mut queue, fx);
        self.queue = queue;
    }

    /// A named timer fired for `layer` (or the app when
    /// `layer == num_layers()`).
    pub fn timer(&mut self, now: Time, layer: usize, timer: u16, fx: &mut Vec<StackEffect>) {
        self.current_span = SpanId::NONE;
        self.emit(fx, layer, TraceLevel::High, TraceEvent::TimerFire { timer });
        let mut queue = std::mem::take(&mut self.queue);
        if layer == self.agents.len() {
            self.step_app(now, &mut queue, fx, |app, ctx| app.on_timer(ctx, timer));
        } else {
            self.step_agent(now, layer, &mut queue, fx, |a, ctx| a.timer(ctx, timer));
        }
        self.drain(now, &mut queue, fx);
        self.queue = queue;
    }

    /// The application invokes the top layer's API.
    pub fn api(&mut self, now: Time, call: DownCall, fx: &mut Vec<StackEffect>) {
        self.current_span = SpanId::NONE;
        self.emit(
            fx,
            self.agents.len(),
            TraceLevel::Med,
            TraceEvent::ApiCall { call: call.name() },
        );
        let mut queue = std::mem::take(&mut self.queue);
        queue.push_back((self.agents.len(), Op::Down(call)));
        self.drain(now, &mut queue, fx);
        self.queue = queue;
    }

    /// The engine failure detector declared `peer` dead for `layer`.
    pub fn peer_failed(
        &mut self,
        now: Time,
        layer: usize,
        peer: NodeId,
        fx: &mut Vec<StackEffect>,
    ) {
        self.current_span = SpanId::NONE;
        self.emit(
            fx,
            layer,
            TraceLevel::Med,
            TraceEvent::ApiCall { call: "error" },
        );
        let mut queue = std::mem::take(&mut self.queue);
        if layer < self.agents.len() {
            self.step_agent(now, layer, &mut queue, fx, |a, ctx| {
                a.neighbor_failed(ctx, peer)
            });
        }
        self.drain(now, &mut queue, fx);
        self.queue = queue;
    }

    // -- dispatcher internals ------------------------------------------------

    fn drain(&mut self, now: Time, queue: &mut VecDeque<(usize, Op)>, fx: &mut Vec<StackEffect>) {
        let mut budget = OP_BUDGET;
        while let Some((origin, op)) = queue.pop_front() {
            budget = budget.checked_sub(1).unwrap_or_else(|| {
                panic!(
                    "op budget exhausted on node {:?}: cyclic up/down calls?",
                    self.node
                )
            });
            match op {
                Op::Down(call) => {
                    if origin == 0 {
                        self.emit(
                            fx,
                            0,
                            TraceLevel::Low,
                            TraceEvent::Custom {
                                msg: format!("dropped downcall below lowest layer: {call:?}"),
                            },
                        );
                    } else {
                        let target = origin - 1;
                        self.step_agent(now, target, queue, fx, |a, ctx| a.downcall(ctx, call));
                    }
                }
                Op::Up(up) => {
                    let target = origin + 1;
                    if target > self.agents.len() {
                        // App cannot upcall; drop.
                        continue;
                    }
                    if target == self.agents.len() {
                        if let UpCall::Deliver {
                            from, ref payload, ..
                        } = up
                        {
                            self.emit(
                                fx,
                                target,
                                TraceLevel::Med,
                                TraceEvent::Deliver {
                                    from,
                                    bytes: payload.len(),
                                },
                            );
                        }
                        self.step_app(now, queue, fx, |app, ctx| match up {
                            UpCall::Deliver { src, from, payload } => {
                                app.on_deliver(ctx, src, from, payload)
                            }
                            UpCall::Notify {
                                nbr_type,
                                neighbors,
                            } => app.on_notify(ctx, nbr_type, &neighbors),
                            UpCall::Ext { op, payload } => app.on_upcall_ext(ctx, op, payload),
                        });
                    } else {
                        self.step_agent(now, target, queue, fx, |a, ctx| a.upcall(ctx, up));
                    }
                }
                Op::ForwardQuery(mut fwd) => {
                    // Walk every layer above the origin, ending at the app.
                    for layer in (origin + 1)..self.agents.len() {
                        self.step_agent(now, layer, queue, fx, |a, ctx| {
                            a.on_forward(ctx, &mut fwd)
                        });
                    }
                    self.step_app(now, queue, fx, |app, ctx| app.on_forward(ctx, &mut fwd));
                    if fwd.quash {
                        self.emit(fx, origin, TraceLevel::Med, TraceEvent::Quash);
                    } else {
                        self.emit(
                            fx,
                            origin,
                            TraceLevel::Med,
                            TraceEvent::Forward {
                                next_hop: fwd.next_hop,
                                bytes: fwd.payload.len(),
                            },
                        );
                    }
                    self.step_agent(now, origin, queue, fx, |a, ctx| {
                        a.forward_resolved(ctx, fwd)
                    });
                }
                Op::Send {
                    dst,
                    channel,
                    bytes,
                } => {
                    debug_assert_eq!(origin, 0, "non-lowest layer tried a raw send");
                    // Mint the causal span unconditionally: spans are part
                    // of message identity and never depend on trace config.
                    self.sends_minted += 1;
                    let span = SpanId::mint(self.node, self.sends_minted);
                    self.emit(
                        fx,
                        origin,
                        TraceLevel::Med,
                        TraceEvent::Send {
                            span,
                            dst,
                            channel,
                            bytes: bytes.len(),
                        },
                    );
                    fx.push(StackEffect::Send {
                        dst,
                        channel,
                        bytes,
                        span,
                    });
                }
                Op::TimerSet {
                    timer,
                    delay,
                    periodic,
                } => {
                    fx.push(StackEffect::TimerSet {
                        layer: origin,
                        timer,
                        delay,
                        periodic,
                    });
                }
                Op::TimerCancel { timer } => {
                    fx.push(StackEffect::TimerCancel {
                        layer: origin,
                        timer,
                    });
                }
                Op::Monitor { peer } => fx.push(StackEffect::Monitor {
                    layer: origin,
                    peer,
                }),
                Op::Unmonitor { peer } => fx.push(StackEffect::Unmonitor {
                    layer: origin,
                    peer,
                }),
                Op::Trace { level, event } => self.emit(fx, origin, level, event),
            }
        }
    }

    fn step_agent(
        &mut self,
        now: Time,
        layer: usize,
        queue: &mut VecDeque<(usize, Op)>,
        _fx: &mut Vec<StackEffect>,
        f: impl FnOnce(&mut dyn Agent, &mut Ctx),
    ) {
        let mut ctx = Ctx {
            now,
            me: self.node,
            my_key: self.key,
            addressing: self.addressing,
            layer,
            layers: self.agents.len(),
            rng: &mut self.rng,
            measures: &self.measures,
            ops: queue,
            locking: Locking::Write,
            trace_level: if self.observability {
                self.trace_level
            } else {
                TraceLevel::Off
            },
        };
        f(self.agents[layer].as_mut(), &mut ctx);
        match ctx.locking() {
            Locking::Read => self.read_transitions += 1,
            Locking::Write => self.write_transitions += 1,
        }
    }

    fn step_app(
        &mut self,
        now: Time,
        queue: &mut VecDeque<(usize, Op)>,
        _fx: &mut Vec<StackEffect>,
        f: impl FnOnce(&mut dyn AppHandler, &mut Ctx),
    ) {
        let layer = self.agents.len();
        let mut ctx = Ctx {
            now,
            me: self.node,
            my_key: self.key,
            addressing: self.addressing,
            layer,
            layers: self.agents.len(),
            rng: &mut self.rng,
            measures: &self.measures,
            ops: queue,
            locking: Locking::Write,
            trace_level: if self.observability {
                self.trace_level
            } else {
                TraceLevel::Off
            },
        };
        f(self.app.as_mut(), &mut ctx);
        match ctx.locking() {
            Locking::Read => self.read_transitions += 1,
            Locking::Write => self.write_transitions += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{DownCall, ForwardInfo, UpCall};
    use std::any::Any;

    /// Non-trace effects (bare stacks default to High verbosity, so
    /// engine trace events interleave with the effects under test).
    fn sans_trace(fx: &[StackEffect]) -> Vec<&StackEffect> {
        fx.iter()
            .filter(|e| !matches!(e, StackEffect::Trace { .. }))
            .collect()
    }

    /// Lowest layer: answers Route downcalls with a raw Send; delivers
    /// received messages up.
    struct EchoRouter {
        inited: bool,
    }

    impl Agent for EchoRouter {
        fn protocol_id(&self) -> u16 {
            10
        }
        fn name(&self) -> &'static str {
            "echo-router"
        }
        fn init(&mut self, _ctx: &mut Ctx) {
            self.inited = true;
        }
        fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
            if let DownCall::Route { dest, payload, .. } = call {
                ctx.send(NodeId(dest.0), ChannelId(0), payload);
            }
        }
        fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes) {
            ctx.up(UpCall::Deliver {
                src: MacedonKey(from.0),
                from,
                payload: msg,
            });
        }
        fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Middle layer: counts what passes through, passes everything on.
    struct PassThrough {
        ups: u32,
        downs: u32,
    }

    impl Agent for PassThrough {
        fn protocol_id(&self) -> u16 {
            11
        }
        fn name(&self) -> &'static str {
            "pass"
        }
        fn init(&mut self, _ctx: &mut Ctx) {}
        fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
            self.downs += 1;
            ctx.down(call);
        }
        fn upcall(&mut self, ctx: &mut Ctx, up: UpCall) {
            self.ups += 1;
            ctx.up(up);
        }
        fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
        fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct RecordingApp {
        delivered: Vec<Bytes>,
    }

    impl AppHandler for RecordingApp {
        fn on_deliver(&mut self, _ctx: &mut Ctx, _src: MacedonKey, _from: NodeId, payload: Bytes) {
            self.delivered.push(payload);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn make_stack() -> Stack {
        Stack::new(
            NodeId(1),
            MacedonKey(1),
            vec![
                Box::new(EchoRouter { inited: false }),
                Box::new(PassThrough { ups: 0, downs: 0 }),
            ],
            Box::new(RecordingApp { delivered: vec![] }),
            SimRng::new(7),
        )
    }

    #[test]
    fn init_reaches_all_layers() {
        let mut s = make_stack();
        let mut fx = Vec::new();
        s.init(Time::ZERO, &mut fx);
        let router: &EchoRouter = s.agent(0).as_any().downcast_ref().unwrap();
        assert!(router.inited);
    }

    #[test]
    fn api_downcall_travels_to_lowest_and_sends() {
        let mut s = make_stack();
        let mut fx = Vec::new();
        s.api(
            Time::ZERO,
            DownCall::Route {
                dest: MacedonKey(9),
                payload: Bytes::from_static(b"data"),
                priority: -1,
            },
            &mut fx,
        );
        let pass: &PassThrough = s.agent(1).as_any().downcast_ref().unwrap();
        assert_eq!(pass.downs, 1);
        assert!(matches!(
            &sans_trace(&fx)[..],
            [StackEffect::Send { dst, .. }] if *dst == NodeId(9)
        ));
    }

    #[test]
    fn recv_travels_up_to_app() {
        let mut s = make_stack();
        let mut fx = Vec::new();
        s.recv(
            Time::ZERO,
            NodeId(5),
            Bytes::from_static(b"hello"),
            SpanId::NONE,
            &mut fx,
        );
        let pass: &PassThrough = s.agent(1).as_any().downcast_ref().unwrap();
        assert_eq!(pass.ups, 1);
        let app: &RecordingApp = s.app().as_any().downcast_ref().unwrap();
        assert_eq!(app.delivered.len(), 1);
        assert_eq!(&app.delivered[0][..], b"hello");
    }

    #[test]
    fn timer_effects_tagged_with_layer() {
        struct TimerAgent;
        impl Agent for TimerAgent {
            fn protocol_id(&self) -> u16 {
                1
            }
            fn name(&self) -> &'static str {
                "t"
            }
            fn init(&mut self, ctx: &mut Ctx) {
                ctx.timer_set(3, Duration::from_secs(1));
            }
            fn downcall(&mut self, _ctx: &mut Ctx, _call: DownCall) {}
            fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
            fn timer(&mut self, ctx: &mut Ctx, timer: u16) {
                ctx.timer_cancel(timer);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut s = Stack::new(
            NodeId(0),
            MacedonKey(0),
            vec![Box::new(TimerAgent)],
            Box::new(crate::agent::NullApp),
            SimRng::new(1),
        );
        let mut fx = Vec::new();
        s.init(Time::ZERO, &mut fx);
        assert!(matches!(
            &sans_trace(&fx)[..],
            [StackEffect::TimerSet {
                layer: 0,
                timer: 3,
                ..
            }]
        ));
        fx.clear();
        s.timer(Time::from_secs(1), 0, 3, &mut fx);
        assert!(matches!(
            &sans_trace(&fx)[..],
            [StackEffect::TimerCancel { layer: 0, timer: 3 }]
        ));
    }

    #[test]
    fn forward_query_visits_upper_layers_and_returns() {
        /// Router that asks permission before sending.
        struct QueryRouter {
            resolved: Option<ForwardInfo>,
        }
        impl Agent for QueryRouter {
            fn protocol_id(&self) -> u16 {
                2
            }
            fn name(&self) -> &'static str {
                "qr"
            }
            fn init(&mut self, _ctx: &mut Ctx) {}
            fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
                if let DownCall::Route { dest, payload, .. } = call {
                    ctx.forward_query(ForwardInfo {
                        src: MacedonKey(0),
                        prev_hop: NodeId(0),
                        dest,
                        next_hop: NodeId(100),
                        payload,
                        quash: false,
                    });
                }
            }
            fn forward_resolved(&mut self, ctx: &mut Ctx, fwd: ForwardInfo) {
                if !fwd.quash {
                    ctx.send(fwd.next_hop, ChannelId(0), fwd.payload.clone());
                }
                self.resolved = Some(fwd);
            }
            fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
            fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        /// Upper layer that redirects next hops.
        struct Redirector;
        impl Agent for Redirector {
            fn protocol_id(&self) -> u16 {
                3
            }
            fn name(&self) -> &'static str {
                "redir"
            }
            fn init(&mut self, _ctx: &mut Ctx) {}
            fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
                ctx.down(call);
            }
            fn on_forward(&mut self, _ctx: &mut Ctx, fwd: &mut ForwardInfo) {
                fwd.next_hop = NodeId(200);
            }
            fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
            fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut s = Stack::new(
            NodeId(0),
            MacedonKey(0),
            vec![
                Box::new(QueryRouter { resolved: None }),
                Box::new(Redirector),
            ],
            Box::new(crate::agent::NullApp),
            SimRng::new(1),
        );
        let mut fx = Vec::new();
        s.api(
            Time::ZERO,
            DownCall::Route {
                dest: MacedonKey(1),
                payload: Bytes::from_static(b"m"),
                priority: -1,
            },
            &mut fx,
        );
        // Upper layer redirected the hop; router then sent there.
        assert!(
            matches!(&sans_trace(&fx)[..], [StackEffect::Send { dst, .. }] if *dst == NodeId(200))
        );
        let qr: &QueryRouter = s.agent(0).as_any().downcast_ref().unwrap();
        assert_eq!(qr.resolved.as_ref().unwrap().next_hop, NodeId(200));
    }

    #[test]
    fn quash_stops_transmission() {
        struct QuashAll;
        impl Agent for QuashAll {
            fn protocol_id(&self) -> u16 {
                4
            }
            fn name(&self) -> &'static str {
                "quash"
            }
            fn init(&mut self, _ctx: &mut Ctx) {}
            fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
                ctx.down(call);
            }
            fn on_forward(&mut self, _ctx: &mut Ctx, fwd: &mut ForwardInfo) {
                fwd.quash = true;
            }
            fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
            fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct QueryRouter2;
        impl Agent for QueryRouter2 {
            fn protocol_id(&self) -> u16 {
                5
            }
            fn name(&self) -> &'static str {
                "qr2"
            }
            fn init(&mut self, _ctx: &mut Ctx) {}
            fn downcall(&mut self, ctx: &mut Ctx, call: DownCall) {
                if let DownCall::Route { dest, payload, .. } = call {
                    ctx.forward_query(ForwardInfo {
                        src: MacedonKey(0),
                        prev_hop: NodeId(0),
                        dest,
                        next_hop: NodeId(1),
                        payload,
                        quash: false,
                    });
                }
            }
            fn forward_resolved(&mut self, ctx: &mut Ctx, fwd: ForwardInfo) {
                if !fwd.quash {
                    ctx.send(fwd.next_hop, ChannelId(0), fwd.payload.clone());
                }
            }
            fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
            fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut s = Stack::new(
            NodeId(0),
            MacedonKey(0),
            vec![Box::new(QueryRouter2), Box::new(QuashAll)],
            Box::new(crate::agent::NullApp),
            SimRng::new(1),
        );
        let mut fx = Vec::new();
        s.api(
            Time::ZERO,
            DownCall::Route {
                dest: MacedonKey(1),
                payload: Bytes::new(),
                priority: -1,
            },
            &mut fx,
        );
        assert!(fx.iter().all(|e| !matches!(e, StackEffect::Send { .. })));
    }

    #[test]
    fn transition_locking_counters() {
        let mut s = make_stack();
        let mut fx = Vec::new();
        s.init(Time::ZERO, &mut fx);
        let w0 = s.write_transitions;
        assert!(w0 >= 3, "init counted for two agents and the app");
        s.recv(Time::ZERO, NodeId(2), Bytes::new(), SpanId::NONE, &mut fx);
        assert!(s.write_transitions > w0);
    }

    #[test]
    fn sends_mint_unique_spans_and_emit_events() {
        let mut s = make_stack();
        let mut fx = Vec::new();
        for _ in 0..2 {
            s.api(
                Time::ZERO,
                DownCall::Route {
                    dest: MacedonKey(9),
                    payload: Bytes::from_static(b"data"),
                    priority: -1,
                },
                &mut fx,
            );
        }
        let minted: Vec<SpanId> = fx
            .iter()
            .filter_map(|e| match e {
                StackEffect::Send { span, .. } => Some(*span),
                _ => None,
            })
            .collect();
        assert_eq!(
            minted,
            vec![SpanId::mint(NodeId(1), 1), SpanId::mint(NodeId(1), 2)]
        );
        // The Send trace event carries the same minted span.
        let traced: Vec<SpanId> = fx
            .iter()
            .filter_map(|e| match e {
                StackEffect::Trace {
                    event: TraceEvent::Send { span, .. },
                    ..
                } => Some(*span),
                _ => None,
            })
            .collect();
        assert_eq!(traced, minted);
        // And each entry produced an ApiCall event.
        assert_eq!(
            fx.iter()
                .filter(|e| matches!(
                    e,
                    StackEffect::Trace {
                        event: TraceEvent::ApiCall { call: "route" },
                        ..
                    }
                ))
                .count(),
            2
        );
    }

    #[test]
    fn dispatch_context_span_propagates_to_emitted_records() {
        let mut s = make_stack();
        let mut fx = Vec::new();
        let inbound = SpanId::mint(NodeId(7), 3);
        s.recv(
            Time::ZERO,
            NodeId(5),
            Bytes::from_static(b"hi"),
            inbound,
            &mut fx,
        );
        // Every record emitted inside this dispatch carries the inbound
        // span as causal context — including the Dispatch event itself.
        let spans: Vec<SpanId> = fx
            .iter()
            .filter_map(|e| match e {
                StackEffect::Trace { span, .. } => Some(*span),
                _ => None,
            })
            .collect();
        assert!(!spans.is_empty());
        assert!(spans.iter().all(|s| *s == inbound));
        assert!(fx.iter().any(|e| matches!(
            e,
            StackEffect::Trace {
                event: TraceEvent::Dispatch {
                    from: NodeId(5),
                    bytes: 2
                },
                ..
            }
        )));
    }

    #[test]
    fn observability_off_emits_nothing_but_still_mints_spans() {
        let mut s = make_stack();
        s.set_observability(false);
        let mut fx = Vec::new();
        s.api(
            Time::ZERO,
            DownCall::Route {
                dest: MacedonKey(9),
                payload: Bytes::from_static(b"data"),
                priority: -1,
            },
            &mut fx,
        );
        assert!(
            fx.iter().all(|e| !matches!(e, StackEffect::Trace { .. })),
            "no trace effects with observability off"
        );
        assert!(matches!(
            &fx[..],
            [StackEffect::Send { span, .. }] if *span == SpanId::mint(NodeId(1), 1)
        ));
    }
}
