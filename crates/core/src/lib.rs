//! # macedon-core
//!
//! The MACEDON engine: everything the paper's generated C++ agents link
//! against, reimplemented as a deterministic Rust runtime.
//!
//! * [`key`] / [`sha1`] — the 32-bit hash address space and the SHA
//!   hashing library.
//! * [`wire`] — message (de)serialization, the "state serialization"
//!   engine service.
//! * [`api`] — the overlay-generic MACEDON API of Figure 3: downcalls
//!   (`route`, `routeIP`, `multicast`, `anycast`, `collect`, group
//!   management) and upcalls (`forward`, `deliver`, `notify`).
//! * [`agent`] — the [`agent::Agent`] trait generated code implements,
//!   the [`agent::AppHandler`] application interface, and the transition
//!   [`agent::Ctx`].
//! * [`stack`] — per-node protocol layering (Figure 2/5) with the effect
//!   dispatcher.
//! * [`neighbors`] — neighbor-list primitives (§3.3.2).
//! * [`trace`] — the four-level tracing subsystem and locking-class
//!   accounting.
//! * [`app`] — reusable workload applications (streamers, collectors).
//! * [`world`] — the combined event loop: timer subsystem, failure
//!   detector (heartbeats, `g`/`f` thresholds), node lifecycle, metric
//!   oracles.

pub mod agent;
pub mod api;
pub mod app;
pub mod export;
pub mod key;
pub mod measure;
pub mod neighbors;
pub mod report;
pub mod sha1;
pub mod stack;
pub mod telemetry;
pub mod trace;
pub mod wire;
pub mod world;

pub use agent::{Agent, AppHandler, Ctx, Locking, NullApp};
pub use api::{DownCall, ForwardInfo, ProtocolId, UpCall, DEFAULT_PRIORITY, TUNNEL_PROTOCOL};
pub use export::perfetto_json;
pub use key::{Addressing, MacedonKey};
pub use measure::{MeasureLedger, MeasureSummary};
pub use neighbors::NeighborList;
pub use report::RunReport;
pub use stack::{Stack, StackEffect};
pub use telemetry::{Telemetry, TelemetryReport, TelemetrySample, TELEMETRY_COLUMNS};
pub use trace::{SpanId, TraceEvent, TraceLevel, TraceRecord, TraceSink};
pub use wire::{DecodeError, WireReader, WireRef, WireWriter};
pub use world::{
    proto_header, EventClassCounts, ShardProfile, World, WorldConfig, WorldEvent,
    PROFILE_SAMPLE_CAP,
};

// Re-export the identifiers agents constantly need.
pub use bytes::Bytes;
pub use macedon_net::NodeId;
pub use macedon_sim::{Duration, SimRng, Time};
pub use macedon_transport::{ChannelId, ChannelSpec, TransportKind};
