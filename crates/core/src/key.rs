//! The MACEDON key: the paper's 32-bit hash address space.
//!
//! "our implementation of Chord only uses a 32-bit hash address space"
//! (§4.2.2) — node identifiers, group ids and route destinations are all
//! [`MacedonKey`]s. With IP addressing the key is the node id itself;
//! with hash addressing it is `sha1(address)` truncated to 32 bits.

use crate::sha1::sha1_u32;
use macedon_net::NodeId;
use std::fmt;

/// A point on the 2^32 identifier ring.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacedonKey(pub u32);

/// Ring size as u64 (2^32).
pub const RING: u64 = 1u64 << 32;

/// Key-derivation mode, per the `addressing` header of a mac file.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Addressing {
    /// Keys are SHA-1 hashes of addresses.
    Hash,
    /// Keys are the (zero-extended) IP/node ids themselves.
    Ip,
}

impl MacedonKey {
    /// Key of a node under the given addressing mode.
    pub fn of_node(node: NodeId, mode: Addressing) -> MacedonKey {
        match mode {
            Addressing::Hash => MacedonKey(sha1_u32(&node.0.to_be_bytes())),
            Addressing::Ip => MacedonKey(node.0),
        }
    }

    /// Key of an arbitrary name (group names, object ids).
    pub fn of_name(name: &str) -> MacedonKey {
        MacedonKey(sha1_u32(name.as_bytes()))
    }

    /// Clockwise distance from `self` to `other` on the ring.
    pub fn distance_to(self, other: MacedonKey) -> u64 {
        (other.0 as u64 + RING - self.0 as u64) % RING
    }

    /// `self + 2^i (mod 2^32)` — Chord finger targets.
    pub fn plus_pow2(self, i: u32) -> MacedonKey {
        debug_assert!(i < 32);
        MacedonKey(((self.0 as u64 + (1u64 << i)) % RING) as u32)
    }

    /// True if `self` lies in the open interval `(a, b)` going clockwise.
    pub fn in_open(self, a: MacedonKey, b: MacedonKey) -> bool {
        if a == b {
            // Whole ring except the endpoint.
            return self != a;
        }
        a.distance_to(self) > 0 && a.distance_to(self) < a.distance_to(b)
    }

    /// True if `self` lies in the half-open interval `(a, b]` clockwise.
    pub fn in_open_closed(self, a: MacedonKey, b: MacedonKey) -> bool {
        if a == b {
            return true; // full ring
        }
        a.distance_to(self) > 0 && a.distance_to(self) <= a.distance_to(b)
    }

    /// Digit `i` (0 = most significant) of the key in base `2^bits`.
    /// Pastry prefix routing uses `bits = 4` → 8 hex digits.
    pub fn digit(self, i: u32, bits: u32) -> u32 {
        debug_assert!(bits > 0 && 32 % bits == 0 && i < 32 / bits);
        let shift = 32 - bits * (i + 1);
        (self.0 >> shift) & ((1 << bits) - 1)
    }

    /// Length of the shared prefix with `other`, in digits of `2^bits`.
    pub fn shared_prefix_len(self, other: MacedonKey, bits: u32) -> u32 {
        let digits = 32 / bits;
        for i in 0..digits {
            if self.digit(i, bits) != other.digit(i, bits) {
                return i;
            }
        }
        digits
    }

    /// Absolute ring distance (min of clockwise and counter-clockwise) —
    /// Pastry's leaf-set proximity.
    pub fn ring_distance(self, other: MacedonKey) -> u64 {
        let cw = self.distance_to(other);
        cw.min(RING - cw)
    }
}

// ---------------------------------------------------------------------------
// DSL builtin semantics — shared by the IR interpreter and the generated
// Rust back end so `ring_dist(...)` and friends evaluate bit-for-bit
// identically under both translators. All are total: a null operand
// yields the documented sentinel instead of a runtime error, so specs
// may call them before their neighbor state is populated.
// ---------------------------------------------------------------------------

/// `ring_dist(a, b)`: symmetric ring distance between two keys. A null
/// operand yields `RING` (2^32) — larger than any real distance, so a
/// null candidate loses every "closest" comparison.
pub fn dsl_ring_dist(a: Option<MacedonKey>, b: Option<MacedonKey>) -> i64 {
    match (a, b) {
        (Some(a), Some(b)) => a.ring_distance(b) as i64,
        _ => RING as i64,
    }
}

/// `ring_between(x, lo, hi)`: true iff `x` lies in the half-open
/// clockwise interval `(lo, hi]`. Any null operand yields false.
pub fn dsl_ring_between(
    x: Option<MacedonKey>,
    lo: Option<MacedonKey>,
    hi: Option<MacedonKey>,
) -> bool {
    match (x, lo, hi) {
        (Some(x), Some(lo), Some(hi)) => x.in_open_closed(lo, hi),
        _ => false,
    }
}

/// `digit(key, i, base)`: digit `i` (0 = most significant) of the key
/// written in `base`, which must be a power-of-two radix whose bit width
/// divides 32 (2, 4, 16, 256, 65536). A null key, an unusable base or an
/// out-of-range index yields 0.
pub fn dsl_digit(key: Option<MacedonKey>, i: i64, base: i64) -> i64 {
    let Some(k) = key else { return 0 };
    if !(2..=65536).contains(&base) {
        return 0;
    }
    let base = base as u32;
    if !base.is_power_of_two() {
        return 0;
    }
    let bits = base.trailing_zeros();
    if 32 % bits != 0 || i < 0 || i as u32 >= 32 / bits {
        return 0;
    }
    k.digit(i as u32, bits) as i64
}

/// `prefix_len(a, b)`: length of the shared hex-digit prefix (bits = 4,
/// the Pastry default radix). A null operand yields 0.
pub fn dsl_prefix_len(a: Option<MacedonKey>, b: Option<MacedonKey>) -> i64 {
    match (a, b) {
        (Some(a), Some(b)) => a.shared_prefix_len(b, 4) as i64,
        _ => 0,
    }
}

/// `key + signed offset`, wrapping on the 2^32 ring — the DSL's
/// `my_key + pow2` finger targets. i64 wrapping is mod 2^64 and 2^32
/// divides 2^64, so the final `rem_euclid` still yields the true sum
/// mod 2^32.
pub fn dsl_key_add(k: MacedonKey, off: i64) -> MacedonKey {
    MacedonKey((k.0 as i64).wrapping_add(off).rem_euclid(RING as i64) as u32)
}

/// `owner_of(key, list)`: the list member that owns `key` — the node
/// whose key is clockwise-nearest at-or-after `key`, ties broken by node
/// id so the choice is deterministic. A null key or an empty list yields
/// null.
pub fn dsl_owner_of(key: Option<MacedonKey>, list: &[NodeId], mode: Addressing) -> Option<NodeId> {
    let key = key?;
    list.iter()
        .copied()
        .min_by_key(|&n| (key.distance_to(MacedonKey::of_node(n, mode)), n.0))
}

impl fmt::Debug for MacedonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{:08x}", self.0)
    }
}

impl fmt::Display for MacedonKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addressing_modes() {
        let n = NodeId(42);
        assert_eq!(MacedonKey::of_node(n, Addressing::Ip), MacedonKey(42));
        let h = MacedonKey::of_node(n, Addressing::Hash);
        assert_ne!(h, MacedonKey(42));
        // Deterministic.
        assert_eq!(h, MacedonKey::of_node(n, Addressing::Hash));
    }

    #[test]
    fn distance_wraps() {
        let a = MacedonKey(u32::MAX - 10);
        let b = MacedonKey(10);
        assert_eq!(a.distance_to(b), 21);
        assert_eq!(b.distance_to(a), RING - 21);
        assert_eq!(a.distance_to(a), 0);
    }

    #[test]
    fn in_open_interval() {
        let a = MacedonKey(100);
        let b = MacedonKey(200);
        assert!(MacedonKey(150).in_open(a, b));
        assert!(!MacedonKey(100).in_open(a, b));
        assert!(!MacedonKey(200).in_open(a, b));
        assert!(!MacedonKey(250).in_open(a, b));
        // Wrapping interval.
        let w1 = MacedonKey(u32::MAX - 5);
        let w2 = MacedonKey(5);
        assert!(MacedonKey(0).in_open(w1, w2));
        assert!(MacedonKey(u32::MAX).in_open(w1, w2));
        assert!(!MacedonKey(100).in_open(w1, w2));
    }

    #[test]
    fn in_open_closed_interval() {
        let a = MacedonKey(100);
        let b = MacedonKey(200);
        assert!(MacedonKey(200).in_open_closed(a, b));
        assert!(!MacedonKey(100).in_open_closed(a, b));
        // Degenerate interval = full ring.
        assert!(MacedonKey(7).in_open_closed(a, a));
    }

    #[test]
    fn open_degenerate_excludes_endpoint() {
        let a = MacedonKey(9);
        assert!(!a.in_open(a, a));
        assert!(MacedonKey(10).in_open(a, a));
    }

    #[test]
    fn plus_pow2_wraps() {
        let k = MacedonKey(u32::MAX);
        assert_eq!(k.plus_pow2(0), MacedonKey(0));
        assert_eq!(MacedonKey(0).plus_pow2(31), MacedonKey(1 << 31));
    }

    #[test]
    fn digits() {
        let k = MacedonKey(0x1234_ABCD);
        assert_eq!(k.digit(0, 4), 0x1);
        assert_eq!(k.digit(1, 4), 0x2);
        assert_eq!(k.digit(7, 4), 0xD);
        assert_eq!(k.digit(0, 8), 0x12);
        assert_eq!(k.digit(3, 8), 0xCD);
    }

    #[test]
    fn shared_prefix() {
        let a = MacedonKey(0x1234_0000);
        let b = MacedonKey(0x1235_0000);
        assert_eq!(a.shared_prefix_len(b, 4), 3);
        assert_eq!(a.shared_prefix_len(a, 4), 8);
        let c = MacedonKey(0x9234_0000);
        assert_eq!(a.shared_prefix_len(c, 4), 0);
    }

    #[test]
    fn ring_distance_symmetric() {
        let a = MacedonKey(10);
        let b = MacedonKey(u32::MAX - 9);
        assert_eq!(a.ring_distance(b), 20);
        assert_eq!(b.ring_distance(a), 20);
        assert_eq!(a.ring_distance(a), 0);
    }

    #[test]
    fn name_keys_spread() {
        let k1 = MacedonKey::of_name("group-1");
        let k2 = MacedonKey::of_name("group-2");
        assert_ne!(k1, k2);
    }

    #[test]
    fn dsl_helpers_null_sentinels() {
        let k = Some(MacedonKey(7));
        assert_eq!(dsl_ring_dist(None, k), RING as i64);
        assert_eq!(dsl_ring_dist(k, None), RING as i64);
        assert!(!dsl_ring_between(None, k, k));
        assert!(!dsl_ring_between(k, None, k));
        assert!(!dsl_ring_between(k, k, None));
        assert_eq!(dsl_digit(None, 0, 16), 0);
        assert_eq!(dsl_prefix_len(None, k), 0);
        assert_eq!(dsl_owner_of(None, &[NodeId(1)], Addressing::Ip), None);
        assert_eq!(dsl_owner_of(k, &[], Addressing::Ip), None);
    }

    #[test]
    fn dsl_digit_rejects_bad_radix() {
        let k = Some(MacedonKey(0x1234_ABCD));
        assert_eq!(dsl_digit(k, 0, 0), 0);
        assert_eq!(dsl_digit(k, 0, 1), 0);
        assert_eq!(dsl_digit(k, 0, 3), 0);
        assert_eq!(dsl_digit(k, 0, 8), 0); // 3 bits does not divide 32
        assert_eq!(dsl_digit(k, -1, 16), 0);
        assert_eq!(dsl_digit(k, 8, 16), 0);
        assert_eq!(dsl_digit(k, 0, 16), 0x1);
        assert_eq!(dsl_digit(k, 7, 16), 0xD);
        assert_eq!(dsl_digit(k, 1, 256), 0x34);
    }

    #[test]
    fn dsl_owner_of_clockwise_at_or_after() {
        // Ip addressing: node id is the key. Owner of 10 among
        // {5, 10, 20} is 10 itself (distance 0); owner of 11 is 20.
        let list = [NodeId(5), NodeId(10), NodeId(20)];
        let own = |k: u32| dsl_owner_of(Some(MacedonKey(k)), &list, Addressing::Ip);
        assert_eq!(own(10), Some(NodeId(10)));
        assert_eq!(own(11), Some(NodeId(20)));
        // Wraps past the top of the ring back to the smallest id.
        assert_eq!(own(21), Some(NodeId(5)));
        assert_eq!(own(u32::MAX), Some(NodeId(5)));
    }
}
