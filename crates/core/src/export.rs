//! Chrome/Perfetto trace-event JSON export.
//!
//! Writes the merged causal trace as a `{"traceEvents":[...]}` document
//! that `ui.perfetto.dev` (or `chrome://tracing`) loads directly:
//!
//! * **Virtual-time lanes** — pid 1, one tid per node; every trace
//!   record becomes an instant event at its virtual microsecond, and
//!   each application-level send opens a flow arrow (`ph:"s"`) that
//!   closes at the matching delivery (`ph:"f"`), so a multi-hop path
//!   reads as a connected chain across node lanes.
//! * **Wall-clock lanes** — pid 2, one tid per shard worker; each
//!   windowed-execution profile sample becomes a duration event placed
//!   at the window's virtual start whose *duration* is the measured
//!   wall nanoseconds spent draining it. Virtual instants where the
//!   engine burned disproportionate wall time (e.g. the 100k-node
//!   events/sec dip) stand out as long slices.

use crate::trace::{TraceEvent, TraceRecord};
use crate::world::ShardProfile;

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn event_name(e: &TraceEvent) -> &'static str {
    match e {
        TraceEvent::Dispatch { .. } => "dispatch",
        TraceEvent::FsmTransition { .. } => "fsm",
        TraceEvent::Send { .. } => "send",
        TraceEvent::Forward { .. } => "forward",
        TraceEvent::Quash => "quash",
        TraceEvent::Deliver { .. } => "deliver",
        TraceEvent::Drop { .. } => "drop",
        TraceEvent::TimerFire { .. } => "timer",
        TraceEvent::ApiCall { .. } => "api",
        TraceEvent::Custom { .. } => "custom",
    }
}

/// Render the merged trace (plus optional worker profiles) as a
/// Perfetto-loadable JSON document.
pub fn perfetto_json(records: &[&TraceRecord], profile: &[ShardProfile]) -> String {
    let mut ev: Vec<String> = Vec::with_capacity(records.len() + 16);
    // Process/thread labels so lanes read as "node 3" / "shard 1".
    ev.push(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"virtual time (nodes)\"}}"
            .to_string(),
    );
    if profile.iter().any(|p| !p.samples.is_empty()) {
        ev.push(
            "{\"ph\":\"M\",\"pid\":2,\"name\":\"process_name\",\
             \"args\":{\"name\":\"wall clock (shard workers)\"}}"
                .to_string(),
        );
    }
    for r in records {
        let name = event_name(&r.event);
        ev.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
             \"tid\":{tid},\"ts\":{ts},\"args\":{{\"layer\":{layer},\
             \"level\":\"{level:?}\",\"ctx\":\"{ctx:016x}\",\
             \"details\":\"{details}\"}}}}",
            tid = r.node.0,
            ts = r.at.as_micros(),
            layer = r.layer,
            level = r.level,
            ctx = r.span.0,
            details = esc(&r.event.render()),
        ));
        match &r.event {
            // A send opens the flow arrow under the *minted* span id...
            TraceEvent::Send { span, .. } => {
                ev.push(format!(
                    "{{\"name\":\"span\",\"cat\":\"causal\",\"ph\":\"s\",\
                     \"pid\":1,\"tid\":{tid},\"ts\":{ts},\"id\":{id}}}",
                    tid = r.node.0,
                    ts = r.at.as_micros(),
                    id = span.0,
                ));
            }
            // ...and the delivery dispatching under that span closes it.
            TraceEvent::Deliver { .. } if !r.span.is_none() => {
                ev.push(format!(
                    "{{\"name\":\"span\",\"cat\":\"causal\",\"ph\":\"f\",\
                     \"bp\":\"e\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\
                     \"id\":{id}}}",
                    tid = r.node.0,
                    ts = r.at.as_micros(),
                    id = r.span.0,
                ));
            }
            _ => {}
        }
    }
    for (sid, p) in profile.iter().enumerate() {
        for &(window_start_us, drain_ns) in &p.samples {
            ev.push(format!(
                "{{\"name\":\"window drain\",\"ph\":\"X\",\"pid\":2,\
                 \"tid\":{sid},\"ts\":{window_start_us},\"dur\":{dur},\
                 \"args\":{{\"wall_ns\":{drain_ns}}}}}",
                // Duration axis is wall µs plotted on the virtual
                // timeline: long slices mark expensive windows.
                dur = (drain_ns / 1000).max(1),
            ));
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in ev.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanId, TraceLevel};
    use macedon_net::NodeId;
    use macedon_sim::Time;

    fn rec(at_us: u64, node: u32, span: SpanId, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: Time::from_micros(at_us),
            node: NodeId(node),
            layer: 0,
            level: TraceLevel::Med,
            span,
            seq: 0,
            event,
        }
    }

    #[test]
    fn send_and_deliver_emit_flow_pair() {
        let span = SpanId::mint(NodeId(1), 1);
        let a = rec(
            100,
            1,
            SpanId::NONE,
            TraceEvent::Send {
                span,
                dst: NodeId(2),
                channel: crate::ChannelId(0),
                bytes: 8,
            },
        );
        let b = rec(
            250,
            2,
            span,
            TraceEvent::Deliver {
                from: NodeId(1),
                bytes: 8,
            },
        );
        let json = perfetto_json(&[&a, &b], &[]);
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"ph\":\"f\""), "{json}");
        assert!(json.contains(&format!("\"id\":{}", span.0)), "{json}");
        // Loadable shape: a single traceEvents array.
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn custom_messages_are_escaped() {
        let a = rec(
            1,
            0,
            SpanId::NONE,
            TraceEvent::Custom {
                msg: "say \"hi\"\npath\\x".to_string(),
            },
        );
        let json = perfetto_json(&[&a], &[]);
        assert!(json.contains("say \\\"hi\\\"\\npath\\\\x"), "{json}");
    }

    #[test]
    fn profile_samples_become_wall_lanes() {
        let p = ShardProfile {
            windows: 1,
            drain_ns: 5_000,
            samples: vec![(400, 5_000)],
            ..Default::default()
        };
        let json = perfetto_json(&[], &[p]);
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":400"), "{json}");
        assert!(json.contains("\"dur\":5"), "{json}");
        assert!(json.contains("wall clock (shard workers)"), "{json}");
    }
}
