//! Message serialization — the "state serialization" library of the
//! MACEDON engine.
//!
//! Every protocol message crosses the emulated network as bytes so that
//! transports charge realistic sizes and layering tunnels payloads
//! opaquely. The codec is a simple big-endian TLV-free format: each
//! message type knows its own field order, mirroring the generated
//! marshaling code MACEDON emits for `messages { ... }` declarations.

use crate::key::MacedonKey;
use bytes::Bytes;
use macedon_net::NodeId;
use std::fmt;

/// Frame a payload for direct host-to-host tunneling on behalf of the
/// layers above (the engine service behind `macedon_routeIP`): protocol
/// header [`crate::api::TUNNEL_PROTOCOL`], message type 0, the sender's
/// key, then the length-prefixed payload. The interpreter and the
/// generated agents both emit and parse this frame, which is what lets
/// them tunnel for each other inside one mixed stack.
pub fn tunnel_frame(src: MacedonKey, payload: &[u8]) -> Bytes {
    let mut w = WireWriter::new();
    w.u16(crate::api::TUNNEL_PROTOCOL).u16(0).key(src);
    w.bytes(payload);
    w.finish()
}

/// Parse the body of a [`tunnel_frame`]; the reader must be positioned
/// just past the 4-byte protocol header. Returns `(source key, payload)`.
pub fn read_tunnel(r: &mut WireReader) -> Result<(MacedonKey, Bytes), DecodeError> {
    let src = r.key()?;
    let payload = r.bytes()?;
    Ok((src, payload))
}

/// [`read_tunnel`] over the borrowing reader — the interpreter's decode
/// path, which never clones the incoming buffer handle.
pub fn read_tunnel_ref(r: &mut WireRef<'_>) -> Result<(MacedonKey, Bytes), DecodeError> {
    let src = r.key()?;
    let payload = r.bytes()?;
    Ok((src, payload))
}

/// Decode failure: message truncated or malformed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    pub needed: usize,
    pub remaining: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decode error: needed {} bytes, {} remaining",
            self.needed, self.remaining
        )
    }
}

impl std::error::Error for DecodeError {}

/// Append-only message writer.
pub struct WireWriter {
    buf: Vec<u8>,
}

impl Default for WireWriter {
    fn default() -> Self {
        WireWriter::new()
    }
}

impl WireWriter {
    pub fn new() -> WireWriter {
        WireWriter {
            // Most protocol messages fit a cache line or two; one
            // up-front allocation beats the doubling crawl from empty.
            buf: Vec::with_capacity(128),
        }
    }

    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn i32(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    pub fn node(&mut self, n: NodeId) -> &mut Self {
        self.u32(n.0)
    }

    pub fn key(&mut self, k: MacedonKey) -> &mut Self {
        self.u32(k.0)
    }

    /// Length-prefixed byte blob.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.reserve(4 + b.len());
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
        self
    }

    /// Length-prefixed list of node ids.
    pub fn nodes(&mut self, ns: &[NodeId]) -> &mut Self {
        self.u16(ns.len() as u16);
        for n in ns {
            self.node(*n);
        }
        self
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Sequential message reader owning its buffer. Every accessor
/// delegates to [`WireRef`] — one decode implementation serves both
/// readers, so the wire format cannot drift between them.
pub struct WireReader {
    buf: Bytes,
    pos: usize,
}

/// Generate `WireReader` accessors that delegate to the borrowing
/// reader and carry the cursor back.
macro_rules! delegate_reads {
    ($($(#[$doc:meta])* $name:ident -> $ty:ty),* $(,)?) => {
        $($(#[$doc])*
        pub fn $name(&mut self) -> Result<$ty, DecodeError> {
            let mut r = self.reref();
            let v = r.$name();
            self.pos = r.pos;
            v
        })*
    };
}

impl WireReader {
    pub fn new(buf: Bytes) -> WireReader {
        WireReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The borrowing reader positioned at this reader's cursor.
    fn reref(&self) -> WireRef<'_> {
        WireRef {
            src: &self.buf,
            buf: &self.buf,
            pos: self.pos,
        }
    }

    delegate_reads! {
        u8 -> u8,
        u16 -> u16,
        u32 -> u32,
        u64 -> u64,
        i32 -> i32,
        node -> NodeId,
        key -> MacedonKey,
        /// Length-prefixed byte blob (zero-copy slice of the input).
        bytes -> Bytes,
        nodes -> Vec<NodeId>,
    }

    /// Length-prefixed byte blob as a borrowed slice — no `Bytes`
    /// handle, no refcount traffic. (Hand-rolled: the returned borrow
    /// of `self.buf` cannot outlive a delegating `WireRef`.)
    pub fn bytes_slice(&mut self) -> Result<&[u8], DecodeError> {
        let n = self.u32()? as usize;
        if self.remaining() < n {
            return Err(DecodeError {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let start = self.pos;
        self.pos += n;
        Ok(&self.buf[start..start + n])
    }
}

/// Borrowing message reader: the zero-clone counterpart of
/// [`WireReader`]. Where `WireReader::new` takes ownership of a `Bytes`
/// handle (forcing callers that only hold a reference to clone it
/// first), `WireRef` reads straight out of a `&Bytes`. [`WireRef::bytes`]
/// still returns a zero-copy sub-`Bytes` sharing the underlying
/// allocation; [`WireRef::bytes_slice`] borrows outright.
pub struct WireRef<'a> {
    src: &'a Bytes,
    /// The buffer contents, dereferenced once at construction — every
    /// scalar read works on this plain slice.
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireRef<'a> {
    pub fn new(buf: &'a Bytes) -> WireRef<'a> {
        WireRef {
            src: buf,
            buf,
            pos: 0,
        }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self.take(8)?;
        Ok(u64::from_be_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        let s = self.take(4)?;
        Ok(i32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    pub fn node(&mut self) -> Result<NodeId, DecodeError> {
        Ok(NodeId(self.u32()?))
    }

    pub fn key(&mut self) -> Result<MacedonKey, DecodeError> {
        Ok(MacedonKey(self.u32()?))
    }

    /// Length-prefixed byte blob (zero-copy slice of the shared buffer).
    pub fn bytes(&mut self) -> Result<Bytes, DecodeError> {
        let n = self.u32()? as usize;
        if self.remaining() < n {
            return Err(DecodeError {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let b = self.src.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(b)
    }

    /// Length-prefixed byte blob as a borrowed slice.
    pub fn bytes_slice(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub fn nodes(&mut self) -> Result<Vec<NodeId>, DecodeError> {
        let n = self.u16()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(self.node()?);
        }
        Ok(out)
    }

    /// Length-prefixed node list into a caller-provided (pooled) buffer.
    pub fn nodes_into(&mut self, out: &mut Vec<NodeId>) -> Result<(), DecodeError> {
        debug_assert!(out.is_empty());
        let n = self.u16()? as usize;
        out.reserve(n.min(1024));
        for _ in 0..n {
            out.push(self.node()?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = WireWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40).i32(-5);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i32().unwrap(), -5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn roundtrip_domain_types() {
        let mut w = WireWriter::new();
        w.node(NodeId(9)).key(MacedonKey(0xDEAD_BEEF));
        w.nodes(&[NodeId(1), NodeId(2), NodeId(3)]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.node().unwrap(), NodeId(9));
        assert_eq!(r.key().unwrap(), MacedonKey(0xDEAD_BEEF));
        assert_eq!(r.nodes().unwrap(), vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn roundtrip_bytes_blob() {
        let mut w = WireWriter::new();
        w.bytes(b"payload").u8(0xFF);
        let mut r = WireReader::new(w.finish());
        assert_eq!(&r.bytes().unwrap()[..], b"payload");
        assert_eq!(r.u8().unwrap(), 0xFF);
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = WireWriter::new();
        w.u16(1);
        let mut r = WireReader::new(w.finish());
        assert!(r.u32().is_err());
        let err = r.u64().unwrap_err();
        assert_eq!(err.needed, 8);
    }

    #[test]
    fn truncated_blob_errors() {
        let mut w = WireWriter::new();
        w.u32(100); // claims 100 bytes follow, none do
        let mut r = WireReader::new(w.finish());
        assert!(r.bytes().is_err());
    }

    #[test]
    fn empty_collections() {
        let mut w = WireWriter::new();
        w.bytes(b"").nodes(&[]);
        let mut r = WireReader::new(w.finish());
        assert!(r.bytes().unwrap().is_empty());
        assert!(r.nodes().unwrap().is_empty());
    }

    #[test]
    fn tunnel_frame_roundtrip() {
        let frame = tunnel_frame(MacedonKey(42), b"inner");
        let mut r = WireReader::new(frame);
        assert_eq!(r.u16().unwrap(), crate::api::TUNNEL_PROTOCOL);
        assert_eq!(r.u16().unwrap(), 0);
        let (src, payload) = read_tunnel(&mut r).unwrap();
        assert_eq!(src, MacedonKey(42));
        assert_eq!(&payload[..], b"inner");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn wire_ref_matches_owning_reader() {
        let mut w = WireWriter::new();
        w.u8(7).u16(300).u32(70_000).u64(1 << 40).i32(-5);
        w.node(NodeId(9)).key(MacedonKey(3));
        w.bytes(b"payload");
        w.nodes(&[NodeId(1), NodeId(2)]);
        let buf = w.finish();
        let mut r = WireRef::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.i32().unwrap(), -5);
        assert_eq!(r.node().unwrap(), NodeId(9));
        assert_eq!(r.key().unwrap(), MacedonKey(3));
        assert_eq!(&r.bytes().unwrap()[..], b"payload");
        assert_eq!(r.nodes().unwrap(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(r.remaining(), 0);
        assert!(r.u8().is_err(), "exhausted reader errors");
    }

    #[test]
    fn bytes_slice_borrows() {
        let mut w = WireWriter::new();
        w.bytes(b"abc").u8(9);
        let buf = w.finish();
        let mut r = WireRef::new(&buf);
        assert_eq!(r.bytes_slice().unwrap(), b"abc");
        assert_eq!(r.u8().unwrap(), 9);
        let mut own = WireReader::new(buf.clone());
        assert_eq!(own.bytes_slice().unwrap(), b"abc");
        assert_eq!(own.u8().unwrap(), 9);
    }

    #[test]
    fn tunnel_frame_roundtrip_borrowed() {
        let frame = tunnel_frame(MacedonKey(42), b"inner");
        let mut r = WireRef::new(&frame);
        assert_eq!(r.u16().unwrap(), crate::api::TUNNEL_PROTOCOL);
        assert_eq!(r.u16().unwrap(), 0);
        let (src, payload) = read_tunnel_ref(&mut r).unwrap();
        assert_eq!(src, MacedonKey(42));
        assert_eq!(&payload[..], b"inner");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_ref_blob_errors() {
        let mut w = WireWriter::new();
        w.u32(100);
        let buf = w.finish();
        let mut r = WireRef::new(&buf);
        assert!(r.bytes().is_err());
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = WireWriter::new();
        assert!(w.is_empty());
        w.u32(1);
        assert_eq!(w.len(), 4);
    }
}
