//! The world: a deterministic event loop that couples the network
//! emulator, the transport subsystem and every node's protocol stack —
//! the equivalent of the paper's "MACEDON code engine" plus the ModelNet
//! harness around it.
//!
//! Responsibilities:
//!
//! * owning the [`Scheduler`]s and virtual clock,
//! * delivering transport messages into stacks and stack effects back out,
//! * the **timer subsystem** (named per-layer timers with cancellation and
//!   periodic re-arming),
//! * the **failure detector** (§3.1): a peer is presumed failed after `f`
//!   seconds of silence; after `g < f` seconds a heartbeat
//!   request/response is solicited first,
//! * node lifecycle: staggered spawns, crashes,
//! * world-level tracing and metric oracles.
//!
//! # Sharded execution
//!
//! With `WorldConfig::shards > 1` the world is partitioned into
//! `Shard`s — each owns a contiguous chunk of the hosts (see
//! [`ShardMap`]) together with its own scheduler, packet arena and
//! link-state replica. Shards advance independently inside a
//! *conservative time window* `[T, W]` where
//! `W = T + min_link_delay − 1µs`: the first link out of any source is
//! charged by the sender's shard (the [`ShardMap::owner_of_link`]
//! invariant), so every cross-shard packet departure carries a
//! timestamp strictly greater than `W` and can be merged at the window
//! barrier without ever rewinding a peer's clock. Departures accumulate
//! in per-shard outboxes and are injected at the next window start in
//! `(sent_at, source shard, sequence)` order — a total order independent
//! of thread scheduling, which is what makes
//! `run_parallel(n)` ≡ `run_parallel(m)` bit-for-bit for any worker
//! counts `n, m`.
//!
//! Scripted faults (crash/spawn) mutate *every* shard's fault replica,
//! so they are registered in a control-time registry and windows are
//! clipped to never span a control instant: all replicas apply the
//! mutation at exactly the scripted virtual time, just as the
//! sequential engine does when the control event pops.

use crate::agent::{Agent, AppHandler};
use crate::api::{DownCall, ProtocolId, ENGINE_PROTOCOL};
use crate::key::{Addressing, MacedonKey};
use crate::measure::MeasureSummary;
use crate::stack::{Stack, StackEffect};
use crate::trace::{SpanId, TraceEvent, TraceLevel, TraceRecord, TraceSink};
use crate::wire::{WireRef, WireWriter};
use bytes::Bytes;
use macedon_net::fault::Faults;
use macedon_net::{Handoff, NetEvent, Network, NetworkConfig, NodeId, ShardMap, Sink, Topology};
use macedon_sim::{Duration, EventId, FxHashMap, Scheduler, SimRng, Time};
use macedon_transport::{
    ChannelId, ChannelSpec, Endpoint, Segment, TimerKey, TimerKind, TransportKind, TransportSink,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Map key for the one live scheduler entry a connection timer class may
/// have (RTO or delayed-ack, per (owner, peer, channel)).
type ConnTimerSlot = (NodeId, NodeId, ChannelId, TimerKind);

/// Engine heartbeat message types.
const HB_REQ: u16 = 1;
const HB_RESP: u16 = 2;

/// World-level configuration.
#[derive(Clone)]
pub struct WorldConfig {
    pub seed: u64,
    pub addressing: Addressing,
    /// Named transport instances available to stacks (an engine-internal
    /// UDP heartbeat channel is appended automatically).
    pub channels: Vec<ChannelSpec>,
    pub trace_level: TraceLevel,
    /// Silence threshold before soliciting a heartbeat (`g`).
    pub fd_g: Duration,
    /// Silence threshold before declaring failure (`f`).
    pub fd_f: Duration,
    /// Failure-detector sweep period.
    pub fd_tick: Duration,
    pub net: NetworkConfig,
    /// Number of shards the world is partitioned into (clamped to the
    /// host count). `1` is the classic sequential engine; `> 1` enables
    /// windowed execution, which [`World::run_parallel_until`] can then
    /// drive with any number of worker threads without changing the
    /// result.
    pub shards: usize,
    /// Collect wall-clock self-profiling counters per shard worker
    /// (see [`ShardProfile`]). Wall time is nondeterministic, so the
    /// counters never feed back into simulation state — they exist to
    /// explain where engine wall clock goes (e.g. the 100k-node
    /// events/sec dip) via the Perfetto export's worker lanes.
    pub profile: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            addressing: Addressing::Hash,
            channels: ChannelSpec::default_table(),
            trace_level: TraceLevel::Off,
            fd_g: Duration::from_secs(5),
            fd_f: Duration::from_secs(15),
            fd_tick: Duration::from_secs(1),
            net: NetworkConfig::default(),
            shards: 1,
            profile: false,
        }
    }
}

/// Wall-clock self-profiling counters for one shard's worker loop,
/// populated by windowed execution (`shards > 1`) when
/// [`WorldConfig::profile`] is set. All nanosecond fields are host wall
/// time: nondeterministic, observation-only, never part of results.
#[derive(Clone, Debug, Default)]
pub struct ShardProfile {
    /// Windows this shard participated in.
    pub windows: u64,
    /// Wall nanos merging cross-shard arrivals (phase A).
    pub inject_ns: u64,
    /// Wall nanos this shard's chunk spent blocked on window barriers.
    pub barrier_ns: u64,
    /// Wall nanos draining window events (packet walks + dispatch).
    pub drain_ns: u64,
    /// Wall nanos routing departures to destination mailboxes.
    pub route_ns: u64,
    /// Per-window `(window_start_us, drain_ns)` samples (capped at
    /// [`PROFILE_SAMPLE_CAP`]) — the Perfetto wall-clock worker lanes.
    pub samples: Vec<(u64, u64)>,
}

/// Bound on per-window profile samples kept per shard.
pub const PROFILE_SAMPLE_CAP: usize = 4096;

/// Events of the combined world loop.
pub enum WorldEvent {
    Net(NetEvent),
    /// A transport connection timer (RTO or delayed ack) expired.
    ConnTimer(TimerKey),
    AgentTimer {
        node: NodeId,
        layer: u16,
        timer: u16,
        gen: u32,
    },
    FdTick {
        node: NodeId,
    },
    Spawn {
        node: NodeId,
    },
    Api {
        node: NodeId,
        call: DownCall,
    },
    Crash {
        node: NodeId,
    },
}

/// Cumulative fired-event counts by [`WorldEvent`] class — where the
/// scheduler's work actually goes, for benchmark breakdowns
/// (`bench_scale` reports these next to events/sec).
#[derive(Clone, Copy, Debug, Default)]
pub struct EventClassCounts {
    /// Packet motion through the emulated network.
    pub net: u64,
    /// Transport connection timers that actually expired (RTO fires,
    /// delayed-ack flushes) — cancelled rearms never fire.
    pub conn_timer: u64,
    /// Protocol timers declared by agents.
    pub agent_timer: u64,
    /// Failure-detector sweep ticks.
    pub fd_tick: u64,
    /// Scripted spawns/API calls/crashes.
    pub control: u64,
}

impl EventClassCounts {
    fn add(&mut self, o: &EventClassCounts) {
        self.net += o.net;
        self.conn_timer += o.conn_timer;
        self.agent_timer += o.agent_timer;
        self.fd_tick += o.fd_tick;
        self.control += o.control;
    }
}

struct TimerSlot {
    gen: u32,
    period: Option<Duration>,
    /// The pending scheduler entry; cancelled outright on supersede or
    /// cancel so stale firings never reach the queue (the generation
    /// check stays as defense in depth).
    event: EventId,
}

#[derive(Clone, Copy)]
struct MonitorState {
    last_heard: Time,
    hb_pending: bool,
}

/// Everything the engine tracks for one spawned node, boxed and stored
/// densely by node index. One pointer chase reaches the stack, the
/// transport endpoint and every timer/monitor table — at 100k nodes
/// this replaces six global hash maps whose per-event probe misses
/// dominated the sequential profile.
struct NodeState {
    stack: Stack,
    endpoint: Endpoint,
    alive: bool,
    timers: FxHashMap<(u16, u16), TimerSlot>,
    /// Live scheduler entry per connection timer class. Re-arms cancel
    /// the superseded entry instead of tombstoning it, so the timer
    /// wheel never accumulates dead RTO events.
    conn_timers: FxHashMap<ConnTimerSlot, EventId>,
    /// peer → (monitoring layers, state)
    monitors: FxHashMap<NodeId, (Vec<usize>, MonitorState)>,
}

/// A scripted fault mutation every shard's replica must apply at the
/// same virtual instant.
#[derive(Clone, Copy)]
enum ControlOp {
    Fail(NodeId),
    Heal(NodeId),
}

/// A cross-shard packet departure queued for the barrier merge,
/// stamped with the total order `(sent_at, source shard, sequence)`
/// that makes the merge independent of thread scheduling.
struct OutHandoff {
    dest: u16,
    sent_at_us: u64,
    src_shard: u16,
    seq: u64,
    h: Handoff<Segment>,
}

/// One slice of the world: a scheduler, a network replica and the
/// nodes this shard owns. With `shards = 1` this *is* the classic
/// sequential engine.
struct Shard {
    id: u16,
    cfg: Arc<WorldConfig>,
    engine_ch: ChannelId,
    sched: Scheduler<WorldEvent>,
    net: Network<Segment>,
    /// Dense by node index; `Some` exactly for spawned nodes this shard
    /// owns.
    nodes: Vec<Option<Box<NodeState>>>,
    trace: TraceSink,
    /// Instant of the last failure-detector registration change
    /// (monitor/unmonitor effects, crash cleanup) on this shard.
    last_membership_change: Time,
    event_counts: EventClassCounts,
    /// Cross-shard departures accumulated during the current window.
    outbox: Vec<OutHandoff>,
    handoff_seq: u64,
    /// Reusable network-sink buffers (the absorb chain nests, so more
    /// than one can be live at once; each level takes its own).
    nsink_pool: Vec<Sink<Segment>>,
    /// Reusable transport-sink buffers.
    tsink_pool: Vec<TransportSink>,
    /// Reusable stack-effect buffers.
    fx_pool: Vec<Vec<StackEffect>>,
    /// Self-profiling counters (only touched when `cfg.profile`).
    profile: ShardProfile,
}

impl Shard {
    #[inline]
    fn ns(&self, n: NodeId) -> Option<&NodeState> {
        match self.nodes.get(n.index()) {
            Some(Some(b)) => Some(b),
            _ => None,
        }
    }

    #[inline]
    fn ns_mut(&mut self, n: NodeId) -> Option<&mut NodeState> {
        match self.nodes.get_mut(n.index()) {
            Some(Some(b)) => Some(&mut **b),
            _ => None,
        }
    }

    fn handle(&mut self, now: Time, ev: WorldEvent) {
        match &ev {
            WorldEvent::Net(_) => self.event_counts.net += 1,
            WorldEvent::ConnTimer(_) => self.event_counts.conn_timer += 1,
            WorldEvent::AgentTimer { .. } => self.event_counts.agent_timer += 1,
            WorldEvent::FdTick { .. } => self.event_counts.fd_tick += 1,
            _ => self.event_counts.control += 1,
        }
        match ev {
            WorldEvent::Net(nev) => {
                let mut sink = self.take_nsink();
                self.net.handle(now, nev, &mut sink);
                self.absorb_net(now, sink);
            }
            WorldEvent::ConnTimer(key) => {
                // The entry just fired; drop it from the live-timer map
                // whether or not the node is still alive.
                let alive = match self.nodes.get_mut(key.node.index()) {
                    Some(Some(ns)) => {
                        ns.conn_timers.remove(&key.slot());
                        ns.alive
                    }
                    _ => return,
                };
                if !alive {
                    return;
                }
                let mut tsink = self.take_tsink();
                if let Some(ns) = self.ns_mut(key.node) {
                    ns.endpoint.on_timer(now, key, &mut tsink);
                }
                self.absorb_transport(now, key.node, tsink);
            }
            WorldEvent::AgentTimer {
                node,
                layer,
                timer,
                gen,
            } => {
                {
                    let sched = &mut self.sched;
                    let Some(Some(ns)) = self.nodes.get_mut(node.index()) else {
                        return;
                    };
                    if !ns.alive {
                        return;
                    }
                    let Some(slot) = ns.timers.get_mut(&(layer, timer)) else {
                        return;
                    };
                    if slot.gen != gen {
                        return; // superseded or cancelled
                    }
                    if let Some(period) = slot.period {
                        slot.event = sched.schedule_timer(
                            now + period,
                            WorldEvent::AgentTimer {
                                node,
                                layer,
                                timer,
                                gen,
                            },
                        );
                    }
                }
                let mut fx = self.take_fx();
                if let Some(ns) = self.ns_mut(node) {
                    ns.stack.timer(now, layer as usize, timer, &mut fx);
                }
                self.process_effects(now, node, fx);
            }
            WorldEvent::FdTick { node } => self.fd_sweep(now, node),
            WorldEvent::Spawn { node } => {
                // A respawn after a crash: the host is reachable again.
                self.net.faults_mut().heal_node(node);
                let mut fx = self.take_fx();
                if let Some(ns) = self.ns_mut(node) {
                    ns.alive = true;
                    ns.stack.init(now, &mut fx);
                }
                self.process_effects(now, node, fx);
                self.sched
                    .schedule_timer(now + self.cfg.fd_tick, WorldEvent::FdTick { node });
            }
            WorldEvent::Api { node, call } => {
                let mut fx = self.take_fx();
                match self.ns_mut(node) {
                    Some(ns) if ns.alive => ns.stack.api(now, call, &mut fx),
                    _ => {
                        self.put_fx(fx);
                        return;
                    }
                }
                self.process_effects(now, node, fx);
            }
            WorldEvent::Crash { node } => {
                self.net.faults_mut().fail_node(node);
                if let Some(ns) = self.ns_mut(node) {
                    ns.alive = false;
                    ns.monitors.clear();
                }
                // A dead node's pending timers would all pop as no-ops;
                // cancel them so churn doesn't leave event backlog.
                self.cancel_node_timers(node);
                self.last_membership_change = now;
            }
        }
    }

    fn apply_control(&mut self, op: ControlOp) {
        match op {
            ControlOp::Fail(n) => self.net.faults_mut().fail_node(n),
            ControlOp::Heal(n) => self.net.faults_mut().heal_node(n),
        }
    }

    /// Merge a batch of cross-shard arrivals at a window start, in the
    /// deterministic total order.
    fn inject(&mut self, mut batch: Vec<OutHandoff>) {
        if batch.is_empty() {
            return;
        }
        batch.sort_unstable_by_key(|o| (o.sent_at_us, o.src_shard, o.seq));
        let now = self.sched.now();
        for o in batch {
            let mut sink = self.take_nsink();
            self.net.resume(now, o.h, &mut sink);
            self.absorb_net(now, sink);
        }
    }

    // ---- plumbing ---------------------------------------------------------

    /// Cancel every pending connection and agent timer owned by `node`
    /// (crash/despawn cleanup). Connection-timer map entries are
    /// removed; agent-timer slots stay (despawn drops them, a respawn
    /// after a crash supersedes them by generation).
    fn cancel_node_timers(&mut self, node: NodeId) {
        let sched = &mut self.sched;
        if let Some(Some(ns)) = self.nodes.get_mut(node.index()) {
            ns.conn_timers.retain(|_, &mut ev| {
                sched.cancel(ev);
                false
            });
            for slot in ns.timers.values_mut() {
                sched.cancel(slot.event);
                slot.period = None;
            }
        }
    }

    fn take_nsink(&mut self) -> Sink<Segment> {
        self.nsink_pool.pop().unwrap_or_default()
    }

    fn put_nsink(&mut self, mut sink: Sink<Segment>) {
        sink.clear();
        self.nsink_pool.push(sink);
    }

    fn take_tsink(&mut self) -> TransportSink {
        self.tsink_pool.pop().unwrap_or_default()
    }

    fn put_tsink(&mut self, mut sink: TransportSink) {
        sink.packets.clear();
        sink.timers.clear();
        sink.cancel_timers.clear();
        sink.delivered.clear();
        sink.ack_samples.clear();
        self.tsink_pool.push(sink);
    }

    fn take_fx(&mut self) -> Vec<StackEffect> {
        self.fx_pool.pop().unwrap_or_default()
    }

    fn put_fx(&mut self, mut fx: Vec<StackEffect>) {
        fx.clear();
        self.fx_pool.push(fx);
    }

    fn absorb_net(&mut self, now: Time, mut sink: Sink<Segment>) {
        for (t, ev) in sink.schedule.drain(..) {
            self.sched.schedule(t, WorldEvent::Net(ev));
        }
        // Packet drops become trace events at the drop site. The span is
        // unknown here (the packet is gone), so records carry no context.
        for (reason, at_node) in sink.dropped.drain(..) {
            self.trace.record(
                now,
                at_node,
                0,
                TraceLevel::Low,
                SpanId::NONE,
                TraceEvent::Drop { reason },
            );
        }
        for h in sink.handoffs.drain(..) {
            self.handoff_seq += 1;
            self.outbox.push(OutHandoff {
                dest: h.dest_shard,
                sent_at_us: h.sent_at.as_micros(),
                src_shard: self.id,
                seq: self.handoff_seq,
                h,
            });
        }
        for d in sink.delivered.drain(..) {
            let to = d.pkt.dst;
            let from = d.pkt.src;
            let mut tsink = self.take_tsink();
            let delivered = match self.ns_mut(to) {
                Some(ns) if ns.alive => {
                    ns.endpoint.on_packet(d.at, from, d.pkt.payload, &mut tsink);
                    true
                }
                _ => false,
            };
            if delivered {
                self.absorb_transport(d.at, to, tsink);
            } else {
                self.put_tsink(tsink);
            }
        }
        self.put_nsink(sink);
    }

    fn absorb_transport(&mut self, now: Time, node: NodeId, mut tsink: TransportSink) {
        // Acknowledgement observations feed the node's measurement
        // ledger (spec-readable `rtt(peer)`); purely passive — no
        // events, no RNG draws.
        if !tsink.ack_samples.is_empty() {
            if let Some(ns) = self.ns_mut(node) {
                let m = ns.stack.measures_mut();
                for (peer, rtt) in tsink.ack_samples.drain(..) {
                    m.on_ack(now, peer, rtt);
                }
            }
        }
        let mut nsink = self.take_nsink();
        for pkt in tsink.packets.drain(..) {
            self.net.send(now, pkt, &mut nsink);
        }
        {
            let sched = &mut self.sched;
            if let Some(Some(ns)) = self.nodes.get_mut(node.index()) {
                for key in tsink.cancel_timers.drain(..) {
                    if let Some(ev) = ns.conn_timers.remove(&key.slot()) {
                        sched.cancel(ev);
                    }
                }
                for (at, key) in tsink.timers.drain(..) {
                    let slot = key.slot();
                    let ev = sched.schedule_timer(at, WorldEvent::ConnTimer(key));
                    if let Some(old) = ns.conn_timers.insert(slot, ev) {
                        // Re-arm: the superseded entry dies here instead
                        // of tombstoning the queue.
                        sched.cancel(old);
                    }
                }
            }
        }
        // Net absorption precedes message delivery (event-order contract
        // of the original non-pooled implementation).
        self.absorb_net(now, nsink);
        for (from, ch, msg, span) in tsink.delivered.drain(..) {
            self.deliver_msg(now, node, from, ch, msg, SpanId(span));
        }
        self.put_tsink(tsink);
    }

    /// A complete message reached `to`'s stack (or the engine).
    fn deliver_msg(
        &mut self,
        now: Time,
        to: NodeId,
        from: NodeId,
        _ch: ChannelId,
        msg: Bytes,
        span: SpanId,
    ) {
        // Any traffic from a peer counts as liveness evidence.
        if let Some(ns) = self.ns_mut(to) {
            if let Some((_, st)) = ns.monitors.get_mut(&from) {
                st.last_heard = now;
                st.hb_pending = false;
            }
        }
        // Engine-internal messages (header peeked in place, no clone).
        let mut r = WireRef::new(&msg);
        if let Ok(proto) = r.u16() {
            if proto == ENGINE_PROTOCOL {
                if let Ok(kind) = r.u16() {
                    if kind == HB_REQ {
                        self.send_engine(now, to, from, HB_RESP);
                    }
                }
                return;
            }
        }
        let mut fx = self.take_fx();
        match self.ns_mut(to) {
            Some(ns) if ns.alive => {
                // Every delivered protocol byte counts toward the
                // sender's inbound-goodput estimate (spec-readable
                // `goodput(peer)`).
                ns.stack.measures_mut().on_bytes_in(now, from, msg.len());
                ns.stack.recv(now, from, msg, span, &mut fx);
            }
            _ => {
                self.put_fx(fx);
                return;
            }
        }
        self.process_effects(now, to, fx);
    }

    fn process_effects(&mut self, now: Time, node: NodeId, mut fx: Vec<StackEffect>) {
        for effect in fx.drain(..) {
            match effect {
                StackEffect::Send {
                    dst,
                    channel,
                    bytes,
                    span,
                } => {
                    let mut tsink = self.take_tsink();
                    if let Some(ns) = self.ns_mut(node) {
                        ns.endpoint
                            .send(now, dst, channel, bytes, span.0, &mut tsink);
                    }
                    self.absorb_transport(now, node, tsink);
                }
                StackEffect::TimerSet {
                    layer,
                    timer,
                    delay,
                    periodic,
                } => {
                    let sched = &mut self.sched;
                    if let Some(Some(ns)) = self.nodes.get_mut(node.index()) {
                        let slot = ns.timers.entry((layer as u16, timer)).or_insert(TimerSlot {
                            gen: 0,
                            period: None,
                            event: EventId::NONE,
                        });
                        // Supersede: the old pending firing dies now.
                        sched.cancel(slot.event);
                        slot.gen += 1;
                        slot.period = periodic.then_some(delay);
                        let gen = slot.gen;
                        slot.event = sched.schedule_timer(
                            now + delay,
                            WorldEvent::AgentTimer {
                                node,
                                layer: layer as u16,
                                timer,
                                gen,
                            },
                        );
                    }
                }
                StackEffect::TimerCancel { layer, timer } => {
                    let sched = &mut self.sched;
                    if let Some(Some(ns)) = self.nodes.get_mut(node.index()) {
                        if let Some(slot) = ns.timers.get_mut(&(layer as u16, timer)) {
                            sched.cancel(slot.event);
                            slot.gen += 1;
                            slot.period = None;
                        }
                    }
                }
                StackEffect::Monitor { layer, peer } => {
                    self.last_membership_change = now;
                    if let Some(ns) = self.ns_mut(node) {
                        let entry = ns.monitors.entry(peer).or_insert((
                            Vec::new(),
                            MonitorState {
                                last_heard: now,
                                hb_pending: false,
                            },
                        ));
                        if !entry.0.contains(&layer) {
                            entry.0.push(layer);
                        }
                    }
                }
                StackEffect::Unmonitor { layer, peer } => {
                    self.last_membership_change = now;
                    if let Some(ns) = self.ns_mut(node) {
                        if let Some(entry) = ns.monitors.get_mut(&peer) {
                            entry.0.retain(|&l| l != layer);
                            if entry.0.is_empty() {
                                ns.monitors.remove(&peer);
                            }
                        }
                    }
                }
                StackEffect::Trace {
                    layer,
                    level,
                    span,
                    event,
                } => {
                    self.trace.record(now, node, layer, level, span, event);
                }
            }
        }
        self.put_fx(fx);
    }

    fn send_engine(&mut self, now: Time, from_node: NodeId, to: NodeId, kind: u16) {
        let mut w = WireWriter::new();
        w.u16(ENGINE_PROTOCOL).u16(kind);
        let mut tsink = self.take_tsink();
        let ch = self.engine_ch;
        if let Some(ns) = self.ns_mut(from_node) {
            // Engine heartbeats are infrastructure, not causal protocol
            // traffic: they ride span zero.
            ns.endpoint.send(now, to, ch, w.finish(), 0, &mut tsink);
        }
        self.absorb_transport(now, from_node, tsink);
    }

    fn fd_sweep(&mut self, now: Time, node: NodeId) {
        let (g, f, tick) = (self.cfg.fd_g, self.cfg.fd_f, self.cfg.fd_tick);
        let mut failed: Vec<(NodeId, Vec<usize>)> = Vec::new();
        let mut probe: Vec<NodeId> = Vec::new();
        match self.ns_mut(node) {
            Some(ns) if ns.alive => {
                let mon = &mut ns.monitors;
                // Walk peers in id order, not map order: probe and
                // failure events must not depend on hasher state, or
                // seeded runs stop being reproducible across builds.
                let mut peers: Vec<NodeId> = mon.keys().copied().collect();
                peers.sort_unstable_by_key(|p| p.0);
                let mut dead: Vec<NodeId> = Vec::new();
                for peer in peers {
                    let (layers, st) = mon.get_mut(&peer).expect("collected above");
                    let silent = now.saturating_since(st.last_heard);
                    if silent >= f {
                        failed.push((peer, layers.clone()));
                        dead.push(peer);
                    } else if silent >= g && !st.hb_pending {
                        st.hb_pending = true;
                        probe.push(peer);
                    }
                }
                for peer in dead {
                    mon.remove(&peer);
                }
            }
            _ => return,
        }
        for peer in probe {
            self.send_engine(now, node, peer, HB_REQ);
        }
        for (peer, layers) in failed {
            // The peer's measurements describe a dead incarnation.
            if let Some(ns) = self.ns_mut(node) {
                ns.stack.measures_mut().forget(peer);
            }
            self.last_membership_change = now;
            for layer in layers {
                let mut fx = self.take_fx();
                if let Some(ns) = self.ns_mut(node) {
                    ns.stack.peer_failed(now, layer, peer, &mut fx);
                }
                self.process_effects(now, node, fx);
            }
        }
        self.sched.schedule(now + tick, WorldEvent::FdTick { node });
    }
}

/// The windowed parallel executor driving one worker's chunk of shards.
///
/// Two barriers per window. Phase A injects the previous window's
/// cross-shard departures (sorted into the canonical order), B
/// publishes the chunk's earliest pending event time, C computes the
/// identical global window on every worker (applying scripted fault
/// ops when the window starts on a control instant, and clipping it so
/// no window ever spans one), D drains the window, E routes departures
/// into destination mailboxes.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    chunk: &mut [Shard],
    wi: usize,
    barrier: &Barrier,
    next_times: &[AtomicU64],
    mailboxes: &[Mutex<Vec<OutHandoff>>],
    ctrl: &[(u64, Vec<ControlOp>)],
    la_us: u64,
    deadline_us: u64,
) {
    let mut cursor = 0usize;
    let profiling = chunk.first().is_some_and(|s| s.cfg.profile);
    loop {
        // A: merge cross-shard arrivals from the previous window.
        for s in chunk.iter_mut() {
            let t0 = profiling.then(std::time::Instant::now);
            let batch = {
                let mut mb = mailboxes[s.id as usize].lock().unwrap();
                std::mem::take(&mut *mb)
            };
            s.inject(batch);
            if let Some(t0) = t0 {
                s.profile.inject_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        // B: publish the chunk's earliest pending event time.
        let mine = chunk
            .iter_mut()
            .filter_map(|s| s.sched.peek_time())
            .map(|t| t.as_micros())
            .min()
            .unwrap_or(u64::MAX);
        next_times[wi].store(mine, Ordering::SeqCst);
        let tb = profiling.then(std::time::Instant::now);
        barrier.wait();
        if let Some(tb) = tb {
            let ns = tb.elapsed().as_nanos() as u64;
            for s in chunk.iter_mut() {
                s.profile.barrier_ns += ns;
            }
        }
        // C: every worker computes the same global window.
        let next = next_times
            .iter()
            .map(|a| a.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if next == u64::MAX || next > deadline_us {
            break;
        }
        while cursor < ctrl.len() && ctrl[cursor].0 < next {
            cursor += 1;
        }
        let mut w_end = next.saturating_add(la_us - 1).min(deadline_us);
        if cursor < ctrl.len() && ctrl[cursor].0 == next {
            // The window starts on a control instant: every replica
            // applies the scripted fault ops before any event at `next`
            // runs — exactly when the sequential engine's control event
            // would have popped.
            for s in chunk.iter_mut() {
                for op in &ctrl[cursor].1 {
                    s.apply_control(*op);
                }
            }
            cursor += 1;
        }
        if cursor < ctrl.len() {
            // Never span the next control instant.
            w_end = w_end.min(ctrl[cursor].0.saturating_sub(1));
        }
        // D: drain the window.
        let w = Time::from_micros(w_end);
        for s in chunk.iter_mut() {
            let t0 = profiling.then(std::time::Instant::now);
            while let Some((now, ev)) = s.sched.pop_before(w) {
                s.handle(now, ev);
            }
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                s.profile.windows += 1;
                s.profile.drain_ns += ns;
                if s.profile.samples.len() < PROFILE_SAMPLE_CAP {
                    s.profile.samples.push((next, ns));
                }
            }
        }
        // E: route departures to their destination mailboxes.
        for s in chunk.iter_mut() {
            let t0 = profiling.then(std::time::Instant::now);
            for o in s.outbox.drain(..) {
                mailboxes[o.dest as usize].lock().unwrap().push(o);
            }
            if let Some(t0) = t0 {
                s.profile.route_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        let tb = profiling.then(std::time::Instant::now);
        barrier.wait();
        if let Some(tb) = tb {
            let ns = tb.elapsed().as_nanos() as u64;
            for s in chunk.iter_mut() {
                s.profile.barrier_ns += ns;
            }
        }
    }
}

/// The complete simulated deployment.
pub struct World {
    cfg: Arc<WorldConfig>,
    smap: Arc<ShardMap>,
    shards: Vec<Shard>,
    rng: SimRng,
    /// Worker threads `run_until` drives windowed execution with when
    /// the world is sharded (never affects results, only wall clock).
    workers: usize,
    /// Scripted fault mutations by virtual microsecond; windows are
    /// clipped so every shard's replica applies them at exactly the
    /// scripted instant. Only consulted when `shards > 1`.
    control: BTreeMap<u64, Vec<ControlOp>>,
    /// Span counters banked from despawned stacks, keyed by node. A
    /// respawn resumes minting from here so span ids stay unique per
    /// node across incarnations (the trace forest invariant).
    span_bases: FxHashMap<NodeId, u32>,
}

impl World {
    pub fn new(topo: Topology, cfg: WorldConfig) -> World {
        let mut cfg = cfg;
        let mut channels = std::mem::take(&mut cfg.channels);
        let engine_ch = ChannelId(channels.len() as u16);
        channels.push(ChannelSpec::new("__ENGINE_HB", TransportKind::Udp));
        cfg.channels = channels;
        let smap = Arc::new(ShardMap::partition_hosts(&topo, cfg.shards.max(1)));
        let p = smap.shards() as usize;
        let mut net_cfg = cfg.net.clone();
        net_cfg.seed = cfg.seed ^ 0x6e65_7477;
        let rng = SimRng::new(cfg.seed);
        let cfg = Arc::new(cfg);
        let num_nodes = topo.num_nodes();
        let mut topo = Some(topo);
        let mut shards = Vec::with_capacity(p);
        for sid in 0..p {
            let t = if sid + 1 == p {
                topo.take().expect("consumed once")
            } else {
                topo.as_ref().expect("still present").clone()
            };
            let mut net = Network::new(t, net_cfg.clone());
            if p > 1 {
                net.set_sharding(smap.clone(), sid as u16);
            }
            shards.push(Shard {
                id: sid as u16,
                cfg: cfg.clone(),
                engine_ch,
                sched: Scheduler::new(),
                net,
                nodes: (0..num_nodes).map(|_| None).collect(),
                trace: TraceSink::new(cfg.trace_level),
                last_membership_change: Time::ZERO,
                event_counts: EventClassCounts::default(),
                outbox: Vec::new(),
                handoff_seq: 0,
                nsink_pool: Vec::new(),
                tsink_pool: Vec::new(),
                fx_pool: Vec::new(),
                profile: ShardProfile::default(),
            });
        }
        World {
            cfg,
            smap,
            shards,
            rng,
            workers: 1,
            control: BTreeMap::new(),
            span_bases: FxHashMap::default(),
        }
    }

    // ---- construction -----------------------------------------------------

    /// Register a node's stack and schedule its `init` at `at`, tracing
    /// at the world-wide [`WorldConfig::trace_level`].
    pub fn spawn_at(
        &mut self,
        at: Time,
        node: NodeId,
        agents: Vec<Box<dyn Agent>>,
        app: Box<dyn AppHandler>,
    ) {
        let level = self.cfg.trace_level;
        self.spawn_at_traced(at, node, agents, app, level);
    }

    /// [`World::spawn_at`] with a per-node trace level — how spec
    /// `trace_` headers land on individual stacks without forcing the
    /// whole world to the same verbosity.
    pub fn spawn_at_traced(
        &mut self,
        at: Time,
        node: NodeId,
        agents: Vec<Box<dyn Agent>>,
        app: Box<dyn AppHandler>,
        trace_level: TraceLevel,
    ) {
        assert!(
            self.shards[0].net.topology().is_host(node),
            "spawn on non-host {node:?}"
        );
        let sid = self.smap.shard_of(node) as usize;
        assert!(
            self.shards[sid].nodes[node.index()].is_none(),
            "{node:?} already spawned"
        );
        let key = MacedonKey::of_node(node, self.cfg.addressing);
        let rng = self.rng.fork(node.0 as u64);
        let mut stack = Stack::new(node, key, agents, app, rng);
        if let Some(&base) = self.span_bases.get(&node) {
            stack.resume_span_counter(base);
        }
        // Agents may skip building trace records the sink would filter
        // out anyway (Ctx::trace_on).
        stack.set_trace_level(trace_level);
        stack.set_addressing(self.cfg.addressing);
        // A node more verbose than the world default needs the shard
        // sink opened up; quieter nodes already self-filter at the
        // stack, so this never amplifies anyone else.
        if trace_level > self.shards[sid].trace.level() {
            self.shards[sid].trace.set_level(trace_level);
        }
        let ns = NodeState {
            stack,
            endpoint: Endpoint::new(node, self.cfg.channels.clone()),
            alive: false,
            timers: FxHashMap::default(),
            conn_timers: FxHashMap::default(),
            monitors: FxHashMap::default(),
        };
        self.shards[sid].nodes[node.index()] = Some(Box::new(ns));
        self.shards[sid]
            .sched
            .schedule(at, WorldEvent::Spawn { node });
        if self.shards.len() > 1 {
            self.control
                .entry(at.as_micros())
                .or_default()
                .push(ControlOp::Heal(node));
        }
    }

    /// Schedule an application-level API call on a node.
    pub fn api_at(&mut self, at: Time, node: NodeId, call: DownCall) {
        let sid = self.smap.shard_of(node) as usize;
        self.shards[sid]
            .sched
            .schedule(at, WorldEvent::Api { node, call });
    }

    /// Schedule a node crash (fail-stop).
    pub fn crash_at(&mut self, at: Time, node: NodeId) {
        let sid = self.smap.shard_of(node) as usize;
        self.shards[sid]
            .sched
            .schedule(at, WorldEvent::Crash { node });
        if self.shards.len() > 1 {
            self.control
                .entry(at.as_micros())
                .or_default()
                .push(ControlOp::Fail(node));
        }
    }

    /// Remove a node's stack, endpoint, timers and monitors entirely, so
    /// the host can be spawned again with a fresh stack (a *rejoin*
    /// after a crash: protocol state is lost, as on a real reboot).
    /// Scheduled timer/RTO events for the old incarnation become inert —
    /// their generation slots are gone. Every peer's transport state
    /// toward the node is reset too: the old incarnation's reliable
    /// sequence numbers must not wedge the fresh endpoint (a peer
    /// retransmitting at old sequence positions would sit in the new
    /// receiver's out-of-order buffer forever).
    pub fn despawn(&mut self, node: NodeId) {
        let sid = self.smap.shard_of(node) as usize;
        self.shards[sid].cancel_node_timers(node);
        if let Some(ns) = self.shards[sid].nodes[node.index()].take() {
            // Bank the incarnation's span counter: a respawned stack
            // resumes minting from here, never reusing a span id.
            self.span_bases.insert(node, ns.stack.sends_minted());
        }
        for sh in &mut self.shards {
            for ns in sh.nodes.iter_mut().flatten() {
                ns.endpoint.reset_peer(node);
                ns.stack.measures_mut().forget(node);
            }
        }
    }

    // ---- observation ------------------------------------------------------

    pub fn now(&self) -> Time {
        self.shards
            .iter()
            .map(|s| s.sched.now())
            .max()
            .unwrap_or(Time::ZERO)
    }

    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Number of shards the world was partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads `run_until` uses for windowed execution.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Shard 0's network replica. On a sharded world, per-replica
    /// counters only describe the links that replica owns — use
    /// [`World::link_counters`] / [`World::total_net_drops`] /
    /// [`World::faults_each`] for whole-network reads and mutations.
    pub fn net(&self) -> &Network<Segment> {
        &self.shards[0].net
    }

    pub fn net_mut(&mut self) -> &mut Network<Segment> {
        &mut self.shards[0].net
    }

    /// Apply a fault mutation to every shard's replica (partitions,
    /// loss rates, link failures scripted between runs).
    pub fn faults_each(&mut self, mut f: impl FnMut(&mut Faults)) {
        for s in &mut self.shards {
            f(s.net.faults_mut());
        }
    }

    /// Mutate a physical link's bandwidth and/or delay on every shard's
    /// replica.
    pub fn set_phys_link(
        &mut self,
        phys: u32,
        bandwidth_bps: Option<u64>,
        delay: Option<Duration>,
    ) {
        for s in &mut self.shards {
            s.net.set_phys_link(phys, bandwidth_bps, delay);
        }
    }

    /// Per-physical-link (packets, bytes, drops) counters summed across
    /// every shard's replica (each directed link is charged by exactly
    /// one replica, so the sum is the whole-network count).
    pub fn link_counters(&self) -> Vec<(u64, u64, u64)> {
        let mut out = self.shards[0].net.link_counters();
        for s in &self.shards[1..] {
            for (acc, c) in out.iter_mut().zip(s.net.link_counters()) {
                acc.0 += c.0;
                acc.1 += c.1;
                acc.2 += c.2;
            }
        }
        out
    }

    /// Total packets dropped anywhere in the network, across all shard
    /// replicas.
    pub fn total_net_drops(&self) -> u64 {
        self.shards.iter().map(|s| s.net.total_drops()).sum()
    }

    pub fn stack(&self, node: NodeId) -> Option<&Stack> {
        self.shards[self.smap.shard_of(node) as usize]
            .ns(node)
            .map(|ns| &ns.stack)
    }

    pub fn stack_mut(&mut self, node: NodeId) -> Option<&mut Stack> {
        let sid = self.smap.shard_of(node) as usize;
        self.shards[sid].ns_mut(node).map(|ns| &mut ns.stack)
    }

    pub fn endpoint(&self, node: NodeId) -> Option<&Endpoint> {
        self.shards[self.smap.shard_of(node) as usize]
            .ns(node)
            .map(|ns| &ns.endpoint)
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.shards[self.smap.shard_of(node) as usize]
            .ns(node)
            .is_some_and(|ns| ns.alive)
    }

    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.shards.iter().flat_map(|s| {
            s.nodes
                .iter()
                .enumerate()
                .filter_map(|(i, ns)| ns.as_ref().filter(|ns| ns.alive).map(|_| NodeId(i as u32)))
        })
    }

    /// Shard 0's trace sink (on a sharded world each shard records its
    /// own nodes' traces; sequential worlds have exactly one shard).
    pub fn trace(&self) -> &TraceSink {
        &self.shards[0].trace
    }

    /// All trace records across every shard, merged in the
    /// deterministic total order `(virtual time, shard, per-shard
    /// sequence)` — the same order a one-shard world would have
    /// recorded them, so the merged stream is byte-identical across
    /// shard layouts' worker counts.
    pub fn merged_trace(&self) -> Vec<&TraceRecord> {
        let mut out: Vec<(u64, u16, u64, &TraceRecord)> = Vec::new();
        for s in &self.shards {
            out.extend(
                s.trace
                    .records()
                    .map(|r| (r.at.as_micros(), s.id, r.seq, r)),
            );
        }
        out.sort_unstable_by_key(|&(at, sh, seq, _)| (at, sh, seq));
        out.into_iter().map(|(_, _, _, r)| r).collect()
    }

    /// Records evicted from trace rings across all shards (ring
    /// overflow — raise the capacity if nonzero and completeness
    /// matters).
    pub fn trace_dropped_total(&self) -> u64 {
        self.shards.iter().map(|s| s.trace.dropped).sum()
    }

    /// Resize every shard's bounded trace ring.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        for s in &mut self.shards {
            s.trace.set_capacity(capacity);
        }
    }

    /// Events currently pending across every shard's scheduler (the
    /// telemetry sampler's queue-depth gauge).
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.sched.pending()).sum()
    }

    /// Trace records currently held across every shard's ring.
    pub fn trace_records_total(&self) -> u64 {
        self.shards.iter().map(|s| s.trace.len() as u64).sum()
    }

    /// Aggregate of every alive node's measurement ledger (integer
    /// sums — independent of node iteration order).
    pub fn measure_summary(&self) -> MeasureSummary {
        let mut acc = MeasureSummary::default();
        for sh in &self.shards {
            for ns in sh.nodes.iter().flatten() {
                if ns.alive {
                    acc.add(&ns.stack.measures().summary());
                }
            }
        }
        acc
    }

    /// Per-shard self-profiling counters (empty sums unless
    /// [`WorldConfig::profile`] was set and windowed execution ran).
    pub fn profile(&self) -> Vec<ShardProfile> {
        self.shards.iter().map(|s| s.profile.clone()).collect()
    }

    /// Key of a node under this world's addressing mode.
    pub fn key_of(&self, node: NodeId) -> MacedonKey {
        MacedonKey::of_node(node, self.cfg.addressing)
    }

    /// Resolve a named transport instance.
    pub fn channel(&self, name: &str) -> Option<ChannelId> {
        self.cfg
            .channels
            .iter()
            .position(|c| c.name == name)
            .map(|i| ChannelId(i as u16))
    }

    /// Uncongested IP latency oracle (stretch / RDP computations).
    pub fn oracle_latency(&mut self, a: NodeId, b: NodeId) -> Option<Duration> {
        self.shards[0].net.oracle_latency(a, b)
    }

    /// Instant of the last overlay-membership mutation the engine
    /// observed (failure-detector registrations changing, crashes).
    /// "quiet since t" is the convergence signal scenario metrics use.
    pub fn last_membership_change(&self) -> Time {
        self.shards
            .iter()
            .map(|s| s.last_membership_change)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Aggregate read/write transition counts across stacks (locking
    /// ablation data).
    pub fn transition_counts(&self) -> (u64, u64) {
        let mut r = 0;
        let mut w = 0;
        for sh in &self.shards {
            for ns in sh.nodes.iter().flatten() {
                r += ns.stack.read_transitions;
                w += ns.stack.write_transitions;
            }
        }
        (r, w)
    }

    /// Total events fired across every shard's scheduler.
    pub fn events_fired(&self) -> u64 {
        self.shards.iter().map(|s| s.sched.events_fired()).sum()
    }

    /// Fired-event counts by class since construction, summed across
    /// shards.
    pub fn event_counts(&self) -> EventClassCounts {
        let mut acc = EventClassCounts::default();
        for s in &self.shards {
            acc.add(&s.event_counts);
        }
        acc
    }

    // ---- running ----------------------------------------------------------

    /// Process events until `deadline`; the clock lands exactly on it.
    /// A sharded world runs windowed with [`World::set_workers`]
    /// threads; the result is identical for every worker count.
    pub fn run_until(&mut self, deadline: Time) {
        if self.shards.len() == 1 {
            let s = &mut self.shards[0];
            while let Some((now, ev)) = s.sched.pop_before(deadline) {
                s.handle(now, ev);
            }
            s.sched.fast_forward(deadline);
        } else {
            self.run_windows(Some(deadline), self.workers);
        }
    }

    /// Process every remaining event (tests on quiescent protocols).
    pub fn run_to_quiescence(&mut self) {
        if self.shards.len() == 1 {
            let s = &mut self.shards[0];
            while let Some((now, ev)) = s.sched.pop() {
                s.handle(now, ev);
            }
        } else {
            self.run_windows(None, self.workers);
        }
    }

    /// Windowed run to `deadline` on `workers` threads. On a world with
    /// one shard this is plain sequential execution; with `P` shards the
    /// result is bit-for-bit identical for every `workers` value
    /// (threads only decide which core executes a shard, never the
    /// merge order).
    pub fn run_parallel_until(&mut self, deadline: Time, workers: usize) {
        if self.shards.len() == 1 {
            self.run_until(deadline);
        } else {
            self.run_windows(Some(deadline), workers);
        }
    }

    fn run_windows(&mut self, deadline: Option<Time>, workers: usize) {
        let p = self.shards.len();
        let la = self.shards[0]
            .net
            .min_link_delay()
            .expect("windowed execution needs at least one link");
        let la_us = la.as_micros();
        assert!(
            la_us > 0,
            "windowed execution requires a nonzero minimum link delay; use shards = 1"
        );
        let deadline_us = deadline.map(|d| d.as_micros());
        let dl_us = deadline_us.unwrap_or(u64::MAX);
        let ctrl: Vec<(u64, Vec<ControlOp>)> = match deadline_us {
            Some(d) => self
                .control
                .range(..=d)
                .map(|(k, v)| (*k, v.clone()))
                .collect(),
            None => self.control.iter().map(|(k, v)| (*k, v.clone())).collect(),
        };
        let workers_eff = workers.clamp(1, p);
        let chunk = p.div_ceil(workers_eff);
        let nchunks = p.div_ceil(chunk);
        let next_times: Vec<AtomicU64> = (0..nchunks).map(|_| AtomicU64::new(u64::MAX)).collect();
        let mailboxes: Vec<Mutex<Vec<OutHandoff>>> =
            (0..p).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(nchunks);
        {
            let mut chunks: Vec<&mut [Shard]> = self.shards.chunks_mut(chunk).collect();
            let rest = chunks.split_off(1);
            let first = chunks.pop().expect("at least one chunk");
            std::thread::scope(|scope| {
                for (i, ch) in rest.into_iter().enumerate() {
                    let (b, nt, mb, cs) = (&barrier, &next_times, &mailboxes, &ctrl);
                    scope.spawn(move || shard_worker(ch, i + 1, b, nt, mb, cs, la_us, dl_us));
                }
                shard_worker(
                    first,
                    0,
                    &barrier,
                    &next_times,
                    &mailboxes,
                    &ctrl,
                    la_us,
                    dl_us,
                );
            });
        }
        match deadline {
            Some(d) => {
                for s in &mut self.shards {
                    s.sched.fast_forward(d);
                }
                self.control = self.control.split_off(&dl_us.saturating_add(1));
            }
            None => {
                let m = self
                    .shards
                    .iter()
                    .map(|s| s.sched.now())
                    .max()
                    .unwrap_or(Time::ZERO);
                for s in &mut self.shards {
                    s.sched.fast_forward(m);
                }
                self.control.clear();
            }
        }
    }
}

/// Helper for protocol message encoding: prefix with protocol id and
/// message type — the demultiplexing header the generated code emits.
pub fn proto_header(proto: ProtocolId, msg_type: u16) -> WireWriter {
    let mut w = WireWriter::new();
    w.u16(proto).u16(msg_type);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Ctx, NullApp};
    use crate::wire::WireReader;
    use macedon_net::topology::{canned, LinkSpec};
    use std::any::Any;

    /// Ping-pong agent: on init, the initiator sends PING; the peer
    /// responds PONG; both count.
    struct PingPong {
        peer: Option<NodeId>,
        ch: ChannelId,
        pings: u32,
        pongs: u32,
    }

    const PP: ProtocolId = 77;
    const MSG_PING: u16 = 1;
    const MSG_PONG: u16 = 2;

    impl Agent for PingPong {
        fn protocol_id(&self) -> ProtocolId {
            PP
        }
        fn name(&self) -> &'static str {
            "pingpong"
        }
        fn init(&mut self, ctx: &mut Ctx) {
            if let Some(peer) = self.peer {
                let w = proto_header(PP, MSG_PING);
                ctx.send(peer, self.ch, w.finish());
            }
        }
        fn downcall(&mut self, _ctx: &mut Ctx, _call: DownCall) {}
        fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes) {
            let mut r = WireReader::new(msg);
            let _proto = r.u16().unwrap();
            match r.u16().unwrap() {
                MSG_PING => {
                    self.pings += 1;
                    let w = proto_header(PP, MSG_PONG);
                    ctx.send(from, self.ch, w.finish());
                }
                MSG_PONG => self.pongs += 1,
                _ => unreachable!(),
            }
        }
        fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_host_world() -> (World, NodeId, NodeId) {
        let topo = canned::two_hosts(LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let w = World::new(topo, WorldConfig::default());
        (w, hosts[0], hosts[1])
    }

    fn pp(peer: Option<NodeId>) -> Box<dyn Agent> {
        Box::new(PingPong {
            peer,
            ch: ChannelId(1),
            pings: 0,
            pongs: 0,
        })
    }

    #[test]
    fn ping_pong_roundtrip() {
        let (mut w, a, b) = two_host_world();
        w.spawn_at(Time::ZERO, b, vec![pp(None)], Box::new(NullApp));
        w.spawn_at(
            Time::from_millis(10),
            a,
            vec![pp(Some(b))],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(2));
        let pa: &PingPong = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        let pb: &PingPong = w
            .stack(b)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert_eq!(pb.pings, 1);
        assert_eq!(pa.pongs, 1);
    }

    #[test]
    fn spawn_staggering_orders_inits() {
        let (mut w, a, b) = two_host_world();
        w.spawn_at(Time::from_secs(5), a, vec![pp(None)], Box::new(NullApp));
        w.spawn_at(Time::from_secs(1), b, vec![pp(None)], Box::new(NullApp));
        w.run_until(Time::from_secs(2));
        assert!(w.is_alive(b));
        assert!(!w.is_alive(a));
        w.run_until(Time::from_secs(6));
        assert!(w.is_alive(a));
    }

    /// Agent exercising one-shot, superseding and periodic timers.
    struct TimerBox {
        fired: Vec<u16>,
    }

    impl Agent for TimerBox {
        fn protocol_id(&self) -> ProtocolId {
            78
        }
        fn name(&self) -> &'static str {
            "timerbox"
        }
        fn init(&mut self, ctx: &mut Ctx) {
            ctx.timer_set(1, Duration::from_millis(100));
            ctx.timer_set(2, Duration::from_millis(500));
            ctx.timer_set(2, Duration::from_millis(900)); // supersedes
            ctx.timer_periodic(3, Duration::from_millis(300));
        }
        fn downcall(&mut self, _ctx: &mut Ctx, _call: DownCall) {}
        fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
        fn timer(&mut self, ctx: &mut Ctx, timer: u16) {
            self.fired.push(timer);
            if timer == 3 && self.fired.iter().filter(|&&t| t == 3).count() >= 3 {
                ctx.timer_cancel(3);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timer_semantics() {
        let (mut w, a, _) = two_host_world();
        w.spawn_at(
            Time::ZERO,
            a,
            vec![Box::new(TimerBox { fired: vec![] })],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(5));
        let tb: &TimerBox = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        // Timer 1 once; timer 2 once (superseded schedule → one firing);
        // timer 3 exactly three times then cancelled.
        assert_eq!(tb.fired.iter().filter(|&&t| t == 1).count(), 1);
        assert_eq!(tb.fired.iter().filter(|&&t| t == 2).count(), 1);
        assert_eq!(tb.fired.iter().filter(|&&t| t == 3).count(), 3);
    }

    /// Agent that monitors a peer and records failure.
    struct Watcher {
        peer: NodeId,
        ch: ChannelId,
        failures: Vec<NodeId>,
    }

    impl Agent for Watcher {
        fn protocol_id(&self) -> ProtocolId {
            79
        }
        fn name(&self) -> &'static str {
            "watcher"
        }
        fn init(&mut self, ctx: &mut Ctx) {
            ctx.monitor(self.peer);
            // Exchange one message so the peer knows us.
            let w = proto_header(79, 9);
            ctx.send(self.peer, self.ch, w.finish());
        }
        fn downcall(&mut self, _ctx: &mut Ctx, _call: DownCall) {}
        fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
        fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
        fn neighbor_failed(&mut self, _ctx: &mut Ctx, peer: NodeId) {
            self.failures.push(peer);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn failure_detector_fires_on_crash() {
        let (mut w, a, b) = two_host_world();
        w.spawn_at(
            Time::ZERO,
            a,
            vec![Box::new(Watcher {
                peer: b,
                ch: ChannelId(1),
                failures: vec![],
            })],
            Box::new(NullApp),
        );
        w.spawn_at(
            Time::ZERO,
            b,
            vec![Box::new(Watcher {
                peer: a,
                ch: ChannelId(1),
                failures: vec![],
            })],
            Box::new(NullApp),
        );
        w.crash_at(Time::from_secs(2), b);
        w.run_until(Time::from_secs(30));
        let wa: &Watcher = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert_eq!(wa.failures, vec![b], "a detected b's crash");
        assert!(!w.is_alive(b));
    }

    #[test]
    fn heartbeats_keep_silent_peers_alive() {
        // Nodes monitor each other but exchange no protocol traffic after
        // init; heartbeats must prevent false failure declarations.
        let (mut w, a, b) = two_host_world();
        w.spawn_at(
            Time::ZERO,
            a,
            vec![Box::new(Watcher {
                peer: b,
                ch: ChannelId(1),
                failures: vec![],
            })],
            Box::new(NullApp),
        );
        w.spawn_at(
            Time::ZERO,
            b,
            vec![Box::new(Watcher {
                peer: a,
                ch: ChannelId(1),
                failures: vec![],
            })],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(60));
        let wa: &Watcher = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        let wb: &Watcher = w
            .stack(b)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert!(
            wa.failures.is_empty(),
            "no false positives at a: {:?}",
            wa.failures
        );
        assert!(wb.failures.is_empty(), "no false positives at b");
    }

    #[test]
    fn api_injection_reaches_top_layer() {
        struct ApiSpy {
            calls: u32,
        }
        impl Agent for ApiSpy {
            fn protocol_id(&self) -> ProtocolId {
                80
            }
            fn name(&self) -> &'static str {
                "apispy"
            }
            fn init(&mut self, _ctx: &mut Ctx) {}
            fn downcall(&mut self, _ctx: &mut Ctx, call: DownCall) {
                if matches!(call, DownCall::Join { .. }) {
                    self.calls += 1;
                }
            }
            fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
            fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let (mut w, a, _) = two_host_world();
        w.spawn_at(
            Time::ZERO,
            a,
            vec![Box::new(ApiSpy { calls: 0 })],
            Box::new(NullApp),
        );
        w.api_at(
            Time::from_millis(100),
            a,
            DownCall::Join {
                group: MacedonKey(1),
            },
        );
        w.run_until(Time::from_secs(1));
        let spy: &ApiSpy = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert_eq!(spy.calls, 1);
    }

    #[test]
    fn deterministic_end_state() {
        let run = || {
            let (mut w, a, b) = two_host_world();
            w.spawn_at(Time::ZERO, b, vec![pp(None)], Box::new(NullApp));
            w.spawn_at(
                Time::from_millis(3),
                a,
                vec![pp(Some(b))],
                Box::new(NullApp),
            );
            w.run_until(Time::from_secs(10));
            w.events_fired()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn channel_resolution() {
        let (w, _, _) = two_host_world();
        assert!(w.channel("HIGH").is_some());
        assert!(w.channel("__ENGINE_HB").is_some());
        assert!(w.channel("NONE").is_none());
    }

    // ---- sharded engine ---------------------------------------------------

    /// Build an all-pairs ping world on a star: every host pings its
    /// successor, timers and the failure detector run throughout —
    /// traffic constantly crosses shard boundaries.
    fn ring_ping_world(n: usize, shards: usize) -> World {
        let topo = canned::star(n, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut w = World::new(
            topo,
            WorldConfig {
                shards,
                ..WorldConfig::default()
            },
        );
        for (i, &h) in hosts.iter().enumerate() {
            let peer = hosts[(i + 1) % hosts.len()];
            w.spawn_at(
                Time::from_millis(i as u64),
                h,
                vec![pp(Some(peer))],
                Box::new(NullApp),
            );
        }
        w
    }

    fn fingerprint(w: &World, n: usize) -> (u64, u64, u64, Vec<(u32, u32)>) {
        let topo_hosts: Vec<NodeId> = w.alive_nodes().collect();
        assert_eq!(topo_hosts.len(), n);
        let mut per_node = Vec::new();
        let mut hosts = topo_hosts.clone();
        hosts.sort_unstable_by_key(|h| h.0);
        for h in hosts {
            let p: &PingPong = w
                .stack(h)
                .unwrap()
                .agent(0)
                .as_any()
                .downcast_ref()
                .unwrap();
            per_node.push((p.pings, p.pongs));
        }
        let (r, wr) = w.transition_counts();
        (w.events_fired(), r, wr, per_node)
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let n = 12;
        let mut seq = ring_ping_world(n, 1);
        seq.run_until(Time::from_secs(5));
        let want = fingerprint(&seq, n);

        for shards in [2, 4] {
            let mut par = ring_ping_world(n, shards);
            par.run_until(Time::from_secs(5));
            assert_eq!(
                fingerprint(&par, n),
                want,
                "{shards}-shard run diverged from sequential"
            );
        }
    }

    #[test]
    fn worker_count_never_changes_results() {
        let n = 12;
        let mut one = ring_ping_world(n, 4);
        one.run_parallel_until(Time::from_secs(5), 1);
        let want = fingerprint(&one, n);
        for workers in [2, 3, 4, 8] {
            let mut many = ring_ping_world(n, 4);
            many.run_parallel_until(Time::from_secs(5), workers);
            assert_eq!(fingerprint(&many, n), want, "{workers}-worker run diverged");
        }
    }

    #[test]
    fn sharded_crash_detection_matches_sequential() {
        let n = 8;
        let run = |shards: usize| {
            let topo = canned::star(n, LinkSpec::lan());
            let hosts = topo.hosts().to_vec();
            let mut w = World::new(
                topo,
                WorldConfig {
                    shards,
                    ..WorldConfig::default()
                },
            );
            // Every node watches the last host, which crashes at t=2s —
            // watchers on every shard must agree on the detection.
            let victim = hosts[n - 1];
            for &h in hosts.iter().take(n - 1) {
                w.spawn_at(
                    Time::ZERO,
                    h,
                    vec![Box::new(Watcher {
                        peer: victim,
                        ch: ChannelId(1),
                        failures: vec![],
                    })],
                    Box::new(NullApp),
                );
            }
            w.spawn_at(
                Time::ZERO,
                victim,
                vec![Box::new(Watcher {
                    peer: hosts[0],
                    ch: ChannelId(1),
                    failures: vec![],
                })],
                Box::new(NullApp),
            );
            w.crash_at(Time::from_secs(2), victim);
            w.run_until(Time::from_secs(30));
            let mut failures = Vec::new();
            for &h in hosts.iter().take(n - 1) {
                let watcher: &Watcher = w
                    .stack(h)
                    .unwrap()
                    .agent(0)
                    .as_any()
                    .downcast_ref()
                    .unwrap();
                failures.push(watcher.failures.clone());
            }
            (w.events_fired(), failures)
        };
        let (_, seq_failures) = run(1);
        assert!(
            seq_failures.iter().all(|f| f == &vec![NodeId(n as u32)]),
            "all watchers detect the crash sequentially: {seq_failures:?}"
        );
        assert_eq!(run(4), run(1), "4-shard crash run diverged");
    }

    #[test]
    fn run_to_quiescence_sharded_matches_sequential() {
        let n = 10;
        // No FD traffic keeps the event set finite: ping once, done.
        let build = |shards: usize| {
            let topo = canned::star(n, LinkSpec::lan());
            let hosts = topo.hosts().to_vec();
            let mut w = World::new(
                topo,
                WorldConfig {
                    shards,
                    fd_tick: Duration::from_secs(3600),
                    ..WorldConfig::default()
                },
            );
            for (i, &h) in hosts.iter().enumerate() {
                let peer = hosts[(i + 1) % hosts.len()];
                w.spawn_at(
                    Time::from_millis(i as u64),
                    h,
                    vec![pp(Some(peer))],
                    Box::new(NullApp),
                );
            }
            w
        };
        let mut seq = build(1);
        seq.run_until(Time::from_secs(2));
        let mut par = build(3);
        par.run_until(Time::from_secs(2));
        assert_eq!(fingerprint(&par, n), fingerprint(&seq, n));
    }
}
