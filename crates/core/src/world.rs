//! The world: one deterministic event loop that couples the network
//! emulator, the transport subsystem and every node's protocol stack —
//! the equivalent of the paper's "MACEDON code engine" plus the ModelNet
//! harness around it.
//!
//! Responsibilities:
//!
//! * owning the global [`Scheduler`] and virtual clock,
//! * delivering transport messages into stacks and stack effects back out,
//! * the **timer subsystem** (named per-layer timers with cancellation and
//!   periodic re-arming),
//! * the **failure detector** (§3.1): a peer is presumed failed after `f`
//!   seconds of silence; after `g < f` seconds a heartbeat
//!   request/response is solicited first,
//! * node lifecycle: staggered spawns, crashes,
//! * world-level tracing and metric oracles.

use crate::agent::{Agent, AppHandler};
use crate::api::{DownCall, ProtocolId, ENGINE_PROTOCOL};
use crate::key::{Addressing, MacedonKey};
use crate::stack::{Stack, StackEffect};
use crate::trace::{TraceLevel, TraceSink};
use crate::wire::{WireRef, WireWriter};
use bytes::Bytes;
use macedon_net::{NetEvent, Network, NetworkConfig, NodeId, Sink, Topology};
use macedon_sim::{Duration, EventId, FxHashMap, FxHashSet, Scheduler, SimRng, Time};
use macedon_transport::{
    ChannelId, ChannelSpec, Endpoint, Segment, TimerKey, TimerKind, TransportKind, TransportSink,
};

/// Map key for the one live scheduler entry a connection timer class may
/// have (RTO or delayed-ack, per (owner, peer, channel)).
type ConnTimerSlot = (NodeId, NodeId, ChannelId, TimerKind);

/// Engine heartbeat message types.
const HB_REQ: u16 = 1;
const HB_RESP: u16 = 2;

/// World-level configuration.
#[derive(Clone)]
pub struct WorldConfig {
    pub seed: u64,
    pub addressing: Addressing,
    /// Named transport instances available to stacks (an engine-internal
    /// UDP heartbeat channel is appended automatically).
    pub channels: Vec<ChannelSpec>,
    pub trace_level: TraceLevel,
    /// Silence threshold before soliciting a heartbeat (`g`).
    pub fd_g: Duration,
    /// Silence threshold before declaring failure (`f`).
    pub fd_f: Duration,
    /// Failure-detector sweep period.
    pub fd_tick: Duration,
    pub net: NetworkConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            addressing: Addressing::Hash,
            channels: ChannelSpec::default_table(),
            trace_level: TraceLevel::Off,
            fd_g: Duration::from_secs(5),
            fd_f: Duration::from_secs(15),
            fd_tick: Duration::from_secs(1),
            net: NetworkConfig::default(),
        }
    }
}

/// Events of the combined world loop.
pub enum WorldEvent {
    Net(NetEvent),
    /// A transport connection timer (RTO or delayed ack) expired.
    ConnTimer(TimerKey),
    AgentTimer {
        node: NodeId,
        layer: u16,
        timer: u16,
        gen: u32,
    },
    FdTick {
        node: NodeId,
    },
    Spawn {
        node: NodeId,
    },
    Api {
        node: NodeId,
        call: DownCall,
    },
    Crash {
        node: NodeId,
    },
}

/// Cumulative fired-event counts by [`WorldEvent`] class — where the
/// scheduler's work actually goes, for benchmark breakdowns
/// (`bench_scale` reports these next to events/sec).
#[derive(Clone, Copy, Debug, Default)]
pub struct EventClassCounts {
    /// Packet motion through the emulated network.
    pub net: u64,
    /// Transport connection timers that actually expired (RTO fires,
    /// delayed-ack flushes) — cancelled rearms never fire.
    pub conn_timer: u64,
    /// Protocol timers declared by agents.
    pub agent_timer: u64,
    /// Failure-detector sweep ticks.
    pub fd_tick: u64,
    /// Scripted spawns/API calls/crashes.
    pub control: u64,
}

struct TimerSlot {
    gen: u32,
    period: Option<Duration>,
    /// The pending scheduler entry; cancelled outright on supersede or
    /// cancel so stale firings never reach the queue (the generation
    /// check stays as defense in depth).
    event: EventId,
}

#[derive(Clone, Copy)]
struct MonitorState {
    last_heard: Time,
    hb_pending: bool,
}

/// The complete simulated deployment.
pub struct World {
    cfg: WorldConfig,
    pub sched: Scheduler<WorldEvent>,
    net: Network<Segment>,
    endpoints: FxHashMap<NodeId, Endpoint>,
    stacks: FxHashMap<NodeId, Stack>,
    alive: FxHashSet<NodeId>,
    timers: FxHashMap<(NodeId, u16, u16), TimerSlot>,
    /// Live scheduler entry per connection timer class. Re-arms cancel
    /// the superseded entry instead of tombstoning it, so the timer
    /// wheel never accumulates dead RTO events.
    conn_timers: FxHashMap<ConnTimerSlot, EventId>,
    /// node → peer → (monitoring layers, state)
    monitors: FxHashMap<NodeId, FxHashMap<NodeId, (Vec<usize>, MonitorState)>>,
    trace: TraceSink,
    rng: SimRng,
    engine_ch: ChannelId,
    /// Instant of the last failure-detector registration change
    /// (monitor/unmonitor effects, crash cleanup). Fail-detect neighbor
    /// lists register through these, so this timestamps the last
    /// overlay-membership mutation — the convergence signal the
    /// scenario runner reports after each perturbation.
    last_membership_change: Time,
    /// Fired events by class (benchmark breakdowns; see
    /// [`World::event_counts`]).
    event_counts: EventClassCounts,
    /// Reusable network-sink buffers (the absorb chain nests, so more
    /// than one can be live at once; each level takes its own).
    nsink_pool: Vec<Sink<Segment>>,
    /// Reusable transport-sink buffers.
    tsink_pool: Vec<TransportSink>,
    /// Reusable stack-effect buffers.
    fx_pool: Vec<Vec<StackEffect>>,
}

impl World {
    pub fn new(topo: Topology, cfg: WorldConfig) -> World {
        let mut channels = cfg.channels.clone();
        let engine_ch = ChannelId(channels.len() as u16);
        channels.push(ChannelSpec::new("__ENGINE_HB", TransportKind::Udp));
        let mut net_cfg = cfg.net.clone();
        net_cfg.seed = cfg.seed ^ 0x6e65_7477;
        let net = Network::new(topo, net_cfg);
        let trace = TraceSink::new(cfg.trace_level);
        let rng = SimRng::new(cfg.seed);
        let mut w = World {
            cfg,
            sched: Scheduler::new(),
            net,
            endpoints: FxHashMap::default(),
            stacks: FxHashMap::default(),
            alive: FxHashSet::default(),
            timers: FxHashMap::default(),
            conn_timers: FxHashMap::default(),
            monitors: FxHashMap::default(),
            trace,
            rng,
            engine_ch,
            last_membership_change: Time::ZERO,
            event_counts: EventClassCounts::default(),
            nsink_pool: Vec::new(),
            tsink_pool: Vec::new(),
            fx_pool: Vec::new(),
        };
        w.cfg.channels = channels;
        w
    }

    // ---- construction -----------------------------------------------------

    /// Register a node's stack and schedule its `init` at `at`.
    pub fn spawn_at(
        &mut self,
        at: Time,
        node: NodeId,
        agents: Vec<Box<dyn Agent>>,
        app: Box<dyn AppHandler>,
    ) {
        assert!(
            self.net.topology().is_host(node),
            "spawn on non-host {node:?}"
        );
        assert!(!self.stacks.contains_key(&node), "{node:?} already spawned");
        let key = MacedonKey::of_node(node, self.cfg.addressing);
        let rng = self.rng.fork(node.0 as u64);
        let mut stack = Stack::new(node, key, agents, app, rng);
        // Agents may skip building trace records the sink would filter
        // out anyway (Ctx::trace_on).
        stack.set_trace_level(self.cfg.trace_level);
        stack.set_addressing(self.cfg.addressing);
        self.stacks.insert(node, stack);
        self.endpoints
            .insert(node, Endpoint::new(node, self.cfg.channels.clone()));
        self.sched.schedule(at, WorldEvent::Spawn { node });
    }

    /// Schedule an application-level API call on a node.
    pub fn api_at(&mut self, at: Time, node: NodeId, call: DownCall) {
        self.sched.schedule(at, WorldEvent::Api { node, call });
    }

    /// Schedule a node crash (fail-stop).
    pub fn crash_at(&mut self, at: Time, node: NodeId) {
        self.sched.schedule(at, WorldEvent::Crash { node });
    }

    /// Remove a node's stack, endpoint, timers and monitors entirely, so
    /// the host can be spawned again with a fresh stack (a *rejoin*
    /// after a crash: protocol state is lost, as on a real reboot).
    /// Scheduled timer/RTO events for the old incarnation become inert —
    /// their generation slots are gone. Every peer's transport state
    /// toward the node is reset too: the old incarnation's reliable
    /// sequence numbers must not wedge the fresh endpoint (a peer
    /// retransmitting at old sequence positions would sit in the new
    /// receiver's out-of-order buffer forever).
    pub fn despawn(&mut self, node: NodeId) {
        self.alive.remove(&node);
        self.stacks.remove(&node);
        self.endpoints.remove(&node);
        self.cancel_node_timers(node);
        self.timers.retain(|&(n, _, _), _| n != node);
        self.monitors.remove(&node);
        for ep in self.endpoints.values_mut() {
            ep.reset_peer(node);
        }
        for stack in self.stacks.values_mut() {
            stack.measures_mut().forget(node);
        }
    }

    // ---- observation ------------------------------------------------------

    pub fn now(&self) -> Time {
        self.sched.now()
    }

    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    pub fn net(&self) -> &Network<Segment> {
        &self.net
    }

    pub fn net_mut(&mut self) -> &mut Network<Segment> {
        &mut self.net
    }

    pub fn stack(&self, node: NodeId) -> Option<&Stack> {
        self.stacks.get(&node)
    }

    pub fn stack_mut(&mut self, node: NodeId) -> Option<&mut Stack> {
        self.stacks.get_mut(&node)
    }

    pub fn endpoint(&self, node: NodeId) -> Option<&Endpoint> {
        self.endpoints.get(&node)
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive.contains(&node)
    }

    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.alive.iter().copied()
    }

    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Key of a node under this world's addressing mode.
    pub fn key_of(&self, node: NodeId) -> MacedonKey {
        MacedonKey::of_node(node, self.cfg.addressing)
    }

    /// Resolve a named transport instance.
    pub fn channel(&self, name: &str) -> Option<ChannelId> {
        self.cfg
            .channels
            .iter()
            .position(|c| c.name == name)
            .map(|i| ChannelId(i as u16))
    }

    /// Uncongested IP latency oracle (stretch / RDP computations).
    pub fn oracle_latency(&mut self, a: NodeId, b: NodeId) -> Option<Duration> {
        self.net.oracle_latency(a, b)
    }

    /// Instant of the last overlay-membership mutation the engine
    /// observed (failure-detector registrations changing, crashes).
    /// "quiet since t" is the convergence signal scenario metrics use.
    pub fn last_membership_change(&self) -> Time {
        self.last_membership_change
    }

    /// Aggregate read/write transition counts across stacks (locking
    /// ablation data).
    pub fn transition_counts(&self) -> (u64, u64) {
        let mut r = 0;
        let mut w = 0;
        for s in self.stacks.values() {
            r += s.read_transitions;
            w += s.write_transitions;
        }
        (r, w)
    }

    // ---- running ----------------------------------------------------------

    /// Process events until `deadline`; the clock lands exactly on it.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some((now, ev)) = self.sched.pop_before(deadline) {
            self.handle(now, ev);
        }
        self.sched.fast_forward(deadline);
    }

    /// Process every remaining event (tests on quiescent protocols).
    pub fn run_to_quiescence(&mut self) {
        while let Some((now, ev)) = self.sched.pop() {
            self.handle(now, ev);
        }
    }

    /// Fired-event counts by class since construction.
    pub fn event_counts(&self) -> EventClassCounts {
        self.event_counts
    }

    fn handle(&mut self, now: Time, ev: WorldEvent) {
        match &ev {
            WorldEvent::Net(_) => self.event_counts.net += 1,
            WorldEvent::ConnTimer(_) => self.event_counts.conn_timer += 1,
            WorldEvent::AgentTimer { .. } => self.event_counts.agent_timer += 1,
            WorldEvent::FdTick { .. } => self.event_counts.fd_tick += 1,
            _ => self.event_counts.control += 1,
        }
        match ev {
            WorldEvent::Net(nev) => {
                let mut sink = self.take_nsink();
                self.net.handle(now, nev, &mut sink);
                self.absorb_net(now, sink);
            }
            WorldEvent::ConnTimer(key) => {
                // The entry just fired; drop it from the live-timer map
                // whether or not the node still exists.
                self.conn_timers.remove(&key.slot());
                if !self.alive.contains(&key.node) {
                    return;
                }
                let mut tsink = self.take_tsink();
                if let Some(ep) = self.endpoints.get_mut(&key.node) {
                    ep.on_timer(now, key, &mut tsink);
                }
                self.absorb_transport(now, key.node, tsink);
            }
            WorldEvent::AgentTimer {
                node,
                layer,
                timer,
                gen,
            } => {
                if !self.alive.contains(&node) {
                    return;
                }
                let slot_key = (node, layer, timer);
                let Some(slot) = self.timers.get_mut(&slot_key) else {
                    return;
                };
                if slot.gen != gen {
                    return; // superseded or cancelled
                }
                if let Some(period) = slot.period {
                    slot.event = self.sched.schedule_timer(
                        now + period,
                        WorldEvent::AgentTimer {
                            node,
                            layer,
                            timer,
                            gen,
                        },
                    );
                }
                let mut fx = self.take_fx();
                if let Some(stack) = self.stacks.get_mut(&node) {
                    stack.timer(now, layer as usize, timer, &mut fx);
                }
                self.process_effects(now, node, fx);
            }
            WorldEvent::FdTick { node } => self.fd_sweep(now, node),
            WorldEvent::Spawn { node } => {
                self.alive.insert(node);
                // A respawn after a crash: the host is reachable again.
                self.net.faults_mut().heal_node(node);
                let mut fx = self.take_fx();
                if let Some(stack) = self.stacks.get_mut(&node) {
                    stack.init(now, &mut fx);
                }
                self.process_effects(now, node, fx);
                self.sched
                    .schedule_timer(now + self.cfg.fd_tick, WorldEvent::FdTick { node });
            }
            WorldEvent::Api { node, call } => {
                if !self.alive.contains(&node) {
                    return;
                }
                let mut fx = self.take_fx();
                if let Some(stack) = self.stacks.get_mut(&node) {
                    stack.api(now, call, &mut fx);
                }
                self.process_effects(now, node, fx);
            }
            WorldEvent::Crash { node } => {
                self.alive.remove(&node);
                self.net.faults_mut().fail_node(node);
                self.monitors.remove(&node);
                // A dead node's pending timers would all pop as no-ops;
                // cancel them so churn doesn't leave event backlog.
                self.cancel_node_timers(node);
                self.last_membership_change = now;
            }
        }
    }

    // ---- plumbing ----------------------------------------------------------

    /// Cancel every pending connection and agent timer owned by `node`
    /// (crash/despawn cleanup). Connection-timer map entries are
    /// removed; agent-timer slots stay (despawn drops them, a respawn
    /// after a crash supersedes them by generation).
    fn cancel_node_timers(&mut self, node: NodeId) {
        let sched = &mut self.sched;
        self.conn_timers.retain(|&(n, _, _, _), &mut ev| {
            if n == node {
                sched.cancel(ev);
                false
            } else {
                true
            }
        });
        for (&(n, _, _), slot) in self.timers.iter_mut() {
            if n == node {
                sched.cancel(slot.event);
                slot.period = None;
            }
        }
    }

    fn take_nsink(&mut self) -> Sink<Segment> {
        self.nsink_pool.pop().unwrap_or_default()
    }

    fn put_nsink(&mut self, mut sink: Sink<Segment>) {
        sink.clear();
        self.nsink_pool.push(sink);
    }

    fn take_tsink(&mut self) -> TransportSink {
        self.tsink_pool.pop().unwrap_or_default()
    }

    fn put_tsink(&mut self, mut sink: TransportSink) {
        sink.packets.clear();
        sink.timers.clear();
        sink.cancel_timers.clear();
        sink.delivered.clear();
        sink.ack_samples.clear();
        self.tsink_pool.push(sink);
    }

    fn take_fx(&mut self) -> Vec<StackEffect> {
        self.fx_pool.pop().unwrap_or_default()
    }

    fn put_fx(&mut self, mut fx: Vec<StackEffect>) {
        fx.clear();
        self.fx_pool.push(fx);
    }

    fn absorb_net(&mut self, _now: Time, mut sink: Sink<Segment>) {
        for (t, ev) in sink.schedule.drain(..) {
            self.sched.schedule(t, WorldEvent::Net(ev));
        }
        for d in sink.delivered.drain(..) {
            let to = d.pkt.dst;
            let from = d.pkt.src;
            if !self.alive.contains(&to) {
                continue;
            }
            let mut tsink = self.take_tsink();
            if let Some(ep) = self.endpoints.get_mut(&to) {
                ep.on_packet(d.at, from, d.pkt.payload, &mut tsink);
            }
            self.absorb_transport(d.at, to, tsink);
        }
        self.put_nsink(sink);
    }

    fn absorb_transport(&mut self, now: Time, node: NodeId, mut tsink: TransportSink) {
        // Acknowledgement observations feed the node's measurement
        // ledger (spec-readable `rtt(peer)`); purely passive — no
        // events, no RNG draws.
        if !tsink.ack_samples.is_empty() {
            if let Some(stack) = self.stacks.get_mut(&node) {
                let m = stack.measures_mut();
                for (peer, rtt) in tsink.ack_samples.drain(..) {
                    m.on_ack(now, peer, rtt);
                }
            }
        }
        let mut nsink = self.take_nsink();
        for pkt in tsink.packets.drain(..) {
            self.net.send(now, pkt, &mut nsink);
        }
        for key in tsink.cancel_timers.drain(..) {
            if let Some(ev) = self.conn_timers.remove(&key.slot()) {
                self.sched.cancel(ev);
            }
        }
        for (at, key) in tsink.timers.drain(..) {
            let slot = key.slot();
            let ev = self.sched.schedule_timer(at, WorldEvent::ConnTimer(key));
            if let Some(old) = self.conn_timers.insert(slot, ev) {
                // Re-arm: the superseded entry dies here instead of
                // tombstoning the queue.
                self.sched.cancel(old);
            }
        }
        // Net absorption precedes message delivery (event-order contract
        // of the original non-pooled implementation).
        self.absorb_net(now, nsink);
        for (from, ch, msg) in tsink.delivered.drain(..) {
            self.deliver_msg(now, node, from, ch, msg);
        }
        self.put_tsink(tsink);
    }

    /// A complete message reached `to`'s stack (or the engine).
    fn deliver_msg(&mut self, now: Time, to: NodeId, from: NodeId, _ch: ChannelId, msg: Bytes) {
        // Any traffic from a peer counts as liveness evidence.
        if let Some(mon) = self.monitors.get_mut(&to) {
            if let Some((_, st)) = mon.get_mut(&from) {
                st.last_heard = now;
                st.hb_pending = false;
            }
        }
        // Engine-internal messages (header peeked in place, no clone).
        let mut r = WireRef::new(&msg);
        if let Ok(proto) = r.u16() {
            if proto == ENGINE_PROTOCOL {
                if let Ok(kind) = r.u16() {
                    if kind == HB_REQ {
                        self.send_engine(now, to, from, HB_RESP);
                    }
                }
                return;
            }
        }
        if !self.alive.contains(&to) {
            return;
        }
        let mut fx = self.take_fx();
        if let Some(stack) = self.stacks.get_mut(&to) {
            // Every delivered protocol byte counts toward the sender's
            // inbound-goodput estimate (spec-readable `goodput(peer)`).
            stack.measures_mut().on_bytes_in(now, from, msg.len());
            stack.recv(now, from, msg, &mut fx);
        }
        self.process_effects(now, to, fx);
    }

    fn process_effects(&mut self, now: Time, node: NodeId, mut fx: Vec<StackEffect>) {
        for effect in fx.drain(..) {
            match effect {
                StackEffect::Send {
                    dst,
                    channel,
                    bytes,
                } => {
                    let mut tsink = self.take_tsink();
                    if let Some(ep) = self.endpoints.get_mut(&node) {
                        ep.send(now, dst, channel, bytes, &mut tsink);
                    }
                    self.absorb_transport(now, node, tsink);
                }
                StackEffect::TimerSet {
                    layer,
                    timer,
                    delay,
                    periodic,
                } => {
                    let key = (node, layer as u16, timer);
                    let slot = self.timers.entry(key).or_insert(TimerSlot {
                        gen: 0,
                        period: None,
                        event: EventId::NONE,
                    });
                    // Supersede: the old pending firing dies now.
                    self.sched.cancel(slot.event);
                    slot.gen += 1;
                    slot.period = periodic.then_some(delay);
                    let gen = slot.gen;
                    slot.event = self.sched.schedule_timer(
                        now + delay,
                        WorldEvent::AgentTimer {
                            node,
                            layer: layer as u16,
                            timer,
                            gen,
                        },
                    );
                }
                StackEffect::TimerCancel { layer, timer } => {
                    if let Some(slot) = self.timers.get_mut(&(node, layer as u16, timer)) {
                        self.sched.cancel(slot.event);
                        slot.gen += 1;
                        slot.period = None;
                    }
                }
                StackEffect::Monitor { layer, peer } => {
                    self.last_membership_change = now;
                    let mon = self.monitors.entry(node).or_default();
                    let entry = mon.entry(peer).or_insert((
                        Vec::new(),
                        MonitorState {
                            last_heard: now,
                            hb_pending: false,
                        },
                    ));
                    if !entry.0.contains(&layer) {
                        entry.0.push(layer);
                    }
                }
                StackEffect::Unmonitor { layer, peer } => {
                    self.last_membership_change = now;
                    if let Some(mon) = self.monitors.get_mut(&node) {
                        if let Some(entry) = mon.get_mut(&peer) {
                            entry.0.retain(|&l| l != layer);
                            if entry.0.is_empty() {
                                mon.remove(&peer);
                            }
                        }
                    }
                }
                StackEffect::Trace { layer, level, msg } => {
                    self.trace.record(now, node, layer, level, msg);
                }
            }
        }
        self.put_fx(fx);
    }

    fn send_engine(&mut self, now: Time, from_node: NodeId, to: NodeId, kind: u16) {
        let mut w = WireWriter::new();
        w.u16(ENGINE_PROTOCOL).u16(kind);
        let mut tsink = self.take_tsink();
        let ch = self.engine_ch;
        if let Some(ep) = self.endpoints.get_mut(&from_node) {
            ep.send(now, to, ch, w.finish(), &mut tsink);
        }
        self.absorb_transport(now, from_node, tsink);
    }

    fn fd_sweep(&mut self, now: Time, node: NodeId) {
        if !self.alive.contains(&node) {
            return;
        }
        let mut failed: Vec<(NodeId, Vec<usize>)> = Vec::new();
        let mut probe: Vec<NodeId> = Vec::new();
        if let Some(mon) = self.monitors.get_mut(&node) {
            // Walk peers in id order, not map order: probe and failure
            // events must not depend on hasher state, or seeded runs
            // stop being reproducible across builds.
            let mut peers: Vec<NodeId> = mon.keys().copied().collect();
            peers.sort_unstable_by_key(|p| p.0);
            let mut dead: Vec<NodeId> = Vec::new();
            for peer in peers {
                let (layers, st) = mon.get_mut(&peer).expect("collected above");
                let silent = now.saturating_since(st.last_heard);
                if silent >= self.cfg.fd_f {
                    failed.push((peer, layers.clone()));
                    dead.push(peer);
                } else if silent >= self.cfg.fd_g && !st.hb_pending {
                    st.hb_pending = true;
                    probe.push(peer);
                }
            }
            for peer in dead {
                mon.remove(&peer);
            }
        }
        for peer in probe {
            self.send_engine(now, node, peer, HB_REQ);
        }
        for (peer, layers) in failed {
            // The peer's measurements describe a dead incarnation.
            if let Some(stack) = self.stacks.get_mut(&node) {
                stack.measures_mut().forget(peer);
            }
            self.last_membership_change = now;
            for layer in layers {
                let mut fx = self.take_fx();
                if let Some(stack) = self.stacks.get_mut(&node) {
                    stack.peer_failed(now, layer, peer, &mut fx);
                }
                self.process_effects(now, node, fx);
            }
        }
        self.sched
            .schedule(now + self.cfg.fd_tick, WorldEvent::FdTick { node });
    }
}

/// Helper for protocol message encoding: prefix with protocol id and
/// message type — the demultiplexing header the generated code emits.
pub fn proto_header(proto: ProtocolId, msg_type: u16) -> WireWriter {
    let mut w = WireWriter::new();
    w.u16(proto).u16(msg_type);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Ctx, NullApp};
    use crate::wire::WireReader;
    use macedon_net::topology::{canned, LinkSpec};
    use std::any::Any;

    /// Ping-pong agent: on init, the initiator sends PING; the peer
    /// responds PONG; both count.
    struct PingPong {
        peer: Option<NodeId>,
        ch: ChannelId,
        pings: u32,
        pongs: u32,
    }

    const PP: ProtocolId = 77;
    const MSG_PING: u16 = 1;
    const MSG_PONG: u16 = 2;

    impl Agent for PingPong {
        fn protocol_id(&self) -> ProtocolId {
            PP
        }
        fn name(&self) -> &'static str {
            "pingpong"
        }
        fn init(&mut self, ctx: &mut Ctx) {
            if let Some(peer) = self.peer {
                let w = proto_header(PP, MSG_PING);
                ctx.send(peer, self.ch, w.finish());
            }
        }
        fn downcall(&mut self, _ctx: &mut Ctx, _call: DownCall) {}
        fn recv(&mut self, ctx: &mut Ctx, from: NodeId, msg: Bytes) {
            let mut r = WireReader::new(msg);
            let _proto = r.u16().unwrap();
            match r.u16().unwrap() {
                MSG_PING => {
                    self.pings += 1;
                    let w = proto_header(PP, MSG_PONG);
                    ctx.send(from, self.ch, w.finish());
                }
                MSG_PONG => self.pongs += 1,
                _ => unreachable!(),
            }
        }
        fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_host_world() -> (World, NodeId, NodeId) {
        let topo = canned::two_hosts(LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let w = World::new(topo, WorldConfig::default());
        (w, hosts[0], hosts[1])
    }

    fn pp(peer: Option<NodeId>) -> Box<dyn Agent> {
        Box::new(PingPong {
            peer,
            ch: ChannelId(1),
            pings: 0,
            pongs: 0,
        })
    }

    #[test]
    fn ping_pong_roundtrip() {
        let (mut w, a, b) = two_host_world();
        w.spawn_at(Time::ZERO, b, vec![pp(None)], Box::new(NullApp));
        w.spawn_at(
            Time::from_millis(10),
            a,
            vec![pp(Some(b))],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(2));
        let pa: &PingPong = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        let pb: &PingPong = w
            .stack(b)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert_eq!(pb.pings, 1);
        assert_eq!(pa.pongs, 1);
    }

    #[test]
    fn spawn_staggering_orders_inits() {
        let (mut w, a, b) = two_host_world();
        w.spawn_at(Time::from_secs(5), a, vec![pp(None)], Box::new(NullApp));
        w.spawn_at(Time::from_secs(1), b, vec![pp(None)], Box::new(NullApp));
        w.run_until(Time::from_secs(2));
        assert!(w.is_alive(b));
        assert!(!w.is_alive(a));
        w.run_until(Time::from_secs(6));
        assert!(w.is_alive(a));
    }

    /// Agent exercising one-shot, superseding and periodic timers.
    struct TimerBox {
        fired: Vec<u16>,
    }

    impl Agent for TimerBox {
        fn protocol_id(&self) -> ProtocolId {
            78
        }
        fn name(&self) -> &'static str {
            "timerbox"
        }
        fn init(&mut self, ctx: &mut Ctx) {
            ctx.timer_set(1, Duration::from_millis(100));
            ctx.timer_set(2, Duration::from_millis(500));
            ctx.timer_set(2, Duration::from_millis(900)); // supersedes
            ctx.timer_periodic(3, Duration::from_millis(300));
        }
        fn downcall(&mut self, _ctx: &mut Ctx, _call: DownCall) {}
        fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
        fn timer(&mut self, ctx: &mut Ctx, timer: u16) {
            self.fired.push(timer);
            if timer == 3 && self.fired.iter().filter(|&&t| t == 3).count() >= 3 {
                ctx.timer_cancel(3);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timer_semantics() {
        let (mut w, a, _) = two_host_world();
        w.spawn_at(
            Time::ZERO,
            a,
            vec![Box::new(TimerBox { fired: vec![] })],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(5));
        let tb: &TimerBox = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        // Timer 1 once; timer 2 once (superseded schedule → one firing);
        // timer 3 exactly three times then cancelled.
        assert_eq!(tb.fired.iter().filter(|&&t| t == 1).count(), 1);
        assert_eq!(tb.fired.iter().filter(|&&t| t == 2).count(), 1);
        assert_eq!(tb.fired.iter().filter(|&&t| t == 3).count(), 3);
    }

    /// Agent that monitors a peer and records failure.
    struct Watcher {
        peer: NodeId,
        ch: ChannelId,
        failures: Vec<NodeId>,
    }

    impl Agent for Watcher {
        fn protocol_id(&self) -> ProtocolId {
            79
        }
        fn name(&self) -> &'static str {
            "watcher"
        }
        fn init(&mut self, ctx: &mut Ctx) {
            ctx.monitor(self.peer);
            // Exchange one message so the peer knows us.
            let w = proto_header(79, 9);
            ctx.send(self.peer, self.ch, w.finish());
        }
        fn downcall(&mut self, _ctx: &mut Ctx, _call: DownCall) {}
        fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
        fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
        fn neighbor_failed(&mut self, _ctx: &mut Ctx, peer: NodeId) {
            self.failures.push(peer);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn failure_detector_fires_on_crash() {
        let (mut w, a, b) = two_host_world();
        w.spawn_at(
            Time::ZERO,
            a,
            vec![Box::new(Watcher {
                peer: b,
                ch: ChannelId(1),
                failures: vec![],
            })],
            Box::new(NullApp),
        );
        w.spawn_at(
            Time::ZERO,
            b,
            vec![Box::new(Watcher {
                peer: a,
                ch: ChannelId(1),
                failures: vec![],
            })],
            Box::new(NullApp),
        );
        w.crash_at(Time::from_secs(2), b);
        w.run_until(Time::from_secs(30));
        let wa: &Watcher = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert_eq!(wa.failures, vec![b], "a detected b's crash");
        assert!(!w.is_alive(b));
    }

    #[test]
    fn heartbeats_keep_silent_peers_alive() {
        // Nodes monitor each other but exchange no protocol traffic after
        // init; heartbeats must prevent false failure declarations.
        let (mut w, a, b) = two_host_world();
        w.spawn_at(
            Time::ZERO,
            a,
            vec![Box::new(Watcher {
                peer: b,
                ch: ChannelId(1),
                failures: vec![],
            })],
            Box::new(NullApp),
        );
        w.spawn_at(
            Time::ZERO,
            b,
            vec![Box::new(Watcher {
                peer: a,
                ch: ChannelId(1),
                failures: vec![],
            })],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(60));
        let wa: &Watcher = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        let wb: &Watcher = w
            .stack(b)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert!(
            wa.failures.is_empty(),
            "no false positives at a: {:?}",
            wa.failures
        );
        assert!(wb.failures.is_empty(), "no false positives at b");
    }

    #[test]
    fn api_injection_reaches_top_layer() {
        struct ApiSpy {
            calls: u32,
        }
        impl Agent for ApiSpy {
            fn protocol_id(&self) -> ProtocolId {
                80
            }
            fn name(&self) -> &'static str {
                "apispy"
            }
            fn init(&mut self, _ctx: &mut Ctx) {}
            fn downcall(&mut self, _ctx: &mut Ctx, call: DownCall) {
                if matches!(call, DownCall::Join { .. }) {
                    self.calls += 1;
                }
            }
            fn recv(&mut self, _ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {}
            fn timer(&mut self, _ctx: &mut Ctx, _timer: u16) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let (mut w, a, _) = two_host_world();
        w.spawn_at(
            Time::ZERO,
            a,
            vec![Box::new(ApiSpy { calls: 0 })],
            Box::new(NullApp),
        );
        w.api_at(
            Time::from_millis(100),
            a,
            DownCall::Join {
                group: MacedonKey(1),
            },
        );
        w.run_until(Time::from_secs(1));
        let spy: &ApiSpy = w
            .stack(a)
            .unwrap()
            .agent(0)
            .as_any()
            .downcast_ref()
            .unwrap();
        assert_eq!(spy.calls, 1);
    }

    #[test]
    fn deterministic_end_state() {
        let run = || {
            let (mut w, a, b) = two_host_world();
            w.spawn_at(Time::ZERO, b, vec![pp(None)], Box::new(NullApp));
            w.spawn_at(
                Time::from_millis(3),
                a,
                vec![pp(Some(b))],
                Box::new(NullApp),
            );
            w.run_until(Time::from_secs(10));
            w.sched.events_fired()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn channel_resolution() {
        let (w, _, _) = two_host_world();
        assert!(w.channel("HIGH").is_some());
        assert!(w.channel("__ENGINE_HB").is_some());
        assert!(w.channel("NONE").is_none());
    }
}
