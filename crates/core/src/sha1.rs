//! SHA-1, implemented from scratch (FIPS 180-1).
//!
//! The paper's engine includes "SHA hashing" as one of the MACEDON
//! libraries; hash-addressed overlays derive node and object keys from it.
//! Our Chord/Pastry use the paper's 32-bit hash address space, so callers
//! usually truncate the digest via [`sha1_u32`].

/// Compute the 20-byte SHA-1 digest of `data`.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];

    // Message padding: 0x80, zeros, 64-bit big-endian bit length.
    let ml = (data.len() as u64).wrapping_mul(8);
    let mut msg = data.to_vec();
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&ml.to_be_bytes());

    let mut w = [0u32; 80];
    for chunk in msg.chunks_exact(64) {
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }

    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// First 4 bytes of the SHA-1 digest as a big-endian u32 — the paper's
/// 32-bit hash address space.
pub fn sha1_u32(data: &[u8]) -> u32 {
    let d = sha1(data);
    u32::from_be_bytes([d[0], d[1], d[2], d[3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Known-answer tests from FIPS 180-1 / RFC 3174.
    #[test]
    fn empty_string() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let m = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&m)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn boundary_lengths() {
        // 55, 56, 63, 64, 65 bytes cross padding boundaries.
        for n in [55usize, 56, 63, 64, 65] {
            let m = vec![0x61; n];
            let d = sha1(&m);
            assert_eq!(d.len(), 20);
            // Digest must differ from neighbors (sanity).
            let d2 = sha1(&vec![0x61; n + 1]);
            assert_ne!(d, d2);
        }
    }

    #[test]
    fn u32_truncation_matches_digest_prefix() {
        let d = sha1(b"macedon");
        let v = sha1_u32(b"macedon");
        assert_eq!(v.to_be_bytes(), [d[0], d[1], d[2], d[3]]);
    }
}
