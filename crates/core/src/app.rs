//! Reusable application handlers: workload generators and delivery
//! collectors used by the evaluation harness (and handy in tests).
//!
//! The paper evaluates overlays with small driver applications — a
//! streamer that multicasts 1000-byte packets at a target rate
//! (SplitStream, Fig 12), a random-destination router at 10 Kbps (Pastry,
//! Fig 11) — and null-handler apps when only construction is being
//! evaluated. These are those drivers.

use crate::agent::{AppHandler, Ctx};
use crate::api::{DownCall, DEFAULT_PRIORITY};
use crate::key::MacedonKey;
use bytes::Bytes;
use macedon_net::NodeId;
use macedon_sim::{Duration, Time};
use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;

/// One record per application-level delivery.
#[derive(Clone, Debug)]
pub struct DeliveryRecord {
    pub at: Time,
    pub node: NodeId,
    pub src: MacedonKey,
    pub from: NodeId,
    pub bytes: usize,
    /// First 8 payload bytes interpreted as a big-endian sequence number
    /// when present (the workloads below stamp one).
    pub seqno: Option<u64>,
}

/// Shared sink the collector apps append into; the experiment harness
/// holds a clone and reads it after the run.
pub type SharedDeliveries = Arc<Mutex<Vec<DeliveryRecord>>>;

pub fn shared_deliveries() -> SharedDeliveries {
    Arc::new(Mutex::new(Vec::new()))
}

/// Records every delivery; makes no calls.
pub struct CollectorApp {
    pub sink: SharedDeliveries,
}

impl CollectorApp {
    pub fn new(sink: SharedDeliveries) -> CollectorApp {
        CollectorApp { sink }
    }
}

fn record(sink: &SharedDeliveries, ctx: &Ctx, src: MacedonKey, from: NodeId, payload: &Bytes) {
    let seqno = if payload.len() >= 8 {
        Some(u64::from_be_bytes(
            payload[..8].try_into().expect("len checked"),
        ))
    } else {
        None
    };
    sink.lock().push(DeliveryRecord {
        at: ctx.now,
        node: ctx.me,
        src,
        from,
        bytes: payload.len(),
        seqno,
    });
}

impl AppHandler for CollectorApp {
    fn on_deliver(&mut self, ctx: &mut Ctx, src: MacedonKey, from: NodeId, payload: Bytes) {
        ctx.locking_read();
        record(&self.sink, ctx, src, from, &payload);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Workload shape for [`StreamerApp`] sends.
#[derive(Clone, Copy, Debug)]
pub enum StreamKind {
    /// Multicast to a group (Fig 12's SplitStream source).
    Multicast { group: MacedonKey },
    /// Route each packet to a uniformly random key (Fig 11's Pastry
    /// workload).
    RandomRoute,
}

/// Streams `packet_bytes`-sized packets at `rate_bps` starting at
/// `start`, stamping a sequence number in the first 8 payload bytes.
/// Also records its own deliveries like [`CollectorApp`].
pub struct StreamerApp {
    pub kind: StreamKind,
    pub rate_bps: u64,
    pub packet_bytes: usize,
    pub start: Time,
    pub stop: Time,
    pub sink: SharedDeliveries,
    seq: u64,
}

const TICK: u16 = 0;

impl StreamerApp {
    pub fn new(
        kind: StreamKind,
        rate_bps: u64,
        packet_bytes: usize,
        start: Time,
        stop: Time,
        sink: SharedDeliveries,
    ) -> StreamerApp {
        assert!(rate_bps > 0 && packet_bytes >= 8);
        StreamerApp {
            kind,
            rate_bps,
            packet_bytes,
            start,
            stop,
            sink,
            seq: 0,
        }
    }

    fn interval(&self) -> Duration {
        // packet_bytes * 8 bits at rate_bps.
        let us = (self.packet_bytes as u64 * 8).saturating_mul(1_000_000) / self.rate_bps;
        Duration::from_micros(us.max(1))
    }

    fn payload(&mut self) -> Bytes {
        let mut buf = vec![0u8; self.packet_bytes];
        buf[..8].copy_from_slice(&self.seq.to_be_bytes());
        self.seq += 1;
        Bytes::from(buf)
    }
}

impl AppHandler for StreamerApp {
    fn start(&mut self, ctx: &mut Ctx) {
        let delay = self.start.saturating_since(ctx.now);
        ctx.timer_set(TICK, delay.max(Duration::from_micros(1)));
    }

    fn on_timer(&mut self, ctx: &mut Ctx, timer: u16) {
        if timer != TICK || ctx.now >= self.stop {
            return;
        }
        let payload = self.payload();
        let call = match self.kind {
            StreamKind::Multicast { group } => DownCall::Multicast {
                group,
                payload,
                priority: DEFAULT_PRIORITY,
            },
            StreamKind::RandomRoute => DownCall::Route {
                dest: MacedonKey(ctx.rng.next_u32()),
                payload,
                priority: DEFAULT_PRIORITY,
            },
        };
        ctx.down(call);
        ctx.timer_set(TICK, self.interval());
    }

    fn on_deliver(&mut self, ctx: &mut Ctx, src: MacedonKey, from: NodeId, payload: Bytes) {
        ctx.locking_read();
        record(&self.sink, ctx, src, from, &payload);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Issues a fixed sequence of API calls at given times relative to app
/// start (joins, group creation, leaves) then collects deliveries.
pub struct ScriptedApp {
    pub script: Vec<(Duration, DownCall)>,
    pub sink: SharedDeliveries,
    next: usize,
}

impl ScriptedApp {
    pub fn new(script: Vec<(Duration, DownCall)>, sink: SharedDeliveries) -> ScriptedApp {
        ScriptedApp {
            script,
            sink,
            next: 0,
        }
    }
}

impl AppHandler for ScriptedApp {
    fn start(&mut self, ctx: &mut Ctx) {
        if let Some((d, _)) = self.script.first() {
            ctx.timer_set(TICK, *d);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _timer: u16) {
        if let Some((at, call)) = self.script.get(self.next).cloned() {
            ctx.down(call);
            self.next += 1;
            if let Some((next_at, _)) = self.script.get(self.next) {
                ctx.timer_set(
                    TICK,
                    next_at.saturating_sub(at).max(Duration::from_micros(1)),
                );
            }
        }
    }

    fn on_deliver(&mut self, ctx: &mut Ctx, src: MacedonKey, from: NodeId, payload: Bytes) {
        ctx.locking_read();
        record(&self.sink, ctx, src, from, &payload);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streamer_interval_math() {
        let s = StreamerApp::new(
            StreamKind::RandomRoute,
            10_000, // 10 Kbps
            1_000,  // 1000-byte packets
            Time::ZERO,
            Time::from_secs(10),
            shared_deliveries(),
        );
        // 8000 bits / 10000 bps = 0.8 s per packet.
        assert_eq!(s.interval(), Duration::from_millis(800));
    }

    #[test]
    fn streamer_payload_stamps_sequence() {
        let mut s = StreamerApp::new(
            StreamKind::RandomRoute,
            1_000_000,
            100,
            Time::ZERO,
            Time::from_secs(1),
            shared_deliveries(),
        );
        let p0 = s.payload();
        let p1 = s.payload();
        assert_eq!(u64::from_be_bytes(p0[..8].try_into().unwrap()), 0);
        assert_eq!(u64::from_be_bytes(p1[..8].try_into().unwrap()), 1);
        assert_eq!(p0.len(), 100);
    }

    #[test]
    #[should_panic]
    fn tiny_packets_rejected() {
        let _ = StreamerApp::new(
            StreamKind::RandomRoute,
            1_000,
            4, // < 8 bytes: no room for a seqno
            Time::ZERO,
            Time::from_secs(1),
            shared_deliveries(),
        );
    }
}
