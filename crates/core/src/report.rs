//! Run reports — the paper's "evaluation tools \[that\] enable researchers
//! to gain deeper understanding into the complex behavior of their
//! algorithms" (§1), consolidated into one summary per run.
//!
//! A [`RunReport`] snapshots a [`World`] after an
//! experiment: per-node traffic and transition counts, aggregate
//! transport behavior (retransmissions = congestion/loss pressure),
//! network-level drops and link usage, and the locking-class split. The
//! figure harness prints these; tests assert on them.

use crate::world::World;
use macedon_net::NodeId;
use std::fmt;

/// Per-node slice of a run.
#[derive(Clone, Debug)]
pub struct NodeReport {
    pub node: NodeId,
    pub alive: bool,
    /// Bytes this node's reliable transports pushed to the wire.
    pub bytes_sent: u64,
    pub segments_sent: u64,
    pub retransmissions: u64,
    /// Stack transition counts (read, write).
    pub transitions: (u64, u64),
}

/// Whole-run summary.
#[derive(Clone, Debug)]
pub struct RunReport {
    pub virtual_seconds: f64,
    pub events_fired: u64,
    pub nodes: Vec<NodeReport>,
    /// Packets dropped inside the emulated network (queue overflow,
    /// loss injection, dead links/nodes).
    pub network_drops: u64,
    /// Physical links that carried at least one packet.
    pub links_used: usize,
    /// Share of transitions that were read-locked (parallelism headroom).
    pub read_share: f64,
}

impl RunReport {
    /// Snapshot a world (cheap; does not advance the simulation).
    pub fn capture(world: &World) -> RunReport {
        let mut nodes = Vec::new();
        let mut reads = 0u64;
        let mut writes = 0u64;
        let host_list: Vec<NodeId> = world.net().topology().hosts().to_vec();
        for h in host_list {
            let Some(stack) = world.stack(h) else {
                continue;
            };
            let (mut bytes, mut segs, mut retx) = (0, 0, 0);
            if let Some(ep) = world.endpoint(h) {
                bytes = ep.total_bytes_sent();
                for i in 0..ep.channels().len() {
                    let st = ep.channel_stats(macedon_transport::ChannelId(i as u16));
                    segs += st.segments_sent;
                    retx += st.retransmissions;
                }
            }
            reads += stack.read_transitions;
            writes += stack.write_transitions;
            nodes.push(NodeReport {
                node: h,
                alive: world.is_alive(h),
                bytes_sent: bytes,
                segments_sent: segs,
                retransmissions: retx,
                transitions: (stack.read_transitions, stack.write_transitions),
            });
        }
        let counters = world.link_counters();
        let links_used = counters.iter().filter(|&&(p, _, _)| p > 0).count();
        let total = reads + writes;
        RunReport {
            virtual_seconds: world.now().as_secs_f64(),
            events_fired: world.events_fired(),
            nodes,
            network_drops: world.total_net_drops(),
            links_used,
            read_share: if total == 0 {
                0.0
            } else {
                reads as f64 / total as f64
            },
        }
    }

    /// Total protocol bytes across all nodes (the communication-overhead
    /// metric's numerator).
    pub fn total_bytes_sent(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    pub fn total_retransmissions(&self) -> u64 {
        self.nodes.iter().map(|n| n.retransmissions).sum()
    }

    /// Mean control overhead rate in bits/sec per node over the run.
    pub fn mean_overhead_bps(&self) -> f64 {
        if self.nodes.is_empty() || self.virtual_seconds <= 0.0 {
            return 0.0;
        }
        self.total_bytes_sent() as f64 * 8.0 / self.virtual_seconds / self.nodes.len() as f64
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {:.1} virtual s, {} events",
            self.virtual_seconds, self.events_fired
        )?;
        writeln!(
            f,
            "nodes: {} ({} alive), links used: {}, drops: {}",
            self.nodes.len(),
            self.nodes.iter().filter(|n| n.alive).count(),
            self.links_used,
            self.network_drops
        )?;
        writeln!(
            f,
            "traffic: {} B sent, {} segments, {} retransmissions ({:.1} bps/node overhead)",
            self.total_bytes_sent(),
            self.nodes.iter().map(|n| n.segments_sent).sum::<u64>(),
            self.total_retransmissions(),
            self.mean_overhead_bps()
        )?;
        write!(
            f,
            "transitions: {:.1}% read-locked",
            self.read_share * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, Ctx, NullApp};
    use crate::api::DownCall;
    use crate::world::{proto_header, WorldConfig};
    use crate::{Bytes, ChannelId, Time};
    use macedon_net::topology::{canned, LinkSpec};
    use std::any::Any;

    struct Chatter {
        peer: Option<NodeId>,
        n: u32,
    }

    impl Agent for Chatter {
        fn protocol_id(&self) -> u16 {
            90
        }
        fn name(&self) -> &'static str {
            "chatter"
        }
        fn init(&mut self, ctx: &mut Ctx) {
            ctx.timer_periodic(1, crate::Duration::from_millis(200));
        }
        fn downcall(&mut self, _ctx: &mut Ctx, _call: DownCall) {}
        fn recv(&mut self, ctx: &mut Ctx, _from: NodeId, _msg: Bytes) {
            ctx.locking_read();
            self.n += 1;
        }
        fn timer(&mut self, ctx: &mut Ctx, _t: u16) {
            if let Some(p) = self.peer {
                let w = proto_header(90, 1);
                ctx.send(p, ChannelId(1), w.finish());
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn report_captures_traffic_and_transitions() {
        let topo = canned::two_hosts(LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut w = World::new(topo, WorldConfig::default());
        w.spawn_at(
            Time::ZERO,
            hosts[0],
            vec![Box::new(Chatter {
                peer: Some(hosts[1]),
                n: 0,
            })],
            Box::new(NullApp),
        );
        w.spawn_at(
            Time::ZERO,
            hosts[1],
            vec![Box::new(Chatter { peer: None, n: 0 })],
            Box::new(NullApp),
        );
        w.run_until(Time::from_secs(10));
        let r = RunReport::capture(&w);
        assert_eq!(r.nodes.len(), 2);
        assert!(r.total_bytes_sent() > 0, "chatter traffic accounted");
        assert!(r.events_fired > 0);
        assert!((r.virtual_seconds - 10.0).abs() < 1e-6);
        assert!(r.read_share > 0.0, "recv transitions were read-locked");
        assert!(r.links_used >= 2);
        assert_eq!(r.network_drops, 0);
        assert!(r.mean_overhead_bps() > 0.0);
        // Display renders without panicking and mentions the essentials.
        let text = r.to_string();
        assert!(text.contains("virtual s"));
        assert!(text.contains("read-locked"));
    }

    #[test]
    fn report_reflects_crashes() {
        let topo = canned::star(3, LinkSpec::lan());
        let hosts = topo.hosts().to_vec();
        let mut w = World::new(topo, WorldConfig::default());
        for &h in &hosts {
            w.spawn_at(
                Time::ZERO,
                h,
                vec![Box::new(Chatter { peer: None, n: 0 })],
                Box::new(NullApp),
            );
        }
        w.crash_at(Time::from_secs(1), hosts[0]);
        w.run_until(Time::from_secs(5));
        let r = RunReport::capture(&w);
        assert_eq!(r.nodes.iter().filter(|n| n.alive).count(), 2);
    }
}
