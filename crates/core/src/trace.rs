//! The MACEDON tracing subsystem.
//!
//! The `trace_` header of a mac file selects one of four levels
//! (off/low/med/high); the engine then logs transitions, messages and
//! state changes automatically. Here the [`TraceSink`] collects records
//! centrally (the world owns one), filtered by level at collection time,
//! and also keeps the read/write transition counters used by the locking
//! ablation experiment.

use macedon_net::NodeId;
use macedon_sim::Time;

/// Automatic tracing level (paper: `trace_ off|low|med|high`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum TraceLevel {
    #[default]
    Off,
    Low,
    Med,
    High,
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    pub at: Time,
    pub node: NodeId,
    pub layer: usize,
    pub level: TraceLevel,
    pub msg: String,
}

/// Central trace collector with transition accounting.
#[derive(Default)]
pub struct TraceSink {
    level: TraceLevel,
    records: Vec<TraceRecord>,
    /// (read-locked, write-locked) transitions executed.
    pub read_transitions: u64,
    pub write_transitions: u64,
    /// Total stack transitions dispatched.
    pub transitions: u64,
}

impl TraceSink {
    pub fn new(level: TraceLevel) -> TraceSink {
        TraceSink {
            level,
            ..Default::default()
        }
    }

    pub fn level(&self) -> TraceLevel {
        self.level
    }

    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Record if `level` is within the configured verbosity.
    pub fn record(&mut self, at: Time, node: NodeId, layer: usize, level: TraceLevel, msg: String) {
        if level != TraceLevel::Off && level <= self.level {
            self.records.push(TraceRecord {
                at,
                node,
                layer,
                level,
                msg,
            });
        }
    }

    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records emitted by one node (debug helper).
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.node == node)
    }

    /// Fraction of transitions that were read-locked — the parallelism
    /// opportunity the paper's data/control split exposes.
    pub fn read_share(&self) -> f64 {
        let total = self.read_transitions + self.write_transitions;
        if total == 0 {
            0.0
        } else {
            self.read_transitions as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering() {
        assert!(TraceLevel::Off < TraceLevel::Low);
        assert!(TraceLevel::Low < TraceLevel::Med);
        assert!(TraceLevel::Med < TraceLevel::High);
    }

    #[test]
    fn filtering_by_level() {
        let mut t = TraceSink::new(TraceLevel::Low);
        t.record(Time::ZERO, NodeId(0), 0, TraceLevel::Low, "kept".into());
        t.record(Time::ZERO, NodeId(0), 0, TraceLevel::High, "dropped".into());
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].msg, "kept");
    }

    #[test]
    fn off_level_records_nothing() {
        let mut t = TraceSink::new(TraceLevel::Off);
        t.record(Time::ZERO, NodeId(0), 0, TraceLevel::Low, "x".into());
        // An explicit Off-level record is also never kept.
        t.record(Time::ZERO, NodeId(0), 0, TraceLevel::Off, "y".into());
        assert!(t.records().is_empty());
    }

    #[test]
    fn per_node_filter() {
        let mut t = TraceSink::new(TraceLevel::High);
        t.record(Time::ZERO, NodeId(1), 0, TraceLevel::Low, "a".into());
        t.record(Time::ZERO, NodeId(2), 0, TraceLevel::Low, "b".into());
        assert_eq!(t.for_node(NodeId(1)).count(), 1);
    }

    #[test]
    fn read_share_math() {
        let mut t = TraceSink::new(TraceLevel::Off);
        assert_eq!(t.read_share(), 0.0);
        t.read_transitions = 3;
        t.write_transitions = 1;
        assert_eq!(t.read_share(), 0.75);
    }
}
