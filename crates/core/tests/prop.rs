//! Property tests on keys, SHA-1 and the wire codec.

use macedon_core::key::{
    dsl_digit, dsl_owner_of, dsl_prefix_len, dsl_ring_between, dsl_ring_dist, RING,
};
use macedon_core::sha1::sha1;
use macedon_core::{Addressing, MacedonKey, NodeId, WireReader, WireWriter};
use proptest::prelude::*;

proptest! {
    /// Clockwise distances around the ring sum to the full circle.
    #[test]
    fn distances_sum_to_ring(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (MacedonKey(a), MacedonKey(b));
        if a != b {
            prop_assert_eq!(ka.distance_to(kb) + kb.distance_to(ka), RING);
        } else {
            prop_assert_eq!(ka.distance_to(kb), 0);
        }
    }

    /// x ∈ (a, b) iff x ∉ [b, a] going the other way (for distinct points).
    #[test]
    fn open_interval_partition(a in any::<u32>(), b in any::<u32>(), x in any::<u32>()) {
        let (ka, kb, kx) = (MacedonKey(a), MacedonKey(b), MacedonKey(x));
        prop_assume!(a != b && x != a && x != b);
        let cw = kx.in_open(ka, kb);
        let ccw = kx.in_open(kb, ka);
        prop_assert!(cw ^ ccw, "each point is on exactly one side");
    }

    /// in_open_closed contains the endpoint, in_open doesn't.
    #[test]
    fn interval_endpoints(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (MacedonKey(a), MacedonKey(b));
        prop_assume!(a != b);
        prop_assert!(kb.in_open_closed(ka, kb));
        prop_assert!(!kb.in_open(ka, kb));
        prop_assert!(!ka.in_open_closed(ka, kb));
    }

    /// Digits reassemble to the key.
    #[test]
    fn digits_reassemble(k in any::<u32>()) {
        let key = MacedonKey(k);
        let mut v = 0u32;
        for i in 0..8 {
            v = (v << 4) | key.digit(i, 4);
        }
        prop_assert_eq!(v, k);
    }

    /// shared_prefix_len is symmetric and maximal for equal keys.
    #[test]
    fn prefix_symmetry(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (MacedonKey(a), MacedonKey(b));
        prop_assert_eq!(ka.shared_prefix_len(kb, 4), kb.shared_prefix_len(ka, 4));
        prop_assert_eq!(ka.shared_prefix_len(ka, 4), 8);
    }

    /// ring_distance is a metric-ish: symmetric, zero iff equal, ≤ half.
    #[test]
    fn ring_distance_properties(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (MacedonKey(a), MacedonKey(b));
        prop_assert_eq!(ka.ring_distance(kb), kb.ring_distance(ka));
        prop_assert_eq!(ka.ring_distance(kb) == 0, a == b);
        prop_assert!(ka.ring_distance(kb) <= RING / 2);
    }

    /// The `ring_dist` builtin is symmetric and bounded by half the ring.
    #[test]
    fn dsl_ring_dist_symmetry(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (Some(MacedonKey(a)), Some(MacedonKey(b)));
        prop_assert_eq!(dsl_ring_dist(ka, kb), dsl_ring_dist(kb, ka));
        prop_assert!(dsl_ring_dist(ka, kb) <= (RING / 2) as i64);
        prop_assert_eq!(dsl_ring_dist(ka, kb) == 0, a == b);
        // Null loses every "closest" comparison against a real key.
        prop_assert!(dsl_ring_dist(None, kb) > dsl_ring_dist(ka, kb));
    }

    /// The `ring_between` builtin is the half-open clockwise interval
    /// `(lo, hi]`: for distinct endpoints, `(lo, hi]` and `(hi, lo]`
    /// partition the ring exactly (wraparound included), `hi` is in and
    /// `lo` is out.
    #[test]
    fn dsl_ring_between_half_open(x in any::<u32>(), lo in any::<u32>(), hi in any::<u32>()) {
        let (kx, klo, khi) = (Some(MacedonKey(x)), Some(MacedonKey(lo)), Some(MacedonKey(hi)));
        prop_assume!(lo != hi);
        prop_assert!(dsl_ring_between(kx, klo, khi) ^ dsl_ring_between(kx, khi, klo));
        prop_assert!(dsl_ring_between(khi, klo, khi));
        prop_assert!(!dsl_ring_between(klo, klo, khi));
    }

    /// `digit` round-trips against sha1-derived keys: the hex digits
    /// reassemble to the key, and `prefix_len` equals the index of the
    /// first differing digit.
    #[test]
    fn dsl_digit_prefix_roundtrip(name in "[a-z]{1,12}", other in "[a-z]{1,12}") {
        let a = MacedonKey::of_name(&name);
        let b = MacedonKey::of_name(&other);
        let mut v: i64 = 0;
        for i in 0..8 {
            v = (v << 4) | dsl_digit(Some(a), i, 16);
        }
        prop_assert_eq!(v as u32, a.0);
        let plen = dsl_prefix_len(Some(a), Some(b));
        prop_assert_eq!(plen, dsl_prefix_len(Some(b), Some(a)));
        for i in 0..plen {
            prop_assert_eq!(dsl_digit(Some(a), i, 16), dsl_digit(Some(b), i, 16));
        }
        if plen < 8 {
            prop_assert_ne!(dsl_digit(Some(a), plen, 16), dsl_digit(Some(b), plen, 16));
        } else {
            prop_assert_eq!(a, b);
        }
    }

    /// `owner_of` picks a list member, is order-independent, and no other
    /// member sits strictly between the key and the chosen owner.
    #[test]
    fn dsl_owner_of_is_clockwise_min(key in any::<u32>(), ids in proptest::collection::vec(any::<u32>(), 1..12)) {
        let list: Vec<NodeId> = ids.iter().map(|&n| NodeId(n)).collect();
        let k = MacedonKey(key);
        for mode in [Addressing::Ip, Addressing::Hash] {
            let owner = dsl_owner_of(Some(k), &list, mode).expect("non-empty list");
            prop_assert!(list.contains(&owner));
            let mut rev = list.clone();
            rev.reverse();
            prop_assert_eq!(dsl_owner_of(Some(k), &rev, mode), Some(owner));
            let od = k.distance_to(MacedonKey::of_node(owner, mode));
            for &n in &list {
                prop_assert!(k.distance_to(MacedonKey::of_node(n, mode)) >= od);
            }
        }
    }

    /// SHA-1 is deterministic and length-sensitive.
    #[test]
    fn sha1_deterministic(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(sha1(&data), sha1(&data));
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(sha1(&data), sha1(&extended));
    }

    /// Wire codec roundtrips arbitrary field sequences.
    #[test]
    fn wire_roundtrip(
        ints in proptest::collection::vec(any::<u64>(), 0..20),
        nodes in proptest::collection::vec(any::<u32>(), 0..20),
        blob in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut w = WireWriter::new();
        for &v in &ints { w.u64(v); }
        let node_ids: Vec<NodeId> = nodes.iter().map(|&n| NodeId(n)).collect();
        w.nodes(&node_ids);
        w.bytes(&blob);
        let mut r = WireReader::new(w.finish());
        for &v in &ints {
            prop_assert_eq!(r.u64().unwrap(), v);
        }
        prop_assert_eq!(r.nodes().unwrap(), node_ids);
        prop_assert_eq!(&r.bytes().unwrap()[..], &blob[..]);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Truncating any wire buffer yields an error, never a panic.
    #[test]
    fn wire_truncation_safe(blob in proptest::collection::vec(any::<u8>(), 0..64), cut in 0usize..64) {
        let mut w = WireWriter::new();
        w.bytes(&blob).u32(7);
        let full = w.finish();
        let cut = cut.min(full.len());
        let mut r = WireReader::new(full.slice(..cut));
        // Must not panic; may error.
        let _ = r.bytes().and_then(|_| r.u32());
    }
}
