//! Property tests on keys, SHA-1 and the wire codec.

use macedon_core::key::RING;
use macedon_core::sha1::sha1;
use macedon_core::{MacedonKey, NodeId, WireReader, WireWriter};
use proptest::prelude::*;

proptest! {
    /// Clockwise distances around the ring sum to the full circle.
    #[test]
    fn distances_sum_to_ring(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (MacedonKey(a), MacedonKey(b));
        if a != b {
            prop_assert_eq!(ka.distance_to(kb) + kb.distance_to(ka), RING);
        } else {
            prop_assert_eq!(ka.distance_to(kb), 0);
        }
    }

    /// x ∈ (a, b) iff x ∉ [b, a] going the other way (for distinct points).
    #[test]
    fn open_interval_partition(a in any::<u32>(), b in any::<u32>(), x in any::<u32>()) {
        let (ka, kb, kx) = (MacedonKey(a), MacedonKey(b), MacedonKey(x));
        prop_assume!(a != b && x != a && x != b);
        let cw = kx.in_open(ka, kb);
        let ccw = kx.in_open(kb, ka);
        prop_assert!(cw ^ ccw, "each point is on exactly one side");
    }

    /// in_open_closed contains the endpoint, in_open doesn't.
    #[test]
    fn interval_endpoints(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (MacedonKey(a), MacedonKey(b));
        prop_assume!(a != b);
        prop_assert!(kb.in_open_closed(ka, kb));
        prop_assert!(!kb.in_open(ka, kb));
        prop_assert!(!ka.in_open_closed(ka, kb));
    }

    /// Digits reassemble to the key.
    #[test]
    fn digits_reassemble(k in any::<u32>()) {
        let key = MacedonKey(k);
        let mut v = 0u32;
        for i in 0..8 {
            v = (v << 4) | key.digit(i, 4);
        }
        prop_assert_eq!(v, k);
    }

    /// shared_prefix_len is symmetric and maximal for equal keys.
    #[test]
    fn prefix_symmetry(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (MacedonKey(a), MacedonKey(b));
        prop_assert_eq!(ka.shared_prefix_len(kb, 4), kb.shared_prefix_len(ka, 4));
        prop_assert_eq!(ka.shared_prefix_len(ka, 4), 8);
    }

    /// ring_distance is a metric-ish: symmetric, zero iff equal, ≤ half.
    #[test]
    fn ring_distance_properties(a in any::<u32>(), b in any::<u32>()) {
        let (ka, kb) = (MacedonKey(a), MacedonKey(b));
        prop_assert_eq!(ka.ring_distance(kb), kb.ring_distance(ka));
        prop_assert_eq!(ka.ring_distance(kb) == 0, a == b);
        prop_assert!(ka.ring_distance(kb) <= RING / 2);
    }

    /// SHA-1 is deterministic and length-sensitive.
    #[test]
    fn sha1_deterministic(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(sha1(&data), sha1(&data));
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(sha1(&data), sha1(&extended));
    }

    /// Wire codec roundtrips arbitrary field sequences.
    #[test]
    fn wire_roundtrip(
        ints in proptest::collection::vec(any::<u64>(), 0..20),
        nodes in proptest::collection::vec(any::<u32>(), 0..20),
        blob in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut w = WireWriter::new();
        for &v in &ints { w.u64(v); }
        let node_ids: Vec<NodeId> = nodes.iter().map(|&n| NodeId(n)).collect();
        w.nodes(&node_ids);
        w.bytes(&blob);
        let mut r = WireReader::new(w.finish());
        for &v in &ints {
            prop_assert_eq!(r.u64().unwrap(), v);
        }
        prop_assert_eq!(r.nodes().unwrap(), node_ids);
        prop_assert_eq!(&r.bytes().unwrap()[..], &blob[..]);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Truncating any wire buffer yields an error, never a panic.
    #[test]
    fn wire_truncation_safe(blob in proptest::collection::vec(any::<u8>(), 0..64), cut in 0usize..64) {
        let mut w = WireWriter::new();
        w.bytes(&blob).u32(7);
        let full = w.finish();
        let cut = cut.min(full.len());
        let mut r = WireReader::new(full.slice(..cut));
        // Must not panic; may error.
        let _ = r.bytes().and_then(|_| r.u32());
    }
}
