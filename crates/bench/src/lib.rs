//! # macedon-bench
//!
//! The figure-regeneration harness: one binary per evaluation figure of
//! the paper (`fig7_loc` … `fig12_splitstream_bandwidth`), plus Criterion
//! microbenches on the substrates.
//!
//! Every binary accepts `--paper` to run at the paper's full scale
//! (20,000-router INET topologies, hundreds of overlay nodes, multi-
//! hundred-second runs); the default is a laptop-scale configuration
//! that preserves every qualitative shape. EXPERIMENTS.md records
//! paper-reported vs measured values for both.

pub mod experiments;
pub mod table;

/// Common CLI scale switch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Laptop-scale defaults (seconds of wall time).
    Quick,
    /// The paper's configuration.
    Paper,
}

impl Scale {
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}
