//! Parallel ≡ sequential equality check for the build+test CI job.
//!
//! Runs the `bench-scale` scenario shape at 1k nodes (staggered
//! full-population join, route stream, crash wave with rejoin) once on
//! the sequential engine and once per sharded configuration, and
//! asserts the full `MetricsReport` JSON *and* the rendered report are
//! byte-identical. This is the cheap tier-1 determinism tripwire; the
//! exhaustive worker/shard/seed matrix lives in `tests/prop.rs`.
//!
//! The topology keeps the run inside the equality contract
//! (ARCHITECTURE.md, "The sharded windowed engine"): spoke delays are
//! all distinct (2ms + 1µs·i) so no two shards act in the same
//! microsecond, and the links are fat enough (1 Gbps, 4 MiB queues)
//! that no queue ever holds traffic from two shards at once — the
//! regime where link charging commutes and the sharded engine is
//! exact, not approximate.
//!
//! Usage: `cargo run --release -p macedon-bench --bin par_eq`
//! (`--nodes N` overrides the population, `--shards 2,4` the matrix).

use macedon_core::WorldConfig;
use macedon_lang::SpecRegistry;
use macedon_net::topology::{LinkSpec, Topology, TopologyBuilder};
use macedon_scenario::ScenarioRunner;
use macedon_sim::Duration;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Uncontended star: distinct per-spoke delays (2ms + 1µs·i), links
/// fat enough that reservations never queue behind cross-shard
/// traffic.
fn jittered_star(nodes: usize) -> Topology {
    let mut b = TopologyBuilder::new();
    let hub = b.add_router();
    for i in 0..nodes {
        let h = b.add_host();
        b.add_link(
            h,
            hub,
            LinkSpec::new(
                Duration::from_micros(2_000 + i as u64),
                1_000_000_000,
                4 * 1024 * 1024,
            ),
        );
    }
    b.build()
}

fn run(script: &str, nodes: usize, shards: usize, workers: usize) -> (String, String) {
    let registry = SpecRegistry::bundled();
    let scenario = macedon_scenario::script::parse(script).expect("script parses");
    let cfg = WorldConfig {
        seed: 1_000,
        channels: registry
            .channel_table_for("splitstream")
            .expect("bundled chain resolves"),
        fd_g: Duration::from_secs(2),
        fd_f: Duration::from_secs(6),
        shards,
        ..Default::default()
    };
    let mut runner = ScenarioRunner::new(
        scenario,
        jittered_star(nodes),
        cfg,
        Box::new(|_idx, _host, bootstrap| {
            registry
                .build_stack("splitstream", bootstrap)
                .expect("bundled stack builds")
        }),
    )
    .expect("scenario binds");
    runner.set_workers(workers);
    let outcome = runner.run();
    (outcome.report.to_json(), outcome.report.render())
}

fn main() {
    let nodes: usize = arg_value("--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let shard_counts: Vec<usize> = arg_value("--shards")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--shards takes n,n"))
                .collect()
        })
        .unwrap_or_else(|| vec![4]);

    let script = macedon_bench::experiments::scenario_scale_script(nodes);
    let start = std::time::Instant::now();
    let want = run(&script, nodes, 1, 1);
    println!(
        "par_eq: {nodes}-node sequential reference in {:.2}s",
        start.elapsed().as_secs_f64()
    );
    for &p in &shard_counts {
        let start = std::time::Instant::now();
        let got = run(&script, nodes, p, p);
        let secs = start.elapsed().as_secs_f64();
        if got != want {
            let _ = std::fs::write("par_eq_sequential.json", &want.0);
            let _ = std::fs::write(format!("par_eq_{p}shard.json"), &got.0);
            panic!(
                "{p}-shard run diverged from the sequential engine \
                 (reports dumped to par_eq_*.json)"
            );
        }
        println!("par_eq: {p} shards byte-identical to sequential ({secs:.2}s)");
    }
    println!("par_eq: OK");
}
