//! Figure 7 — lines of code of the eight algorithm specifications.
use macedon_bench::experiments::fig7;
use macedon_bench::table::{maybe_write_csv, print_table};

fn main() {
    let rows = fig7();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.loc.to_string(),
                r.semicolons.to_string(),
                r.generated_loc.to_string(),
                r.paper_loc.to_string(),
                format!(
                    "yes ({} layer{})",
                    r.layers,
                    if r.layers > 1 { "s" } else { "" }
                ),
            ]
        })
        .collect();
    let headers = [
        "protocol",
        "spec LoC",
        "semicolons",
        "generated LoC",
        "paper LoC",
        "interpretable",
    ];
    print_table(
        "Figure 7: specification size (this repo vs paper-reported)",
        &headers,
        &cells,
    );
    maybe_write_csv(&headers, &cells);
    println!("\nNote: our specs are deliberately unpadded; the paper's shape");
    println!("(layered protocols smallest, NICE/AMMO largest) is what matters.");
    println!("Every spec in the roster runs under the interpreter — layered");
    println!("ones (scribe, splitstream, bullet) as multi-layer stacks.");
}
