//! Figure 7 — lines of code of the eight algorithm specifications.
use macedon_bench::experiments::fig7;
use macedon_bench::table::{maybe_write_csv, print_table};

fn main() {
    let rows = fig7();
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.loc.to_string(),
                r.semicolons.to_string(),
                r.generated_loc.to_string(),
                r.paper_loc.to_string(),
                format!(
                    "yes ({} layer{})",
                    r.layers,
                    if r.layers > 1 { "s" } else { "" }
                ),
            ]
        })
        .collect();
    let headers = [
        "protocol",
        "spec LoC",
        "semicolons",
        "generated LoC",
        "paper LoC",
        "interpretable",
    ];
    print_table(
        "Figure 7: specification size (this repo vs paper-reported)",
        &headers,
        &cells,
    );
    maybe_write_csv(&headers, &cells);
    println!("\nNote: our specs are deliberately unpadded; the paper's shape");
    println!("(layered protocols smallest, NICE/AMMO largest) is what matters.");
    println!("Every spec in the roster runs under the interpreter — layered");
    println!("ones (scribe, splitstream, bullet) as multi-layer stacks.");
    println!("\n'generated LoC' counts the full compilable agent the translator");
    println!("emits (checked in under crates/generated and cross-validated");
    println!("against the interpreter on seeded runs) — the paper's 'over 2500");
    println!(
        "lines' of generated C++ compares to ~{} lines of generated Rust",
        rows.iter().map(|r| r.generated_loc).max().unwrap_or(0)
    );
    println!("for the largest spec; Rust against this engine is denser than");
    println!("C++ against the paper's, but the ~4-6x spec-to-code expansion");
    println!("the translator buys is the same.");
}
