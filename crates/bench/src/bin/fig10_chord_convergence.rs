//! Figure 10 — Chord routing-table convergence: MACEDON static timers
//! (1 s, 20 s) vs the MIT lsd dynamic-timer model.
use macedon_bench::experiments::fig10;
use macedon_bench::table::{f1, maybe_write_csv, print_table};
use macedon_bench::Scale;

fn main() {
    let s = fig10(Scale::from_args());
    let cells: Vec<Vec<String>> = s
        .macedon_1s
        .iter()
        .zip(&s.lsd)
        .zip(&s.macedon_20s)
        .map(|((a, b), c)| vec![format!("{:.0}", a.0), f1(a.1), f1(b.1), f1(c.1)])
        .collect();
    print_table(
        "Figure 10: avg correct finger-table entries over time",
        &["t(s)", "MACEDON 1s", "MIT lsd", "MACEDON 20s"],
        &cells,
    );
    maybe_write_csv(&["t(s)", "MACEDON 1s", "MIT lsd", "MACEDON 20s"], &cells);
    let last = cells.last().cloned().unwrap_or_default();
    println!(
        "\nFinal: 1s={} lsd={} 20s={} (expected order: 1s >= lsd >= 20s)",
        last.get(1).cloned().unwrap_or_default(),
        last.get(2).cloned().unwrap_or_default(),
        last.get(3).cloned().unwrap_or_default()
    );
}
