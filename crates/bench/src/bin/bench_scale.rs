//! Scheduler scaling curve + event-efficiency gate.
//!
//! Two measurements, written together to `BENCH_scale.json`:
//!
//! 1. **Efficiency** — the seeded 200-node splitstream churn run
//!    (the same run `bench_scenario` times), reported as *scheduler
//!    events fired per delivered application packet*. The growth seed
//!    measured 32.33 events/delivered on this exact run (752044 events,
//!    23260 deliveries); the event-machinery rework (fused one-event
//!    packet transit, timer wheel, adaptive delayed acks) must hold at
//!    least a 3x reduction, i.e. <= 10.78. The run aborts if it slips.
//!
//! 2. **Scaling curve** — one seeded run of the `bench-scale` scenario
//!    (staggered full-population join, random-route stream, crash wave)
//!    at 1k/10k/100k nodes, reporting events fired, events/sec, and
//!    wall time. The stream is `route`-shaped so deliveries stay O(1)
//!    in node count and the curve isolates scheduler cost. The 10k run
//!    must finish under a generous wall-time ceiling (60 s) — a
//!    regression tripwire, not a tight bound.
//!
//! All runs are seeded and deterministic; wall time for the efficiency
//! run is the minimum of three executions.
//!
//! Usage: `cargo run --release -p macedon-bench --bin bench_scale`
//! (`--sizes 1000,10000,100000` overrides the curve, `--out PATH` the
//! output file).

use macedon_bench::experiments::{scenario_churn_run, scenario_scale_run};
use std::time::Instant;

/// Seed-measured efficiency on the 200-node churn run, fixed at the
/// growth seed (752044 events / 23260 deliveries).
const BASELINE_EVENTS_PER_DELIVERED: f64 = 32.33;
/// Required improvement over the seed.
const REQUIRED_REDUCTION: f64 = 3.0;
/// Generous ceiling for the 10k-node curve point, seconds.
const CEILING_10K_SECS: f64 = 60.0;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let sizes: Vec<usize> = arg_value("--sizes")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--sizes takes n,n,n"))
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 10_000, 100_000]);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_scale.json".to_string());

    // -- efficiency: events per delivered packet on the churn run -----------
    let mut wall_ms = f64::INFINITY;
    let mut stats = scenario_churn_run(200);
    for _ in 0..2 {
        let start = Instant::now();
        stats = scenario_churn_run(200);
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let epd = stats.events_per_delivered();
    let reduction = BASELINE_EVENTS_PER_DELIVERED / epd;
    let b = &stats.breakdown;
    println!(
        "efficiency: 200-node churn, {} events / {} delivered = {epd:.2} events/delivered \
         ({reduction:.2}x vs seed {BASELINE_EVENTS_PER_DELIVERED})",
        stats.events, stats.delivered
    );
    println!(
        "  breakdown: net {} | conn timers {} | agent timers {} | fd ticks {} | control {}",
        b.net, b.conn_timer, b.agent_timer, b.fd_tick, b.control
    );
    assert!(stats.delivered > 0, "churn run must deliver real traffic");
    assert!(
        reduction >= REQUIRED_REDUCTION,
        "events/delivered regressed: {epd:.2} needs >= {REQUIRED_REDUCTION}x \
         under the seed's {BASELINE_EVENTS_PER_DELIVERED}"
    );

    // -- scaling curve: events/sec at each population -----------------------
    let mut curve = Vec::new();
    for &n in &sizes {
        let start = Instant::now();
        let s = scenario_scale_run(n);
        let secs = start.elapsed().as_secs_f64();
        let eps = s.events as f64 / secs;
        println!(
            "scale: {n} nodes, {} events, {} delivered, {} alive, \
             {secs:.2} s wall, {eps:.0} events/sec",
            s.events, s.delivered, s.alive
        );
        assert!(s.delivered > 0, "{n}-node scale run must deliver traffic");
        if n == 10_000 {
            assert!(
                secs < CEILING_10K_SECS,
                "10k-node run took {secs:.1} s, ceiling is {CEILING_10K_SECS} s"
            );
        }
        curve.push(format!(
            "    {{ \"nodes\": {n}, \"events\": {}, \"delivered\": {}, \"alive\": {}, \
             \"wall_secs\": {secs:.2}, \"events_per_sec\": {eps:.0} }}",
            s.events, s.delivered, s.alive
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"efficiency\": {{\n    \"nodes\": 200, \
         \"events\": {}, \"delivered\": {}, \"events_per_delivered\": {epd:.2},\n    \
         \"baseline_events_per_delivered\": {BASELINE_EVENTS_PER_DELIVERED}, \
         \"reduction\": {reduction:.2}, \"wall_ms\": {wall_ms:.0},\n    \
         \"breakdown\": {{ \"net\": {}, \"conn_timer\": {}, \"agent_timer\": {}, \
         \"fd_tick\": {}, \"control\": {} }}\n  }},\n  \"curve\": [\n{}\n  ]\n}}\n",
        stats.events,
        stats.delivered,
        b.net,
        b.conn_timer,
        b.agent_timer,
        b.fd_tick,
        b.control,
        curve.join(",\n"),
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(wrote {out})"),
        Err(e) => eprintln!("{out}: {e}"),
    }
}
