//! Scheduler scaling curve + event-efficiency gate + threads axis.
//!
//! Three measurements, written together to `BENCH_scale.json`:
//!
//! 1. **Efficiency** — the seeded 200-node splitstream churn run
//!    (the same run `bench_scenario` times), reported as *scheduler
//!    events fired per delivered application packet*. The growth seed
//!    measured 32.33 events/delivered on this exact run (752044 events,
//!    23260 deliveries); the event-machinery rework (fused one-event
//!    packet transit, timer wheel, adaptive delayed acks) must hold at
//!    least a 3x reduction, i.e. <= 10.78. The run aborts if it slips.
//!
//! 2. **Scaling curve** — one seeded run of the `bench-scale` scenario
//!    (staggered full-population join, random-route stream, crash wave)
//!    at 1k/10k/100k nodes, reporting events fired, events/sec, and
//!    wall time. The stream is `route`-shaped so deliveries stay O(1)
//!    in node count and the curve isolates scheduler cost. The 10k run
//!    must finish under a generous wall-time ceiling (60 s) — a
//!    regression tripwire, not a tight bound.
//!
//!    The curve previously dipped at 100k nodes (81k -> 50k events/sec
//!    from 10k to 100k): per-event node-state lookups went through six
//!    global `FxHashMap<NodeId, _>` tables whose working set fell out
//!    of cache once the population outgrew it. The sharded engine
//!    stores node state in one dense `Vec<Option<Box<NodeState>>>` per
//!    shard, indexed by node id, which removes the hash walks from the
//!    hot path; the JSON carries the measured 100k/10k ratio so the
//!    artifact history tracks the dip directly.
//!
//! 3. **Threads axis** — the 10k-node curve point re-run on the
//!    sharded windowed engine at 1/2/4/8 workers (`shards == workers`),
//!    reporting wall time, events/sec and speedup over the 1-worker
//!    run. The >= 3x speedup gate at 8 workers only arms when the host
//!    actually has >= 8 cores (`std::thread::available_parallelism`);
//!    on smaller hosts the axis is still measured and recorded, so CI
//!    on any box produces the artifact, but a single-core container
//!    cannot fail a physically impossible assertion.
//!
//! All runs are seeded and deterministic; wall time for the efficiency
//! run is the minimum of three executions.
//!
//! Usage: `cargo run --release -p macedon-bench --bin bench_scale`
//! (`--sizes 1000,10000,100000` overrides the curve, `--threads 1,2,4,8`
//! the worker axis — `--threads 0` skips it, `--out PATH` the output
//! file).

use macedon_bench::experiments::{
    scenario_churn_run, scenario_scale_run, scenario_scale_run_workers,
};
use std::time::Instant;

/// Seed-measured efficiency on the 200-node churn run, fixed at the
/// growth seed (752044 events / 23260 deliveries).
const BASELINE_EVENTS_PER_DELIVERED: f64 = 32.33;
/// Required improvement over the seed.
const REQUIRED_REDUCTION: f64 = 3.0;
/// Generous ceiling for the 10k-node curve point, seconds.
const CEILING_10K_SECS: f64 = 60.0;
/// Required parallel speedup at 8 workers — armed only on >= 8 cores.
const REQUIRED_SPEEDUP_8W: f64 = 3.0;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let sizes: Vec<usize> = arg_value("--sizes")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--sizes takes n,n,n"))
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 10_000, 100_000]);
    let threads: Vec<usize> = arg_value("--threads")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--threads takes n,n,n"))
                .filter(|&n| n > 0)
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_scale.json".to_string());

    // -- efficiency: events per delivered packet on the churn run -----------
    let mut wall_ms = f64::INFINITY;
    let mut stats = scenario_churn_run(200);
    for _ in 0..2 {
        let start = Instant::now();
        stats = scenario_churn_run(200);
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let epd = stats.events_per_delivered();
    let reduction = BASELINE_EVENTS_PER_DELIVERED / epd;
    let b = &stats.breakdown;
    println!(
        "efficiency: 200-node churn, {} events / {} delivered = {epd:.2} events/delivered \
         ({reduction:.2}x vs seed {BASELINE_EVENTS_PER_DELIVERED})",
        stats.events, stats.delivered
    );
    println!(
        "  breakdown: net {} | conn timers {} | agent timers {} | fd ticks {} | control {}",
        b.net, b.conn_timer, b.agent_timer, b.fd_tick, b.control
    );
    assert!(stats.delivered > 0, "churn run must deliver real traffic");
    assert!(
        reduction >= REQUIRED_REDUCTION,
        "events/delivered regressed: {epd:.2} needs >= {REQUIRED_REDUCTION}x \
         under the seed's {BASELINE_EVENTS_PER_DELIVERED}"
    );

    // -- scaling curve: events/sec at each population -----------------------
    let mut curve = Vec::new();
    let mut eps_by_nodes: Vec<(usize, f64)> = Vec::new();
    for &n in &sizes {
        let start = Instant::now();
        let s = scenario_scale_run(n);
        let secs = start.elapsed().as_secs_f64();
        let eps = s.events as f64 / secs;
        println!(
            "scale: {n} nodes, {} events, {} delivered, {} alive, \
             {secs:.2} s wall, {eps:.0} events/sec",
            s.events, s.delivered, s.alive
        );
        assert!(s.delivered > 0, "{n}-node scale run must deliver traffic");
        if n == 10_000 {
            assert!(
                secs < CEILING_10K_SECS,
                "10k-node run took {secs:.1} s, ceiling is {CEILING_10K_SECS} s"
            );
        }
        eps_by_nodes.push((n, eps));
        curve.push(format!(
            "    {{ \"nodes\": {n}, \"events\": {}, \"delivered\": {}, \"alive\": {}, \
             \"wall_secs\": {secs:.2}, \"events_per_sec\": {eps:.0} }}",
            s.events, s.delivered, s.alive
        ));
    }
    // The dip tracker: events/sec at 100k over events/sec at 10k. Flat
    // scheduler cost keeps this near 1.0; the pre-dense-state engine
    // measured 0.61 here.
    let eps_at = |n: usize| eps_by_nodes.iter().find(|&&(m, _)| m == n).map(|&(_, e)| e);
    let dip_ratio = match (eps_at(100_000), eps_at(10_000)) {
        (Some(big), Some(mid)) if mid > 0.0 => Some(big / mid),
        _ => None,
    };
    if let Some(r) = dip_ratio {
        println!("scale: 100k/10k events-per-sec ratio {r:.2} (seed engine: 0.61)");
    }

    // -- threads axis: the 10k point on the sharded windowed engine ---------
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut thread_rows = Vec::new();
    let mut eps_1w = None;
    let mut speedup_max_workers = None;
    for &w in &threads {
        let start = Instant::now();
        let s = scenario_scale_run_workers(10_000, w);
        let secs = start.elapsed().as_secs_f64();
        let eps = s.events as f64 / secs;
        if w == 1 {
            eps_1w = Some(eps);
        }
        let speedup = eps_1w.map(|base| eps / base).unwrap_or(1.0);
        speedup_max_workers = Some((w, speedup));
        println!(
            "threads: 10000 nodes, {w} worker(s), {} events, {secs:.2} s wall, \
             {eps:.0} events/sec, {speedup:.2}x vs 1 worker",
            s.events
        );
        assert!(
            s.delivered > 0,
            "10k-node threaded run must deliver traffic"
        );
        thread_rows.push(format!(
            "    {{ \"workers\": {w}, \"events\": {}, \"wall_secs\": {secs:.2}, \
             \"events_per_sec\": {eps:.0}, \"speedup\": {speedup:.2} }}",
            s.events
        ));
    }
    let gate_armed = cores >= 8 && threads.contains(&8);
    if gate_armed {
        let (w, speedup) = speedup_max_workers.expect("threads axis ran");
        assert!(
            w == 8 && speedup >= REQUIRED_SPEEDUP_8W,
            "parallel speedup regressed: {speedup:.2}x at {w} workers, \
             gate requires >= {REQUIRED_SPEEDUP_8W}x at 8 workers"
        );
    } else if !threads.is_empty() {
        println!(
            "threads: speedup gate not armed ({cores} core(s) available, \
             needs >= 8) — axis recorded for the artifact history only"
        );
    }

    let dip_json = dip_ratio
        .map(|r| format!("{r:.2}"))
        .unwrap_or_else(|| "null".to_string());
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"efficiency\": {{\n    \"nodes\": 200, \
         \"events\": {}, \"delivered\": {}, \"events_per_delivered\": {epd:.2},\n    \
         \"baseline_events_per_delivered\": {BASELINE_EVENTS_PER_DELIVERED}, \
         \"reduction\": {reduction:.2}, \"wall_ms\": {wall_ms:.0},\n    \
         \"breakdown\": {{ \"net\": {}, \"conn_timer\": {}, \"agent_timer\": {}, \
         \"fd_tick\": {}, \"control\": {} }},\n    \
         \"dip_note\": \"100k dip was six global FxHashMap node-state tables \
         falling out of cache; dense per-shard Vec node state removed the hash \
         walks (seed ratio 0.61)\"\n  }},\n  \"curve\": [\n{}\n  ],\n  \
         \"eps_ratio_100k_over_10k\": {dip_json},\n  \"threads\": [\n{}\n  ],\n  \
         \"parallel_gate\": {{ \"armed\": {gate_armed}, \"cores\": {cores}, \
         \"required_speedup_at_8\": {REQUIRED_SPEEDUP_8W} }}\n}}\n",
        stats.events,
        stats.delivered,
        b.net,
        b.conn_timer,
        b.agent_timer,
        b.fd_tick,
        b.control,
        curve.join(",\n"),
        thread_rows.join(",\n"),
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(wrote {out})"),
        Err(e) => eprintln!("{out}: {e}"),
    }
}
