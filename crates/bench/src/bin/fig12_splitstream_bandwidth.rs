//! Figure 12 — SplitStream per-node bandwidth over time for two Pastry
//! location-cache policies (no eviction vs 1 s lifetime). With
//! `--from-spec`, the same streaming scenario additionally runs over
//! the fully interpreted `splitstream.mac` → `scribe.mac` →
//! `pastry.mac` stack. `--workers N` runs both policy worlds sharded
//! N ways on the windowed parallel engine and reports events/sec.
//!
//! Observability (both imply `--from-spec`): `--trace-out trace.json`
//! writes the from-spec run's causal trace as Chrome/Perfetto trace
//! events (open at <https://ui.perfetto.dev>); `--sample-every 500`
//! samples engine counters every 500 sim-ms and writes them as JSONL
//! (`--telemetry-out`, default `fig12_telemetry.jsonl`).
use macedon_bench::experiments::{fig12_from_spec_observed, fig12_workers};
use macedon_bench::table::{f1, maybe_write_csv, print_table};
use macedon_bench::Scale;
use macedon_core::Duration;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let scale = Scale::from_args();
    let workers: usize = arg_value("--workers")
        .map(|v| v.parse().expect("--workers takes a count"))
        .unwrap_or(1);
    let trace_out = arg_value("--trace-out");
    let sample_every_ms: Option<u64> =
        arg_value("--sample-every").map(|v| v.parse().expect("--sample-every takes milliseconds"));
    let start = std::time::Instant::now();
    let s = fig12_workers(scale, workers);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "fig12: {} events in {secs:.2}s wall on {workers} worker(s) ({:.0} events/sec)",
        s.events,
        s.events as f64 / secs
    );
    let cells: Vec<Vec<String>> = s
        .no_eviction
        .iter()
        .zip(&s.with_eviction)
        .map(|(a, b)| vec![format!("{:.0}", a.0), f1(a.1), f1(b.1)])
        .collect();
    print_table(
        "Figure 12: mean per-node goodput (Kbps) after convergence",
        &["t(s)", "no eviction", "1s lifetime"],
        &cells,
    );
    maybe_write_csv(&["t(s)", "no eviction", "1s lifetime"], &cells);
    let avg = |v: &[(f64, f64)]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "\nRun means: no-eviction={:.0} Kbps, 1s-lifetime={:.0} Kbps (paper: ~580 vs ~500)",
        avg(&s.no_eviction),
        avg(&s.with_eviction)
    );

    let from_spec = std::env::args().any(|a| a == "--from-spec")
        || trace_out.is_some()
        || sample_every_ms.is_some();
    if from_spec {
        let obs = fig12_from_spec_observed(
            scale,
            trace_out.is_some(),
            sample_every_ms.map(Duration::from_millis),
        );
        let cells: Vec<Vec<String>> = obs
            .series
            .iter()
            .map(|(t, kbps)| vec![format!("{t:.0}"), f1(*kbps)])
            .collect();
        print_table(
            "From-spec mode: interpreted splitstream/scribe/pastry stack",
            &["t(s)", "goodput (Kbps)"],
            &cells,
        );
        println!(
            "\nFrom-spec run mean: {:.0} Kbps (flooding dissemination; see scribe.mac)",
            avg(&obs.series)
        );
        if let (Some(path), Some(json)) = (&trace_out, &obs.perfetto) {
            std::fs::write(path, json).expect("write perfetto trace");
            println!("wrote {path} (open it at https://ui.perfetto.dev)");
        }
        if let Some(t) = &obs.telemetry {
            let path =
                arg_value("--telemetry-out").unwrap_or_else(|| "fig12_telemetry.jsonl".into());
            std::fs::write(&path, t.to_jsonl()).expect("write telemetry jsonl");
            println!("wrote {path} ({} samples)", t.samples.len());
        }
    }
}
