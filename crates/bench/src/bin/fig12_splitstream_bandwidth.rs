//! Figure 12 — SplitStream per-node bandwidth over time for two Pastry
//! location-cache policies (no eviction vs 1 s lifetime). With
//! `--from-spec`, the same streaming scenario additionally runs over
//! the fully interpreted `splitstream.mac` → `scribe.mac` →
//! `pastry.mac` stack. `--workers N` runs both policy worlds sharded
//! N ways on the windowed parallel engine and reports events/sec.
use macedon_bench::experiments::{fig12_from_spec, fig12_workers};
use macedon_bench::table::{f1, maybe_write_csv, print_table};
use macedon_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let workers: usize = {
        let mut args = std::env::args();
        let mut w = 1;
        while let Some(a) = args.next() {
            if a == "--workers" {
                w = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers takes a count");
            }
        }
        w
    };
    let start = std::time::Instant::now();
    let s = fig12_workers(scale, workers);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "fig12: {} events in {secs:.2}s wall on {workers} worker(s) ({:.0} events/sec)",
        s.events,
        s.events as f64 / secs
    );
    let cells: Vec<Vec<String>> = s
        .no_eviction
        .iter()
        .zip(&s.with_eviction)
        .map(|(a, b)| vec![format!("{:.0}", a.0), f1(a.1), f1(b.1)])
        .collect();
    print_table(
        "Figure 12: mean per-node goodput (Kbps) after convergence",
        &["t(s)", "no eviction", "1s lifetime"],
        &cells,
    );
    maybe_write_csv(&["t(s)", "no eviction", "1s lifetime"], &cells);
    let avg = |v: &[(f64, f64)]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "\nRun means: no-eviction={:.0} Kbps, 1s-lifetime={:.0} Kbps (paper: ~580 vs ~500)",
        avg(&s.no_eviction),
        avg(&s.with_eviction)
    );

    if std::env::args().any(|a| a == "--from-spec") {
        let spec = fig12_from_spec(scale);
        let cells: Vec<Vec<String>> = spec
            .iter()
            .map(|(t, kbps)| vec![format!("{t:.0}"), f1(*kbps)])
            .collect();
        print_table(
            "From-spec mode: interpreted splitstream/scribe/pastry stack",
            &["t(s)", "goodput (Kbps)"],
            &cells,
        );
        println!(
            "\nFrom-spec run mean: {:.0} Kbps (flooding dissemination; see scribe.mac)",
            avg(&spec)
        );
    }
}
