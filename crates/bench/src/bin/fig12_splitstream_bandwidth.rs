//! Figure 12 — SplitStream per-node bandwidth over time for two Pastry
//! location-cache policies (no eviction vs 1 s lifetime).
use macedon_bench::experiments::fig12;
use macedon_bench::table::{f1, maybe_write_csv, print_table};
use macedon_bench::Scale;

fn main() {
    let s = fig12(Scale::from_args());
    let cells: Vec<Vec<String>> = s
        .no_eviction
        .iter()
        .zip(&s.with_eviction)
        .map(|(a, b)| vec![format!("{:.0}", a.0), f1(a.1), f1(b.1)])
        .collect();
    print_table(
        "Figure 12: mean per-node goodput (Kbps) after convergence",
        &["t(s)", "no eviction", "1s lifetime"],
        &cells,
    );
    maybe_write_csv(&["t(s)", "no eviction", "1s lifetime"], &cells);
    let avg = |v: &[(f64, f64)]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64
        }
    };
    println!(
        "\nRun means: no-eviction={:.0} Kbps, 1s-lifetime={:.0} Kbps (paper: ~580 vs ~500)",
        avg(&s.no_eviction),
        avg(&s.with_eviction)
    );
}
