//! Regenerate `crates/generated` from the bundled `.mac` specifications.
//!
//! ```sh
//! cargo run -p macedon-bench --bin regen
//! ```
//!
//! Rerun after editing any bundled spec or the code generator. CI reruns
//! this tool and fails on `git diff --exit-code crates/generated`, so the
//! checked-in agents can never drift from the specs (and hand edits to
//! generated files cannot merge). Output is byte-deterministic; the
//! generated files carry `#![rustfmt::skip]` so formatter drift cannot
//! perturb the freshness gate.

use std::fs;
use std::path::Path;
use std::process::exit;

fn main() {
    let out_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../generated/src");
    let files = match macedon_lang::codegen::generate_bundled_crate() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("regen: {e}");
            exit(1);
        }
    };
    fs::create_dir_all(&out_dir).unwrap_or_else(|e| panic!("create {}: {e}", out_dir.display()));
    // Drop stale modules left over from renamed or removed specs.
    let keep: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
    if let Ok(entries) = fs::read_dir(&out_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".rs") && !keep.contains(&name.as_str()) {
                println!("{name}  (stale, removed)");
                let _ = fs::remove_file(entry.path());
            }
        }
    }
    let mut total = 0usize;
    for (name, contents) in &files {
        let path = out_dir.join(name);
        let up_to_date = fs::read_to_string(&path)
            .map(|c| &c == contents)
            .unwrap_or(false);
        if !up_to_date {
            fs::write(&path, contents).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        }
        total += contents.lines().count();
        println!(
            "{name}  {} lines{}",
            contents.lines().count(),
            if up_to_date { "" } else { "  (updated)" }
        );
    }
    println!(
        "regenerated {} files, {total} lines -> {}",
        files.len(),
        out_dir.display()
    );
}
