//! Figure 9 — NICE per-site end-to-end latency (same run as Figure 8).
use macedon_bench::experiments::fig8_9;
use macedon_bench::table::{f1, maybe_write_csv, print_table};
use macedon_bench::Scale;

fn main() {
    let rows = fig8_9(Scale::from_args());
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.site.to_string(),
                f1(r.mean_latency_ms),
                f1(r.paper_latency_ms),
            ]
        })
        .collect();
    print_table(
        "Figure 9: NICE mean end-to-end latency per site (ms; measured vs NICE SIGCOMM)",
        &["site", "latency_ms", "paper_ms"],
        &cells,
    );
    maybe_write_csv(&["site", "latency_ms", "paper_ms"], &cells);
}
