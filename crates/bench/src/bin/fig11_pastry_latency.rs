//! Figure 11 — average latency of Pastry packets: MACEDON vs the
//! FreePastry RMI model (which cannot host more than ~100 nodes).
use macedon_bench::experiments::fig11;
use macedon_bench::table::{maybe_write_csv, print_table};
use macedon_bench::Scale;

fn main() {
    let rows = fig11(Scale::from_args());
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nodes.to_string(),
                format!("{:.4}", r.macedon_s),
                r.freepastry_s
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_else(|| "OOM".to_string()),
            ]
        })
        .collect();
    print_table(
        "Figure 11: average packet latency (s) vs node count",
        &["nodes", "MACEDON", "FreePastry"],
        &cells,
    );
    maybe_write_csv(&["nodes", "MACEDON", "FreePastry"], &cells);
    println!("\n'OOM' marks configurations beyond the modelled JVM memory cap,");
    println!("matching the paper's inability to run FreePastry past 100 nodes.");
}
