//! Interpreter performance trajectory: measures the spec-interpreter's
//! per-event dispatch cost (messages + timers through a compiled spec)
//! and the wall-clock of a seeded 200-node from-spec splitstream run,
//! then writes both to `BENCH_interp.json` so CI accumulates one data
//! point per PR.
//!
//! The macro run is reported as the minimum of three executions — the
//! run is deterministic (same seed, same event sequence every time), so
//! the minimum is the least-noise estimate of its true cost.
//!
//! Usage: `cargo run --release -p macedon-bench --bin bench_interp`
//! (`--nodes N` overrides the macro-run size, `--out PATH` the output
//! file).

use macedon_bench::experiments::{dispatch_frames, dispatch_stack, interp_macro_run};
use macedon_core::{SpanId, Time, TraceLevel};
use std::time::Instant;

/// Pre-IR baseline: the AST-walking interpreter at commit 563bfbb with
/// the same harness (same spec, frames, and schedule), measured
/// interleaved with the IR build on the same machine. Kept in the
/// output so every future data point carries its origin.
const BASELINE_DISPATCH_NS: f64 = 411.3;
const BASELINE_MACRO_MS: f64 = 807.0;

/// Self-asserted regression ceilings (the `bench_scale` pattern: the
/// bin aborts, so CI fails on a perf regression instead of silently
/// flattening the artifact curve). Committed `BENCH_interp.json`
/// measured 186.4 ns/event and 566 ms; the ceilings leave ~2x headroom
/// for runner noise while staying below the pre-IR baselines above.
const CEILING_DISPATCH_NS: f64 = 350.0;
const CEILING_MACRO_MS: f64 = 1_500.0;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let nodes: usize = arg_value("--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_interp.json".to_string());

    // -- micro: per-event dispatch through a compiled spec ------------------
    let frames = dispatch_frames();
    // Three configurations share one harness: the production default
    // (trace Off, observability machinery present), the machinery
    // hard-disabled, and trace High with effects discarded.
    let mut stack = dispatch_stack();
    let mut stack_disabled = dispatch_stack();
    stack_disabled.set_observability(false);
    let mut stack_traced = dispatch_stack();
    stack_traced.set_trace_level(TraceLevel::High);
    let mut fx = Vec::new();
    // Warm up, then time ROUNDS passes of 3 recvs + 1 timer each.
    const ROUNDS: u64 = 200_000;
    let pass = |stack: &mut macedon_core::Stack, fx: &mut Vec<_>| {
        for (from, frame) in &frames {
            stack.recv(Time::ZERO, *from, frame.clone(), SpanId::NONE, fx);
        }
        stack.timer(Time::ZERO, 0, 0, fx);
        fx.clear();
    };
    for _ in 0..1_000 {
        pass(&mut stack, &mut fx);
        pass(&mut stack_disabled, &mut fx);
        pass(&mut stack_traced, &mut fx);
    }
    let events = ROUNDS * (frames.len() as u64 + 1);
    let mut dispatch_ns = f64::INFINITY;
    let mut disabled_ns = f64::INFINITY;
    let mut traced_ns = f64::INFINITY;
    // Interleave the A/B/C timings so drift (thermal, scheduler) hits
    // all three configurations alike.
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..ROUNDS {
            pass(&mut stack, &mut fx);
        }
        dispatch_ns = dispatch_ns.min(start.elapsed().as_nanos() as f64 / events as f64);
        let start = Instant::now();
        for _ in 0..ROUNDS {
            pass(&mut stack_disabled, &mut fx);
        }
        disabled_ns = disabled_ns.min(start.elapsed().as_nanos() as f64 / events as f64);
        let start = Instant::now();
        for _ in 0..ROUNDS {
            pass(&mut stack_traced, &mut fx);
        }
        traced_ns = traced_ns.min(start.elapsed().as_nanos() as f64 / events as f64);
    }
    let overhead_pct = (dispatch_ns / disabled_ns - 1.0) * 100.0;
    println!("dispatch: {events} events, {dispatch_ns:.1} ns/event (min of 3)");
    println!(
        "tracing:  off {dispatch_ns:.1} vs disabled {disabled_ns:.1} ns/event \
         ({overhead_pct:+.2}%), traced-High {traced_ns:.1} ns/event"
    );
    assert!(
        dispatch_ns < CEILING_DISPATCH_NS,
        "interpreter dispatch regressed: {dispatch_ns:.1} ns/event, \
         ceiling is {CEILING_DISPATCH_NS} ns (committed baseline 186.4)"
    );
    assert!(
        dispatch_ns <= disabled_ns * 1.02,
        "tracing-off dispatch overhead above 2%: off {dispatch_ns:.1} vs \
         machinery-disabled {disabled_ns:.1} ns/event ({overhead_pct:+.2}%)"
    );

    // -- macro: seeded from-spec splitstream world ---------------------------
    let mut macro_ms = f64::INFINITY;
    let mut delivered = 0;
    let mut transitions = 0;
    for _ in 0..3 {
        let start = Instant::now();
        let (d, t) = interp_macro_run(nodes, 30, 30);
        macro_ms = macro_ms.min(start.elapsed().as_secs_f64() * 1e3);
        (delivered, transitions) = (d, t);
    }
    println!(
        "macro: {nodes}-node from-spec splitstream, {delivered} deliveries, \
         {transitions} transitions, {macro_ms:.0} ms wall (min of 3)"
    );
    assert!(delivered > 0, "macro run must do real work");
    if nodes == 200 {
        assert!(
            macro_ms < CEILING_MACRO_MS,
            "macro splitstream run regressed: {macro_ms:.0} ms, \
             ceiling is {CEILING_MACRO_MS} ms (committed baseline 566)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"interp\",\n  \"dispatch\": {{ \"events\": {events}, \
         \"ns_per_event\": {dispatch_ns:.1}, \
         \"ns_per_event_tracing_disabled\": {disabled_ns:.1}, \
         \"ns_per_event_traced_high\": {traced_ns:.1}, \
         \"tracing_off_overhead_pct\": {overhead_pct:.2} }},\n  \"macro_splitstream\": {{ \
         \"nodes\": {nodes}, \"sim_seconds\": 70, \"deliveries\": {delivered}, \
         \"transitions\": {transitions}, \"wall_ms\": {macro_ms:.0} }},\n  \
         \"baseline_pre_ir\": {{ \"ns_per_event\": {BASELINE_DISPATCH_NS:.1}, \
         \"wall_ms\": {BASELINE_MACRO_MS:.0} }}\n}}\n"
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(wrote {out})"),
        Err(e) => eprintln!("{out}: {e}"),
    }
}
