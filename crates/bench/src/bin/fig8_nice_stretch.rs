//! Figure 8 — NICE per-site stretch (64 members, 8 sites).
use macedon_bench::experiments::fig8_9;
use macedon_bench::table::{f2, maybe_write_csv, print_table};
use macedon_bench::Scale;

fn main() {
    let rows = fig8_9(Scale::from_args());
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.site.to_string(), f2(r.mean_stretch), f2(r.paper_stretch)])
        .collect();
    print_table(
        "Figure 8: NICE mean stretch per site (measured vs NICE SIGCOMM)",
        &["site", "stretch", "paper"],
        &cells,
    );
    maybe_write_csv(&["site", "stretch", "paper"], &cells);
}
