//! Parallel sweep benchmark + determinism gate.
//!
//! Runs the churn-loss sweep (seeds × {50,100,200} nodes × loss grid,
//! 18 cells by default) **twice** on the full worker pool and asserts
//! the two `SweepReport`s are byte-identical in both JSON and CSV —
//! the merge-in-cell-order determinism contract, self-asserted on
//! every CI run, under real thread interleaving. Wall time and
//! cell throughput go to `BENCH_sweep.json` for the perf trajectory;
//! the report content itself is deterministic, so only timing varies
//! between runs.
//!
//! Usage: `cargo run --release -p macedon-bench --bin bench_sweep`
//! (`--seeds 1,2,3`, `--nodes 50,100,200`, `--loss 0,0.02`,
//! `--workers N`, `--out PATH` override the defaults).

use macedon_bench::experiments::{sweep_churn_cell, sweep_churn_spec};
use macedon_scenario::run_sweep;
use std::time::Instant;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn list_u64(name: &str, default: &[u64]) -> Vec<u64> {
    arg_value(name)
        .map(|v| {
            v.split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("{name} takes n,n,n"))
                })
                .collect()
        })
        .unwrap_or_else(|| default.to_vec())
}

fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn main() {
    let seeds = list_u64("--seeds", &[101, 202, 303]);
    let node_counts: Vec<usize> = list_u64("--nodes", &[50, 100, 200])
        .into_iter()
        .map(|n| n as usize)
        .collect();
    let loss_arg = arg_value("--loss").unwrap_or_else(|| "0,0.02".to_string());
    let losses: Vec<&str> = loss_arg.split(',').map(|s| s.trim()).collect();
    let workers: Option<usize> = arg_value("--workers").and_then(|v| v.parse().ok());
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_sweep.json".to_string());

    let spec = sweep_churn_spec(seeds.clone(), node_counts.clone(), &losses, workers);
    let pool = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    println!(
        "sweep: {} cells ({} node counts x {} loss points x {} seeds) on {pool} workers",
        spec.cell_count(),
        node_counts.len(),
        losses.len(),
        seeds.len(),
    );

    // -- run 1 --------------------------------------------------------------
    let start = Instant::now();
    let report1 = run_sweep(&spec, sweep_churn_cell).expect("sweep runs");
    let wall1 = start.elapsed().as_secs_f64();
    println!("run 1: {wall1:.2} s wall");
    println!("{}", report1.render());

    // -- run 2: the determinism gate ----------------------------------------
    let start = Instant::now();
    let report2 = run_sweep(&spec, sweep_churn_cell).expect("sweep runs");
    let wall2 = start.elapsed().as_secs_f64();
    println!("run 2: {wall2:.2} s wall");

    let (json1, json2) = (report1.to_json(), report2.to_json());
    let (csv1, csv2) = (report1.to_csv(), report2.to_csv());
    assert_eq!(
        json1, json2,
        "SweepReport JSON differs between two runs of the same sweep — \
         the cell-order merge is no longer deterministic"
    );
    assert_eq!(
        csv1, csv2,
        "SweepReport CSV differs between two runs of the same sweep"
    );
    println!(
        "determinism: two parallel runs byte-identical \
         (json fnv64 {:#018x}, {} bytes)",
        fnv64(&json1),
        json1.len()
    );
    for c in &report1.cells {
        assert!(
            c.delivered > 0,
            "cell {} (nodes={}, seed={}) delivered nothing",
            c.index,
            c.nodes,
            c.seed
        );
    }

    let cells = report1.cells.len();
    let best = wall1.min(wall2);
    let cells_per_sec = cells as f64 / best;
    let config_lines: Vec<String> = report1
        .configs
        .iter()
        .map(|s| {
            let params: Vec<String> = s
                .params
                .iter()
                .map(|(k, v)| format!("\"{k}\": \"{v}\""))
                .collect();
            format!(
                "    {{ \"nodes\": {}, {}, \"delivered_mean\": {}, \"net_drops_mean\": {}, \
                 \"goodput_bps_mean\": {} }}",
                s.nodes,
                params.join(", "),
                s.delivered.mean,
                s.net_drops.mean,
                s.goodput_bps.mean,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"cells\": {cells}, \"seeds\": {}, \
         \"node_counts\": {:?}, \"grid_points\": {}, \"workers\": {pool},\n  \
         \"wall_secs\": {best:.2}, \"cells_per_sec\": {cells_per_sec:.2}, \
         \"deterministic\": true, \"report_fnv64\": \"{:#018x}\",\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        seeds.len(),
        node_counts,
        losses.len(),
        fnv64(&json1),
        config_lines.join(",\n"),
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(wrote {out})"),
        Err(e) => eprintln!("{out}: {e}"),
    }
}
