//! Scenario-engine performance trajectory: measures the scenario
//! runner's own overhead (script parse + validate + timeline bind) and
//! the wall-clock of a seeded 200-node churn run over the from-spec
//! splitstream stack, then writes both to `BENCH_scenario.json` so CI
//! accumulates one data point per PR — the perf history now covers
//! *perturbed* runs, not just steady-state streaming.
//!
//! The macro run is reported as the minimum of three executions (the
//! run is deterministic, so the minimum is the least-noise estimate).
//!
//! Usage: `cargo run --release -p macedon-bench --bin bench_scenario`
//! (`--nodes N` overrides the churn size, `--out PATH` the output file).

use macedon_bench::experiments::{scenario_churn_run_workers, scenario_churn_script};
use std::time::Instant;

/// Self-asserted regression ceilings (the `bench_scale` pattern: abort
/// so CI fails on a perf regression instead of silently flattening the
/// artifact curve). Committed `BENCH_scenario.json` measured
/// 2.1 us/parse and 3.41 us/event on the default 200-node run; the
/// ceilings leave wide headroom for runner noise.
const CEILING_COMPILE_US: f64 = 25.0;
const CEILING_US_PER_EVENT: f64 = 10.0;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let nodes: usize = arg_value("--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let workers: usize = arg_value("--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_scenario.json".to_string());

    // -- micro: scenario compile overhead (parse + validate) ----------------
    let script = scenario_churn_script(nodes);
    const ROUNDS: u32 = 2_000;
    for _ in 0..100 {
        let _ = macedon_scenario::script::parse(&script).unwrap();
    }
    let mut compile_us = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..ROUNDS {
            let s = macedon_scenario::script::parse(&script).unwrap();
            std::hint::black_box(&s);
        }
        compile_us = compile_us.min(start.elapsed().as_micros() as f64 / ROUNDS as f64);
    }
    println!("compile: {nodes}-node churn script, {compile_us:.1} us/parse (min of 3)");
    if nodes == 200 {
        assert!(
            compile_us < CEILING_COMPILE_US,
            "scenario compile regressed: {compile_us:.1} us/parse, \
             ceiling is {CEILING_COMPILE_US} us (committed baseline 2.1)"
        );
    }

    // -- macro: seeded churn run over the from-spec splitstream stack -------
    let mut churn_ms = f64::INFINITY;
    let mut delivered = 0;
    let mut alive = 0;
    let mut events = 0u64;
    for _ in 0..3 {
        let start = Instant::now();
        let stats = scenario_churn_run_workers(nodes, workers);
        churn_ms = churn_ms.min(start.elapsed().as_secs_f64() * 1e3);
        (delivered, alive, events) = (stats.delivered, stats.alive, stats.events);
    }
    let us_per_event = churn_ms * 1e3 / events as f64;
    let ev_per_sec = events as f64 / (churn_ms / 1e3);
    println!(
        "churn: {nodes}-node from-spec splitstream under churn+partition, \
         {delivered} deliveries, {alive} alive, {events} events, \
         {churn_ms:.0} ms wall on {workers} worker(s) \
         (min of 3, {us_per_event:.2} us/event, {ev_per_sec:.0} events/sec)"
    );
    assert!(delivered > 0, "churn run must deliver real traffic");
    assert!(alive > nodes / 2, "most nodes must survive the scenario");
    if nodes == 200 && workers == 1 {
        assert!(
            us_per_event < CEILING_US_PER_EVENT,
            "churn run regressed: {us_per_event:.2} us/event, \
             ceiling is {CEILING_US_PER_EVENT} us (committed baseline 3.41)"
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"scenario\",\n  \"compile\": {{ \"script_nodes\": {nodes}, \
         \"us_per_parse\": {compile_us:.1} }},\n  \"churn\": {{ \"nodes\": {nodes}, \
         \"sim_seconds\": 80, \"deliveries\": {delivered}, \"alive\": {alive}, \
         \"events\": {events}, \"wall_ms\": {churn_ms:.0}, \
         \"us_per_event\": {us_per_event:.2} }}\n}}\n"
    );
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(wrote {out})"),
        Err(e) => eprintln!("{out}: {e}"),
    }
}
