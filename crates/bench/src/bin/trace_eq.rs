//! Acceptance gate for the causal trace stream: a seeded 200-node
//! from-spec splitstream run traced at High must produce
//!
//! 1. a trace stream byte-identical between the interpreted and the
//!    generated back end,
//! 2. a trace stream byte-identical between 1 and 4 worker threads on
//!    the same shard partition,
//! 3. a span forest (unique mints, every context minted strictly
//!    earlier) that reconstructs at least one complete multi-hop
//!    cross-layer delivery path: application send at the origin,
//!    a forwarding hop that minted a child span under the inbound
//!    context, and a top-layer deliver at the destination,
//! 4. a Perfetto-loadable export (pass `--out trace.json` to keep it).
//!
//! Exits non-zero on any violation. Scale down with `--nodes N` for
//! quick local runs; CI runs the full 200.

use macedon_core::app::{shared_deliveries, CollectorApp};
use macedon_core::{
    perfetto_json, Bytes, DownCall, Duration, MacedonKey, SpanId, Time, TraceEvent, TraceLevel,
    TraceRecord, World, WorldConfig,
};
use macedon_lang::SpecRegistry;
use macedon_net::topology::{canned, LinkSpec};
use std::collections::HashMap;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

enum Kind {
    Interpreted,
    Generated,
}

fn build_world(kind: &Kind, n: usize, seed: u64, shards: usize, workers: usize) -> World {
    let topo = canned::star(n, LinkSpec::lan());
    let hosts = topo.hosts().to_vec();
    let reg = SpecRegistry::bundled();
    let mut cfg = WorldConfig {
        seed,
        shards,
        fd_g: Duration::from_secs(2),
        fd_f: Duration::from_secs(6),
        ..Default::default()
    };
    cfg.channels = match kind {
        Kind::Interpreted => reg.channel_table_for("splitstream").unwrap(),
        Kind::Generated => macedon_generated::channel_table("splitstream").unwrap(),
    };
    let mut w = World::new(topo, cfg);
    w.set_workers(workers);
    w.set_trace_capacity(1 << 22);
    let sink = shared_deliveries();
    for (i, &h) in hosts.iter().enumerate() {
        let bootstrap = (i > 0).then(|| hosts[0]);
        let stack = match kind {
            Kind::Interpreted => reg.build_stack("splitstream", bootstrap).unwrap(),
            Kind::Generated => macedon_generated::build_stack("splitstream", bootstrap).unwrap(),
        };
        w.spawn_at_traced(
            Time::from_millis(i as u64 * 50),
            h,
            stack,
            Box::new(CollectorApp::new(sink.clone())),
            TraceLevel::High,
        );
    }
    // Join, settle, stream five multicast packets from hosts[1].
    let group = MacedonKey::of_name("trace-eq");
    w.run_until(Time::from_secs(40));
    for &h in &hosts[1..] {
        w.api_at(Time::from_secs(40), h, DownCall::Join { group });
    }
    w.run_until(Time::from_secs(80));
    for i in 0..5u64 {
        let mut p = vec![0u8; 256];
        p[..8].copy_from_slice(&i.to_be_bytes());
        w.api_at(
            Time::from_secs(80) + Duration::from_millis(i * 200),
            hosts[1],
            DownCall::Multicast {
                group,
                payload: Bytes::from(p),
                priority: -1,
            },
        );
    }
    w.run_until(Time::from_secs(95));
    w
}

fn stream(w: &World) -> String {
    let records = w.merged_trace();
    let mut out = String::with_capacity(records.len() * 64);
    for r in records {
        out.push_str(&r.render());
        out.push('\n');
    }
    out
}

/// Walk the forest and reconstruct one multi-hop cross-layer delivery
/// path; returns its description or an error.
fn find_delivery_path(records: &[&TraceRecord]) -> Result<String, String> {
    // span -> (minting record index, parent context at mint time)
    let mut mints: HashMap<u64, (usize, SpanId)> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        if !r.span.is_none() && !mints.contains_key(&r.span.0) {
            return Err(format!(
                "context {:016x} referenced before mint at index {i}",
                r.span.0
            ));
        }
        if let TraceEvent::Send { span, .. } = &r.event {
            if mints.insert(span.0, (i, r.span)).is_some() {
                return Err(format!("span {:016x} minted twice", span.0));
            }
        }
    }
    // A complete path: a Deliver above the transport layer whose context
    // chains through at least one forwarding Send back to a root
    // application send, crossing at least three distinct nodes.
    for r in records {
        let TraceEvent::Deliver { .. } = &r.event else {
            continue;
        };
        if r.layer == 0 || r.span.is_none() {
            continue;
        }
        // Walk mint parentage back to the root.
        let mut hops = Vec::new(); // (record, minted span) oldest-last
        let mut cur = r.span;
        while !cur.is_none() {
            let &(idx, parent) = mints.get(&cur.0).unwrap();
            hops.push((records[idx], cur));
            cur = parent;
        }
        if hops.len() < 2 {
            continue; // single-hop: delivered straight from the origin
        }
        let mut nodes: Vec<u32> = hops.iter().map(|(m, _)| m.node.0).collect();
        nodes.push(r.node.0);
        nodes.dedup();
        let distinct = {
            let mut s = nodes.clone();
            s.sort_unstable();
            s.dedup();
            s.len()
        };
        if distinct < 3 {
            continue;
        }
        hops.reverse();
        let mut path = String::new();
        for (m, span) in &hops {
            path.push_str(&format!(
                "n{} send span={:016x} (t={}us, L{}) -> ",
                m.node.0,
                span.0,
                m.at.as_micros(),
                m.layer
            ));
        }
        path.push_str(&format!(
            "n{} deliver (t={}us, L{})",
            r.node.0,
            r.at.as_micros(),
            r.layer
        ));
        return Ok(path);
    }
    Err("no multi-hop cross-layer delivery path found".into())
}

fn main() {
    let nodes: usize = arg_value("--nodes")
        .map(|v| v.parse().expect("--nodes takes a count"))
        .unwrap_or(200);
    let seed = 42u64;
    let mut failed = false;

    let t0 = std::time::Instant::now();
    let interp_1w = build_world(&Kind::Interpreted, nodes, seed, 4, 1);
    let want = stream(&interp_1w);
    println!(
        "interpreted 4-shard/1-worker: {} records ({} dropped) in {:.2}s",
        interp_1w.trace_records_total(),
        interp_1w.trace_dropped_total(),
        t0.elapsed().as_secs_f64()
    );
    if interp_1w.trace_dropped_total() > 0 {
        println!("FAIL: ring evicted records; raise the capacity");
        failed = true;
    }

    for (label, kind, workers) in [
        ("interpreted 4-shard/4-worker", Kind::Interpreted, 4usize),
        ("generated   4-shard/1-worker", Kind::Generated, 1),
    ] {
        let t = std::time::Instant::now();
        let w = build_world(&kind, nodes, seed, 4, workers);
        let got = stream(&w);
        let ok = got == want;
        println!(
            "{label}: {} records in {:.2}s -> {}",
            w.trace_records_total(),
            t.elapsed().as_secs_f64(),
            if ok { "byte-identical" } else { "DIVERGED" }
        );
        if !ok {
            for (i, (a, b)) in want.lines().zip(got.lines()).enumerate() {
                if a != b {
                    println!("  first divergence at line {i}:\n  - {a}\n  + {b}");
                    break;
                }
            }
            failed = true;
        }
    }

    match find_delivery_path(&interp_1w.merged_trace()) {
        Ok(path) => println!("delivery path: {path}"),
        Err(e) => {
            println!("FAIL: {e}");
            failed = true;
        }
    }

    let json = perfetto_json(&interp_1w.merged_trace(), &interp_1w.profile());
    if !(json.starts_with("{\"traceEvents\":[") && json.ends_with("]}\n")) {
        println!("FAIL: perfetto export malformed");
        failed = true;
    }
    if let Some(path) = arg_value("--out") {
        std::fs::write(&path, &json).expect("write perfetto trace");
        println!(
            "wrote {path} ({} bytes; open at https://ui.perfetto.dev)",
            json.len()
        );
    }

    if failed {
        std::process::exit(1);
    }
    println!("trace_eq: all checks passed");
}
