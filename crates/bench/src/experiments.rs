//! The experiment implementations behind the `fig*` binaries.
//!
//! Each function reproduces one figure of the paper's §4 and returns the
//! rows/series to print; EXPERIMENTS.md records paper-vs-measured.

use crate::Scale;
use macedon_baselines::{lsd_chord_config, FreePastry, RmiModel};
use macedon_core::app::{shared_deliveries, CollectorApp, StreamKind, StreamerApp};
use macedon_core::{
    Agent, Bytes, DownCall, Duration, MacedonKey, NodeId, TelemetryReport, Time, TraceLevel, World,
    WorldConfig,
};
use macedon_net::topology::{canned, inet, InetParams, LinkSpec};
use macedon_overlays::chord::{Chord, ChordConfig};
use macedon_overlays::nice::{Nice, NiceConfig};
use macedon_overlays::pastry::{Pastry, PastryConfig};
use macedon_overlays::scribe::{DataPath, Scribe, ScribeConfig};
use macedon_overlays::splitstream::{SplitStream, SplitStreamConfig};
use macedon_overlays::testutil::collect_ring;
use macedon_sim::SimRng;

// ---------------------------------------------------------------------------
// Figure 7 — specification lines of code
// ---------------------------------------------------------------------------

/// (protocol, spec LoC, semicolons, generated Rust LoC, paper-reported
/// approximate spec LoC read off Figure 7's bars, interpreted stack
/// depth once the `uses` chain resolves).
pub struct Fig7Row {
    pub name: &'static str,
    pub loc: usize,
    pub semicolons: usize,
    pub generated_loc: usize,
    pub paper_loc: usize,
    /// Layers in the interpreted stack (1 = lowest-layer protocol,
    /// 3 = splitstream → scribe → pastry). Every roster spec now
    /// instantiates, so this doubles as the "interpretable" marker.
    pub layers: usize,
}

pub fn fig7() -> Vec<Fig7Row> {
    let paper: &[(&str, usize)] = &[
        ("ammo", 520),
        ("bullet", 480),
        ("chord", 260),
        ("nice", 500),
        ("overcast", 430),
        ("pastry", 400),
        ("scribe", 220),
        ("splitstream", 180),
    ];
    let registry = macedon_lang::SpecRegistry::bundled();
    macedon_lang::bundled_specs()
        .into_iter()
        .filter(|(name, _)| paper.iter().any(|(n, _)| n == name))
        .map(|(name, src)| {
            let spec = macedon_lang::compile(src).expect("bundled spec compiles");
            let chain = registry
                .resolve_chain(name)
                .expect("bundled chain resolves");
            // The checked-in artifact of a layered spec is generated
            // against its chain's base transport table.
            let base = spec.uses.as_ref().map(|_| chain[0].transports.as_slice());
            Fig7Row {
                name,
                loc: macedon_lang::loc::spec_loc(src),
                semicolons: macedon_lang::loc::semicolons(src),
                generated_loc: macedon_lang::codegen::generated_loc(&spec, base),
                paper_loc: paper
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|&(_, l)| l)
                    .unwrap_or(0),
                layers: chain.len(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 8 & 9 — NICE stretch and latency across 8 sites
// ---------------------------------------------------------------------------

pub struct NiceSiteRow {
    pub site: usize,
    pub mean_stretch: f64,
    pub mean_latency_ms: f64,
    /// Values read off the paper's Figures 8/9 (the NICE SIGCOMM series).
    pub paper_stretch: f64,
    pub paper_latency_ms: f64,
}

/// The 8-site inter-site latency matrix re-created from the NICE paper's
/// Internet experiment (ms, symmetric, zero diagonal).
pub fn nice_site_latencies() -> Vec<Vec<u64>> {
    // Transcontinental-ish spread: near sites ~10-20 ms, far ~35-48 ms.
    let m: [[u64; 8]; 8] = [
        [0, 12, 18, 35, 40, 22, 30, 44],
        [12, 0, 10, 30, 38, 20, 26, 42],
        [18, 10, 0, 25, 33, 16, 22, 38],
        [35, 30, 25, 0, 14, 28, 18, 20],
        [40, 38, 33, 14, 0, 34, 22, 12],
        [22, 20, 16, 28, 34, 0, 15, 36],
        [30, 26, 22, 18, 22, 15, 0, 24],
        [44, 42, 38, 20, 12, 36, 24, 0],
    ];
    m.iter().map(|r| r.to_vec()).collect()
}

pub fn fig8_9(scale: Scale) -> Vec<NiceSiteRow> {
    let members_per_site = match scale {
        Scale::Quick => 4,
        Scale::Paper => 8, // 64 members total, as in the paper
    };
    let converge_s = match scale {
        Scale::Quick => 180,
        Scale::Paper => 300,
    };
    let lat = nice_site_latencies();
    let sites = lat.len();
    let topo = canned::sites(&lat, members_per_site, LinkSpec::lan());
    let hosts = topo.hosts().to_vec();
    let mut w = World::new(
        topo,
        WorldConfig {
            seed: 8,
            ..Default::default()
        },
    );
    let sink = shared_deliveries();
    for (i, &h) in hosts.iter().enumerate() {
        let cfg = NiceConfig {
            rendezvous: (i > 0).then(|| hosts[0]),
            ..Default::default()
        };
        w.spawn_at(
            Time::from_millis(i as u64 * 400),
            h,
            vec![Box::new(Nice::new(cfg))],
            Box::new(CollectorApp::new(sink.clone())),
        );
    }
    w.run_until(Time::from_secs(converge_s));

    // Stream 40 packets at 10/s from the first member.
    let base = Time::from_secs(converge_s);
    let npkts = 40u64;
    for i in 0..npkts {
        let mut p = vec![0u8; 1000];
        p[..8].copy_from_slice(&i.to_be_bytes());
        w.api_at(
            base + Duration::from_millis(i * 100),
            hosts[0],
            DownCall::Multicast {
                group: MacedonKey(0),
                payload: Bytes::from(p),
                priority: -1,
            },
        );
    }
    w.run_until(base + Duration::from_secs(60));

    // Per-site stretch and latency.
    let paper8: [f64; 8] = [1.6, 1.8, 2.0, 2.3, 2.6, 2.2, 3.0, 4.2];
    let paper9: [f64; 8] = [8.0, 12.0, 15.0, 20.0, 25.0, 22.0, 30.0, 41.0];
    let log = sink.lock();
    (0..sites)
        .map(|site| {
            let mut stretches = Vec::new();
            let mut lats = Vec::new();
            for rec in log.iter() {
                let idx = hosts.iter().position(|&h| h == rec.node).expect("member");
                if idx / members_per_site != site {
                    continue;
                }
                let Some(seq) = rec.seqno else { continue };
                let sent = base + Duration::from_millis(seq * 100);
                let lat_s = rec.at.saturating_since(sent).as_secs_f64();
                let direct = w
                    .net_mut()
                    .oracle_latency(hosts[0], rec.node)
                    .map(|d| d.as_secs_f64())
                    .unwrap_or(0.0);
                if direct > 0.0 && rec.node != hosts[0] {
                    stretches.push(lat_s / direct);
                    lats.push(lat_s * 1_000.0);
                }
            }
            NiceSiteRow {
                site,
                mean_stretch: mean(&stretches),
                mean_latency_ms: mean(&lats),
                paper_stretch: paper8[site],
                paper_latency_ms: paper9[site],
            }
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

// ---------------------------------------------------------------------------
// Figure 10 — Chord routing-table convergence
// ---------------------------------------------------------------------------

pub struct Fig10Series {
    /// (seconds, avg correct entries) sampled every 2 s, per flavor.
    pub macedon_1s: Vec<(f64, f64)>,
    pub lsd: Vec<(f64, f64)>,
    pub macedon_20s: Vec<(f64, f64)>,
}

#[derive(Clone, Copy)]
enum ChordFlavor {
    Static(u64),
    Lsd,
}

pub fn fig10(scale: Scale) -> Fig10Series {
    let (routers, clients, run_s) = match scale {
        Scale::Quick => (200, 48, 120),
        Scale::Paper => (20_000, 1_000, 120),
    };
    let run = |flavor: ChordFlavor| -> Vec<(f64, f64)> {
        let mut rng = SimRng::new(10);
        let topo = inet(
            &InetParams {
                routers,
                clients,
                ..Default::default()
            },
            &mut rng,
        );
        let hosts = topo.hosts().to_vec();
        let mut w = World::new(
            topo,
            WorldConfig {
                seed: 10,
                ..Default::default()
            },
        );
        let sink = shared_deliveries();
        // Staggered joins across the first third of the run, as in the
        // paper ("routing tables converge steadily as nodes join").
        let join_window_ms = (run_s * 1000) / 3;
        for (i, &h) in hosts.iter().enumerate() {
            let cfg = match flavor {
                ChordFlavor::Static(secs) => ChordConfig {
                    bootstrap: (i > 0).then(|| hosts[0]),
                    fix_fingers_period: Duration::from_secs(secs),
                    ..Default::default()
                },
                ChordFlavor::Lsd => lsd_chord_config((i > 0).then(|| hosts[0])),
            };
            let at = Time::from_millis(i as u64 * join_window_ms / hosts.len() as u64);
            w.spawn_at(
                at,
                h,
                vec![Box::new(Chord::new(cfg))],
                Box::new(CollectorApp::new(sink.clone())),
            );
        }
        let ring = collect_ring(&w, &hosts);
        let correct_owner = |k: MacedonKey| {
            ring.iter()
                .copied()
                .min_by_key(|&(_, rk)| k.distance_to(rk))
                .unwrap()
                .0
        };
        // Dump "routing tables every two seconds" and count correct
        // entries against global knowledge.
        let mut series = Vec::new();
        let mut t = 0u64;
        while t <= run_s {
            w.run_until(Time::from_secs(t));
            let mut total = 0usize;
            let mut alive = 0usize;
            for &h in &hosts {
                if !w.is_alive(h) {
                    continue;
                }
                alive += 1;
                let c: &Chord = w
                    .stack(h)
                    .unwrap()
                    .agent(0)
                    .as_any()
                    .downcast_ref()
                    .unwrap();
                let me = w.key_of(h);
                for (i, f) in c.fingers().iter().enumerate() {
                    if let Some((n, _)) = f {
                        if *n == correct_owner(me.plus_pow2(i as u32)) {
                            total += 1;
                        }
                    }
                }
            }
            let avg = if alive == 0 {
                0.0
            } else {
                total as f64 / hosts.len() as f64
            };
            series.push((t as f64, avg));
            t += 2;
        }
        series
    };
    // The three flavors are independent worlds: sweep them in parallel
    // (the harness equivalent of the paper farming runs across machines).
    let mut out: Vec<(usize, Vec<(f64, f64)>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = [
            ChordFlavor::Static(1),
            ChordFlavor::Lsd,
            ChordFlavor::Static(20),
        ]
        .into_iter()
        .enumerate()
        .map(|(i, flavor)| {
            let run = &run;
            scope.spawn(move || (i, run(flavor)))
        })
        .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("flavor run"))
            .collect()
    });
    out.sort_by_key(|&(i, _)| i);
    let mut it = out.into_iter().map(|(_, v)| v);
    Fig10Series {
        macedon_1s: it.next().expect("three runs"),
        lsd: it.next().expect("three runs"),
        macedon_20s: it.next().expect("three runs"),
    }
}

// ---------------------------------------------------------------------------
// Figure 11 — Pastry latency vs FreePastry
// ---------------------------------------------------------------------------

pub struct Fig11Row {
    pub nodes: usize,
    pub macedon_s: f64,
    /// `None` beyond the RMI model's memory cap (the paper could not run
    /// FreePastry past 100 participants).
    pub freepastry_s: Option<f64>,
}

pub fn fig11(scale: Scale) -> Vec<Fig11Row> {
    let (routers, sizes, converge_s, stream_s): (usize, Vec<usize>, u64, u64) = match scale {
        Scale::Quick => (200, vec![8, 16, 32, 64], 60, 40),
        Scale::Paper => (20_000, vec![4, 10, 25, 50, 100, 150, 200, 250], 300, 120),
    };
    let cap = RmiModel::default().max_nodes;
    sizes
        .into_iter()
        .map(|n| {
            let macedon_s = fig11_run(routers, n, converge_s, stream_s, false);
            let freepastry_s =
                (n <= cap).then(|| fig11_run(routers, n, converge_s, stream_s, true));
            Fig11Row {
                nodes: n,
                macedon_s,
                freepastry_s,
            }
        })
        .collect()
}

fn fig11_run(routers: usize, n: usize, converge_s: u64, stream_s: u64, rmi: bool) -> f64 {
    let mut rng = SimRng::new(11);
    let topo = inet(
        &InetParams {
            routers,
            clients: n,
            ..Default::default()
        },
        &mut rng,
    );
    let hosts = topo.hosts().to_vec();
    let mut w = World::new(
        topo,
        WorldConfig {
            seed: 11,
            ..Default::default()
        },
    );
    let sink = shared_deliveries();
    for (i, &h) in hosts.iter().enumerate() {
        let cfg = PastryConfig {
            bootstrap: (i > 0).then(|| hosts[0]),
            ..Default::default()
        };
        let agent: Box<dyn Agent> = if rmi {
            Box::new(FreePastry::new(cfg, RmiModel::default()))
        } else {
            Box::new(Pastry::new(cfg))
        };
        // "we allowed routing tables to converge for 300 seconds before
        // streaming data": the streamer app starts after convergence.
        let app = StreamerApp::new(
            StreamKind::RandomRoute,
            10_000, // 10 Kbps
            1_000,  // 1000-byte packets
            Time::from_secs(converge_s),
            Time::from_secs(converge_s + stream_s),
            sink.clone(),
        );
        w.spawn_at(
            Time::from_millis(i as u64 * 50),
            h,
            vec![agent],
            Box::new(app),
        );
    }
    w.run_until(Time::from_secs(converge_s + stream_s + 10));
    // Average per-packet delay. Send times are reconstructed from each
    // streamer's fixed 0.8 s interval; since every node streams at the
    // same phase, delay = delivery minus the seq's slot start.
    let log = sink.lock();
    let interval_us = 1_000u64 * 8 * 1_000_000 / 10_000; // 0.8 s
    let mut lats = Vec::new();
    for rec in log.iter() {
        let Some(seq) = rec.seqno else { continue };
        let sent = Time::from_secs(converge_s) + Duration::from_micros(seq * interval_us);
        if rec.at >= sent {
            lats.push(rec.at.saturating_since(sent).as_secs_f64());
        }
    }
    mean(&lats)
}

// ---------------------------------------------------------------------------
// Figure 12 — SplitStream bandwidth under two cache policies
// ---------------------------------------------------------------------------

pub struct Fig12Series {
    /// (seconds since stream start, mean per-node goodput in Kbps).
    pub no_eviction: Vec<(f64, f64)>,
    pub with_eviction: Vec<(f64, f64)>,
    /// Scheduler events fired across both runs (for events/sec).
    pub events: u64,
}

pub fn fig12(scale: Scale) -> Fig12Series {
    fig12_workers(scale, 1)
}

/// [`fig12`] on the sharded windowed engine: `workers` shards driven
/// by `workers` threads (1 = the sequential engine).
pub fn fig12_workers(scale: Scale, workers: usize) -> Fig12Series {
    let (nodes, converge_s, stream_s, rate_bps) = match scale {
        Scale::Quick => (32usize, 60u64, 90u64, 600_000u64),
        Scale::Paper => (300, 300, 300, 600_000),
    };
    let run = |cache_lifetime: Option<Duration>| -> (Vec<(f64, f64)>, u64) {
        // Paper-era constrained access links: the stream plus forwarding
        // load runs close to capacity, so the extra bandwidth consumed
        // re-establishing evicted cache entries costs real goodput.
        let topo = canned::star(
            nodes,
            LinkSpec::new(Duration::from_millis(2), 2_000_000, 64 * 1024),
        );
        let hosts = topo.hosts().to_vec();
        let mut w = World::new(
            topo,
            WorldConfig {
                seed: 12,
                shards: workers,
                ..Default::default()
            },
        );
        w.set_workers(workers);
        let sink = shared_deliveries();
        let group = MacedonKey::of_name("fig12-stream");
        for (i, &h) in hosts.iter().enumerate() {
            let pastry = Pastry::new(PastryConfig {
                bootstrap: (i > 0).then(|| hosts[0]),
                cache_lifetime,
                ..Default::default()
            });
            let scribe = Scribe::new(ScribeConfig {
                data_path: DataPath::LocationCache,
                max_children: Some(8),
            });
            let split = SplitStream::new(SplitStreamConfig::default());
            let stack: Vec<Box<dyn Agent>> =
                vec![Box::new(pastry), Box::new(scribe), Box::new(split)];
            if i == 0 {
                // The source streams after convergence.
                let app = StreamerApp::new(
                    StreamKind::Multicast { group },
                    rate_bps,
                    1_000,
                    Time::from_secs(converge_s),
                    Time::from_secs(converge_s + stream_s),
                    sink.clone(),
                );
                w.spawn_at(Time::ZERO, h, stack, Box::new(app));
            } else {
                w.spawn_at(
                    Time::from_millis(i as u64 * 100),
                    h,
                    stack,
                    Box::new(CollectorApp::new(sink.clone())),
                );
            }
        }
        // "all other nodes join the multicast session as receivers".
        w.api_at(
            Time::from_secs(5),
            hosts[0],
            DownCall::CreateGroup { group },
        );
        for (i, &h) in hosts.iter().enumerate().skip(1) {
            w.api_at(
                Time::from_secs(6) + Duration::from_millis(i as u64 * 100),
                h,
                DownCall::Join { group },
            );
        }
        w.run_until(Time::from_secs(converge_s + stream_s + 10));
        let series = bin_goodput(&sink, hosts[0], converge_s, stream_s, nodes - 1);
        (series, w.events_fired())
    };
    let (no_eviction, ev_a) = run(None);
    let (with_eviction, ev_b) = run(Some(Duration::from_secs(1)));
    Fig12Series {
        no_eviction,
        with_eviction,
        events: ev_a + ev_b,
    }
}

/// Per-5s-bin mean per-receiver goodput (Kbps) from a delivery log.
fn bin_goodput(
    sink: &macedon_core::app::SharedDeliveries,
    source: macedon_core::NodeId,
    converge_s: u64,
    stream_s: u64,
    receivers: usize,
) -> Vec<(f64, f64)> {
    let bin = 5.0f64;
    let nbins = (stream_s as f64 / bin) as usize;
    let mut bytes_per_bin = vec![0u64; nbins];
    let log = sink.lock();
    let t0 = converge_s as f64;
    for rec in log.iter() {
        if rec.node == source {
            continue;
        }
        let t = rec.at.as_secs_f64() - t0;
        if t < 0.0 {
            continue;
        }
        let idx = (t / bin) as usize;
        if idx < nbins {
            bytes_per_bin[idx] += rec.bytes as u64;
        }
    }
    bytes_per_bin
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            let kbps = b as f64 * 8.0 / bin / receivers as f64 / 1_000.0;
            (i as f64 * bin, kbps)
        })
        .collect()
}

/// Figure 12, from-spec mode: the same streaming scenario over the
/// fully interpreted `splitstream.mac` → `scribe.mac` → `pastry.mac`
/// stack — the whole paper roster running from specifications. The
/// interpreted Scribe disseminates by duplicate-suppressed flooding
/// rather than a rooted tree (see `scribe.mac`), so absolute goodput is
/// not comparable to the native series; what the mode demonstrates is
/// the paper's spec → running-overlay → measurement loop with zero
/// native protocol code.
///
/// The experiment itself is a scenario: a `ScenarioBuilder` declaration
/// (staggered joins + one multicast stream) compiled by the scenario
/// runner, instead of a bespoke spawn/api loop.
pub fn fig12_from_spec(scale: Scale) -> Vec<(f64, f64)> {
    fig12_from_spec_observed(scale, false, None).series
}

/// Observability artifacts riding along a [`fig12_from_spec`] run.
pub struct Fig12Observed {
    pub series: Vec<(f64, f64)>,
    /// Chrome/Perfetto trace-event JSON, when tracing was requested.
    pub perfetto: Option<String>,
    /// The sampled engine time series, when a sampler was requested.
    pub telemetry: Option<TelemetryReport>,
}

/// [`fig12_from_spec`] with the observability stack switched on: the
/// stacks run at the trace level `splitstream.mac`'s `trace_` header
/// asks for — raised to High when `trace` is set, so the exported
/// timeline carries the full causal span forest — and `sample_every`
/// snapshots engine counters on that virtual-time cadence.
pub fn fig12_from_spec_observed(
    scale: Scale,
    trace: bool,
    sample_every: Option<Duration>,
) -> Fig12Observed {
    let (nodes, converge_s, stream_s, rate_bps) = match scale {
        Scale::Quick => (16usize, 60u64, 60u64, 200_000u64),
        Scale::Paper => (64, 120, 120, 200_000),
    };
    let registry = macedon_lang::SpecRegistry::bundled();
    let scenario = macedon_scenario::ScenarioBuilder::new("fig12-from-spec", nodes)
        .end(Time::from_secs(converge_s + stream_s + 10))
        .join(
            Time::ZERO,
            0..nodes,
            Duration::from_millis(nodes as u64 * 100),
        )
        .stream(
            Time::from_secs(converge_s),
            0,
            rate_bps,
            1_000,
            Duration::from_secs(stream_s),
            macedon_scenario::StreamShape::Multicast,
        )
        .build()
        .expect("fig12 scenario validates");
    let topo = canned::star(
        nodes,
        LinkSpec::new(Duration::from_millis(2), 2_000_000, 64 * 1024),
    );
    let cfg = WorldConfig {
        seed: 12,
        channels: registry
            .channel_table_for("splitstream")
            .expect("bundled chain resolves"),
        profile: trace,
        ..Default::default()
    };
    let mut runner = macedon_scenario::ScenarioRunner::new(
        scenario,
        topo,
        cfg,
        Box::new(|_idx, _host, bootstrap| {
            registry
                .build_stack("splitstream", bootstrap)
                .expect("bundled stack builds")
        }),
    )
    .expect("fig12 scenario binds");
    // Honor the spec's own `trace_` header (satisfying the declaration
    // instead of a world-wide default); an explicit trace request
    // raises it to High for the full causal timeline.
    let header = registry
        .trace_level_for("splitstream")
        .expect("bundled spec registered");
    runner.set_trace_level(if trace {
        header.max(TraceLevel::High)
    } else {
        header
    });
    if let Some(every) = sample_every {
        runner.enable_telemetry(every);
    }
    let outcome = runner.run();
    let series = bin_goodput(
        &outcome.deliveries,
        outcome.hosts[0],
        converge_s,
        stream_s,
        nodes - 1,
    );
    Fig12Observed {
        series,
        perfetto: trace.then(|| {
            macedon_core::perfetto_json(&outcome.world.merged_trace(), &outcome.world.profile())
        }),
        telemetry: outcome.report.telemetry,
    }
}

// ---------------------------------------------------------------------------
// Scenario harness (bin/bench_scenario and the CI smoke test)
// ---------------------------------------------------------------------------

/// The benchmark churn script: staggered joins, one multicast stream,
/// a crash wave with partial rejoin, and a partition that heals —
/// every perturbation class the scenario engine supports, at `nodes`
/// scale.
pub fn scenario_churn_script(nodes: usize) -> String {
    format!(
        "scenario bench-churn\nnodes {nodes}\nend 80s\n\
         at 0s join 0..{first} over 2s\n\
         at 4s join {first}..{nodes} over 8s\n\
         at 20s stream 0 rate 200kbps size 1000 for 50s multicast\n\
         at 35s crash {c1} {c2}\n\
         at 45s rejoin {c1}\n\
         at 55s partition half {half}..{nodes}\n\
         at 65s heal half\n",
        first = nodes / 4,
        c1 = nodes / 3,
        c2 = nodes / 2,
        half = nodes / 2,
    )
}

/// Engine-level counters from one scenario run: what the run delivered
/// and what the scheduler had to do to deliver it, so benchmarks can
/// report per-event and per-packet cost rather than wall time alone.
pub struct ChurnRunStats {
    /// Application-level deliveries observed across all nodes.
    pub delivered: usize,
    /// Nodes alive at scenario end.
    pub alive: usize,
    /// Total scheduler events fired over the run (packet motion and
    /// timers combined).
    pub events: u64,
    /// The same total broken down by event class.
    pub breakdown: macedon_core::EventClassCounts,
}

impl ChurnRunStats {
    /// Scheduler events fired per delivered application packet — the
    /// headline efficiency number of the event-machinery rework.
    pub fn events_per_delivered(&self) -> f64 {
        if self.delivered == 0 {
            f64::INFINITY
        } else {
            self.events as f64 / self.delivered as f64
        }
    }
}

/// One seeded churn-scenario run over the from-spec splitstream stack.
/// Returns delivered/alive/events-fired so callers can sanity-check
/// real work happened and report per-event cost; wall-clock is the
/// caller's to measure.
pub fn scenario_churn_run(nodes: usize) -> ChurnRunStats {
    run_scenario_script(&scenario_churn_script(nodes), nodes)
}

/// The churn run sharded across `workers` cores (windowed parallel
/// execution; `1` is the classic sequential engine).
pub fn scenario_churn_run_workers(nodes: usize, workers: usize) -> ChurnRunStats {
    run_scenario_script_on(
        &scenario_churn_script(nodes),
        nodes,
        LinkSpec::new(Duration::from_millis(2), 2_000_000, 64 * 1024),
        workers,
    )
}

/// The `bench_scale` scenario: staggered joins of every node, a
/// fixed-total-rate *random-route* stream, and a small crash wave with
/// rejoin. Unlike [`scenario_churn_script`]'s multicast stream — whose
/// delivery count multiplies with the receiver population — the route
/// stream keeps application deliveries O(1) in `nodes`, so the
/// 1k/10k/100k curve isolates what actually grows with scale: the
/// scheduler's pending set (per-node failure-detector and protocol
/// timers) and the join/maintenance traffic.
pub fn scenario_scale_script(nodes: usize) -> String {
    format!(
        "scenario bench-scale\nnodes {nodes}\nend 40s\n\
         at 0s join 0..{first} over 2s\n\
         at 4s join {first}..{nodes} over 10s\n\
         at 20s stream 0 rate 200kbps size 1000 for 15s route\n\
         at 25s crash {c1} {c2}\n\
         at 30s rejoin {c1}\n",
        first = nodes / 4,
        c1 = nodes / 3,
        c2 = nodes / 2,
    )
}

/// One seeded scale-scenario run (see [`scenario_scale_script`]).
///
/// Unlike the churn run, the links are fat (100 Mbps, 1 MiB queues):
/// at 10k+ nodes the star hub would otherwise collapse under the join
/// storm and the overlay would never converge. The curve is meant to
/// measure the *scheduler* under population growth, not hub congestion.
pub fn scenario_scale_run(nodes: usize) -> ChurnRunStats {
    scenario_scale_run_workers(nodes, 1)
}

/// The scale-scenario run sharded across `workers` cores (windowed
/// parallel execution; `1` is the classic sequential engine). The
/// shard count follows the worker count, so rows of the threads axis
/// may differ in same-microsecond tie ordering (the star here is
/// symmetric); at a *fixed* shard count results are identical for
/// every worker count (see `tests/prop.rs`).
pub fn scenario_scale_run_workers(nodes: usize, workers: usize) -> ChurnRunStats {
    run_scenario_script_on(
        &scenario_scale_script(nodes),
        nodes,
        LinkSpec::new(Duration::from_millis(2), 100_000_000, 1024 * 1024),
        workers,
    )
}

fn run_scenario_script(script: &str, nodes: usize) -> ChurnRunStats {
    run_scenario_script_on(
        script,
        nodes,
        LinkSpec::new(Duration::from_millis(2), 2_000_000, 64 * 1024),
        1,
    )
}

fn run_scenario_script_on(
    script: &str,
    nodes: usize,
    link: LinkSpec,
    workers: usize,
) -> ChurnRunStats {
    let registry = macedon_lang::SpecRegistry::bundled();
    let scenario = macedon_scenario::script::parse(script).expect("script parses");
    let topo = canned::star(nodes, link);
    let cfg = WorldConfig {
        seed: 77,
        channels: registry
            .channel_table_for("splitstream")
            .expect("bundled chain resolves"),
        fd_g: Duration::from_secs(2),
        fd_f: Duration::from_secs(6),
        shards: workers,
        ..Default::default()
    };
    let mut runner = macedon_scenario::ScenarioRunner::new(
        scenario,
        topo,
        cfg,
        Box::new(|_idx, _host, bootstrap| {
            registry
                .build_stack("splitstream", bootstrap)
                .expect("bundled stack builds")
        }),
    )
    .expect("scenario binds");
    runner.set_workers(workers);
    let outcome = runner.run();
    ChurnRunStats {
        delivered: outcome.report.total_delivered as usize,
        alive: outcome.report.alive,
        events: outcome.world.events_fired(),
        breakdown: outcome.world.event_counts(),
    }
}

// ---------------------------------------------------------------------------
// Sweep harness (bin/bench_sweep and the churn example's `sweep` command)
// ---------------------------------------------------------------------------

/// The benchmark sweep template: the churn scenario of
/// [`scenario_churn_script`] made scale-generic with `{nodes}`
/// arithmetic, plus a `{loss}` grid axis injecting network-wide packet
/// loss before the stream starts.
pub const SWEEP_CHURN_TEMPLATE: &str = "scenario sweep-churn\nnodes {nodes}\nend 80s\n\
     at 0s join 0..{nodes/4} over 2s\n\
     at 4s join {nodes/4}..{nodes} over 8s\n\
     at 10s drop {loss}\n\
     at 20s stream 0 rate 200kbps size 1000 for 50s multicast\n\
     at 35s crash {nodes/3} {nodes/2}\n\
     at 45s rejoin {nodes/3}\n\
     at 55s partition half {nodes/2}..{nodes}\n\
     at 65s heal half\n";

/// The benchmark sweep: [`SWEEP_CHURN_TEMPLATE`] × seeds × node counts
/// × a loss-rate axis.
pub fn sweep_churn_spec(
    seeds: Vec<u64>,
    node_counts: Vec<usize>,
    losses: &[&str],
    workers: Option<usize>,
) -> macedon_scenario::SweepSpec {
    macedon_scenario::SweepSpec {
        name: "churn-loss".into(),
        template: SWEEP_CHURN_TEMPLATE.into(),
        seeds,
        node_counts,
        grid: vec![macedon_scenario::GridAxis::new(
            "loss",
            losses.iter().copied(),
        )],
        workers,
    }
}

/// Run one sweep cell: the from-spec splitstream stack on a star
/// topology (the churn benchmark's constrained links), world seeded
/// with the cell's derived seed. `Sync`-safe — each call builds its own
/// [`macedon_lang::SpecRegistry`], so workers share nothing.
pub fn sweep_churn_cell(cell: &macedon_scenario::SweepCell) -> macedon_scenario::MetricsReport {
    let registry = macedon_lang::SpecRegistry::bundled();
    let topo = canned::star(
        cell.nodes,
        LinkSpec::new(Duration::from_millis(2), 2_000_000, 64 * 1024),
    );
    let cfg = WorldConfig {
        seed: cell.derived_seed,
        channels: registry
            .channel_table_for("splitstream")
            .expect("bundled chain resolves"),
        fd_g: Duration::from_secs(2),
        fd_f: Duration::from_secs(6),
        ..Default::default()
    };
    let mut runner = macedon_scenario::ScenarioRunner::new(
        cell.scenario.clone(),
        topo,
        cfg,
        Box::new(|_idx, _host, bootstrap| {
            registry
                .build_stack("splitstream", bootstrap)
                .expect("bundled stack builds")
        }),
    )
    .expect("sweep cell binds");
    // Sample engine counters once per simulated second — feeds the
    // sweep's telemetry_samples / peak_pending_events columns (and is
    // read-only, so cell results are unchanged).
    runner.enable_telemetry(Duration::from_secs(1));
    runner.run().report
}

// ---------------------------------------------------------------------------
// Interpreter dispatch harness (benches/interp.rs and bin/bench_interp)
// ---------------------------------------------------------------------------

/// A compact protocol exercising the interpreter's per-event hot path
/// with roster-representative message shapes (pastry's `join_req` /
/// `state_push` / `route_msg`): wire decode of every field shape,
/// neighbor-list and scalar updates, state-scoped dispatch, and a
/// periodic timer.
pub const DISPATCH_SPEC: &str = r#"
    protocol dispatch;
    addressing hash;
    states { joined; }
    neighbor_types { member 32 { } }
    transports { TCP CTRL; UDP DATA; }
    messages {
        CTRL hello { node who; int round; }
        CTRL roster { member sibs; member others; }
        DATA chunk { key group; node origin; int seqno; payload data; }
    }
    state_variables {
        member members;
        member backups;
        timer tick 1000;
        node origin;
        int rounds;
        int seen;
    }
    transitions {
        init API init { state_change(joined); }
        any recv hello {
            rounds = rounds + field(round);
            neighbor_add(members, field(who));
        }
        any recv roster { members = field(sibs); backups = field(others); }
        joined recv chunk {
            if (field(seqno) > seen) { seen = field(seqno); origin = field(origin); }
        }
        any timer tick { rounds = rounds + 1; }
    }
"#;

/// One-node stack running [`DISPATCH_SPEC`] interpreted, ready for
/// direct `Stack::recv`/`Stack::timer` event injection.
pub fn dispatch_stack() -> macedon_core::Stack {
    let spec =
        std::sync::Arc::new(macedon_lang::compile(DISPATCH_SPEC).expect("dispatch spec compiles"));
    let agent = macedon_lang::InterpretedAgent::new(spec, Some(NodeId(1)));
    let mut stack = macedon_core::Stack::new(
        NodeId(7),
        MacedonKey(7),
        vec![Box::new(agent)],
        Box::new(macedon_core::NullApp),
        SimRng::new(42),
    );
    // Measure under the world's default trace configuration (Off), not
    // the bare-stack default of emit-everything.
    stack.set_trace_level(macedon_core::TraceLevel::Off);
    // Fire init transitions (state joined) so every injected event
    // dispatches — the steady-state hot path.
    let mut fx = Vec::new();
    stack.init(Time::ZERO, &mut fx);
    stack
}

/// Pre-encoded wire frames for the three [`DISPATCH_SPEC`] messages
/// (hello, roster, chunk), paired with their sender.
pub fn dispatch_frames() -> Vec<(NodeId, Bytes)> {
    use macedon_core::WireWriter;
    let proto = macedon_lang::interp::protocol_id_of("dispatch");
    let mut frames = Vec::new();
    let mut w = WireWriter::new();
    w.u16(proto).u16(0).node(NodeId(3)).u64(2);
    frames.push((NodeId(3), w.finish()));
    let mut w = WireWriter::new();
    w.u16(proto).u16(1);
    w.nodes(&[NodeId(2), NodeId(3), NodeId(4), NodeId(5)]);
    w.nodes(&[NodeId(6), NodeId(8), NodeId(9)]);
    frames.push((NodeId(2), w.finish()));
    let mut w = WireWriter::new();
    w.u16(proto)
        .u16(2)
        .key(MacedonKey(0xBEEF))
        .node(NodeId(9))
        .u64(9);
    w.bytes(&[0u8; 64]);
    frames.push((NodeId(4), w.finish()));
    frames
}

/// The macro benchmark behind `bin/bench_interp`: a seeded `nodes`-node
/// from-spec splitstream world — interpreted splitstream → scribe →
/// pastry on every node — joined at t≈6s and streamed from `converge_s`
/// for `stream_s` seconds. Returns (packets delivered, transitions
/// fired) so callers can sanity-check the run did real work; wall-clock
/// is the caller's to measure.
pub fn interp_macro_run(nodes: usize, converge_s: u64, stream_s: u64) -> (usize, u64) {
    let registry = macedon_lang::SpecRegistry::bundled();
    let topo = canned::star(
        nodes,
        LinkSpec::new(Duration::from_millis(2), 2_000_000, 64 * 1024),
    );
    let hosts = topo.hosts().to_vec();
    let mut cfg = WorldConfig {
        seed: 12,
        ..Default::default()
    };
    cfg.channels = registry
        .channel_table_for("splitstream")
        .expect("bundled chain resolves");
    let mut w = World::new(topo, cfg);
    let sink = shared_deliveries();
    let group = MacedonKey::of_name("bench-interp-stream");
    for (i, &h) in hosts.iter().enumerate() {
        let stack = registry
            .build_stack("splitstream", (i > 0).then(|| hosts[0]))
            .expect("bundled stack builds");
        if i == 0 {
            let app = StreamerApp::new(
                StreamKind::Multicast { group },
                200_000,
                1_000,
                Time::from_secs(converge_s),
                Time::from_secs(converge_s + stream_s),
                sink.clone(),
            );
            w.spawn_at(Time::ZERO, h, stack, Box::new(app));
        } else {
            w.spawn_at(
                Time::from_millis(i as u64 * 50),
                h,
                stack,
                Box::new(CollectorApp::new(sink.clone())),
            );
        }
    }
    for (i, &h) in hosts.iter().enumerate() {
        w.api_at(
            Time::from_secs(6) + Duration::from_millis(i as u64 * 50),
            h,
            DownCall::Join { group },
        );
    }
    w.run_until(Time::from_secs(converge_s + stream_s + 10));
    let delivered = sink.lock().len();
    let transitions = {
        let (r, wr) = w.transition_counts();
        r + wr
    };
    (delivered, transitions)
}

// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_rows_complete() {
        let rows = fig7();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.loc > 0);
            assert!(r.semicolons > 0);
            assert!(r.generated_loc > 0);
            assert!(r.paper_loc > 0);
            assert!(r.layers >= 1, "{} resolves to a runnable stack", r.name);
        }
        // The layered roster reports its chain depth.
        let depth = |n: &str| rows.iter().find(|r| r.name == n).unwrap().layers;
        assert_eq!(depth("splitstream"), 3);
        assert_eq!(depth("scribe"), 2);
        assert_eq!(depth("bullet"), 2);
        assert_eq!(depth("pastry"), 1);
    }

    #[test]
    fn nice_matrix_is_symmetric() {
        let m = nice_site_latencies();
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0);
            for (j, &cell) in row.iter().enumerate() {
                assert_eq!(cell, m[j][i]);
            }
        }
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
