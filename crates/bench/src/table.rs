//! Minimal aligned-table printer for experiment output.

/// Print a header and aligned rows of (label, values...).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Write rows as CSV next to stdout output when `--csv <path>` is given.
pub fn maybe_write_csv(headers: &[&str], rows: &[Vec<String>]) {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--csv" {
            if let Some(path) = args.next() {
                let mut out = String::new();
                out.push_str(&headers.join(","));
                out.push('\n');
                for row in rows {
                    out.push_str(&row.join(","));
                    out.push('\n');
                }
                match std::fs::write(&path, out) {
                    Ok(()) => println!("(wrote {path})"),
                    Err(e) => eprintln!("--csv {path}: {e}"),
                }
            }
            return;
        }
    }
}

/// Two-decimal float cell.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// One-decimal float cell.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_cells() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f1(3.15), "3.1");
    }

    #[test]
    fn csv_writer_is_noop_without_flag() {
        // No --csv in the test binary's args: must not write anything.
        maybe_write_csv(&["a"], &[vec!["1".into()]]);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
