//! Ablation benches for the design choices DESIGN.md §5 calls out:
//!
//! 1. static vs dynamic fix-fingers period (Fig 10's own question),
//! 2. one shared transport vs multiple priority transports (§3.1),
//! 3. control/data locking classification (read-share opportunity),
//! 4. location-cache lifetime sweep (Fig 12's knob),
//! 5. failure-detector g/f thresholds (detection latency trade-off).
//!
//! These report *virtual-run outcomes* through Criterion's timing of
//! fixed-size simulations, and print the protocol-level metric so the
//! ablation's effect is visible in the bench log.

use criterion::{criterion_group, criterion_main, Criterion};
use macedon_core::app::{shared_deliveries, CollectorApp};
use macedon_core::Bytes;
use macedon_core::{DownCall, Duration, MacedonKey, NodeId, Time, World, WorldConfig};
use macedon_overlays::chord::{Chord, ChordConfig};
use macedon_overlays::overcast::{Overcast, OvercastConfig};
use macedon_overlays::testutil::{collect_ring, star_topology};

/// 1. Chord fix-fingers timer ablation: correct entries at t=40 s.
fn ablation_chord_timer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/chord-fix-fingers");
    for (label, period_s, dynamic) in [
        ("static-1s", 1u64, false),
        ("static-20s", 20, false),
        ("lsd-dynamic", 4, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let topo = star_topology(12);
                let hosts = topo.hosts().to_vec();
                let mut w = World::new(
                    topo,
                    WorldConfig {
                        seed: 5,
                        ..Default::default()
                    },
                );
                let sink = shared_deliveries();
                for (i, &h) in hosts.iter().enumerate() {
                    let cfg = ChordConfig {
                        bootstrap: (i > 0).then(|| hosts[0]),
                        fix_fingers_period: Duration::from_secs(period_s),
                        fix_fingers_dynamic: dynamic
                            .then(|| (Duration::from_millis(500), Duration::from_secs(32))),
                        ..Default::default()
                    };
                    w.spawn_at(
                        Time::from_millis(i as u64 * 100),
                        h,
                        vec![Box::new(Chord::new(cfg))],
                        Box::new(CollectorApp::new(sink.clone())),
                    );
                }
                w.run_until(Time::from_secs(40));
                let ring = collect_ring(&w, &hosts);
                let owner = |k: MacedonKey| {
                    ring.iter()
                        .copied()
                        .min_by_key(|&(_, rk)| k.distance_to(rk))
                        .unwrap()
                        .0
                };
                let mut good = 0usize;
                for &h in &hosts {
                    let ch: &Chord = w
                        .stack(h)
                        .unwrap()
                        .agent(0)
                        .as_any()
                        .downcast_ref()
                        .unwrap();
                    let me = w.key_of(h);
                    for (i, f) in ch.fingers().iter().enumerate() {
                        if matches!(f, Some((n, _)) if *n == owner(me.plus_pow2(i as u32))) {
                            good += 1;
                        }
                    }
                }
                good
            })
        });
    }
    group.finish();
}

/// 2. Transport-class ablation: Overcast joins while a bulk transfer
///    hogs the shared (or separate) transport.
fn ablation_transport_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/transport-classes");
    for (label, shared) in [("separate-priorities", false), ("single-shared-tcp", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let topo = star_topology(8);
                let hosts = topo.hosts().to_vec();
                let mut w = World::new(
                    topo,
                    WorldConfig {
                        seed: 6,
                        ..Default::default()
                    },
                );
                let sink = shared_deliveries();
                for (i, &h) in hosts.iter().enumerate() {
                    let mut cfg = OvercastConfig {
                        bootstrap: (i > 0).then(|| hosts[0]),
                        ..Default::default()
                    };
                    if shared {
                        // Control rides the same TCP channel as bulk data.
                        cfg.control_ch = cfg.data_ch;
                    }
                    w.spawn_at(
                        Time::from_millis(i as u64 * 100),
                        h,
                        vec![Box::new(Overcast::new(cfg))],
                        Box::new(CollectorApp::new(sink.clone())),
                    );
                }
                // Bulk pressure on the data channel throughout.
                for k in 0..40u64 {
                    w.api_at(
                        Time::from_millis(200 + k * 100),
                        hosts[0],
                        DownCall::Multicast {
                            group: MacedonKey(0),
                            payload: Bytes::from(vec![0u8; 8 + 60_000]),
                            priority: -1,
                        },
                    );
                }
                w.run_until(Time::from_secs(30));
                let joined = hosts
                    .iter()
                    .filter(|&&h| {
                        let o: &Overcast = w
                            .stack(h)
                            .unwrap()
                            .agent(0)
                            .as_any()
                            .downcast_ref()
                            .unwrap();
                        o.parent().is_some() || o.is_root()
                    })
                    .count();
                joined
            })
        });
    }
    group.finish();
}

/// 3. Locking classification: measure the read-share the data/control
///    split exposes on a routing-heavy workload.
fn ablation_locking_classes(c: &mut Criterion) {
    c.bench_function("ablation/locking read-share", |b| {
        b.iter(|| {
            let topo = star_topology(10);
            let hosts = topo.hosts().to_vec();
            let mut w = World::new(
                topo,
                WorldConfig {
                    seed: 7,
                    ..Default::default()
                },
            );
            let sink = shared_deliveries();
            for (i, &h) in hosts.iter().enumerate() {
                let cfg = ChordConfig {
                    bootstrap: (i > 0).then(|| hosts[0]),
                    ..Default::default()
                };
                w.spawn_at(
                    Time::from_millis(i as u64 * 100),
                    h,
                    vec![Box::new(Chord::new(cfg))],
                    Box::new(CollectorApp::new(sink.clone())),
                );
            }
            w.run_until(Time::from_secs(40));
            let (r, wr) = w.transition_counts();
            // The data/control split must expose real parallelism.
            assert!(r > 0, "read transitions observed");
            (r, wr)
        })
    });
}

/// 5. Failure-detector thresholds: detection latency under g/f choices.
fn ablation_fd_thresholds(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/failure-detector");
    for (label, g_s, f_s) in [
        ("aggressive-2s-6s", 2u64, 6u64),
        ("paper-5s-15s", 5, 15),
        ("lazy-10s-30s", 10, 30),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let topo = star_topology(6);
                let hosts = topo.hosts().to_vec();
                let mut cfg = WorldConfig {
                    seed: 8,
                    ..Default::default()
                };
                cfg.fd_g = Duration::from_secs(g_s);
                cfg.fd_f = Duration::from_secs(f_s);
                let mut w = World::new(topo, cfg);
                let sink = shared_deliveries();
                for (i, &h) in hosts.iter().enumerate() {
                    let ccfg = ChordConfig {
                        bootstrap: (i > 0).then(|| hosts[0]),
                        ..Default::default()
                    };
                    w.spawn_at(
                        Time::from_millis(i as u64 * 100),
                        h,
                        vec![Box::new(Chord::new(ccfg))],
                        Box::new(CollectorApp::new(sink.clone())),
                    );
                }
                w.run_until(Time::from_secs(30));
                let victim = hosts[3];
                w.crash_at(Time::from_secs(30), victim);
                // Run until the ring heals; shorter f heals sooner.
                w.run_until(Time::from_secs(30 + 4 * f_s + 20));
                let alive: Vec<NodeId> = hosts.iter().copied().filter(|&h| h != victim).collect();
                let ring = collect_ring(&w, &alive);
                let healed = ring.iter().enumerate().all(|(i, &(node, _))| {
                    let ch: &Chord = w
                        .stack(node)
                        .unwrap()
                        .agent(0)
                        .as_any()
                        .downcast_ref()
                        .unwrap();
                    ch.successor().map(|(n, _)| n) == Some(ring[(i + 1) % ring.len()].0)
                });
                assert!(healed, "{label}: ring healed");
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_chord_timer, ablation_transport_classes, ablation_locking_classes, ablation_fd_thresholds
}
criterion_main!(benches);
