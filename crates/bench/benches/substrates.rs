//! Microbenchmarks on the substrate crates: event scheduler, RNG, SHA-1,
//! wire codec, shortest-path routing, transport round trips.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use macedon_core::sha1::sha1;
use macedon_core::Bytes;
use macedon_core::{WireReader, WireWriter};
use macedon_net::topology::{canned, LinkSpec};
use macedon_net::topology::{inet, InetParams};
use macedon_net::Router;
use macedon_sim::{Scheduler, SimRng, Time};
use macedon_transport::harness::TransportWorld;
use macedon_transport::ChannelSpec;

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler/schedule+pop 10k", |b| {
        b.iter_batched(
            || {
                let mut rng = SimRng::new(1);
                (0..10_000u64)
                    .map(|_| rng.gen_range(1_000_000))
                    .collect::<Vec<_>>()
            },
            |times| {
                let mut s = Scheduler::new();
                for (i, t) in times.iter().enumerate() {
                    s.schedule(Time::from_micros(*t), i);
                }
                while s.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/next_u64 x1k", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });
}

fn bench_sha1(c: &mut Criterion) {
    let data = vec![0xA5u8; 1024];
    c.bench_function("sha1/1KiB", |b| b.iter(|| sha1(&data)));
}

fn bench_wire(c: &mut Criterion) {
    c.bench_function("wire/roundtrip 1KiB message", |b| {
        let blob = vec![3u8; 1000];
        b.iter(|| {
            let mut w = WireWriter::new();
            w.u16(3)
                .u16(6)
                .key(macedon_core::MacedonKey(5))
                .bytes(&blob);
            let buf = w.finish();
            let mut r = WireReader::new(buf);
            let _ = r.u16();
            let _ = r.u16();
            let _ = r.key();
            r.bytes().unwrap().len()
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let mut rng = SimRng::new(3);
    let topo = inet(
        &InetParams {
            routers: 2_000,
            clients: 100,
            ..Default::default()
        },
        &mut rng,
    );
    let hosts = topo.hosts().to_vec();
    c.bench_function("routing/dijkstra tree on 2k-router INET", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let mut r = Router::new();
            i = (i + 1) % hosts.len();
            r.dist(&topo, hosts[0], hosts[i])
        })
    });
}

fn bench_transport(c: &mut Criterion) {
    c.bench_function("transport/tcp 100x1KiB over emulated LAN", |b| {
        b.iter(|| {
            let mut w = TransportWorld::new(
                canned::two_hosts(LinkSpec::lan()),
                ChannelSpec::default_table(),
            );
            let h = w.net.topology().hosts().to_vec();
            let ch = w.endpoints[&h[0]].channel_by_name("HIGH").unwrap();
            for _ in 0..100 {
                w.send(h[0], h[1], ch, Bytes::from(vec![0u8; 1024]));
            }
            w.run_until(Time::from_secs(60));
            assert_eq!(w.inbox.len(), 100);
        })
    });
}

criterion_group!(
    benches,
    bench_scheduler,
    bench_rng,
    bench_sha1,
    bench_wire,
    bench_routing,
    bench_transport
);
criterion_main!(benches);
