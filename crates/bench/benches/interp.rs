//! Interpreted-agent dispatch benchmarks: the per-event hot path of
//! `macedon_lang::interp` — wire decode, transition lookup, and action
//! execution — driven through a real `macedon_core::Stack` exactly the
//! way the world's event loop drives it.
//!
//! The companion macro benchmark (`cargo run -p macedon-bench --bin
//! bench_interp`) runs a whole from-spec splitstream world and records
//! the trajectory in `BENCH_interp.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use macedon_bench::experiments::{dispatch_frames, dispatch_stack, DISPATCH_SPEC};
use macedon_core::{SpanId, Time};

fn bench_recv_dispatch(c: &mut Criterion) {
    let frames = dispatch_frames();
    let mut stack = dispatch_stack();
    let mut fx = Vec::new();
    c.bench_function("interp/recv dispatch (3 msgs)", |b| {
        b.iter(|| {
            for (from, frame) in &frames {
                stack.recv(Time::ZERO, *from, frame.clone(), SpanId::NONE, &mut fx);
            }
            fx.clear();
        })
    });
}

fn bench_timer_dispatch(c: &mut Criterion) {
    let mut stack = dispatch_stack();
    let mut fx = Vec::new();
    c.bench_function("interp/timer dispatch", |b| {
        b.iter(|| {
            stack.timer(Time::ZERO, 0, 0, &mut fx);
            fx.clear();
        })
    });
}

fn bench_compile_to_runnable(c: &mut Criterion) {
    c.bench_function("interp/compile dispatch spec", |b| {
        b.iter(|| macedon_lang::compile(DISPATCH_SPEC).unwrap())
    });
}

criterion_group!(
    benches,
    bench_recv_dispatch,
    bench_timer_dispatch,
    bench_compile_to_runnable
);
criterion_main!(benches);
