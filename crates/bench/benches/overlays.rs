//! End-to-end overlay benchmarks: full virtual runs measured in host
//! time (how fast the reproduction simulates, not protocol quality).

use criterion::{criterion_group, criterion_main, Criterion};
use macedon_core::app::{shared_deliveries, CollectorApp};
use macedon_core::{Bytes, DownCall, Duration, MacedonKey, Time, World, WorldConfig};
use macedon_overlays::chord::{Chord, ChordConfig};
use macedon_overlays::pastry::{Pastry, PastryConfig};
use macedon_overlays::testutil::star_topology;

fn bench_chord_convergence(c: &mut Criterion) {
    c.bench_function("overlay/chord 16-ring to 60 virtual s", |b| {
        b.iter(|| {
            let topo = star_topology(16);
            let hosts = topo.hosts().to_vec();
            let mut w = World::new(
                topo,
                WorldConfig {
                    seed: 1,
                    ..Default::default()
                },
            );
            let sink = shared_deliveries();
            for (i, &h) in hosts.iter().enumerate() {
                let cfg = ChordConfig {
                    bootstrap: (i > 0).then(|| hosts[0]),
                    ..Default::default()
                };
                w.spawn_at(
                    Time::from_millis(i as u64 * 100),
                    h,
                    vec![Box::new(Chord::new(cfg))],
                    Box::new(CollectorApp::new(sink.clone())),
                );
            }
            w.run_until(Time::from_secs(60));
            w.events_fired()
        })
    });
}

fn bench_pastry_lookups(c: &mut Criterion) {
    // Converge once, then measure lookup batches on the same world.
    c.bench_function("overlay/pastry 20 lookups on converged 16-mesh", |b| {
        let topo = star_topology(16);
        let hosts = topo.hosts().to_vec();
        let mut w = World::new(
            topo,
            WorldConfig {
                seed: 2,
                ..Default::default()
            },
        );
        let sink = shared_deliveries();
        for (i, &h) in hosts.iter().enumerate() {
            let cfg = PastryConfig {
                bootstrap: (i > 0).then(|| hosts[0]),
                ..Default::default()
            };
            w.spawn_at(
                Time::from_millis(i as u64 * 100),
                h,
                vec![Box::new(Pastry::new(cfg))],
                Box::new(CollectorApp::new(sink.clone())),
            );
        }
        w.run_until(Time::from_secs(60));
        let mut epoch = 60u64;
        b.iter(|| {
            for i in 0..20u64 {
                let mut p = vec![0u8; 32];
                p[..8].copy_from_slice(&i.to_be_bytes());
                w.api_at(
                    Time::from_secs(epoch) + Duration::from_millis(i),
                    hosts[(i % 16) as usize],
                    DownCall::Route {
                        dest: MacedonKey(
                            (i as u32)
                                .wrapping_mul(0x9E37_79B9)
                                .wrapping_add(epoch as u32),
                        ),
                        payload: Bytes::from(p),
                        priority: -1,
                    },
                );
            }
            epoch += 5;
            w.run_until(Time::from_secs(epoch));
        })
    });
}

criterion_group!(benches, bench_chord_convergence, bench_pastry_lookups);
criterion_main!(benches);
