//! DSL pipeline benchmarks: lexing, parsing, semantic analysis, code
//! generation, and interpreted-agent dispatch.

use criterion::{criterion_group, criterion_main, Criterion};
use macedon_lang::{analyze, bundled_specs, codegen, compile, parse};

fn overcast_src() -> &'static str {
    bundled_specs()
        .into_iter()
        .find(|(n, _)| *n == "overcast")
        .unwrap()
        .1
}

fn bench_parse(c: &mut Criterion) {
    let src = overcast_src();
    c.bench_function("dsl/parse overcast.mac", |b| b.iter(|| parse(src).unwrap()));
}

fn bench_analyze(c: &mut Criterion) {
    let spec = parse(overcast_src()).unwrap();
    c.bench_function("dsl/analyze overcast.mac", |b| {
        b.iter(|| analyze(&spec).unwrap())
    });
}

fn bench_codegen(c: &mut Criterion) {
    let spec = compile(overcast_src()).unwrap();
    c.bench_function("dsl/codegen overcast.mac", |b| {
        b.iter(|| codegen::generate(&spec).unwrap().len())
    });
}

fn bench_compile_all(c: &mut Criterion) {
    c.bench_function("dsl/compile all bundled specs", |b| {
        b.iter(|| {
            for (_, src) in bundled_specs() {
                compile(src).unwrap();
            }
        })
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_analyze,
    bench_codegen,
    bench_compile_all
);
criterion_main!(benches);
