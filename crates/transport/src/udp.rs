//! Best-effort datagram channel (the paper's "unreliable,
//! congestion-unfriendly" UDP kind).
//!
//! Messages larger than the MSS are fragmented; the receiver reassembles
//! by message id and delivers only complete messages. Any lost fragment
//! loses the whole message — exactly UDP+IP-fragmentation semantics.

use crate::segment::{fragment, ChannelId, SegKind, Segment};
use bytes::Bytes;
use std::collections::HashMap;

/// Bound on concurrent partially-reassembled messages; oldest evicted.
const REASSEMBLY_CAP: usize = 64;

/// Per-peer datagram state.
#[derive(Default)]
pub struct UdpConn {
    next_msg: u64,
    partial: HashMap<u64, PartialMsg>,
    insertion: Vec<u64>,
    /// Datagrams sent (fragments).
    pub frags_sent: u64,
    /// Complete messages delivered.
    pub messages_delivered: u64,
}

struct PartialMsg {
    frags: u16,
    parts: HashMap<u16, Bytes>,
    /// Causal trace span of the message (out-of-band metadata).
    span: u64,
}

impl UdpConn {
    pub fn new() -> UdpConn {
        UdpConn::default()
    }

    /// Emit the fragments of one datagram. `span` is the causal trace
    /// span riding with the message (zero when untraced).
    pub fn send(&mut self, msg: Bytes, span: u64, tx: &mut Vec<Segment>) {
        let parts = fragment(&msg);
        let frags = parts.len() as u16;
        let id = self.next_msg;
        self.next_msg += 1;
        for (i, bytes) in parts.into_iter().enumerate() {
            self.frags_sent += 1;
            tx.push(Segment {
                channel: ChannelId(0), // endpoint rewrites
                span,
                kind: SegKind::Datagram {
                    msg: id,
                    frag: i as u16,
                    frags,
                    bytes,
                },
            });
        }
    }

    /// Accept an inbound fragment; returns a complete message (with its
    /// causal span) when the last fragment arrives.
    pub fn on_datagram(
        &mut self,
        msg: u64,
        frag: u16,
        frags: u16,
        bytes: Bytes,
        span: u64,
    ) -> Option<(Bytes, u64)> {
        if frags == 1 {
            self.messages_delivered += 1;
            return Some((bytes, span));
        }
        let entry = self.partial.entry(msg).or_insert_with(|| PartialMsg {
            frags,
            parts: HashMap::new(),
            span,
        });
        if self.insertion.last() != Some(&msg) && !self.insertion.contains(&msg) {
            self.insertion.push(msg);
        }
        entry.parts.insert(frag, bytes);
        if entry.parts.len() == entry.frags as usize {
            let done = self.partial.remove(&msg).expect("just inserted");
            self.insertion.retain(|&m| m != msg);
            let mut buf = Vec::new();
            for i in 0..done.frags {
                buf.extend_from_slice(&done.parts[&i]);
            }
            self.messages_delivered += 1;
            return Some((Bytes::from(buf), done.span));
        }
        // Evict oldest partials beyond the cap.
        while self.partial.len() > REASSEMBLY_CAP {
            let oldest = self.insertion.remove(0);
            self.partial.remove(&oldest);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::MSS;

    fn dg(seg: &Segment) -> (u64, u16, u16, Bytes) {
        match &seg.kind {
            SegKind::Datagram {
                msg,
                frag,
                frags,
                bytes,
            } => (*msg, *frag, *frags, bytes.clone()),
            other => panic!("expected datagram, got {other:?}"),
        }
    }

    #[test]
    fn small_datagram_single_fragment() {
        let mut a = UdpConn::new();
        let mut tx = Vec::new();
        a.send(Bytes::from_static(b"ping"), 9, &mut tx);
        assert_eq!(tx.len(), 1);
        assert_eq!(tx[0].span, 9);
        let mut b = UdpConn::new();
        let (m, f, fs, by) = dg(&tx[0]);
        let (got, span) = b.on_datagram(m, f, fs, by, tx[0].span).unwrap();
        assert_eq!(&got[..], b"ping");
        assert_eq!(span, 9, "span rides to delivery");
    }

    #[test]
    fn large_datagram_reassembles() {
        let payload: Vec<u8> = (0..(MSS as usize * 3 + 5))
            .map(|i| (i % 256) as u8)
            .collect();
        let mut a = UdpConn::new();
        let mut tx = Vec::new();
        a.send(Bytes::from(payload.clone()), 3, &mut tx);
        assert_eq!(tx.len(), 4);
        let mut b = UdpConn::new();
        let mut got = None;
        for seg in &tx {
            let (m, f, fs, by) = dg(seg);
            if let Some(full) = b.on_datagram(m, f, fs, by, seg.span) {
                got = Some(full);
            }
        }
        let (full, span) = got.unwrap();
        assert_eq!(&full[..], &payload[..]);
        assert_eq!(span, 3, "multi-fragment reassembly keeps the span");
    }

    #[test]
    fn out_of_order_fragments_still_reassemble() {
        let payload = vec![9u8; MSS as usize * 2];
        let mut a = UdpConn::new();
        let mut tx = Vec::new();
        a.send(Bytes::from(payload.clone()), 0, &mut tx);
        tx.reverse();
        let mut b = UdpConn::new();
        let mut got = None;
        for seg in &tx {
            let (m, f, fs, by) = dg(seg);
            if let Some(full) = b.on_datagram(m, f, fs, by, seg.span) {
                got = Some(full);
            }
        }
        assert_eq!(got.unwrap().0.len(), payload.len());
    }

    #[test]
    fn lost_fragment_loses_message() {
        let payload = vec![1u8; MSS as usize * 2];
        let mut a = UdpConn::new();
        let mut tx = Vec::new();
        a.send(Bytes::from(payload), 0, &mut tx);
        let mut b = UdpConn::new();
        // Deliver only the first fragment.
        let (m, f, fs, by) = dg(&tx[0]);
        assert!(b.on_datagram(m, f, fs, by, 0).is_none());
        assert_eq!(b.messages_delivered, 0);
    }

    #[test]
    fn reassembly_cap_evicts_oldest() {
        let mut b = UdpConn::new();
        // Feed first fragments of many two-fragment messages.
        for m in 0..(REASSEMBLY_CAP as u64 + 10) {
            assert!(b
                .on_datagram(m, 0, 2, Bytes::from_static(b"a"), 0)
                .is_none());
        }
        // Completing an evicted early message must not complete (its
        // first fragment was dropped by the cap) and must not panic.
        assert!(b
            .on_datagram(0, 1, 2, Bytes::from_static(b"b"), 0)
            .is_none());
        // ...but a recent one completes.
        let recent = REASSEMBLY_CAP as u64 + 9;
        let got = b.on_datagram(recent, 1, 2, Bytes::from_static(b"b"), 0);
        assert!(got.is_some());
    }

    #[test]
    fn duplicate_fragment_ignored() {
        let mut b = UdpConn::new();
        assert!(b
            .on_datagram(5, 0, 2, Bytes::from_static(b"x"), 0)
            .is_none());
        assert!(b
            .on_datagram(5, 0, 2, Bytes::from_static(b"x"), 0)
            .is_none());
        let (got, _) = b.on_datagram(5, 1, 2, Bytes::from_static(b"y"), 0).unwrap();
        assert_eq!(&got[..], b"xy");
    }
}
