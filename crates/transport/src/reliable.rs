//! Reliable message-oriented connection shared by the TCP and SWP kinds.
//!
//! Both provide exactly-once, in-order message delivery via cumulative
//! ACKs and retransmission. They differ only in how the send window
//! evolves:
//!
//! * **TCP** — slow start + AIMD congestion avoidance, fast retransmit on
//!   three duplicate ACKs, multiplicative decrease on loss
//!   (congestion-*friendly*, like the paper's TCP transports);
//! * **SWP** — a fixed-size sliding window with go-to-front retransmit
//!   and **no** congestion response (reliable, congestion-*unfriendly*).

use crate::rtt::RttEstimator;
use crate::segment::{ChannelId, SegKind, Segment};
use bytes::Bytes;
use macedon_sim::{Duration, Time};
use std::collections::{BTreeMap, VecDeque};

/// Window policy for a reliable connection.
#[derive(Clone, Copy, Debug)]
pub enum WindowPolicy {
    /// TCP-like congestion control; initial ssthresh in segments.
    Tcp,
    /// Fixed window of `w` segments.
    Swp { window: u32 },
}

#[derive(Clone, Debug)]
struct SegBuf {
    msg: u64,
    frag: u16,
    frags: u16,
    bytes: Bytes,
    /// Causal trace span of the message (out-of-band metadata;
    /// retransmissions reuse it).
    span: u64,
    sent_at: Option<Time>,
    retransmitted: bool,
}

/// Counters exposed for the overhead metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnStats {
    pub segments_sent: u64,
    pub retransmissions: u64,
    pub acks_sent: u64,
    pub messages_delivered: u64,
    pub bytes_sent: u64,
}

/// One direction pair (sender+receiver state) of a reliable channel to a
/// single peer.
pub struct ReliableConn {
    policy: WindowPolicy,
    // --- sender ---
    /// Unacknowledged + unsent segments; `segs[i]` carries sequence
    /// number `snd_una + i` (the sender range is always contiguous, so
    /// a deque beats a tree: O(1) push, pop, and seek).
    segs: VecDeque<SegBuf>,
    snd_una: u64,
    snd_nxt: u64,
    next_assign: u64,
    next_msg: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    est: RttEstimator,
    timer_gen: u64,
    // --- receiver ---
    rcv_nxt: u64,
    ooo: BTreeMap<u64, SegBuf>,
    partial: Vec<Bytes>,
    partial_msg: Option<u64>,
    /// Span of the message currently reassembling in `partial`.
    partial_span: u64,
    /// In-order data segments received but not yet acknowledged
    /// (delayed-ack state).
    ack_pending: u32,
    /// A delayed-ack timer is outstanding at the endpoint.
    ack_timer_armed: bool,
    /// Arrival time of the previous data segment (burst detector for
    /// the adaptive delayed ack).
    last_data_at: Option<Time>,
    // --- stats ---
    pub stats: ConnStats,
}

/// What the connection wants done; the endpoint turns these into packets
/// and scheduler entries.
#[derive(Default)]
pub struct ConnOut {
    /// Segments to transmit to the peer.
    pub tx: Vec<Segment>,
    /// Fully reassembled inbound messages, in order, each with the
    /// causal span that rode with it.
    pub delivered: Vec<(Bytes, u64)>,
    /// Re-arm the RTO timer at the given absolute time with this
    /// generation (at most one per call). Supersedes any outstanding
    /// RTO for this connection.
    pub arm_timer: Option<(Time, u64)>,
    /// The send window fully drained: the outstanding RTO (if any) is
    /// dead and the caller should cancel it rather than let it fire
    /// stale.
    pub cancel_rto: bool,
    /// Arm the delayed-ack timer at the given absolute time (at most
    /// one outstanding per connection).
    pub arm_ack_timer: Option<Time>,
    /// A pending delayed ack was flushed by other traffic: cancel the
    /// outstanding delayed-ack timer.
    pub cancel_ack_timer: bool,
    /// An acknowledgement advanced the send window: the Karn-filtered
    /// RTT sample taken from it, if any (at most one per call). Feeds
    /// the engine's per-peer measurement ledger.
    pub ack_rtt: Option<Option<Duration>>,
}

const INITIAL_CWND: f64 = 2.0;
const INITIAL_SSTHRESH: f64 = 64.0;
/// Cap on out-of-order buffering at the receiver (segments); beyond this
/// the receiver drops (sender will retransmit).
const OOO_CAP: usize = 1024;
/// Cumulative-ack cap: acknowledge at latest every `ACK_EVERY`-th
/// in-order data segment (TCP's delayed-ack "every second segment").
pub const ACK_EVERY: u32 = 2;
/// Delayed-ack timeout for in-order data below the cap. Must stay well
/// under [`crate::rtt::MIN_RTO`] (50 ms) so a coalesced ack never races
/// the sender's retransmission timer.
pub const DELAYED_ACK: Duration = Duration(10_000);

impl ReliableConn {
    pub fn new(policy: WindowPolicy) -> ReliableConn {
        ReliableConn {
            policy,
            segs: VecDeque::new(),
            snd_una: 0,
            snd_nxt: 0,
            next_assign: 0,
            next_msg: 0,
            cwnd: INITIAL_CWND,
            ssthresh: INITIAL_SSTHRESH,
            dup_acks: 0,
            est: RttEstimator::new(),
            timer_gen: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            partial: Vec::new(),
            partial_msg: None,
            partial_span: 0,
            ack_pending: 0,
            ack_timer_armed: false,
            last_data_at: None,
            stats: ConnStats::default(),
        }
    }

    /// Current send window in segments.
    pub fn window(&self) -> u32 {
        match self.policy {
            WindowPolicy::Tcp => (self.cwnd as u32).max(1),
            WindowPolicy::Swp { window } => window.max(1),
        }
    }

    /// Congestion window (TCP) for observability.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Segments queued but not yet acknowledged.
    pub fn backlog(&self) -> usize {
        self.segs.len()
    }

    /// Smoothed RTT estimate, if any samples were taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.est.srtt()
    }

    /// Enqueue a message; transmits whatever the window allows. `span`
    /// is the causal trace span riding with the message (zero when
    /// untraced).
    pub fn send(&mut self, now: Time, msg: Bytes, span: u64, out: &mut ConnOut) {
        let frags = crate::segment::fragment_count(msg.len()) as u16;
        let msg_id = self.next_msg;
        self.next_msg += 1;
        let mut i = 0u16;
        crate::segment::for_each_fragment(&msg, |bytes| {
            self.next_assign += 1;
            self.segs.push_back(SegBuf {
                msg: msg_id,
                frag: i,
                frags,
                bytes,
                span,
                sent_at: None,
                retransmitted: false,
            });
            i += 1;
        });
        self.pump(now, out);
    }

    /// Handle an inbound data segment; emits ACKs (coalesced for
    /// in-order traffic) and any completed messages.
    ///
    /// Ack policy, mirroring TCP delayed acks: a segment that arrives
    /// out of order, duplicates, or leaves a sequence gap is
    /// acknowledged **immediately** — those acks are the sender's loss
    /// signal (three duplicates trigger fast retransmit). Clean
    /// in-order arrivals are acknowledged every [`ACK_EVERY`]-th
    /// segment; below the cap the ack is deferred by [`DELAYED_ACK`]
    /// **only when a companion segment is plausibly imminent** (the
    /// segment is a non-final fragment of its message, or the previous
    /// segment arrived within the delayed-ack window). On a sparse
    /// stream deferring cannot coalesce anything — it just adds a timer
    /// fire on top of the same ack packet — so the ack goes out at once.
    #[allow(clippy::too_many_arguments)]
    pub fn on_data(
        &mut self,
        now: Time,
        seq: u64,
        msg: u64,
        frag: u16,
        frags: u16,
        bytes: Bytes,
        span: u64,
        out: &mut ConnOut,
    ) {
        let before = self.rcv_nxt;
        if seq >= self.rcv_nxt && self.ooo.len() < OOO_CAP {
            self.ooo.entry(seq).or_insert(SegBuf {
                msg,
                frag,
                frags,
                bytes,
                span,
                sent_at: None,
                retransmitted: false,
            });
            // Advance the in-order frontier.
            while let Some(sb) = self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
                self.accept_in_order(sb, out);
            }
        }
        let advanced = (self.rcv_nxt - before) as u32;
        let clean = advanced > 0 && self.ooo.is_empty();
        let burst = frag + 1 < frags
            || self
                .last_data_at
                .is_some_and(|prev| now.saturating_since(prev) <= DELAYED_ACK);
        self.last_data_at = Some(now);
        if !clean {
            // Duplicate, out-of-order, or still-gapped: ack now so the
            // sender sees duplicates and can fast-retransmit.
            self.flush_ack(out);
        } else {
            self.ack_pending += advanced;
            if self.ack_pending >= ACK_EVERY || !burst {
                self.flush_ack(out);
            } else if !self.ack_timer_armed {
                self.ack_timer_armed = true;
                out.arm_ack_timer = Some(now + DELAYED_ACK);
            }
        }
    }

    /// Emit a cumulative ack now, clearing delayed-ack state.
    fn flush_ack(&mut self, out: &mut ConnOut) {
        self.ack_pending = 0;
        if self.ack_timer_armed {
            self.ack_timer_armed = false;
            out.cancel_ack_timer = true;
        }
        self.stats.acks_sent += 1;
        out.tx.push(Segment {
            channel: ChannelId(0), // endpoint rewrites
            span: 0,
            kind: SegKind::Ack { cum: self.rcv_nxt },
        });
    }

    /// The delayed-ack timer fired: flush whatever is pending.
    pub fn on_ack_timeout(&mut self, out: &mut ConnOut) {
        self.ack_timer_armed = false;
        if self.ack_pending > 0 {
            self.ack_pending = 0;
            self.stats.acks_sent += 1;
            out.tx.push(Segment {
                channel: ChannelId(0),
                span: 0,
                kind: SegKind::Ack { cum: self.rcv_nxt },
            });
        }
    }

    fn accept_in_order(&mut self, sb: SegBuf, out: &mut ConnOut) {
        if self.partial_msg != Some(sb.msg) {
            // A new message begins; any unfinished previous partial is a
            // framing bug (in-order delivery makes fragments contiguous).
            debug_assert!(
                self.partial.is_empty() || self.partial_msg.is_none(),
                "interleaved message fragments"
            );
            self.partial.clear();
            self.partial_msg = Some(sb.msg);
            self.partial_span = sb.span;
        }
        self.partial.push(sb.bytes);
        if self.partial.len() == sb.frags as usize {
            self.partial_msg = None;
            self.stats.messages_delivered += 1;
            let msg = if self.partial.len() == 1 {
                // Single-fragment message: the fragment *is* the whole
                // message (a zero-copy slice of the sender's buffer).
                self.partial.pop().expect("one fragment")
            } else {
                let total: usize = self.partial.iter().map(|b| b.len()).sum();
                let mut buf = Vec::with_capacity(total);
                for part in self.partial.drain(..) {
                    buf.extend_from_slice(&part);
                }
                Bytes::from(buf)
            };
            out.delivered.push((msg, self.partial_span));
        }
    }

    /// Handle a cumulative ACK.
    pub fn on_ack(&mut self, now: Time, cum: u64, out: &mut ConnOut) {
        if cum > self.snd_una {
            // New data acknowledged: drop the front of the send buffer
            // up to the cumulative point.
            let mut rtt_sample: Option<Duration> = None;
            let mut n_acked = 0u32;
            while self.snd_una < cum {
                self.snd_una += 1;
                let Some(sb) = self.segs.pop_front() else {
                    continue;
                };
                n_acked += 1;
                if !sb.retransmitted {
                    if let Some(at) = sb.sent_at {
                        rtt_sample = Some(now.saturating_since(at));
                    }
                }
            }
            if let Some(rtt) = rtt_sample {
                self.est.sample(rtt);
            } else {
                self.est.reset_backoff();
            }
            out.ack_rtt = Some(rtt_sample);
            self.snd_nxt = self.snd_nxt.max(cum);
            self.dup_acks = 0;
            if let WindowPolicy::Tcp = self.policy {
                for _ in 0..n_acked {
                    if self.cwnd < self.ssthresh {
                        self.cwnd += 1.0; // slow start
                    } else {
                        self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                    }
                }
            }
            self.pump(now, out);
            self.rearm(now, out);
        } else if cum == self.snd_una && self.in_flight() > 0 {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                // Fast retransmit.
                if let WindowPolicy::Tcp = self.policy {
                    let flight = self.in_flight() as f64;
                    self.ssthresh = (flight / 2.0).max(2.0);
                    self.cwnd = self.ssthresh;
                }
                self.retransmit_front(now, out);
                self.rearm(now, out);
            }
        }
    }

    /// Handle the RTO firing (endpoint verified generation).
    pub fn on_rto(&mut self, now: Time, gen: u64, out: &mut ConnOut) {
        if gen != self.timer_gen || self.in_flight() == 0 {
            return; // stale timer
        }
        self.est.on_timeout();
        self.dup_acks = 0;
        match self.policy {
            WindowPolicy::Tcp => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = 1.0;
                self.retransmit_front(now, out);
            }
            WindowPolicy::Swp { .. } => {
                // Go-back-N: retransmit the entire in-flight window.
                self.retransmit_window(now, out);
            }
        }
        self.rearm(now, out);
    }

    /// Segments transmitted but not yet acked.
    fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn pump(&mut self, now: Time, out: &mut ConnOut) {
        let window = self.window() as u64;
        let had_flight = self.in_flight() > 0;
        while self.snd_nxt < self.next_assign && self.in_flight() < window {
            let seq = self.snd_nxt;
            let i = (seq - self.snd_una) as usize;
            let sb = self.segs.get_mut(i).expect("segment missing");
            sb.sent_at = Some(now);
            self.stats.segments_sent += 1;
            self.stats.bytes_sent += sb.bytes.len() as u64;
            out.tx.push(Segment {
                channel: ChannelId(0),
                span: sb.span,
                kind: SegKind::Data {
                    seq,
                    msg: sb.msg,
                    frag: sb.frag,
                    frags: sb.frags,
                    bytes: sb.bytes.clone(),
                },
            });
            self.snd_nxt += 1;
        }
        if !had_flight && self.in_flight() > 0 {
            self.rearm(now, out);
        }
    }

    fn retransmit_window(&mut self, now: Time, out: &mut ConnOut) {
        for i in 0..(self.snd_nxt - self.snd_una) as usize {
            let seq = self.snd_una + i as u64;
            if let Some(sb) = self.segs.get_mut(i) {
                sb.retransmitted = true;
                sb.sent_at = Some(now);
                self.stats.segments_sent += 1;
                self.stats.retransmissions += 1;
                self.stats.bytes_sent += sb.bytes.len() as u64;
                out.tx.push(Segment {
                    channel: ChannelId(0),
                    span: sb.span,
                    kind: SegKind::Data {
                        seq,
                        msg: sb.msg,
                        frag: sb.frag,
                        frags: sb.frags,
                        bytes: sb.bytes.clone(),
                    },
                });
            }
        }
    }

    fn retransmit_front(&mut self, now: Time, out: &mut ConnOut) {
        let seq = self.snd_una;
        if let Some(sb) = self.segs.get_mut(0) {
            sb.retransmitted = true;
            sb.sent_at = Some(now);
            self.stats.segments_sent += 1;
            self.stats.retransmissions += 1;
            self.stats.bytes_sent += sb.bytes.len() as u64;
            out.tx.push(Segment {
                channel: ChannelId(0),
                span: sb.span,
                kind: SegKind::Data {
                    seq,
                    msg: sb.msg,
                    frag: sb.frag,
                    frags: sb.frags,
                    bytes: sb.bytes.clone(),
                },
            });
        }
    }

    fn rearm(&mut self, now: Time, out: &mut ConnOut) {
        if self.in_flight() == 0 {
            // Window drained: the outstanding RTO has nothing to guard.
            out.cancel_rto = true;
            return;
        }
        self.timer_gen += 1;
        out.arm_timer = Some((now + self.est.rto(), self.timer_gen));
        out.cancel_rto = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    fn data_fields(seg: &Segment) -> (u64, u64, u16, u16, Bytes) {
        match &seg.kind {
            SegKind::Data {
                seq,
                msg,
                frag,
                frags,
                bytes,
            } => (*seq, *msg, *frag, *frags, bytes.clone()),
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn single_message_roundtrip() {
        let mut a = ReliableConn::new(WindowPolicy::Tcp);
        let mut b = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        a.send(t(0), Bytes::from_static(b"hello"), 7, &mut out);
        assert_eq!(out.tx.len(), 1);
        let (seq, msg, frag, frags, bytes) = data_fields(&out.tx[0]);
        let mut out_b = ConnOut::default();
        b.on_data(
            t(5),
            seq,
            msg,
            frag,
            frags,
            bytes,
            out.tx[0].span,
            &mut out_b,
        );
        assert_eq!(out_b.delivered.len(), 1);
        assert_eq!(&out_b.delivered[0].0[..], b"hello");
        assert_eq!(out_b.delivered[0].1, 7, "span rides to delivery");
        // A lone segment on a quiet connection acks at once: there is
        // nothing to coalesce with, so deferring would only add a timer.
        assert_eq!(out_b.tx.len(), 1, "sparse arrival acks immediately");
        assert!(out_b.arm_ack_timer.is_none());
        let SegKind::Ack { cum } = out_b.tx[0].kind else {
            panic!()
        };
        assert_eq!(cum, 1);
        let mut out_a = ConnOut::default();
        a.on_ack(t(16), cum, &mut out_a);
        assert_eq!(a.backlog(), 0);
        assert_eq!(a.srtt(), Some(Duration::from_millis(16)));
        assert!(out_a.cancel_rto, "drained window cancels the RTO");
    }

    #[test]
    fn multi_fragment_message_reassembles() {
        let mut a = ReliableConn::new(WindowPolicy::Swp { window: 100 });
        let mut b = ReliableConn::new(WindowPolicy::Swp { window: 100 });
        let payload: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let mut out = ConnOut::default();
        a.send(t(0), Bytes::from(payload.clone()), 0, &mut out);
        assert!(out.tx.len() >= 4);
        let mut out_b = ConnOut::default();
        for seg in &out.tx {
            let (seq, msg, frag, frags, bytes) = data_fields(seg);
            b.on_data(t(1), seq, msg, frag, frags, bytes, 0, &mut out_b);
        }
        assert_eq!(out_b.delivered.len(), 1);
        assert_eq!(&out_b.delivered[0].0[..], &payload[..]);
        // In-order stream: one coalesced ack per ACK_EVERY segments.
        let acks = out_b
            .tx
            .iter()
            .filter(|s| matches!(s.kind, SegKind::Ack { .. }))
            .count();
        assert!(
            acks <= out.tx.len().div_ceil(ACK_EVERY as usize),
            "{acks} acks for {} segments",
            out.tx.len()
        );
    }

    #[test]
    fn out_of_order_segments_reorder() {
        let mut a = ReliableConn::new(WindowPolicy::Swp { window: 100 });
        let mut b = ReliableConn::new(WindowPolicy::Swp { window: 100 });
        let mut out = ConnOut::default();
        for m in ["one", "two", "three"] {
            a.send(t(0), Bytes::from(m.as_bytes().to_vec()), 0, &mut out);
        }
        let mut segs: Vec<_> = out.tx.iter().map(data_fields).collect();
        segs.reverse(); // deliver in reverse order
        let mut out_b = ConnOut::default();
        for (seq, msg, frag, frags, bytes) in segs {
            b.on_data(t(1), seq, msg, frag, frags, bytes, 0, &mut out_b);
        }
        let got: Vec<&[u8]> = out_b.delivered.iter().map(|(b, _)| &b[..]).collect();
        assert_eq!(
            got,
            vec![b"one".as_ref(), b"two".as_ref(), b"three".as_ref()]
        );
    }

    #[test]
    fn duplicate_data_delivered_once() {
        let mut a = ReliableConn::new(WindowPolicy::Tcp);
        let mut b = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        a.send(t(0), Bytes::from_static(b"dup"), 0, &mut out);
        let (seq, msg, frag, frags, bytes) = data_fields(&out.tx[0]);
        let mut out_b = ConnOut::default();
        b.on_data(t(1), seq, msg, frag, frags, bytes.clone(), 0, &mut out_b);
        assert_eq!(out_b.tx.len(), 1, "sparse in-order segment acks at once");
        b.on_data(t(2), seq, msg, frag, frags, bytes, 0, &mut out_b);
        assert_eq!(out_b.delivered.len(), 1);
        assert_eq!(out_b.tx.len(), 2, "duplicate forces an immediate ack");
    }

    #[test]
    fn dense_stream_defers_then_duplicate_cancels_timer() {
        let mut a = ReliableConn::new(WindowPolicy::Tcp);
        let mut b = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        for i in 0..3u8 {
            a.send(t(0), Bytes::from(vec![i]), 0, &mut out);
        }
        let segs: Vec<_> = out.tx.iter().map(data_fields).collect();
        let mut out_b = ConnOut::default();
        // Seg 0 on a quiet conn: immediate ack. Seg 1 arrives 1 ms later
        // (dense): deferred, timer armed.
        let (seq, msg, frag, frags, bytes) = segs[0].clone();
        b.on_data(t(1), seq, msg, frag, frags, bytes.clone(), 0, &mut out_b);
        assert_eq!(out_b.tx.len(), 1);
        let (seq1, msg1, frag1, frags1, bytes1) = segs[1].clone();
        b.on_data(t(2), seq1, msg1, frag1, frags1, bytes1, 0, &mut out_b);
        assert_eq!(out_b.tx.len(), 1, "dense arrival defers its ack");
        assert!(out_b.arm_ack_timer.is_some());
        // A duplicate of seg 0 flushes immediately and cancels the timer.
        b.on_data(t(3), seq, msg, frag, frags, bytes, 0, &mut out_b);
        assert_eq!(out_b.tx.len(), 2);
        assert!(
            out_b.cancel_ack_timer,
            "immediate ack cancels the delayed-ack timer"
        );
    }

    #[test]
    fn in_order_stream_coalesces_acks() {
        let mut a = ReliableConn::new(WindowPolicy::Swp { window: 100 });
        let mut b = ReliableConn::new(WindowPolicy::Swp { window: 100 });
        let mut out = ConnOut::default();
        for i in 0..8u8 {
            a.send(t(0), Bytes::from(vec![i]), 0, &mut out);
        }
        let mut out_b = ConnOut::default();
        for seg in &out.tx {
            let (seq, msg, frag, frags, bytes) = data_fields(seg);
            b.on_data(t(1), seq, msg, frag, frags, bytes, 0, &mut out_b);
        }
        let acks: Vec<u64> = out_b
            .tx
            .iter()
            .filter_map(|s| match s.kind {
                SegKind::Ack { cum } => Some(cum),
                _ => None,
            })
            .collect();
        // The first segment (quiet conn) acks at once; from then on the
        // dense stream coalesces one cumulative ack per ACK_EVERY.
        assert_eq!(acks, vec![1, 3, 5, 7], "one cumulative ack per {ACK_EVERY}");
        assert_eq!(b.stats.acks_sent, 4);
        // Segment 8 is still pending under the armed delayed-ack timer.
        assert!(out_b.arm_ack_timer.is_some());
        b.on_ack_timeout(&mut out_b);
        let SegKind::Ack { cum } = out_b.tx.last().unwrap().kind else {
            panic!()
        };
        assert_eq!(cum, 8);
    }

    #[test]
    fn out_of_order_acks_immediately_for_fast_retransmit() {
        let mut a = ReliableConn::new(WindowPolicy::Swp { window: 100 });
        let mut b = ReliableConn::new(WindowPolicy::Swp { window: 100 });
        let mut out = ConnOut::default();
        for i in 0..5u8 {
            a.send(t(0), Bytes::from(vec![i]), 0, &mut out);
        }
        let segs: Vec<_> = out.tx.iter().map(data_fields).collect();
        let mut out_b = ConnOut::default();
        // Deliver 0, then skip 1: every gapped arrival duplicates cum=1.
        let (seq, msg, frag, frags, bytes) = segs[0].clone();
        b.on_data(t(1), seq, msg, frag, frags, bytes, 0, &mut out_b);
        b.on_ack_timeout(&mut out_b); // flush the delayed ack for seg 0
        for s in &segs[2..] {
            let (seq, msg, frag, frags, bytes) = s.clone();
            b.on_data(t(1), seq, msg, frag, frags, bytes, 0, &mut out_b);
        }
        let acks: Vec<u64> = out_b
            .tx
            .iter()
            .filter_map(|s| match s.kind {
                SegKind::Ack { cum } => Some(cum),
                _ => None,
            })
            .collect();
        assert_eq!(
            acks,
            vec![1, 1, 1, 1],
            "gapped arrivals each ack immediately (dup-ack signal)"
        );
    }

    #[test]
    fn delayed_ack_timer_flushes_pending() {
        let mut b = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        // Mid-message fragment: more of the burst is coming, so the ack
        // defers under the timer.
        b.on_data(t(1), 0, 0, 0, 2, Bytes::from_static(b"x"), 0, &mut out);
        assert!(out.tx.is_empty());
        assert!(out.arm_ack_timer.is_some());
        b.on_ack_timeout(&mut out);
        assert_eq!(out.tx.len(), 1);
        // A spurious second timeout emits nothing.
        b.on_ack_timeout(&mut out);
        assert_eq!(out.tx.len(), 1);
    }

    #[test]
    fn window_limits_transmissions() {
        let mut a = ReliableConn::new(WindowPolicy::Swp { window: 4 });
        let mut out = ConnOut::default();
        for i in 0..10u8 {
            a.send(t(0), Bytes::from(vec![i]), 0, &mut out);
        }
        assert_eq!(out.tx.len(), 4, "only window-many segments go out");
        // Ack two → two more flow.
        let mut out2 = ConnOut::default();
        a.on_ack(t(5), 2, &mut out2);
        assert_eq!(out2.tx.len(), 2);
    }

    #[test]
    fn tcp_slow_start_grows_cwnd() {
        let mut a = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        let start = a.cwnd();
        for i in 0..8u8 {
            a.send(t(0), Bytes::from(vec![i]), 0, &mut out);
        }
        // Ack everything transmitted so far, repeatedly.
        for round in 1..5u64 {
            let acked = a.snd_nxt;
            let mut o = ConnOut::default();
            a.on_ack(t(round * 10), acked, &mut o);
        }
        assert!(a.cwnd() > start, "cwnd grew: {} -> {}", start, a.cwnd());
    }

    #[test]
    fn rto_retransmits_and_collapses_cwnd() {
        let mut a = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        a.send(t(0), Bytes::from_static(b"lost"), 5, &mut out);
        let (gen_time, gen) = out.arm_timer.expect("timer armed");
        let mut out2 = ConnOut::default();
        a.on_rto(gen_time, gen, &mut out2);
        assert_eq!(out2.tx.len(), 1, "front segment retransmitted");
        assert_eq!(out2.tx[0].span, 5, "retransmission reuses the span");
        assert_eq!(a.stats.retransmissions, 1);
        assert_eq!(a.cwnd() as u32, 1);
        assert!(out2.arm_timer.is_some(), "timer re-armed with backoff");
    }

    #[test]
    fn stale_rto_generation_ignored() {
        let mut a = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        a.send(t(0), Bytes::from_static(b"x"), 0, &mut out);
        let (at, gen) = out.arm_timer.unwrap();
        // Ack arrives, which re-arms with a new generation...
        let mut o = ConnOut::default();
        a.on_ack(t(1), 1, &mut o);
        // ...then the stale timer fires.
        let mut o2 = ConnOut::default();
        a.on_rto(at, gen, &mut o2);
        assert!(o2.tx.is_empty());
        assert_eq!(a.stats.retransmissions, 0);
    }

    #[test]
    fn triple_dup_ack_fast_retransmits() {
        let mut a = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        // Open the window, then send several segments.
        for i in 0..2u8 {
            a.send(t(0), Bytes::from(vec![i]), 0, &mut out);
        }
        a.on_ack(t(1), 2, &mut out); // cwnd grows to 4
        for i in 0..4u8 {
            a.send(t(1), Bytes::from(vec![i]), 0, &mut out);
        }
        assert!(a.in_flight() >= 4);
        let una = a.snd_una;
        let mut o = ConnOut::default();
        a.on_ack(t(2), una, &mut o);
        a.on_ack(t(2), una, &mut o);
        assert!(o.tx.is_empty());
        a.on_ack(t(2), una, &mut o);
        assert_eq!(o.tx.len(), 1, "third dup ack triggers retransmit");
        assert_eq!(a.stats.retransmissions, 1);
    }

    #[test]
    fn swp_window_never_reacts_to_loss() {
        let mut a = ReliableConn::new(WindowPolicy::Swp { window: 8 });
        let mut out = ConnOut::default();
        a.send(t(0), Bytes::from_static(b"d"), 0, &mut out);
        let (at, gen) = out.arm_timer.unwrap();
        let mut o = ConnOut::default();
        a.on_rto(at, gen, &mut o);
        assert_eq!(a.window(), 8, "SWP window fixed after timeout");
    }

    #[test]
    fn stats_track_bytes() {
        let mut a = ReliableConn::new(WindowPolicy::Tcp);
        let mut out = ConnOut::default();
        a.send(t(0), Bytes::from(vec![0u8; 300]), 0, &mut out);
        assert_eq!(a.stats.bytes_sent, 300);
        assert_eq!(a.stats.segments_sent, 1);
    }
}
