//! # macedon-transport
//!
//! The MACEDON transport subsystem (§3.1 of the paper).
//!
//! A protocol's lowest layer declares named transport instances:
//!
//! ```text
//! transports {
//!     SWP HIGHEST;
//!     TCP HIGH;
//!     TCP MED;
//!     TCP LOW;
//!     UDP BEST_EFFORT;
//! }
//! ```
//!
//! and binds each message type to one of them. Communication can be
//! *reliable, congestion-friendly* (**TCP**), *unreliable,
//! congestion-unfriendly* (**UDP**) or *reliable, congestion-unfriendly*
//! (**SWP**, a simple sliding-window protocol). Multiple blocking
//! transports of the same kind exist so that a connection blocked on
//! low-priority data cannot head-of-line-block high-priority messages —
//! each named instance is an independent connection per peer.
//!
//! This crate implements all three from scratch over the packet pipeline
//! of [`macedon_net`]:
//!
//! * message-oriented framing with MSS segmentation and reassembly,
//! * cumulative ACKs, RTT estimation (Jacobson/Karels), RTO with
//!   exponential backoff, fast retransmit on triple duplicate ACKs,
//! * TCP-style slow start + AIMD congestion avoidance for the TCP kind,
//! * a fixed send window without congestion response for the SWP kind,
//! * best-effort fragmentation for the UDP kind.

pub mod endpoint;
pub mod harness;
pub mod reliable;
pub mod rtt;
pub mod segment;
pub mod udp;

pub use endpoint::{
    ChannelId, ChannelSpec, Endpoint, TimerKey, TimerKind, TransportKind, TransportSink,
};
pub use segment::{SegKind, Segment};
