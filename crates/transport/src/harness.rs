//! A self-contained mini-world that couples transport endpoints to the
//! emulated network — used by this crate's integration-style tests and by
//! the benchmark suite. (The full MACEDON engine in `macedon-core` builds
//! its own richer world; this one exists so the transport layer can be
//! exercised and measured in isolation.)

use crate::endpoint::{ChannelId, ChannelSpec, Endpoint, TimerKey, TimerKind, TransportSink};
use crate::segment::Segment;
use bytes::Bytes;
use macedon_net::{NetEvent, Network, NetworkConfig, NodeId, Sink, Topology};
use macedon_sim::{EventId, Scheduler, Time};
use std::collections::HashMap;

/// Events in the transport test world.
pub enum Ev {
    Net(NetEvent),
    Rto(TimerKey),
}

/// A network plus one endpoint per host.
pub struct TransportWorld {
    pub net: Network<Segment>,
    pub sched: Scheduler<Ev>,
    pub endpoints: HashMap<NodeId, Endpoint>,
    /// Live scheduler entry per connection timer class; re-arms cancel
    /// the superseded entry (mirrors the full engine's bookkeeping).
    timers: HashMap<(NodeId, NodeId, ChannelId, TimerKind), EventId>,
    /// Everything delivered to application level: (at, to, from, channel, bytes).
    pub inbox: Vec<(Time, NodeId, NodeId, ChannelId, Bytes)>,
}

impl TransportWorld {
    pub fn new(topo: Topology, channels: Vec<ChannelSpec>) -> TransportWorld {
        let hosts = topo.hosts().to_vec();
        let net = Network::new(topo, NetworkConfig::default());
        let endpoints = hosts
            .into_iter()
            .map(|h| (h, Endpoint::new(h, channels.clone())))
            .collect();
        TransportWorld {
            net,
            sched: Scheduler::new(),
            endpoints,
            timers: HashMap::new(),
            inbox: Vec::new(),
        }
    }

    fn absorb_timers(&mut self, tout: &mut TransportSink) {
        for key in tout.cancel_timers.drain(..) {
            if let Some(ev) = self.timers.remove(&key.slot()) {
                self.sched.cancel(ev);
            }
        }
        for (at, key) in tout.timers.drain(..) {
            let slot = key.slot();
            let ev = self.sched.schedule_timer(at, Ev::Rto(key));
            if let Some(old) = self.timers.insert(slot, ev) {
                self.sched.cancel(old);
            }
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Send a message between hosts at the current virtual time.
    pub fn send(&mut self, src: NodeId, dst: NodeId, ch: ChannelId, msg: Bytes) {
        let now = self.sched.now();
        let mut tout = TransportSink::new();
        self.endpoints
            .get_mut(&src)
            .expect("unknown src host")
            .send(now, dst, ch, msg, 0, &mut tout);
        self.absorb(now, tout);
    }

    /// Run until the queue drains or `deadline` passes.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some((now, ev)) = self.sched.pop_before(deadline) {
            match ev {
                Ev::Net(nev) => {
                    let mut nout = Sink::new();
                    self.net.handle(now, nev, &mut nout);
                    self.absorb_net(now, nout);
                }
                Ev::Rto(key) => {
                    self.timers.remove(&key.slot());
                    let mut tout = TransportSink::new();
                    if let Some(ep) = self.endpoints.get_mut(&key.node) {
                        ep.on_timer(now, key, &mut tout);
                    }
                    self.absorb(now, tout);
                }
            }
        }
        self.sched.fast_forward(deadline);
    }

    fn absorb(&mut self, now: Time, mut tout: TransportSink) {
        let mut nout = Sink::new();
        for pkt in tout.packets.drain(..) {
            self.net.send(now, pkt, &mut nout);
        }
        self.absorb_timers(&mut tout);
        for (from, ch, msg, _span) in tout.delivered.drain(..) {
            // Delivered synchronously during absorb (e.g. loopback).
            self.inbox.push((now, NodeId(u32::MAX), from, ch, msg));
        }
        self.absorb_net(now, nout);
    }

    fn absorb_net(&mut self, _now: Time, mut nout: Sink<Segment>) {
        for (t, ev) in nout.schedule.drain(..) {
            self.sched.schedule(t, Ev::Net(ev));
        }
        for d in nout.delivered.drain(..) {
            let to = d.pkt.dst;
            let from = d.pkt.src;
            let mut tout = TransportSink::new();
            if let Some(ep) = self.endpoints.get_mut(&to) {
                ep.on_packet(d.at, from, d.pkt.payload, &mut tout);
            }
            self.absorb_timers(&mut tout);
            let mut nout2 = Sink::new();
            for pkt in tout.packets.drain(..) {
                self.net.send(d.at, pkt, &mut nout2);
            }
            for (src, ch, msg, _span) in tout.delivered.drain(..) {
                self.inbox.push((d.at, to, src, ch, msg));
            }
            for (t, ev) in nout2.schedule.drain(..) {
                self.sched.schedule(t, Ev::Net(ev));
            }
            debug_assert!(nout2.delivered.is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::TransportKind;
    use macedon_net::topology::{canned, LinkSpec};
    use macedon_sim::Duration;

    fn world() -> TransportWorld {
        TransportWorld::new(
            canned::two_hosts(LinkSpec::lan()),
            ChannelSpec::default_table(),
        )
    }

    fn hosts(w: &TransportWorld) -> (NodeId, NodeId) {
        let h = w.net.topology().hosts().to_vec();
        (h[0], h[1])
    }

    #[test]
    fn tcp_message_delivered_over_network() {
        let mut w = world();
        let (a, b) = hosts(&w);
        let ch = w.endpoints[&a].channel_by_name("HIGH").unwrap();
        w.send(a, b, ch, Bytes::from_static(b"over the wire"));
        w.run_until(Time::from_secs(5));
        assert_eq!(w.inbox.len(), 1);
        let (_, to, from, _, msg) = &w.inbox[0];
        assert_eq!((*to, *from), (b, a));
        assert_eq!(&msg[..], b"over the wire");
    }

    #[test]
    fn tcp_reliable_under_heavy_loss() {
        let mut w = world();
        let (a, b) = hosts(&w);
        w.net.faults_mut().set_drop_probability(0.15);
        let ch = w.endpoints[&a].channel_by_name("HIGH").unwrap();
        for i in 0..50u32 {
            w.send(a, b, ch, Bytes::from(i.to_be_bytes().to_vec()));
        }
        w.run_until(Time::from_secs(600));
        assert_eq!(w.inbox.len(), 50, "all messages delivered despite loss");
        // In order and exactly once.
        let got: Vec<u32> = w
            .inbox
            .iter()
            .map(|(_, _, _, _, m)| u32::from_be_bytes([m[0], m[1], m[2], m[3]]))
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        let stats = w.endpoints[&a].channel_stats(ch);
        assert!(
            stats.retransmissions > 0,
            "loss must have caused retransmits"
        );
    }

    #[test]
    fn swp_reliable_under_loss() {
        let mut w = world();
        let (a, b) = hosts(&w);
        w.net.faults_mut().set_drop_probability(0.1);
        let ch = w.endpoints[&a].channel_by_name("HIGHEST").unwrap();
        for i in 0..20u8 {
            w.send(a, b, ch, Bytes::from(vec![i; 64]));
        }
        w.run_until(Time::from_secs(600));
        assert_eq!(w.inbox.len(), 20);
    }

    #[test]
    fn udp_lossy_delivery() {
        let mut w = world();
        let (a, b) = hosts(&w);
        w.net.faults_mut().set_drop_probability(0.3);
        let ch = w.endpoints[&a].channel_by_name("BEST_EFFORT").unwrap();
        for i in 0..100u8 {
            w.send(a, b, ch, Bytes::from(vec![i]));
        }
        w.run_until(Time::from_secs(60));
        assert!(w.inbox.len() < 100, "UDP must lose some");
        assert!(!w.inbox.is_empty(), "UDP must deliver some");
    }

    #[test]
    fn large_message_crosses_mtu() {
        let mut w = world();
        let (a, b) = hosts(&w);
        let ch = w.endpoints[&a].channel_by_name("HIGH").unwrap();
        let payload: Vec<u8> = (0..100_000).map(|i| (i % 256) as u8).collect();
        w.send(a, b, ch, Bytes::from(payload.clone()));
        w.run_until(Time::from_secs(60));
        assert_eq!(w.inbox.len(), 1);
        assert_eq!(&w.inbox[0].4[..], &payload[..]);
    }

    #[test]
    fn tcp_backs_off_under_congestion_swp_does_not() {
        // Two flows share a slow bottleneck; the SWP flow (fixed window)
        // should keep a higher share than a TCP flow would against it.
        let topo = canned::dumbbell(
            2,
            LinkSpec::lan(),
            LinkSpec::new(Duration::from_millis(10), 2_000_000, 16 * 1024),
        );
        let mut w = TransportWorld::new(
            topo,
            vec![
                ChannelSpec::new("T", TransportKind::Tcp),
                ChannelSpec::new("S", TransportKind::Swp { window: 32 }),
            ],
        );
        let h = w.net.topology().hosts().to_vec();
        let (a1, a2, b1, b2) = (h[0], h[1], h[2], h[3]);
        let tcp = ChannelId(0);
        let swp = ChannelId(1);
        let chunk = vec![0u8; 100_000];
        for _ in 0..5 {
            w.send(a1, b1, tcp, Bytes::from(chunk.clone()));
            w.send(a2, b2, swp, Bytes::from(chunk.clone()));
        }
        w.run_until(Time::from_secs(120));
        let tcp_retx = w.endpoints[&a1].channel_stats(tcp).retransmissions;
        let swp_retx = w.endpoints[&a2].channel_stats(swp).retransmissions;
        // Both complete reliably...
        assert_eq!(w.inbox.len(), 10);
        // ...and contention causes retransmissions somewhere.
        assert!(tcp_retx + swp_retx > 0, "bottleneck should cause loss");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut w = world();
            let (a, b) = hosts(&w);
            w.net.faults_mut().set_drop_probability(0.2);
            let ch = w.endpoints[&a].channel_by_name("HIGH").unwrap();
            for i in 0..30u8 {
                w.send(a, b, ch, Bytes::from(vec![i; 200]));
            }
            w.run_until(Time::from_secs(300));
            (w.inbox.len(), w.now(), w.sched.events_fired())
        };
        assert_eq!(run(), run());
    }
}
