//! RTT estimation and retransmission timeout (Jacobson/Karels).

use macedon_sim::Duration;

/// Lower bound on the RTO — prevents spurious retransmits on LAN-scale
/// paths while staying far below the paper's second-scale timers.
pub const MIN_RTO: Duration = Duration(50_000); // 50 ms
/// Upper bound on the RTO after backoff.
pub const MAX_RTO: Duration = Duration(30_000_000); // 30 s

/// Smoothed RTT estimator.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    /// Current RTO including any exponential backoff.
    rto: Duration,
    backoff: u32,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            rto: Duration::from_millis(1_000),
            backoff: 0,
        }
    }
}

impl RttEstimator {
    pub fn new() -> RttEstimator {
        RttEstimator::default()
    }

    /// Incorporate a new RTT sample (only call for segments that were not
    /// retransmitted — Karn's algorithm).
    pub fn sample(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Duration(rtt.0 / 2);
            }
            Some(srtt) => {
                let err = srtt.0.abs_diff(rtt.0);
                // rttvar = 3/4 rttvar + 1/4 |err|
                self.rttvar = Duration((3 * self.rttvar.0 + err) / 4);
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some(Duration((7 * srtt.0 + rtt.0) / 8));
            }
        }
        self.backoff = 0;
        self.recompute();
    }

    /// Double the RTO after a timeout (Karn backoff).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(10);
        self.recompute();
    }

    /// Clear backoff when the connection makes forward progress (new data
    /// acked), even if Karn's rule suppressed an RTT sample.
    pub fn reset_backoff(&mut self) {
        if self.backoff != 0 {
            self.backoff = 0;
            self.recompute();
        }
    }

    pub fn rto(&self) -> Duration {
        self.rto
    }

    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    fn recompute(&mut self) {
        let base = match self.srtt {
            Some(srtt) => Duration(srtt.0 + 4 * self.rttvar.0),
            None => Duration::from_millis(1_000),
        };
        let backed = Duration(base.0.saturating_mul(1u64 << self.backoff));
        self.rto = backed.max(MIN_RTO).min(MAX_RTO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_is_one_second() {
        let e = RttEstimator::new();
        assert_eq!(e.rto(), Duration::from_millis(1000));
        assert!(e.srtt().is_none());
    }

    #[test]
    fn first_sample_sets_srtt() {
        let mut e = RttEstimator::new();
        e.sample(Duration::from_millis(100));
        assert_eq!(e.srtt(), Some(Duration::from_millis(100)));
        // rto = srtt + 4*rttvar = 100 + 4*50 = 300ms
        assert_eq!(e.rto(), Duration::from_millis(300));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RttEstimator::new();
        for _ in 0..100 {
            e.sample(Duration::from_millis(80));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis() as i64 - 80).abs() <= 1, "srtt={srtt:?}");
        // With zero variance the RTO floors at MIN_RTO or srtt.
        assert!(e.rto() >= MIN_RTO);
        assert!(e.rto() <= Duration::from_millis(200));
    }

    #[test]
    fn timeout_backoff_doubles() {
        let mut e = RttEstimator::new();
        e.sample(Duration::from_millis(100));
        let r0 = e.rto();
        e.on_timeout();
        assert_eq!(e.rto(), Duration(r0.0 * 2));
        e.on_timeout();
        assert_eq!(e.rto(), Duration(r0.0 * 4));
    }

    #[test]
    fn sample_resets_backoff() {
        let mut e = RttEstimator::new();
        e.sample(Duration::from_millis(100));
        e.on_timeout();
        e.on_timeout();
        e.sample(Duration::from_millis(100));
        assert!(e.rto() < Duration::from_millis(500));
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut e = RttEstimator::new();
        e.sample(Duration::from_micros(10));
        assert!(e.rto() >= MIN_RTO);
        for _ in 0..20 {
            e.on_timeout();
        }
        assert!(e.rto() <= MAX_RTO);
    }
}
