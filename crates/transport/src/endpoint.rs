//! Per-host transport endpoint: the mux that owns one connection per
//! (peer, named transport instance) pair.
//!
//! The paper's engine gives each declared transport instance its own
//! blocking channel so that, e.g., `TCP LOW` being congestion-limited
//! never delays `SWP HIGHEST` — here each `(peer, channel)` pair maps to
//! an independent [`ReliableConn`] or [`UdpConn`].

use crate::reliable::{ConnOut, ConnStats, ReliableConn, WindowPolicy};
use crate::segment::{SegKind, Segment};
use crate::udp::UdpConn;
use bytes::Bytes;
use macedon_net::{NodeId, Packet};
use macedon_sim::{Duration, FxHashMap, Time};

pub use crate::segment::ChannelId;

/// Kind of a named transport instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportKind {
    /// Reliable, congestion-friendly.
    Tcp,
    /// Unreliable, congestion-unfriendly.
    Udp,
    /// Reliable, congestion-unfriendly fixed window.
    Swp { window: u32 },
}

/// A named transport instance declared by the lowest protocol layer.
#[derive(Clone, Debug)]
pub struct ChannelSpec {
    pub name: String,
    pub kind: TransportKind,
}

impl ChannelSpec {
    pub fn new(name: impl Into<String>, kind: TransportKind) -> ChannelSpec {
        ChannelSpec {
            name: name.into(),
            kind,
        }
    }

    /// The default channel table most overlays in this repo use, mirroring
    /// the Overcast example in the paper.
    pub fn default_table() -> Vec<ChannelSpec> {
        vec![
            ChannelSpec::new("HIGHEST", TransportKind::Swp { window: 16 }),
            ChannelSpec::new("HIGH", TransportKind::Tcp),
            ChannelSpec::new("MED", TransportKind::Tcp),
            ChannelSpec::new("LOW", TransportKind::Tcp),
            ChannelSpec::new("BEST_EFFORT", TransportKind::Udp),
        ]
    }
}

/// Which per-connection timer a [`TimerKey`] names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimerKind {
    /// Retransmission timeout (sender side).
    Rto,
    /// Delayed-ack flush (receiver side).
    DelayedAck,
}

/// Identifies a pending connection timer; carried through the caller's
/// scheduler and handed back to [`Endpoint::on_timer`]. At most one
/// timer per `(node, peer, channel, kind)` is live at a time: arming
/// again supersedes (the caller cancels the previous scheduler entry),
/// and `gen` stays as a defense-in-depth stale filter for RTOs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerKey {
    pub node: NodeId,
    pub peer: NodeId,
    pub channel: ChannelId,
    pub kind: TimerKind,
    pub gen: u64,
}

impl TimerKey {
    /// The scheduler-map key: everything but the generation (one live
    /// timer per connection and kind).
    pub fn slot(&self) -> (NodeId, NodeId, ChannelId, TimerKind) {
        (self.node, self.peer, self.channel, self.kind)
    }
}

/// Output buffer of endpoint operations.
#[derive(Default)]
pub struct TransportSink {
    /// Packets to inject into the emulated network.
    pub packets: Vec<Packet<Segment>>,
    /// Connection timers to schedule (superseding any live timer with
    /// the same [`TimerKey::slot`]).
    pub timers: Vec<(Time, TimerKey)>,
    /// Connection timers now known dead; the caller should cancel the
    /// scheduler entry rather than let it fire stale.
    pub cancel_timers: Vec<TimerKey>,
    /// Fully reassembled messages handed to the layer above:
    /// (source host, channel, message bytes, causal trace span).
    pub delivered: Vec<(NodeId, ChannelId, Bytes, u64)>,
    /// Acknowledgements that advanced a send window, with their
    /// Karn-filtered RTT sample (None when only retransmitted segments
    /// were acked). The world feeds these into the node's measurement
    /// ledger.
    pub ack_samples: Vec<(NodeId, Option<Duration>)>,
}

impl TransportSink {
    pub fn new() -> TransportSink {
        TransportSink::default()
    }
}

enum Conn {
    Reliable(ReliableConn),
    Udp(UdpConn),
}

/// Per-host transport state.
pub struct Endpoint {
    node: NodeId,
    channels: Vec<ChannelSpec>,
    conns: FxHashMap<(NodeId, ChannelId), Conn>,
    /// Reusable connection-output buffer (cleared between operations;
    /// kept for its capacity so the per-segment hot path never
    /// allocates).
    scratch: ConnOut,
}

impl Endpoint {
    pub fn new(node: NodeId, channels: Vec<ChannelSpec>) -> Endpoint {
        assert!(
            !channels.is_empty(),
            "at least one transport instance required"
        );
        Endpoint {
            node,
            channels,
            conns: FxHashMap::default(),
            scratch: ConnOut::default(),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn channels(&self) -> &[ChannelSpec] {
        &self.channels
    }

    /// Resolve a channel by name (spec files reference transports by name).
    pub fn channel_by_name(&self, name: &str) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.name == name)
            .map(|i| ChannelId(i as u16))
    }

    /// Send one message to `dst` on the given channel. `span` is the
    /// causal trace span riding out-of-band with the message (zero when
    /// untraced).
    pub fn send(
        &mut self,
        now: Time,
        dst: NodeId,
        ch: ChannelId,
        msg: Bytes,
        span: u64,
        out: &mut TransportSink,
    ) {
        let kind = self.kind_of(ch);
        let mut co = std::mem::take(&mut self.scratch);
        match self.conn(dst, ch, kind) {
            Conn::Udp(u) => {
                u.send(msg, span, &mut co.tx);
            }
            Conn::Reliable(r) => {
                r.send(now, msg, span, &mut co);
            }
        }
        self.flush_conn_out(dst, ch, &mut co, out);
        self.scratch = co;
    }

    /// Handle a segment delivered by the network from `from`.
    pub fn on_packet(&mut self, now: Time, from: NodeId, seg: Segment, out: &mut TransportSink) {
        let ch = seg.channel;
        if ch.0 as usize >= self.channels.len() {
            return; // unknown channel: drop
        }
        let kind = self.kind_of(ch);
        let span = seg.span;
        let mut co = std::mem::take(&mut self.scratch);
        match (seg.kind, self.conn(from, ch, kind)) {
            (
                SegKind::Datagram {
                    msg,
                    frag,
                    frags,
                    bytes,
                },
                Conn::Udp(u),
            ) => {
                if let Some((full, sp)) = u.on_datagram(msg, frag, frags, bytes, span) {
                    out.delivered.push((from, ch, full, sp));
                }
            }
            (
                SegKind::Data {
                    seq,
                    msg,
                    frag,
                    frags,
                    bytes,
                },
                Conn::Reliable(r),
            ) => {
                r.on_data(now, seq, msg, frag, frags, bytes, span, &mut co);
            }
            (SegKind::Ack { cum }, Conn::Reliable(r)) => {
                r.on_ack(now, cum, &mut co);
            }
            _ => {
                // Segment kind mismatched with channel kind: drop.
            }
        }
        self.flush_conn_out(from, ch, &mut co, out);
        self.scratch = co;
    }

    /// Drop all connection state toward `peer` (sequence numbers,
    /// send/receive buffers, RTT estimates). The world calls this on
    /// every endpoint when `peer` is despawned for a rejoin: the next
    /// incarnation is a different host as far as transport state goes,
    /// and stale sequence numbers would otherwise wedge the fresh
    /// endpoint's reliable channels forever.
    pub fn reset_peer(&mut self, peer: NodeId) {
        self.conns.retain(|&(p, _), _| p != peer);
    }

    /// Handle a connection timer previously emitted via
    /// [`TransportSink::timers`].
    pub fn on_timer(&mut self, now: Time, key: TimerKey, out: &mut TransportSink) {
        debug_assert_eq!(key.node, self.node);
        let mut co = std::mem::take(&mut self.scratch);
        if let Some(Conn::Reliable(r)) = self.conns.get_mut(&(key.peer, key.channel)) {
            match key.kind {
                TimerKind::Rto => r.on_rto(now, key.gen, &mut co),
                TimerKind::DelayedAck => r.on_ack_timeout(&mut co),
            }
            self.flush_conn_out(key.peer, key.channel, &mut co, out);
        }
        self.scratch = co;
    }

    /// Aggregate reliable-connection stats across peers of one channel.
    pub fn channel_stats(&self, ch: ChannelId) -> ConnStats {
        let mut total = ConnStats::default();
        for ((_, c), conn) in &self.conns {
            if *c == ch {
                if let Conn::Reliable(r) = conn {
                    let s = r.stats;
                    total.segments_sent += s.segments_sent;
                    total.retransmissions += s.retransmissions;
                    total.acks_sent += s.acks_sent;
                    total.messages_delivered += s.messages_delivered;
                    total.bytes_sent += s.bytes_sent;
                }
            }
        }
        total
    }

    /// Total bytes handed to the network across all connections
    /// (the "communication overhead" input).
    pub fn total_bytes_sent(&self) -> u64 {
        self.conns
            .values()
            .map(|c| match c {
                Conn::Reliable(r) => r.stats.bytes_sent,
                Conn::Udp(_) => 0, // accounted at send time by callers
            })
            .sum()
    }

    fn kind_of(&self, ch: ChannelId) -> TransportKind {
        self.channels[ch.0 as usize].kind
    }

    fn conn(&mut self, peer: NodeId, ch: ChannelId, kind: TransportKind) -> &mut Conn {
        self.conns.entry((peer, ch)).or_insert_with(|| match kind {
            TransportKind::Udp => Conn::Udp(UdpConn::new()),
            TransportKind::Tcp => Conn::Reliable(ReliableConn::new(WindowPolicy::Tcp)),
            TransportKind::Swp { window } => {
                Conn::Reliable(ReliableConn::new(WindowPolicy::Swp { window }))
            }
        })
    }

    /// Drain a connection's outputs into the transport sink, leaving
    /// `co` empty for reuse.
    fn flush_conn_out(
        &mut self,
        peer: NodeId,
        ch: ChannelId,
        co: &mut ConnOut,
        out: &mut TransportSink,
    ) {
        for mut seg in co.tx.drain(..) {
            seg.channel = ch;
            let size = seg.size();
            out.packets.push(Packet::new(self.node, peer, size, seg));
        }
        for (msg, span) in co.delivered.drain(..) {
            out.delivered.push((peer, ch, msg, span));
        }
        if let Some(rtt) = co.ack_rtt.take() {
            out.ack_samples.push((peer, rtt));
        }
        let key = |kind, gen| TimerKey {
            node: self.node,
            peer,
            channel: ch,
            kind,
            gen,
        };
        if let Some((at, gen)) = co.arm_timer.take() {
            out.timers.push((at, key(TimerKind::Rto, gen)));
        } else if std::mem::take(&mut co.cancel_rto) {
            out.cancel_timers.push(key(TimerKind::Rto, 0));
        }
        co.cancel_rto = false;
        if let Some(at) = co.arm_ack_timer.take() {
            out.timers.push((at, key(TimerKind::DelayedAck, 0)));
        }
        if std::mem::take(&mut co.cancel_ack_timer) {
            out.cancel_timers.push(key(TimerKind::DelayedAck, 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(node: u32) -> Endpoint {
        Endpoint::new(NodeId(node), ChannelSpec::default_table())
    }

    #[test]
    fn channel_lookup_by_name() {
        let e = ep(0);
        assert_eq!(e.channel_by_name("HIGHEST"), Some(ChannelId(0)));
        assert_eq!(e.channel_by_name("BEST_EFFORT"), Some(ChannelId(4)));
        assert_eq!(e.channel_by_name("NOPE"), None);
    }

    #[test]
    fn udp_send_produces_datagram_packet() {
        let mut e = ep(0);
        let mut out = TransportSink::new();
        let ch = e.channel_by_name("BEST_EFFORT").unwrap();
        e.send(
            Time::ZERO,
            NodeId(1),
            ch,
            Bytes::from_static(b"hi"),
            0,
            &mut out,
        );
        assert_eq!(out.packets.len(), 1);
        assert!(matches!(
            out.packets[0].payload.kind,
            SegKind::Datagram { .. }
        ));
        assert!(out.timers.is_empty(), "UDP never arms timers");
    }

    #[test]
    fn tcp_send_arms_rto() {
        let mut e = ep(0);
        let mut out = TransportSink::new();
        let ch = e.channel_by_name("HIGH").unwrap();
        e.send(
            Time::ZERO,
            NodeId(1),
            ch,
            Bytes::from_static(b"hi"),
            0,
            &mut out,
        );
        assert_eq!(out.packets.len(), 1);
        assert_eq!(out.timers.len(), 1);
        let key = out.timers[0].1;
        assert_eq!(key.peer, NodeId(1));
        assert_eq!(key.channel, ch);
    }

    #[test]
    fn end_to_end_between_two_endpoints() {
        let mut a = ep(0);
        let mut b = ep(1);
        let ch = a.channel_by_name("HIGH").unwrap();
        let mut out_a = TransportSink::new();
        a.send(
            Time::ZERO,
            NodeId(1),
            ch,
            Bytes::from_static(b"payload"),
            42,
            &mut out_a,
        );
        // Hand a's packets to b.
        let mut out_b = TransportSink::new();
        for pkt in out_a.packets.drain(..) {
            b.on_packet(Time::from_millis(5), pkt.src, pkt.payload, &mut out_b);
        }
        assert_eq!(out_b.delivered.len(), 1);
        assert_eq!(&out_b.delivered[0].2[..], b"payload");
        assert_eq!(out_b.delivered[0].3, 42, "span survives the endpoint mux");
        // A lone segment on a quiet connection acks immediately — no
        // delayed-ack timer, so the sparse case costs zero timer events.
        assert_eq!(out_b.packets.len(), 1);
        assert!(
            !out_b
                .timers
                .iter()
                .any(|(_, k)| k.kind == TimerKind::DelayedAck),
            "sparse arrival must not arm the delayed-ack timer"
        );
        // b's ACK back to a clears the backlog.
        let mut out_a2 = TransportSink::new();
        for pkt in out_b.packets.drain(..) {
            a.on_packet(Time::from_millis(16), pkt.src, pkt.payload, &mut out_a2);
        }
        assert_eq!(a.channel_stats(ch).segments_sent, 1);
        assert_eq!(a.channel_stats(ch).retransmissions, 0);
        assert!(
            out_a2
                .cancel_timers
                .iter()
                .any(|k| k.kind == TimerKind::Rto),
            "drained window cancels a's RTO"
        );
    }

    #[test]
    fn channels_are_independent() {
        let mut a = ep(0);
        let hi = a.channel_by_name("HIGH").unwrap();
        let lo = a.channel_by_name("LOW").unwrap();
        let mut out = TransportSink::new();
        a.send(
            Time::ZERO,
            NodeId(1),
            hi,
            Bytes::from_static(b"h"),
            0,
            &mut out,
        );
        a.send(
            Time::ZERO,
            NodeId(1),
            lo,
            Bytes::from_static(b"l"),
            0,
            &mut out,
        );
        assert_eq!(a.channel_stats(hi).segments_sent, 1);
        assert_eq!(a.channel_stats(lo).segments_sent, 1);
        // Independent sequence spaces (both start at 0): fine because they
        // are distinct connections.
        assert_eq!(out.packets.len(), 2);
    }

    #[test]
    fn unknown_channel_segment_dropped() {
        let mut a = ep(0);
        let mut out = TransportSink::new();
        let seg = Segment {
            channel: ChannelId(99),
            span: 0,
            kind: SegKind::Ack { cum: 0 },
        };
        a.on_packet(Time::ZERO, NodeId(1), seg, &mut out);
        assert!(out.delivered.is_empty());
        assert!(out.packets.is_empty());
    }

    #[test]
    fn mismatched_segment_kind_dropped() {
        let mut a = ep(0);
        let mut out = TransportSink::new();
        let udp = a.channel_by_name("BEST_EFFORT").unwrap();
        // Reliable data on a UDP channel: dropped.
        let seg = Segment {
            channel: udp,
            span: 0,
            kind: SegKind::Data {
                seq: 0,
                msg: 0,
                frag: 0,
                frags: 1,
                bytes: Bytes::new(),
            },
        };
        a.on_packet(Time::ZERO, NodeId(1), seg, &mut out);
        assert!(out.delivered.is_empty());
    }
}
