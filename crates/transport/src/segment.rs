//! The wire unit exchanged between endpoints: one segment per emulated
//! packet.

use bytes::Bytes;
use macedon_net::packet::{HEADER_BYTES, MTU};

/// Maximum segment payload: MTU minus the emulated IP+transport header.
pub const MSS: u32 = MTU - HEADER_BYTES;

/// Identifies a named transport instance ("TCP HIGH", "UDP BEST_EFFORT"...)
/// by its index in the endpoint's channel table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub u16);

/// Transport segment payload carried inside a [`macedon_net::Packet`].
#[derive(Clone, Debug)]
pub struct Segment {
    pub channel: ChannelId,
    /// Causal trace span riding with the message this segment belongs
    /// to — out-of-band observability metadata, **not** wire bytes: it
    /// is excluded from [`Segment::size`] so emulated timing, goldens
    /// and interpreted ≡ generated equality are untouched. Zero for
    /// ACKs and engine traffic.
    pub span: u64,
    pub kind: SegKind,
}

#[derive(Clone, Debug)]
pub enum SegKind {
    /// Reliable data segment (TCP or SWP channel).
    Data {
        /// Segment sequence number within the connection (counts
        /// segments, not bytes — framing is message-oriented).
        seq: u64,
        /// Message this segment belongs to.
        msg: u64,
        /// Fragment index within the message.
        frag: u16,
        /// Total fragments in the message.
        frags: u16,
        bytes: Bytes,
    },
    /// Cumulative acknowledgment: all segments `< cum` received.
    Ack { cum: u64 },
    /// Unreliable datagram fragment (UDP channel).
    Datagram {
        msg: u64,
        frag: u16,
        frags: u16,
        bytes: Bytes,
    },
}

impl Segment {
    /// Bytes this segment occupies as packet payload (data plus a small
    /// fixed transport header; ACKs are header-only).
    pub fn size(&self) -> u32 {
        const SEG_HEADER: u32 = 12;
        match &self.kind {
            SegKind::Data { bytes, .. } => SEG_HEADER + bytes.len() as u32,
            SegKind::Ack { .. } => SEG_HEADER,
            SegKind::Datagram { bytes, .. } => SEG_HEADER + bytes.len() as u32,
        }
    }
}

/// Split a message into MSS-sized fragments.
pub fn fragment(msg: &Bytes) -> Vec<Bytes> {
    let mut out = Vec::with_capacity(fragment_count(msg.len()));
    for_each_fragment(msg, |b| out.push(b));
    out
}

/// Number of fragments [`fragment`] produces for a message of `len`
/// bytes (an empty message still rides one empty fragment).
pub fn fragment_count(len: usize) -> usize {
    len.div_ceil(MSS as usize).max(1)
}

/// Visit each MSS-sized fragment (zero-copy slices) without collecting
/// them — the hot send path's allocation-free variant of [`fragment`].
pub fn for_each_fragment(msg: &Bytes, mut f: impl FnMut(Bytes)) {
    if msg.is_empty() {
        f(Bytes::new());
        return;
    }
    let mut off = 0usize;
    while off < msg.len() {
        let end = (off + MSS as usize).min(msg.len());
        f(msg.slice(off..end));
        off = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_small_message_is_single() {
        let m = Bytes::from(vec![0u8; 100]);
        let f = fragment(&m);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].len(), 100);
    }

    #[test]
    fn fragment_empty_message_yields_one_empty_fragment() {
        let f = fragment(&Bytes::new());
        assert_eq!(f.len(), 1);
        assert!(f[0].is_empty());
    }

    #[test]
    fn fragment_large_message() {
        let m = Bytes::from(vec![7u8; MSS as usize * 2 + 10]);
        let f = fragment(&m);
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].len(), MSS as usize);
        assert_eq!(f[1].len(), MSS as usize);
        assert_eq!(f[2].len(), 10);
        let total: usize = f.iter().map(|b| b.len()).sum();
        assert_eq!(total, m.len());
    }

    #[test]
    fn segment_sizes() {
        let data = Segment {
            channel: ChannelId(0),
            span: 0,
            kind: SegKind::Data {
                seq: 0,
                msg: 0,
                frag: 0,
                frags: 1,
                bytes: Bytes::from(vec![0; 100]),
            },
        };
        assert_eq!(data.size(), 112);
        let ack = Segment {
            channel: ChannelId(0),
            span: 0,
            kind: SegKind::Ack { cum: 5 },
        };
        assert_eq!(ack.size(), 12);
        // The span is observability metadata, never wire bytes.
        let spanned = Segment {
            span: u64::MAX,
            ..data.clone()
        };
        assert_eq!(spanned.size(), data.size());
    }

    // Compile-time guarantee: a full payload segment fits the MTU.
    const _: () = assert!(MSS + HEADER_BYTES <= MTU);
}
