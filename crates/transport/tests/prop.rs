//! Property tests on the transports: exactly-once, in-order delivery
//! under arbitrary loss patterns — the core reliability invariant.

use bytes::Bytes;
use macedon_net::topology::{canned, LinkSpec};
use macedon_sim::Time;
use macedon_transport::harness::TransportWorld;
use macedon_transport::ChannelSpec;
use proptest::prelude::*;

fn world_with_loss(seed: u64, p: f64) -> TransportWorld {
    let mut w = TransportWorld::new(
        canned::two_hosts(LinkSpec::lan()),
        ChannelSpec::default_table(),
    );
    let _ = seed;
    w.net.faults_mut().set_drop_probability(p);
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TCP delivers every message exactly once, in order, whatever the
    /// loss rate (below the retransmission-futility threshold).
    #[test]
    fn tcp_exactly_once_in_order(
        seed in any::<u64>(),
        p in 0.0f64..0.3,
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..600), 1..25),
    ) {
        let mut w = world_with_loss(seed, p);
        let hosts = w.net.topology().hosts().to_vec();
        let ch = w.endpoints[&hosts[0]].channel_by_name("HIGH").unwrap();
        for (i, m) in msgs.iter().enumerate() {
            let mut tagged = vec![i as u8];
            tagged.extend_from_slice(m);
            w.send(hosts[0], hosts[1], ch, Bytes::from(tagged));
        }
        w.run_until(Time::from_secs(3_000));
        prop_assert_eq!(w.inbox.len(), msgs.len(), "exactly once");
        for (i, (_, _, _, _, got)) in w.inbox.iter().enumerate() {
            prop_assert_eq!(got[0] as usize, i, "in order");
            prop_assert_eq!(&got[1..], &msgs[i][..], "payload intact");
        }
    }

    /// SWP has the same reliability contract.
    #[test]
    fn swp_exactly_once_in_order(
        seed in any::<u64>(),
        p in 0.0f64..0.25,
        n in 1usize..20,
    ) {
        let mut w = world_with_loss(seed, p);
        let hosts = w.net.topology().hosts().to_vec();
        let ch = w.endpoints[&hosts[0]].channel_by_name("HIGHEST").unwrap();
        for i in 0..n {
            w.send(hosts[0], hosts[1], ch, Bytes::from(vec![i as u8; 32]));
        }
        w.run_until(Time::from_secs(3_000));
        prop_assert_eq!(w.inbox.len(), n);
        for (i, (_, _, _, _, got)) in w.inbox.iter().enumerate() {
            prop_assert_eq!(got[0] as usize, i);
        }
    }

    /// UDP never duplicates and never reorders *within* what it delivers
    /// on a FIFO path.
    #[test]
    fn udp_no_duplicates(seed in any::<u64>(), p in 0.0f64..0.5, n in 1usize..40) {
        let mut w = world_with_loss(seed, p);
        let hosts = w.net.topology().hosts().to_vec();
        let ch = w.endpoints[&hosts[0]].channel_by_name("BEST_EFFORT").unwrap();
        for i in 0..n {
            w.send(hosts[0], hosts[1], ch, Bytes::from(vec![i as u8]));
        }
        w.run_until(Time::from_secs(60));
        prop_assert!(w.inbox.len() <= n);
        let seqs: Vec<u8> = w.inbox.iter().map(|(_, _, _, _, m)| m[0]).collect();
        let mut sorted = seqs.clone();
        sorted.dedup();
        prop_assert_eq!(&sorted, &seqs, "no duplicates, FIFO subsequence");
    }
}
