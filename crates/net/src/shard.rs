//! Node → shard partitioning for parallel time-windowed execution.
//!
//! The sharded engine gives every shard its own scheduler, packet arena
//! and link-state replica, then lets shards advance independently inside
//! a conservative time window. Two deterministic assignments anchor that
//! design:
//!
//! * **node ownership** — hosts are split into contiguous chunks of the
//!   topology's host list, so shard boundaries follow node-id order (the
//!   same order sequential spawns resolve same-instant ties in);
//! * **link ownership** — a directed half-link is charged by exactly one
//!   shard's replica. A link touching a host belongs to that host's
//!   shard: the uplink out of a source is charged by the sender's shard
//!   at send time, and the downlink into a destination is charged by the
//!   receiver's shard at the window barrier — which is what serializes
//!   *contending* senders from different shards deterministically.
//!   Router-to-router links hash to a shard so the assignment is stable
//!   without being order-dependent.
//!
//! The map is immutable after construction; worker counts never change
//! it (a run with P shards produces the same merge order whether one
//! thread or eight execute the shards).

use crate::topology::{Link, NodeId, Topology};
use macedon_sim::mix64;

/// Immutable node → shard assignment plus the link-ownership rule.
#[derive(Clone, Debug)]
pub struct ShardMap {
    of_node: Vec<u16>,
    is_host: Vec<bool>,
    shards: u16,
}

impl ShardMap {
    /// Everything on shard 0 (the sequential engine's trivial map).
    pub fn solo(topo: &Topology) -> ShardMap {
        Self::partition_hosts(topo, 1)
    }

    /// Partition the topology's hosts into `shards` contiguous chunks
    /// (clamped to the host count). Routers are hashed onto shards; only
    /// the link-ownership rule ever consults a router's shard.
    pub fn partition_hosts(topo: &Topology, shards: usize) -> ShardMap {
        let hosts = topo.hosts();
        let p = shards.clamp(1, hosts.len().max(1));
        let mut of_node = vec![u16::MAX; topo.num_nodes()];
        let mut is_host = vec![false; topo.num_nodes()];
        for (i, &h) in hosts.iter().enumerate() {
            of_node[h.index()] = (i * p / hosts.len()) as u16;
            is_host[h.index()] = true;
        }
        for (idx, slot) in of_node.iter_mut().enumerate() {
            if *slot == u16::MAX {
                *slot = (mix64(idx as u64) % p as u64) as u16;
            }
        }
        ShardMap {
            of_node,
            is_host,
            shards: p as u16,
        }
    }

    pub fn shards(&self) -> u16 {
        self.shards
    }

    pub fn shard_of(&self, n: NodeId) -> u16 {
        self.of_node[n.index()]
    }

    /// The shard whose link-state replica charges this directed
    /// half-link.
    ///
    /// *Sender-side host wins*: the first link out of a source is always
    /// owned by the sender's shard, so a route walk always charges at
    /// least one link (and accrues at least one link delay) before a
    /// cross-shard handoff — the invariant the window-safety proof rests
    /// on. A downlink (router → host) is owned by the receiving host's
    /// shard, which is what serializes contending senders from different
    /// shards at the barrier. Router-to-router links hash to a stable
    /// owner.
    pub fn owner_of_link(&self, link: &Link) -> u16 {
        if self.is_host[link.from.index()] {
            self.of_node[link.from.index()]
        } else if self.is_host[link.to.index()] {
            self.of_node[link.to.index()]
        } else {
            let key = link.from.0 as u64 | ((link.to.0 as u64) << 32);
            (mix64(key) % self.shards as u64) as u16
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{canned, LinkSpec};

    #[test]
    fn solo_owns_everything() {
        let t = canned::star(8, LinkSpec::lan());
        let m = ShardMap::solo(&t);
        assert_eq!(m.shards(), 1);
        for l in t.links() {
            assert_eq!(m.owner_of_link(l), 0);
        }
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let t = canned::star(10, LinkSpec::lan());
        let m = ShardMap::partition_hosts(&t, 4);
        assert_eq!(m.shards(), 4);
        let hosts = t.hosts();
        let shards: Vec<u16> = hosts.iter().map(|&h| m.shard_of(h)).collect();
        // Contiguous: shard ids are non-decreasing along the host list.
        assert!(shards.windows(2).all(|w| w[0] <= w[1]), "{shards:?}");
        // Balanced: every shard owns 10/4 = 2 or 3 hosts.
        for s in 0..4u16 {
            let n = shards.iter().filter(|&&x| x == s).count();
            assert!((2..=3).contains(&n), "shard {s} owns {n}");
        }
    }

    #[test]
    fn shard_count_clamps_to_hosts() {
        let t = canned::star(3, LinkSpec::lan());
        let m = ShardMap::partition_hosts(&t, 16);
        assert_eq!(m.shards(), 3);
    }

    #[test]
    fn uplinks_and_downlinks_belong_to_the_host_side() {
        let t = canned::star(8, LinkSpec::lan());
        let m = ShardMap::partition_hosts(&t, 4);
        for &h in t.hosts() {
            for &lid in t.outgoing(h) {
                let up = t.link(lid);
                let down = t.link(t.reverse(lid));
                // Downlink (router → host) is charged by the host's
                // shard — the receiver-side barrier rule.
                assert_eq!(m.owner_of_link(down), m.shard_of(h));
                // Uplink (host → router) is charged by the host's
                // shard — the sender-side invariant.
                assert_eq!(m.owner_of_link(up), m.shard_of(h));
            }
        }
    }
}
