//! # macedon-net
//!
//! Packet-level network emulation substrate — this repo's substitute for
//! the ModelNet cluster emulator the paper evaluated on.
//!
//! ModelNet's essential property for the MACEDON experiments is that
//! overlay traffic experiences *hop-by-hop* queuing, serialization and
//! congestion on a large realistic topology. This crate reproduces exactly
//! that inside the deterministic event loop of [`macedon_sim`]:
//!
//! * [`topology`] — graph model plus generators: an INET-like
//!   preferential-attachment AS topology (the paper uses 20,000-node INET
//!   graphs), a GT-ITM-style transit-stub generator, and canned shapes for
//!   tests.
//! * [`routing`] — shortest-path (latency-weighted Dijkstra) hop-by-hop
//!   routing with per-destination next-hop caches, plus the latency oracle
//!   used to compute stretch/RDP.
//! * [`pipeline`] — per-link FIFO drop-tail queues with bandwidth
//!   serialization and propagation delay; the [`pipeline::Network`] object
//!   is driven by scheduler events.
//! * [`fault`] — fault injection: random loss, link and node failure.
//! * [`metrics`] — link stress, latency stretch and relative delay penalty
//!   extracted from global topology knowledge, as §4.3 of the paper
//!   describes.

pub mod fault;
pub mod metrics;
pub mod packet;
pub mod pipeline;
pub mod routing;
pub mod shard;
pub mod topology;

pub use packet::{Packet, PacketArena, PacketRef};
pub use pipeline::{Delivery, DropReason, Handoff, NetEvent, Network, NetworkConfig, Sink};
pub use routing::{min_cross_shard_delay, min_link_delay, Router};
pub use shard::ShardMap;
pub use topology::{LinkId, NodeId, NodeKind, Topology, TopologyBuilder};
