//! Fault injection: random loss, link failure, node failure, partitions.
//!
//! ModelNet topologies are static during a run, but the MACEDON engine's
//! failure detector (§3.1 of the paper) and our failure-injection tests
//! need links and nodes to die mid-experiment; this module is the switch
//! board for that.

use crate::topology::NodeId;
use macedon_sim::mix64;
use std::collections::HashSet;

/// Mutable fault state consulted by the packet pipeline.
#[derive(Clone, Debug, Default)]
pub struct Faults {
    drop_probability: f64,
    links_down: HashSet<u32>,
    nodes_down: HashSet<NodeId>,
    /// Active network partition: one side's node set (the other side is
    /// the complement). Packets whose endpoints straddle the cut are
    /// dropped at every hop. At most one partition is active at a time —
    /// scenario validation rejects overlapping partitions.
    partition: Option<HashSet<NodeId>>,
}

impl Faults {
    /// Probability that any individual hop drops a packet (applied
    /// independently per link traversal, like smoltcp's `--drop-chance`).
    pub fn set_drop_probability(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.drop_probability = p;
    }

    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Take down a physical link (both directions).
    pub fn fail_link(&mut self, phys: u32) {
        self.links_down.insert(phys);
    }

    pub fn heal_link(&mut self, phys: u32) {
        self.links_down.remove(&phys);
    }

    pub fn link_is_down(&self, phys: u32) -> bool {
        self.links_down.contains(&phys)
    }

    /// Crash a node: all packets to, from or through it are dropped.
    pub fn fail_node(&mut self, n: NodeId) {
        self.nodes_down.insert(n);
    }

    pub fn heal_node(&mut self, n: NodeId) {
        self.nodes_down.remove(&n);
    }

    pub fn node_is_down(&self, n: NodeId) -> bool {
        self.nodes_down.contains(&n)
    }

    pub fn failed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes_down.iter().copied()
    }

    /// Loss decision for one hop, keyed by packet/hop identity instead
    /// of drawn from a mutable RNG stream. The same `(probability, key)`
    /// pair always yields the same verdict, no matter when or on which
    /// shard the hop is evaluated — the property that keeps sharded
    /// route walks bit-identical to the sequential engine. Callers
    /// build `key` from the loss seed, the packet's send identity and
    /// the hop index (see `pipeline`).
    pub fn drops_hop(&self, key: u64) -> bool {
        Self::hop_drops_at(self.drop_probability, key)
    }

    /// The stateless core of [`Faults::drops_hop`], usable with a loss
    /// probability captured at send time (packets in flight across a
    /// shard boundary keep the probability they were sent under).
    pub fn hop_drops_at(p: f64, key: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare the mixed key against p scaled to the full u64 range;
        // mix64 output is uniform, so P(mixed < p·2⁶⁴) = p.
        let threshold = (p * (u64::MAX as f64)) as u64;
        mix64(key) < threshold
    }

    /// Install a network partition: `side` vs everyone else. Replaces
    /// any previous partition.
    pub fn set_partition(&mut self, side: HashSet<NodeId>) {
        self.partition = Some(side);
    }

    /// Remove the active partition (heal).
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    pub fn has_partition(&self) -> bool {
        self.partition.is_some()
    }

    /// Do `a` and `b` sit on opposite sides of the active partition?
    pub fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition {
            Some(side) => side.contains(&a) != side.contains(&b),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_lifecycle() {
        let mut f = Faults::default();
        assert!(!f.link_is_down(3));
        f.fail_link(3);
        assert!(f.link_is_down(3));
        f.heal_link(3);
        assert!(!f.link_is_down(3));
    }

    #[test]
    fn node_lifecycle() {
        let mut f = Faults::default();
        let n = NodeId(7);
        f.fail_node(n);
        assert!(f.node_is_down(n));
        assert_eq!(f.failed_nodes().count(), 1);
        f.heal_node(n);
        assert!(!f.node_is_down(n));
    }

    #[test]
    fn drop_probability_zero_never_drops() {
        let f = Faults::default();
        assert!(!(0..1000u64).any(|k| f.drops_hop(k)));
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let mut f = Faults::default();
        f.set_drop_probability(1.0);
        assert!((0..1000u64).all(|k| f.drops_hop(k)));
    }

    #[test]
    fn keyed_drop_is_a_pure_function_of_key() {
        let mut f = Faults::default();
        f.set_drop_probability(0.3);
        let first: Vec<bool> = (0..64u64).map(|k| f.drops_hop(k)).collect();
        let again: Vec<bool> = (0..64u64).map(|k| f.drops_hop(k)).collect();
        assert_eq!(first, again, "verdicts do not depend on call order");
        let hits = first.iter().filter(|&&d| d).count();
        assert!((5..=30).contains(&hits), "roughly p of keys drop: {hits}");
    }

    #[test]
    #[should_panic]
    fn invalid_probability_panics() {
        Faults::default().set_drop_probability(1.5);
    }

    #[test]
    fn partition_lifecycle() {
        let mut f = Faults::default();
        let (a, b, c) = (NodeId(1), NodeId(2), NodeId(3));
        assert!(!f.partitioned(a, b));
        f.set_partition([a].into_iter().collect());
        assert!(f.has_partition());
        assert!(f.partitioned(a, b));
        assert!(f.partitioned(b, a));
        assert!(!f.partitioned(b, c), "same side stays connected");
        assert!(!f.partitioned(a, a));
        f.heal_partition();
        assert!(!f.partitioned(a, b));
    }
}
