//! The packet pipeline: per-link FIFO queues with bandwidth serialization,
//! propagation delay and drop-tail loss — the core of the ModelNet
//! substitute.
//!
//! Each directed half-link is a single-server FIFO: a packet occupies
//! `queue_bytes` worth of buffer from the moment it is enqueued until its
//! serialization completes, transmits for `wire_size * 8 / bandwidth`
//! seconds, then propagates for `delay`. Congestion (queue growth, loss)
//! therefore emerges hop-by-hop exactly as in ModelNet's pipe model.
//!
//! The [`Network`] is deliberately scheduler-agnostic: methods take the
//! current time and emit `(Time, NetEvent)` pairs plus deliveries into a
//! [`Sink`]; the caller owns the event loop. This keeps the crate testable
//! stand-alone (see `run_until` in the tests) and lets `macedon-core`
//! embed network events inside its own world-event enum.

use crate::fault::Faults;
use crate::packet::{Packet, PacketArena, PacketRef};
use crate::routing::Router;
use crate::shard::ShardMap;
use crate::topology::{LinkId, NodeId, Topology};
use macedon_sim::{mix64, Duration, Time};
use std::collections::VecDeque;
use std::sync::Arc;

/// Events the network schedules for itself.
///
/// The packet itself is parked in the network's [`PacketArena`]; events
/// carry a 4-byte [`PacketRef`] (and the enum needs no payload type
/// parameter, shrinking every embedding world-event enum).
///
/// A packet's entire route is walked analytically at send time
/// (`Network::transit`), so one `Arrive` at the destination is the
/// *only* event a packet ever schedules — no per-hop departure or
/// forwarding events.
#[derive(Clone, Copy, Debug)]
pub enum NetEvent {
    /// A packet reached `node` (normally its destination; a forwarding
    /// hop only in the loopback-free degenerate case of rerouting).
    Arrive {
        node: NodeId,
        pkt: PacketRef,
        sent_at: Time,
    },
}

/// A packet handed up to the layer above at its destination host.
#[derive(Debug)]
pub struct Delivery<P> {
    pub pkt: Packet<P>,
    /// When the original `send` happened (for latency accounting).
    pub sent_at: Time,
    /// When it arrived.
    pub at: Time,
}

/// Why a packet was dropped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    QueueFull,
    RandomLoss,
    LinkDown,
    NodeDown,
    NoRoute,
    /// Source and destination sit on opposite sides of an active
    /// network partition.
    Partitioned,
}

/// A route walk suspended at a shard boundary: the packet has been
/// charged across every link owned by the emitting shard and must
/// continue (or arrive) on `at_node`'s side. Handoffs accumulate in the
/// sink during a time window and are injected into the owning shard at
/// the next barrier, in deterministic `(sent_at, shard, seq)` order —
/// the world layer stamps the order key.
///
/// `t` is the virtual time the packet reaches `at_node`; the
/// window-safety invariant (`t` is at least one link delay after the
/// emitting event, hence past the window end) is guaranteed by
/// [`ShardMap::owner_of_link`]'s sender-side rule.
#[derive(Debug)]
pub struct Handoff<P> {
    pub pkt: Packet<P>,
    /// Node the walk resumes from; equal to `pkt.dst` when the walk is
    /// complete and only the arrival event remains to be scheduled.
    pub at_node: NodeId,
    /// Time the packet is at `at_node`.
    pub t: Time,
    pub sent_at: Time,
    /// Hops already traversed (loss-key continuity across shards).
    pub hops: u32,
    /// Per-packet loss key fixed at send time.
    pub loss_key: u64,
    /// Loss probability captured at send time; the resuming shard uses
    /// this, not its live setting, so a loss-rate change that lands at
    /// a barrier never re-decides hops of packets already in flight.
    pub loss_p: f64,
    /// Shard whose replica must resume the walk (owner of the next link,
    /// or the destination's shard for a completed walk).
    pub dest_shard: u16,
}

/// Output buffer filled by [`Network`] methods.
pub struct Sink<P> {
    /// Events to insert into the caller's scheduler.
    pub schedule: Vec<(Time, NetEvent)>,
    /// Packets delivered to destination hosts.
    pub delivered: Vec<Delivery<P>>,
    /// Packets dropped, with reasons (observability / tests).
    pub dropped: Vec<(DropReason, NodeId)>,
    /// Route walks suspended at a shard boundary (empty unless sharded).
    pub handoffs: Vec<Handoff<P>>,
}

impl<P> Sink<P> {
    pub fn new() -> Sink<P> {
        Sink {
            schedule: Vec::new(),
            delivered: Vec::new(),
            dropped: Vec::new(),
            handoffs: Vec::new(),
        }
    }

    pub fn clear(&mut self) {
        self.schedule.clear();
        self.delivered.clear();
        self.dropped.clear();
        self.handoffs.clear();
    }
}

impl<P> Default for Sink<P> {
    fn default() -> Self {
        Self::new()
    }
}

/// Tunables for the emulator.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Latency charged on a host-to-itself send (kernel loopback).
    pub loopback_delay: Duration,
    /// RNG seed for loss decisions.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            loopback_delay: Duration::from_micros(50),
            seed: 0x6d61_6365,
        }
    }
}

#[derive(Clone, Default)]
struct LinkState {
    /// Future serialization reservations `(start, end)`, sorted by
    /// start, non-overlapping. Links are charged in *send* order, so a
    /// packet can be charged after one that reaches the link later;
    /// placing each packet in the earliest idle gap at or after its
    /// arrival (instead of chaining behind a scalar `busy_until`)
    /// keeps late-charged-but-early-arriving packets from queueing
    /// behind traffic that is not actually there yet. For in-order
    /// charges this degenerates to exact FIFO serialization chaining.
    /// Expired reservations are pruned against the sender's `now`,
    /// which is monotone across `transit` calls.
    resv: VecDeque<(Time, Time)>,
    // Counters for link-stress metrics.
    pkts: u64,
    bytes: u64,
    drops: u64,
}

impl LinkState {
    /// Reserve `ser` of serialization time at or after `t`, in the
    /// earliest gap that fits. Returns the reserved start time. The
    /// wait `start - t` is the packet's queueing delay: everything
    /// serializing between its arrival and its own slot is ahead of it
    /// in the queue.
    ///
    /// Expired reservations are pruned against the sender's `now`, but
    /// only beyond a generous keep-depth: the engine charges links in
    /// monotone time order (pruning is exact there), while tests that
    /// batch `send` calls out of order stay exact as long as a link
    /// holds fewer than `PRUNE_KEEP` live reservations.
    fn reserve(&mut self, now: Time, t: Time, ser: Duration) -> Time {
        const PRUNE_KEEP: usize = 256;
        while self.resv.len() > PRUNE_KEEP {
            match self.resv.front() {
                Some(&(_, end)) if end <= now => self.resv.pop_front(),
                _ => break,
            };
        }
        let mut start = t;
        let mut at = self.resv.len();
        for (i, &(s, e)) in self.resv.iter().enumerate() {
            if start + ser <= s {
                at = i;
                break;
            }
            start = start.max(e);
        }
        self.resv.insert(at, (start, start + ser));
        start
    }
}

/// The emulated network.
pub struct Network<P> {
    topo: Topology,
    router: Router,
    links: Vec<LinkState>,
    faults: Faults,
    /// Seed for keyed per-hop loss decisions (order-free, unlike an RNG
    /// stream: every shard replica computes identical verdicts).
    loss_seed: u64,
    /// Per-source send counter feeding the loss key. Only advanced while
    /// loss is enabled; a node's sends are always processed by its own
    /// shard in source-local order, so replicas agree with the
    /// sequential engine on every counter value.
    send_seq: Vec<u64>,
    /// When sharded: the global node/link ownership map and this
    /// replica's shard id. `None` runs the exact sequential fast path.
    sharding: Option<(Arc<ShardMap>, u16)>,
    /// Cached global minimum link delay (the conservative lookahead);
    /// invalidated by `set_phys_link`.
    min_delay: Option<Option<Duration>>,
    /// In-flight packet storage; events carry indices into this.
    arena: PacketArena<P>,
    /// Packets dropped anywhere, for any reason (link counters only see
    /// link-attributable drops; partitions and dead nodes land here too).
    dropped: u64,
}

impl<P> Network<P> {
    pub fn new(topo: Topology, cfg: NetworkConfig) -> Network<P> {
        let links = vec![LinkState::default(); topo.num_links()];
        Network {
            topo,
            router: Router::new(),
            links,
            faults: Faults::default(),
            loss_seed: cfg.seed,
            send_seq: Vec::new(),
            sharding: None,
            min_delay: None,
            arena: PacketArena::default(),
            dropped: 0,
        }
    }

    /// Make this instance one shard's replica: route walks stop at links
    /// owned by other shards and surface as [`Handoff`]s in the sink.
    pub fn set_sharding(&mut self, smap: Arc<ShardMap>, me: u16) {
        self.sharding = Some((smap, me));
    }

    /// Minimum propagation delay over all links — the conservative
    /// lookahead for windowed parallel execution. Cached; recomputed
    /// after [`Network::set_phys_link`].
    pub fn min_link_delay(&mut self) -> Option<Duration> {
        *self
            .min_delay
            .get_or_insert_with(|| crate::routing::min_link_delay(&self.topo))
    }

    /// Minimum delay over links crossing `smap`'s shard boundaries (see
    /// [`crate::routing::min_cross_shard_delay`]).
    pub fn min_cross_shard_delay(&self, smap: &ShardMap) -> Option<Duration> {
        crate::routing::min_cross_shard_delay(&self.topo, smap)
    }

    /// The in-flight packet arena (capacity is the high-water mark of
    /// simultaneously in-flight packets).
    pub fn packet_arena(&self) -> &PacketArena<P> {
        &self.arena
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn faults_mut(&mut self) -> &mut Faults {
        &mut self.faults
    }

    pub fn faults(&self) -> &Faults {
        &self.faults
    }

    /// Mutate a physical link's bandwidth and/or delay at runtime (the
    /// scenario engine's degradation primitive). Routing trees and the
    /// latency oracle are recomputed lazily — a big delay change can
    /// re-route, exactly as an IGP would eventually do.
    pub fn set_phys_link(
        &mut self,
        phys: u32,
        bandwidth_bps: Option<u64>,
        delay: Option<Duration>,
    ) {
        self.topo.set_phys_link(phys, bandwidth_bps, delay);
        self.router.invalidate();
        self.min_delay = None;
    }

    /// Uncongested one-way IP latency between two nodes (the latency
    /// oracle used for stretch / RDP metrics).
    pub fn oracle_latency(&mut self, a: NodeId, b: NodeId) -> Option<Duration> {
        self.router.dist(&self.topo, a, b)
    }

    /// IP hop count between two nodes.
    pub fn oracle_hops(&mut self, a: NodeId, b: NodeId) -> Option<usize> {
        self.router.hop_count(&self.topo, a, b)
    }

    /// Per-physical-link (packets, bytes, drops) counters, for stress
    /// metrics. Indexed by physical link id; both directions accumulate
    /// into the same slot.
    pub fn link_counters(&self) -> Vec<(u64, u64, u64)> {
        let mut out = vec![(0u64, 0u64, 0u64); self.topo.num_phys_links()];
        for (i, st) in self.links.iter().enumerate() {
            let phys = self.topo.link(LinkId(i as u32)).phys as usize;
            out[phys].0 += st.pkts;
            out[phys].1 += st.bytes;
            out[phys].2 += st.drops;
        }
        out
    }

    /// Total packets dropped anywhere in the network, for any reason
    /// (queue overflow, random loss, dead links/nodes, partitions).
    pub fn total_drops(&self) -> u64 {
        self.dropped
    }

    /// Inject a packet at its source host.
    pub fn send(&mut self, now: Time, pkt: Packet<P>, out: &mut Sink<P>) {
        debug_assert!(
            self.topo.is_host(pkt.src),
            "send from non-host {:?}",
            pkt.src
        );
        if self.faults.node_is_down(pkt.src) || self.faults.node_is_down(pkt.dst) {
            self.dropped += 1;
            out.dropped.push((DropReason::NodeDown, pkt.src));
            return;
        }
        if self.faults.partitioned(pkt.src, pkt.dst) {
            self.dropped += 1;
            out.dropped.push((DropReason::Partitioned, pkt.src));
            return;
        }
        let loss_p = self.faults.drop_probability();
        let loss_key = self.next_loss_key(now, &pkt, loss_p);
        let (src, dst) = (pkt.src, pkt.dst);
        if src == dst {
            // Loopback: deliver after a small constant delay (touches
            // no link state, so it never needs the deferred path).
            let cfg_delay = Duration::from_micros(50);
            let pkt = self.arena.alloc(pkt);
            out.schedule.push((
                now + cfg_delay,
                NetEvent::Arrive {
                    node: dst,
                    pkt,
                    sent_at: now,
                },
            ));
            return;
        }
        let pkt = self.arena.alloc(pkt);
        self.transit(now, src, now, pkt, now, 0, loss_key, loss_p, out);
    }

    /// Per-packet loss key: a pure function of the loss seed, the send
    /// identity `(src, dst, time, per-source sequence)` — never of
    /// evaluation order. Zero (and no counter advance) while loss is
    /// off, so the lossless hot path pays nothing.
    fn next_loss_key(&mut self, now: Time, pkt: &Packet<P>, loss_p: f64) -> u64 {
        if loss_p <= 0.0 {
            return 0;
        }
        let idx = pkt.src.index();
        if self.send_seq.len() <= idx {
            self.send_seq.resize(idx + 1, 0);
        }
        let ctr = self.send_seq[idx];
        self.send_seq[idx] += 1;
        let mut k = mix64(self.loss_seed ^ pkt.src.0 as u64 ^ ((pkt.dst.0 as u64) << 32));
        k = mix64(k ^ now.as_micros());
        mix64(k ^ ctr)
    }

    /// Resume a route walk suspended at this shard's boundary. `now` is
    /// the barrier time (a safe monotone lower bound for reservation
    /// pruning); the walk itself continues at `h.t`.
    pub fn resume(&mut self, now: Time, h: Handoff<P>, out: &mut Sink<P>) {
        let done = h.at_node == h.pkt.dst;
        let pkt = self.arena.alloc(h.pkt);
        if done {
            out.schedule.push((
                h.t,
                NetEvent::Arrive {
                    node: h.at_node,
                    pkt,
                    sent_at: h.sent_at,
                },
            ));
        } else {
            self.transit(
                now, h.at_node, h.t, pkt, h.sent_at, h.hops, h.loss_key, h.loss_p, out,
            );
        }
    }

    /// Process one of our own events.
    pub fn handle(&mut self, now: Time, ev: NetEvent, out: &mut Sink<P>) {
        match ev {
            NetEvent::Arrive { node, pkt, sent_at } => {
                let (src, dst) = {
                    let p = self.arena.get(pkt);
                    (p.src, p.dst)
                };
                // Faults are re-checked at arrival so a partition or
                // crash that landed while the packet was in flight
                // still cuts it, exactly as per-hop checks used to.
                if self.faults.node_is_down(node) {
                    self.arena.release(pkt);
                    self.dropped += 1;
                    out.dropped.push((DropReason::NodeDown, node));
                    return;
                }
                if self.faults.partitioned(src, dst) {
                    self.arena.release(pkt);
                    self.dropped += 1;
                    out.dropped.push((DropReason::Partitioned, node));
                    return;
                }
                if node == dst {
                    out.delivered.push(Delivery {
                        pkt: self.arena.take(pkt),
                        sent_at,
                        at: now,
                    });
                } else {
                    // Degenerate rerouting case: the original loss key
                    // is gone, so derive a fresh one from the re-transit
                    // identity (identical on every engine).
                    let loss_p = self.faults.drop_probability();
                    let key = if loss_p > 0.0 {
                        let k = mix64(self.loss_seed ^ src.0 as u64 ^ ((dst.0 as u64) << 32));
                        mix64(k ^ now.as_micros() ^ 0x7265_7478)
                    } else {
                        0
                    };
                    self.transit(now, node, now, pkt, sent_at, 0, key, loss_p, out);
                }
            }
        }
    }

    /// Walk the packet's whole route at send time, charging each link's
    /// queue occupancy and serialization slot as the packet would reach
    /// it, and schedule a single arrival event at the destination. Per
    /// hop this costs a routing lookup and a couple of adds instead of
    /// a departure event plus an arrival event through the scheduler.
    ///
    /// When sharded, the walk stops at the first link owned by another
    /// shard (or at a destination owned by another shard) and emits a
    /// [`Handoff`] instead — no fault checks are performed for the
    /// foreign portion here; the owning shard runs exactly the checks
    /// the sequential walk would, in `resume`.
    #[allow(clippy::too_many_arguments)]
    fn transit(
        &mut self,
        now: Time,
        at: NodeId,
        start_t: Time,
        pkt: PacketRef,
        sent_at: Time,
        hop0: u32,
        loss_key: u64,
        loss_p: f64,
        out: &mut Sink<P>,
    ) {
        let (dst, wire) = {
            let p = self.arena.get(pkt);
            (p.dst, p.wire_size())
        };
        let mut node = at;
        let mut t = start_t;
        let mut hop = hop0;
        loop {
            let Some(lid) = self.router.next_hop(&self.topo, node, dst) else {
                self.arena.release(pkt);
                self.dropped += 1;
                out.dropped.push((DropReason::NoRoute, node));
                return;
            };
            let link = *self.topo.link(lid);
            if let Some((smap, me)) = &self.sharding {
                let owner = smap.owner_of_link(&link);
                if owner != *me {
                    out.handoffs.push(Handoff {
                        pkt: self.arena.take(pkt),
                        at_node: node,
                        t,
                        sent_at,
                        hops: hop,
                        loss_key,
                        loss_p,
                        dest_shard: owner,
                    });
                    return;
                }
            }
            if self.faults.link_is_down(link.phys) {
                self.arena.release(pkt);
                self.links[lid.index()].drops += 1;
                self.dropped += 1;
                out.dropped.push((DropReason::LinkDown, node));
                return;
            }
            if loss_p > 0.0 && Faults::hop_drops_at(loss_p, loss_key ^ hop as u64) {
                self.arena.release(pkt);
                self.links[lid.index()].drops += 1;
                self.dropped += 1;
                out.dropped.push((DropReason::RandomLoss, node));
                return;
            }
            let st = &mut self.links[lid.index()];
            let ser = serialization_time(wire, link.bandwidth_bps);
            let start = st.reserve(now, t, ser);
            // Drop-tail: the packet's wait before its own serialization
            // slot is exactly the traffic ahead of it in the queue,
            // converted back to bytes at line rate.
            if backlog_bytes(start, t, link.bandwidth_bps) + wire as u64 > link.queue_bytes as u64 {
                st.resv.retain(|&r| r != (start, start + ser));
                self.arena.release(pkt);
                st.drops += 1;
                self.dropped += 1;
                out.dropped.push((DropReason::QueueFull, node));
                return;
            }
            st.pkts += 1;
            st.bytes += wire as u64;
            t = start + ser + link.delay;
            node = link.to;
            hop += 1;
            if node == dst {
                break;
            }
        }
        if let Some((smap, me)) = &self.sharding {
            let owner = smap.shard_of(dst);
            if owner != *me {
                // Walk complete, but the arrival event belongs to the
                // destination's shard.
                out.handoffs.push(Handoff {
                    pkt: self.arena.take(pkt),
                    at_node: dst,
                    t,
                    sent_at,
                    hops: hop,
                    loss_key,
                    loss_p,
                    dest_shard: owner,
                });
                return;
            }
        }
        out.schedule.push((
            t,
            NetEvent::Arrive {
                node: dst,
                pkt,
                sent_at,
            },
        ));
    }
}

/// Bytes queued ahead of a packet that arrives at `arrival` and starts
/// serializing at `start`: its wait converted back to bytes at line
/// rate.
fn backlog_bytes(start: Time, arrival: Time, bandwidth_bps: u64) -> u64 {
    let left = start.saturating_since(arrival);
    (left.as_micros() as u128 * bandwidth_bps as u128 / 8_000_000) as u64
}

/// Time to clock `wire` bytes onto a link of the given capacity.
pub fn serialization_time(wire: u32, bandwidth_bps: u64) -> Duration {
    debug_assert!(bandwidth_bps > 0);
    let bits = wire as u128 * 8;
    let us = (bits * 1_000_000).div_ceil(bandwidth_bps as u128);
    Duration::from_micros(us as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{canned, LinkSpec};
    use macedon_sim::Scheduler;

    /// Drive a network's own events until quiescent or the deadline.
    fn run_until<P>(
        net: &mut Network<P>,
        sched: &mut Scheduler<NetEvent>,
        out: &mut Sink<P>,
        deadline: Time,
    ) {
        loop {
            let mut progressed = false;
            // First drain any freshly scheduled events into the scheduler.
            for (t, ev) in out.schedule.drain(..) {
                sched.schedule(t, ev);
                progressed = true;
            }
            if let Some((now, ev)) = sched.pop_before(deadline) {
                net.handle(now, ev, out);
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn delivery_latency_propagation_plus_serialization() {
        // host -1ms- router -1ms- host at 100 Mbps.
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        net.send(Time::ZERO, Packet::new(a, b, 1000, 7), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(10));
        assert_eq!(out.delivered.len(), 1);
        let d = &out.delivered[0];
        assert_eq!(d.pkt.payload, 7);
        // 2 hops: each 1 ms prop + 83.2 µs serialization of 1040 B at 100 Mbps
        let ser = serialization_time(1040, 100_000_000);
        let expect = ms(2) + ser + ser;
        assert_eq!(d.at - d.sent_at, expect);
    }

    #[test]
    fn loopback_delivers_fast() {
        let t = canned::two_hosts(LinkSpec::lan());
        let a = t.hosts()[0];
        let mut net: Network<&str> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        net.send(Time::ZERO, Packet::new(a, a, 100, "self"), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(1));
        assert_eq!(out.delivered.len(), 1);
        assert!(out.delivered[0].at < Time::from_millis(1));
    }

    #[test]
    fn fifo_per_link() {
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        for i in 0..20 {
            net.send(Time::ZERO, Packet::new(a, b, 1000, i), &mut out);
        }
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(10));
        let got: Vec<u32> = out.delivered.iter().map(|d| d.pkt.payload).collect();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn serialization_queues_back_to_back_packets() {
        // On a slow 1 Mbps access link, 10 packets of 1000 B take ~8.3 ms each.
        let t = canned::two_hosts(LinkSpec::access(1_000_000));
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        for i in 0..10 {
            net.send(Time::ZERO, Packet::new(a, b, 1000, i), &mut out);
        }
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(10));
        assert_eq!(out.delivered.len(), 10);
        let ser = serialization_time(1040, 1_000_000);
        // Last packet waits behind 9 others on the first link.
        let last = out.delivered.last().unwrap();
        assert!(last.at.as_micros() >= 10 * ser.as_micros());
    }

    #[test]
    fn queue_overflow_drops() {
        // Queue of 32 KiB holds ~31 packets of 1040 B.
        let t = canned::two_hosts(LinkSpec::access(1_000_000));
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        for i in 0..100 {
            net.send(Time::ZERO, Packet::new(a, b, 1000, i), &mut out);
        }
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(60));
        assert!(out.delivered.len() < 100, "some packets must drop");
        assert!(!out.dropped.is_empty());
        assert!(out.dropped.iter().all(|(r, _)| *r == DropReason::QueueFull));
        assert_eq!(out.delivered.len() + out.dropped.len(), 100);
        assert_eq!(net.total_drops() as usize, out.dropped.len());
    }

    #[test]
    fn random_loss_drops_roughly_p() {
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        net.faults_mut().set_drop_probability(0.2);
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        // Spread sends out so queues don't overflow: drain the pipeline up
        // to each send instant before injecting the next packet.
        for i in 0..1000 {
            let at = Time::from_millis(i as u64);
            run_until(&mut net, &mut sched, &mut out, at);
            net.send(at.max(sched.now()), Packet::new(a, b, 100, i), &mut out);
        }
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(100));
        let lost = 1000 - out.delivered.len();
        // Two hops, each with 20% loss → ~36% total loss. Allow slack.
        assert!((250..=450).contains(&lost), "lost={lost}");
    }

    #[test]
    fn link_down_blocks_traffic() {
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let phys0 = t.link(t.outgoing(a)[0]).phys;
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        net.faults_mut().fail_link(phys0);
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        net.send(Time::ZERO, Packet::new(a, b, 100, 1), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(1));
        assert!(out.delivered.is_empty());
        assert_eq!(out.dropped[0].0, DropReason::LinkDown);
        // Heal and retry.
        net.faults_mut().heal_link(phys0);
        net.send(Time::from_secs(1), Packet::new(a, b, 100, 2), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(2));
        assert_eq!(out.delivered.len(), 1);
    }

    #[test]
    fn node_down_blocks_traffic() {
        let t = canned::star(3, LinkSpec::lan());
        let hs = t.hosts().to_vec();
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        net.faults_mut().fail_node(hs[1]);
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        net.send(Time::ZERO, Packet::new(hs[0], hs[1], 100, 1), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(1));
        assert!(out.delivered.is_empty());
        // Unrelated pair still works.
        net.send(Time::ZERO, Packet::new(hs[0], hs[2], 100, 2), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(1));
        assert_eq!(out.delivered.len(), 1);
    }

    #[test]
    fn partition_blocks_and_heals() {
        let t = canned::star(3, LinkSpec::lan());
        let hs = t.hosts().to_vec();
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        net.faults_mut()
            .set_partition([hs[0]].into_iter().collect());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        net.send(Time::ZERO, Packet::new(hs[0], hs[1], 100, 1), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(1));
        assert!(out.delivered.is_empty());
        assert_eq!(out.dropped[0].0, DropReason::Partitioned);
        // Same-side traffic flows.
        net.send(Time::ZERO, Packet::new(hs[1], hs[2], 100, 2), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(1));
        assert_eq!(out.delivered.len(), 1);
        // Heal and retry across the old cut.
        net.faults_mut().heal_partition();
        net.send(
            Time::from_secs(1),
            Packet::new(hs[0], hs[1], 100, 3),
            &mut out,
        );
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(2));
        assert_eq!(out.delivered.len(), 2);
    }

    #[test]
    fn partition_cuts_packets_in_flight() {
        // A packet already past its first hop is dropped at the next
        // hop once the cut lands.
        let t = canned::two_hosts(LinkSpec::wan(ms(50)));
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        net.send(Time::ZERO, Packet::new(a, b, 100, 1), &mut out);
        // Drain events up to 60 ms (packet is at the router), then cut.
        for (t, ev) in out.schedule.drain(..) {
            sched.schedule(t, ev);
        }
        while let Some((now, ev)) = sched.pop_before(Time::from_millis(60)) {
            net.handle(now, ev, &mut out);
            for (t, ev) in out.schedule.drain(..) {
                sched.schedule(t, ev);
            }
        }
        net.faults_mut().set_partition([a].into_iter().collect());
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(1));
        assert!(out.delivered.is_empty());
        assert!(out
            .dropped
            .iter()
            .any(|(r, _)| *r == DropReason::Partitioned));
    }

    #[test]
    fn runtime_link_mutation_changes_timing() {
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let phys = t.link(t.outgoing(a)[0]).phys;
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        net.send(Time::ZERO, Packet::new(a, b, 1000, 1), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(1));
        let fast = out.delivered[0].at;
        // Degrade the access link to 10 kbps and 20 ms delay.
        net.set_phys_link(phys, Some(10_000), Some(ms(20)));
        assert_eq!(net.topology().phys_link_props(phys), Some((ms(20), 10_000)));
        net.send(Time::from_secs(1), Packet::new(a, b, 1000, 2), &mut out);
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(10));
        let slow_lat = out.delivered[1]
            .at
            .saturating_since(out.delivered[1].sent_at);
        let fast_lat = fast.saturating_since(Time::ZERO);
        // 1040 B at 10 kbps = 832 ms serialization on the first hop alone.
        assert!(slow_lat.as_micros() > 10 * fast_lat.as_micros());
        assert!(slow_lat >= Duration::from_millis(800));
    }

    #[test]
    fn link_counters_accumulate() {
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        for i in 0..5 {
            net.send(Time::ZERO, Packet::new(a, b, 1000, i), &mut out);
        }
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(10));
        let counters = net.link_counters();
        // Both physical links saw 5 packets each (one direction used).
        assert_eq!(counters.len(), 2);
        assert!(counters.iter().all(|&(p, by, _)| p == 5 && by == 5 * 1040));
    }

    #[test]
    fn arena_slots_are_reused_not_leaked() {
        // Sequential traffic keeps the arena at its in-flight high-water
        // mark: delivered and dropped packets must both free their slot.
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        net.faults_mut().set_drop_probability(0.2);
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        for i in 0..200 {
            let at = Time::from_millis(i as u64);
            run_until(&mut net, &mut sched, &mut out, at);
            net.send(at.max(sched.now()), Packet::new(a, b, 100, i), &mut out);
        }
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(100));
        assert_eq!(net.packet_arena().live(), 0, "every packet left the arena");
        assert!(
            net.packet_arena().capacity() <= 8,
            "capacity {} tracks in-flight high-water, not volume",
            net.packet_arena().capacity()
        );
    }

    #[test]
    fn serialization_time_math() {
        // 1250 bytes at 10 Mbps = 1 ms.
        assert_eq!(serialization_time(1250, 10_000_000), ms(1));
        // Rounds up.
        assert_eq!(serialization_time(1, 8_000_000), Duration::from_micros(1));
    }

    #[test]
    fn congestion_on_dumbbell_bottleneck() {
        // Many flows share a 1 Mbps bottleneck: aggregate goodput must be
        // capped by it.
        let t = canned::dumbbell(
            4,
            LinkSpec::lan(),
            LinkSpec::new(ms(5), 1_000_000, 16 * 1024),
        );
        let hosts = t.hosts().to_vec();
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        // Left hosts 0..4, right hosts 4..8. Each left host sends 50 pkts
        // of 1000 B over one virtual second.
        let mut sent = 0;
        for i in 0..4usize {
            for k in 0..50u64 {
                net.send(
                    Time::from_millis(k * 20),
                    Packet::new(hosts[i], hosts[4 + i], 1000, sent),
                    &mut out,
                );
                sent += 1;
            }
        }
        run_until(&mut net, &mut sched, &mut out, Time::from_secs(30));
        let last = out.delivered.iter().map(|d| d.at).max().unwrap();
        let bytes: u64 = out.delivered.iter().map(|d| d.pkt.wire_size() as u64).sum();
        let rate_bps = bytes as f64 * 8.0 / last.as_secs_f64();
        assert!(
            rate_bps <= 1_100_000.0,
            "rate {rate_bps} exceeds bottleneck"
        );
    }
}
