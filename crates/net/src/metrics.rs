//! Overlay evaluation metrics extracted from global topology knowledge.
//!
//! §4.3 of the paper: "MACEDON can extract routing tables from ns and
//! ModelNet to report the expected performance along metrics such as link
//! stress, latency stretch, and relative delay penalty (RDP)." These are
//! exactly the computations here; the emulator plays the role of the
//! global oracle.
//!
//! Definitions used (standard in the overlay literature the paper cites):
//!
//! * **link stress** — for a physical link, the number of identical
//!   overlay packets carried (i.e. duplicate transmissions); summarized as
//!   max / mean over links actually used.
//! * **latency stretch** — for a (source, member) pair, the overlay path
//!   latency divided by the direct unicast IP latency.
//! * **RDP (relative delay penalty)** — same ratio measured on delivered
//!   application data (stretch measured per packet rather than from the
//!   topology).

use crate::pipeline::Network;
use crate::topology::NodeId;
use macedon_sim::{Duration, Time};
use std::collections::HashMap;

/// Compute per-pair latency stretch for overlay paths.
///
/// `overlay_edges` is the overlay graph: for each member, the neighbor it
/// receives data from (e.g. tree parent). The overlay path latency from
/// `root` to each member is the sum of unicast latencies along overlay
/// hops; stretch divides by the direct unicast latency from `root`.
pub fn tree_stretch<P>(
    net: &mut Network<P>,
    root: NodeId,
    parents: &HashMap<NodeId, NodeId>,
) -> HashMap<NodeId, f64> {
    // Overlay latency from root, memoized.
    let mut overlay: HashMap<NodeId, Option<Duration>> = HashMap::new();
    overlay.insert(root, Some(Duration::ZERO));

    fn resolve<P>(
        n: NodeId,
        net: &mut Network<P>,
        parents: &HashMap<NodeId, NodeId>,
        overlay: &mut HashMap<NodeId, Option<Duration>>,
        depth: usize,
    ) -> Option<Duration> {
        if let Some(v) = overlay.get(&n) {
            return *v;
        }
        if depth > parents.len() + 1 {
            return None; // cycle guard
        }
        let p = *parents.get(&n)?;
        let up = resolve(p, net, parents, overlay, depth + 1)?;
        let hop = net.oracle_latency(p, n)?;
        let total = up + hop;
        overlay.insert(n, Some(total));
        Some(total)
    }

    let members: Vec<NodeId> = parents.keys().copied().collect();
    let mut out = HashMap::new();
    for m in members {
        if m == root {
            continue;
        }
        let Some(ov) = resolve(m, net, parents, &mut overlay, 0) else {
            continue;
        };
        let Some(direct) = net.oracle_latency(root, m) else {
            continue;
        };
        let direct_us = direct.as_micros().max(1);
        out.insert(m, ov.as_micros() as f64 / direct_us as f64);
    }
    out
}

/// Summary of link stress over the physical links an overlay used.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StressSummary {
    pub max: u64,
    pub mean: f64,
    pub links_used: usize,
}

/// Link stress from the emulator's per-link packet counters, relative to
/// a baseline count captured before the measurement window (pass zeroes
/// for a whole-run measurement).
pub fn link_stress<P>(net: &Network<P>, baseline: &[(u64, u64, u64)]) -> StressSummary {
    let counters = net.link_counters();
    let mut max = 0u64;
    let mut sum = 0u64;
    let mut used = 0usize;
    for (i, &(pkts, _, _)) in counters.iter().enumerate() {
        let base = baseline.get(i).map(|b| b.0).unwrap_or(0);
        let delta = pkts.saturating_sub(base);
        if delta > 0 {
            used += 1;
            sum += delta;
            max = max.max(delta);
        }
    }
    StressSummary {
        max,
        mean: if used == 0 {
            0.0
        } else {
            sum as f64 / used as f64
        },
        links_used: used,
    }
}

/// Per-packet relative delay penalty: observed overlay delivery latency
/// over direct unicast latency.
pub fn rdp<P>(
    net: &mut Network<P>,
    src: NodeId,
    dst: NodeId,
    sent_at: Time,
    delivered_at: Time,
) -> Option<f64> {
    let direct = net.oracle_latency(src, dst)?;
    let observed = delivered_at.saturating_since(sent_at);
    Some(observed.as_micros() as f64 / direct.as_micros().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::pipeline::{NetworkConfig, Sink};
    use crate::topology::{canned, LinkSpec};
    use macedon_sim::Scheduler;

    #[test]
    fn stretch_of_direct_children_is_one() {
        let t = canned::star(4, LinkSpec::lan());
        let hs = t.hosts().to_vec();
        let mut net: Network<()> = Network::new(t, NetworkConfig::default());
        // Star overlay == star IP topology: all stretch 1.0.
        let parents: HashMap<NodeId, NodeId> = hs[1..].iter().map(|&h| (h, hs[0])).collect();
        let s = tree_stretch(&mut net, hs[0], &parents);
        assert_eq!(s.len(), 3);
        for (_, v) in s {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_overlay_has_stretch_above_one() {
        let t = canned::star(3, LinkSpec::lan());
        let hs = t.hosts().to_vec();
        let mut net: Network<()> = Network::new(t, NetworkConfig::default());
        // Overlay chain h0 -> h1 -> h2 over a star: h2's overlay path is
        // h0-h1 (2ms) + h1-h2 (2ms) = 4ms vs direct 2ms → stretch 2.
        let mut parents = HashMap::new();
        parents.insert(hs[1], hs[0]);
        parents.insert(hs[2], hs[1]);
        let s = tree_stretch(&mut net, hs[0], &parents);
        assert!((s[&hs[1]] - 1.0).abs() < 1e-9);
        assert!((s[&hs[2]] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stretch_handles_cycle_gracefully() {
        let t = canned::star(3, LinkSpec::lan());
        let hs = t.hosts().to_vec();
        let mut net: Network<()> = Network::new(t, NetworkConfig::default());
        let mut parents = HashMap::new();
        parents.insert(hs[1], hs[2]);
        parents.insert(hs[2], hs[1]); // cycle, detached from root
        let s = tree_stretch(&mut net, hs[0], &parents);
        assert!(s.is_empty());
    }

    #[test]
    fn link_stress_counts_duplicates() {
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<u32> = Network::new(t, NetworkConfig::default());
        let baseline = net.link_counters();
        let mut sched = Scheduler::new();
        let mut out = Sink::new();
        for i in 0..3 {
            net.send(Time::ZERO, Packet::new(a, b, 100, i), &mut out);
        }
        // Drain.
        loop {
            for (ti, ev) in out.schedule.drain(..) {
                sched.schedule(ti, ev);
            }
            match sched.pop() {
                Some((now, ev)) => net.handle(now, ev, &mut out),
                None => {
                    if out.schedule.is_empty() {
                        break;
                    }
                }
            }
        }
        let s = link_stress(&net, &baseline);
        assert_eq!(s.max, 3);
        assert_eq!(s.links_used, 2);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn rdp_of_direct_path_is_one() {
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut net: Network<()> = Network::new(t, NetworkConfig::default());
        let direct = net.oracle_latency(a, b).unwrap();
        let r = rdp(&mut net, a, b, Time::ZERO, Time::ZERO + direct).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
        let r2 = rdp(&mut net, a, b, Time::ZERO, Time::ZERO + direct + direct).unwrap();
        assert!((r2 - 2.0).abs() < 1e-9);
    }
}
