//! Network topology model and generators.
//!
//! A topology is a directed multigraph of routers and hosts. Physical
//! links are full-duplex: the builder materializes each as two directed
//! half-links, each with its own FIFO queue, mirroring how ModelNet pipes
//! model link directions independently.

use macedon_sim::{Duration, SimRng};

/// Index of a node (router or end host) in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Index of a *directed* half-link.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a node is interior (router) or an overlay-capable end host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    Router,
    Host,
}

/// A directed half-link.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    pub from: NodeId,
    pub to: NodeId,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// Drop-tail queue capacity in bytes.
    pub queue_bytes: u32,
    /// The physical (undirected) link this half belongs to; both directions
    /// of one cable share a `phys` id. Used for link-stress accounting.
    pub phys: u32,
}

/// An immutable network topology.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: Vec<NodeKind>,
    links: Vec<Link>,
    /// Outgoing links per node.
    adj: Vec<Vec<LinkId>>,
    hosts: Vec<NodeId>,
    phys_count: u32,
}

impl Topology {
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of physical (undirected) links.
    pub fn num_phys_links(&self) -> usize {
        self.phys_count as usize
    }

    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()]
    }

    pub fn link(&self, l: LinkId) -> &Link {
        &self.links[l.index()]
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Outgoing half-links of a node.
    pub fn outgoing(&self, n: NodeId) -> &[LinkId] {
        &self.adj[n.index()]
    }

    /// The opposite-direction half of the same physical link. The
    /// builder pushes both halves consecutively, so this is a bit flip —
    /// O(1), no adjacency scan.
    pub fn reverse(&self, l: LinkId) -> LinkId {
        let r = LinkId(l.0 ^ 1);
        debug_assert_eq!(self.links[r.index()].phys, self.links[l.index()].phys);
        debug_assert_eq!(self.links[r.index()].to, self.links[l.index()].from);
        r
    }

    /// All end hosts, in creation order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    pub fn is_host(&self, n: NodeId) -> bool {
        self.kind(n) == NodeKind::Host
    }

    /// Degree (outgoing link count) of a node.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adj[n.index()].len()
    }

    /// Physical (undirected) link ids incident to a node — e.g. a
    /// host's access link(s), the usual target of runtime degradation.
    pub fn phys_links_of(&self, n: NodeId) -> Vec<u32> {
        let mut out: Vec<u32> = self.adj[n.index()]
            .iter()
            .map(|&l| self.links[l.index()].phys)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Current `(delay, bandwidth)` of a physical link (both directed
    /// halves always agree).
    pub fn phys_link_props(&self, phys: u32) -> Option<(Duration, u64)> {
        self.links
            .iter()
            .find(|l| l.phys == phys)
            .map(|l| (l.delay, l.bandwidth_bps))
    }

    /// Mutate a physical link's properties at runtime (both directed
    /// halves): `None` leaves a property unchanged. This is the
    /// perturbation primitive behind scenario-scripted link
    /// degradation; topologies are otherwise immutable.
    pub fn set_phys_link(
        &mut self,
        phys: u32,
        bandwidth_bps: Option<u64>,
        delay: Option<Duration>,
    ) {
        for l in self.links.iter_mut().filter(|l| l.phys == phys) {
            if let Some(bw) = bandwidth_bps {
                assert!(bw > 0, "zero-bandwidth link");
                l.bandwidth_bps = bw;
            }
            if let Some(d) = delay {
                l.delay = d;
            }
        }
    }
}

/// Mutable builder for [`Topology`].
#[derive(Default)]
pub struct TopologyBuilder {
    nodes: Vec<NodeKind>,
    links: Vec<Link>,
    adj: Vec<Vec<LinkId>>,
    hosts: Vec<NodeId>,
    phys_count: u32,
}

/// Per-link parameters used when adding links.
#[derive(Clone, Copy, Debug)]
pub struct LinkSpec {
    pub delay: Duration,
    pub bandwidth_bps: u64,
    pub queue_bytes: u32,
}

impl LinkSpec {
    pub fn new(delay: Duration, bandwidth_bps: u64, queue_bytes: u32) -> LinkSpec {
        LinkSpec {
            delay,
            bandwidth_bps,
            queue_bytes,
        }
    }

    /// A LAN-ish link: 1 ms, 100 Mbps, 64 KiB queue.
    pub fn lan() -> LinkSpec {
        LinkSpec::new(Duration::from_millis(1), 100_000_000, 64 * 1024)
    }

    /// A WAN core link: given delay, 155 Mbps (OC-3-ish), 256 KiB queue.
    pub fn wan(delay: Duration) -> LinkSpec {
        LinkSpec::new(delay, 155_000_000, 256 * 1024)
    }

    /// A client access link (paper-era broadband): given bandwidth,
    /// 1 ms, 32 KiB queue.
    pub fn access(bandwidth_bps: u64) -> LinkSpec {
        LinkSpec::new(Duration::from_millis(1), bandwidth_bps, 32 * 1024)
    }
}

impl TopologyBuilder {
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    pub fn add_router(&mut self) -> NodeId {
        self.add_node(NodeKind::Router)
    }

    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host)
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(kind);
        self.adj.push(Vec::new());
        if kind == NodeKind::Host {
            self.hosts.push(id);
        }
        id
    }

    /// Add a full-duplex link between `a` and `b` (two directed halves
    /// sharing one physical id).
    pub fn add_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        assert_ne!(a, b, "self-loop link");
        assert!(spec.bandwidth_bps > 0, "zero-bandwidth link");
        let phys = self.phys_count;
        self.phys_count += 1;
        for (from, to) in [(a, b), (b, a)] {
            let id = LinkId(self.links.len() as u32);
            self.links.push(Link {
                from,
                to,
                delay: spec.delay,
                bandwidth_bps: spec.bandwidth_bps,
                queue_bytes: spec.queue_bytes,
                phys,
            });
            self.adj[from.index()].push(id);
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn build(self) -> Topology {
        Topology {
            nodes: self.nodes,
            links: self.links,
            adj: self.adj,
            hosts: self.hosts,
            phys_count: self.phys_count,
        }
    }
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Parameters for the INET-like preferential-attachment generator.
///
/// The paper's experiments run over "20,000-node INET topologies with
/// varying numbers of clients (200–1000)". INET grows an AS-level graph
/// whose degree distribution follows a power law; we reproduce that with
/// linear preferential attachment (Barabási–Albert) and then attach client
/// hosts to low-degree (edge) routers via constrained access links.
#[derive(Clone, Debug)]
pub struct InetParams {
    pub routers: usize,
    pub clients: usize,
    /// Edges added per new router (m in BA terms).
    pub edges_per_router: usize,
    /// Core link delay range (uniform).
    pub core_delay_ms: (u64, u64),
    /// Client access-link bandwidth range (uniform, bps).
    pub access_bw_bps: (u64, u64),
    /// Core link bandwidth (bps).
    pub core_bw_bps: u64,
}

impl Default for InetParams {
    fn default() -> Self {
        InetParams {
            routers: 2_000,
            clients: 200,
            edges_per_router: 2,
            core_delay_ms: (2, 40),
            // Paper-era client links: ~1-10 Mbps.
            access_bw_bps: (1_000_000, 10_000_000),
            core_bw_bps: 155_000_000,
        }
    }
}

impl InetParams {
    /// The paper's full-scale configuration: 20,000 routers.
    pub fn paper_scale(clients: usize) -> InetParams {
        InetParams {
            routers: 20_000,
            clients,
            ..Default::default()
        }
    }

    /// A smaller configuration for unit and integration tests.
    pub fn test_scale(clients: usize) -> InetParams {
        InetParams {
            routers: 200,
            clients,
            ..Default::default()
        }
    }
}

/// Generate an INET-like topology. Deterministic for a given RNG state.
pub fn inet(params: &InetParams, rng: &mut SimRng) -> Topology {
    assert!(params.routers >= 3, "need at least 3 routers");
    assert!(params.edges_per_router >= 1);
    let mut b = TopologyBuilder::new();

    let mut routers = Vec::with_capacity(params.routers);
    // Seed triangle.
    for _ in 0..3 {
        routers.push(b.add_router());
    }
    let core = |rng: &mut SimRng, p: &InetParams| {
        let (lo, hi) = p.core_delay_ms;
        LinkSpec::new(
            Duration::from_millis(rng.gen_range(hi - lo + 1) + lo),
            p.core_bw_bps,
            256 * 1024,
        )
    };
    b.add_link(routers[0], routers[1], core(rng, params));
    b.add_link(routers[1], routers[2], core(rng, params));
    b.add_link(routers[2], routers[0], core(rng, params));

    // Degree-weighted target list: node appears once per incident edge.
    let mut endpoints: Vec<NodeId> = vec![
        routers[0], routers[1], routers[1], routers[2], routers[2], routers[0],
    ];

    while routers.len() < params.routers {
        let r = b.add_router();
        let mut chosen: Vec<NodeId> = Vec::with_capacity(params.edges_per_router);
        let mut guard = 0;
        while chosen.len() < params.edges_per_router && guard < 64 {
            let t = *rng.choose(&endpoints);
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for t in &chosen {
            b.add_link(r, *t, core(rng, params));
            endpoints.push(r);
            endpoints.push(*t);
        }
        routers.push(r);
    }

    // Attach clients to low-degree routers ("edge" of the AS graph). We
    // sample candidates and keep the lowest-degree one, approximating
    // INET's placement of hosts at stub ASes.
    for _ in 0..params.clients {
        let host = b.add_host();
        let mut best = routers[rng.index(routers.len())];
        for _ in 0..3 {
            let cand = routers[rng.index(routers.len())];
            if b.adj[cand.index()].len() < b.adj[best.index()].len() {
                best = cand;
            }
        }
        let (lo, hi) = params.access_bw_bps;
        let bw = rng.gen_range(hi - lo + 1) + lo;
        b.add_link(host, best, LinkSpec::access(bw));
    }

    b.build()
}

/// Parameters for the GT-ITM-style transit-stub generator.
#[derive(Clone, Debug)]
pub struct TransitStubParams {
    pub transit_domains: usize,
    pub routers_per_transit: usize,
    pub stubs_per_transit_router: usize,
    pub routers_per_stub: usize,
    pub hosts_per_stub: usize,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit_domains: 2,
            routers_per_transit: 4,
            stubs_per_transit_router: 2,
            routers_per_stub: 3,
            hosts_per_stub: 2,
        }
    }
}

/// Generate a transit-stub topology: a ring of transit domains, each
/// transit router sponsoring several stub domains; hosts live in stubs.
pub fn transit_stub(p: &TransitStubParams, rng: &mut SimRng) -> Topology {
    let mut b = TopologyBuilder::new();
    let mut transit_routers: Vec<Vec<NodeId>> = Vec::new();

    for _ in 0..p.transit_domains {
        let rs: Vec<NodeId> = (0..p.routers_per_transit).map(|_| b.add_router()).collect();
        // Intra-transit: ring + one chord for redundancy.
        for i in 0..rs.len() {
            let j = (i + 1) % rs.len();
            if rs.len() > 1 && i < j {
                b.add_link(rs[i], rs[j], LinkSpec::wan(Duration::from_millis(5)));
            }
        }
        if rs.len() > 3 {
            b.add_link(
                rs[0],
                rs[rs.len() / 2],
                LinkSpec::wan(Duration::from_millis(5)),
            );
        }
        transit_routers.push(rs);
    }
    // Inter-transit ring.
    for d in 0..transit_routers.len() {
        let e = (d + 1) % transit_routers.len();
        if transit_routers.len() > 1 && d < e {
            let a = transit_routers[d][0];
            let c = transit_routers[e][0];
            let delay = Duration::from_millis(20 + rng.gen_range(30));
            b.add_link(a, c, LinkSpec::wan(delay));
        }
    }

    for domain in &transit_routers {
        for &tr in domain {
            for _ in 0..p.stubs_per_transit_router {
                let stub: Vec<NodeId> = (0..p.routers_per_stub).map(|_| b.add_router()).collect();
                // Stub is a line; gateway is stub[0].
                for w in stub.windows(2) {
                    b.add_link(w[0], w[1], LinkSpec::lan());
                }
                b.add_link(
                    stub[0],
                    tr,
                    LinkSpec::wan(Duration::from_millis(2 + rng.gen_range(8))),
                );
                for i in 0..p.hosts_per_stub {
                    let h = b.add_host();
                    let attach = stub[i % stub.len()];
                    b.add_link(h, attach, LinkSpec::access(5_000_000));
                }
            }
        }
    }
    b.build()
}

/// Canned topologies for tests and examples.
pub mod canned {
    use super::*;

    /// Two hosts joined by one router.
    pub fn two_hosts(spec: LinkSpec) -> Topology {
        let mut b = TopologyBuilder::new();
        let r = b.add_router();
        let a = b.add_host();
        let c = b.add_host();
        b.add_link(a, r, spec);
        b.add_link(c, r, spec);
        b.build()
    }

    /// `n` hosts hanging off one central router.
    pub fn star(n: usize, spec: LinkSpec) -> Topology {
        let mut b = TopologyBuilder::new();
        let hub = b.add_router();
        for _ in 0..n {
            let h = b.add_host();
            b.add_link(h, hub, spec);
        }
        b.build()
    }

    /// A line of `n` routers, a host at each end.
    pub fn line(n: usize, spec: LinkSpec) -> Topology {
        assert!(n >= 1);
        let mut b = TopologyBuilder::new();
        let routers: Vec<NodeId> = (0..n).map(|_| b.add_router()).collect();
        for w in routers.windows(2) {
            b.add_link(w[0], w[1], spec);
        }
        let a = b.add_host();
        let z = b.add_host();
        b.add_link(a, routers[0], spec);
        b.add_link(z, routers[n - 1], spec);
        b.build()
    }

    /// Classic dumbbell: `n` hosts each side of a bottleneck link.
    pub fn dumbbell(n: usize, edge: LinkSpec, bottleneck: LinkSpec) -> Topology {
        let mut b = TopologyBuilder::new();
        let left = b.add_router();
        let right = b.add_router();
        b.add_link(left, right, bottleneck);
        for _ in 0..n {
            let h = b.add_host();
            b.add_link(h, left, edge);
        }
        for _ in 0..n {
            let h = b.add_host();
            b.add_link(h, right, edge);
        }
        b.build()
    }

    /// A ring of `n` routers, one host per router.
    pub fn ring(n: usize, spec: LinkSpec) -> Topology {
        assert!(n >= 3);
        let mut b = TopologyBuilder::new();
        let routers: Vec<NodeId> = (0..n).map(|_| b.add_router()).collect();
        for i in 0..n {
            b.add_link(routers[i], routers[(i + 1) % n], spec);
        }
        for &r in &routers {
            let h = b.add_host();
            b.add_link(h, r, spec);
        }
        b.build()
    }

    /// A w×h router grid (Manhattan links), one host per corner router.
    pub fn grid(w: usize, h: usize, spec: LinkSpec) -> Topology {
        assert!(w >= 2 && h >= 2);
        let mut b = TopologyBuilder::new();
        let mut routers = Vec::with_capacity(w * h);
        for _ in 0..w * h {
            routers.push(b.add_router());
        }
        let at = |x: usize, y: usize| routers[y * w + x];
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.add_link(at(x, y), at(x + 1, y), spec);
                }
                if y + 1 < h {
                    b.add_link(at(x, y), at(x, y + 1), spec);
                }
            }
        }
        for &(x, y) in &[(0, 0), (w - 1, 0), (0, h - 1), (w - 1, h - 1)] {
            let host = b.add_host();
            b.add_link(host, at(x, y), spec);
        }
        b.build()
    }

    /// `n` hosts, every pair directly connected (no routers).
    pub fn full_mesh(n: usize, spec: LinkSpec) -> Topology {
        assert!(n >= 2);
        let mut b = TopologyBuilder::new();
        let hosts: Vec<NodeId> = (0..n).map(|_| b.add_host()).collect();
        for i in 0..n {
            for j in (i + 1)..n {
                b.add_link(hosts[i], hosts[j], spec);
            }
        }
        b.build()
    }

    /// The NICE validation topology: `sites.len()` sites, with
    /// `members_per_site` hosts each behind a site router; site routers are
    /// fully meshed with the given inter-site latencies (ms);
    /// `sites[i][j]` is the latency between site i and site j.
    pub fn sites(latency_ms: &[Vec<u64>], members_per_site: usize, lan: LinkSpec) -> Topology {
        let n = latency_ms.len();
        let mut b = TopologyBuilder::new();
        let routers: Vec<NodeId> = (0..n).map(|_| b.add_router()).collect();
        for i in 0..n {
            assert_eq!(latency_ms[i].len(), n, "latency matrix must be square");
            for j in (i + 1)..n {
                let spec = LinkSpec::wan(Duration::from_millis(latency_ms[i][j]));
                b.add_link(routers[i], routers[j], spec);
            }
        }
        for &r in &routers {
            for _ in 0..members_per_site {
                let h = b.add_host();
                b.add_link(h, r, lan);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut b = TopologyBuilder::new();
        let r = b.add_router();
        let h1 = b.add_host();
        let h2 = b.add_host();
        b.add_link(h1, r, LinkSpec::lan());
        b.add_link(h2, r, LinkSpec::lan());
        let t = b.build();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 4); // two full-duplex links
        assert_eq!(t.num_phys_links(), 2);
        assert_eq!(t.hosts(), &[h1, h2]);
        assert_eq!(t.kind(r), NodeKind::Router);
        assert!(t.is_host(h1));
        assert_eq!(t.degree(r), 2);
    }

    #[test]
    fn links_are_bidirectional() {
        let t = canned::two_hosts(LinkSpec::lan());
        let h = t.hosts()[0];
        assert_eq!(t.outgoing(h).len(), 1);
        let l = t.link(t.outgoing(h)[0]);
        assert_eq!(l.from, h);
        // reverse half exists on the router
        let r = l.to;
        assert!(t.outgoing(r).iter().any(|&lid| t.link(lid).to == h));
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        let mut b = TopologyBuilder::new();
        let r = b.add_router();
        b.add_link(r, r, LinkSpec::lan());
    }

    #[test]
    fn inet_shape() {
        let mut rng = SimRng::new(1);
        let p = InetParams {
            routers: 100,
            clients: 20,
            ..Default::default()
        };
        let t = inet(&p, &mut rng);
        assert_eq!(t.hosts().len(), 20);
        assert_eq!(t.num_nodes(), 120);
        // connected: every node has at least one link
        for i in 0..t.num_nodes() {
            assert!(t.degree(NodeId(i as u32)) >= 1, "node {i} disconnected");
        }
    }

    #[test]
    fn inet_is_deterministic() {
        let p = InetParams::test_scale(10);
        let t1 = inet(&p, &mut SimRng::new(99));
        let t2 = inet(&p, &mut SimRng::new(99));
        assert_eq!(t1.num_links(), t2.num_links());
        for (a, b) in t1.links().iter().zip(t2.links()) {
            assert_eq!(a.from, b.from);
            assert_eq!(a.to, b.to);
            assert_eq!(a.delay, b.delay);
        }
    }

    #[test]
    fn inet_degree_distribution_is_skewed() {
        let mut rng = SimRng::new(3);
        let p = InetParams {
            routers: 500,
            clients: 0,
            ..Default::default()
        };
        let t = inet(&p, &mut rng);
        let mut degrees: Vec<usize> = (0..t.num_nodes())
            .map(|i| t.degree(NodeId(i as u32)))
            .collect();
        degrees.sort_unstable();
        let max = *degrees.last().unwrap();
        let median = degrees[degrees.len() / 2];
        // Preferential attachment: hubs should be much larger than median.
        assert!(max >= media_floor(median), "max={max} median={median}");
        fn media_floor(m: usize) -> usize {
            m * 4
        }
    }

    #[test]
    fn transit_stub_shape() {
        let mut rng = SimRng::new(5);
        let p = TransitStubParams::default();
        let t = transit_stub(&p, &mut rng);
        let expected_hosts = p.transit_domains
            * p.routers_per_transit
            * p.stubs_per_transit_router
            * p.hosts_per_stub;
        assert_eq!(t.hosts().len(), expected_hosts);
        for i in 0..t.num_nodes() {
            assert!(t.degree(NodeId(i as u32)) >= 1);
        }
    }

    #[test]
    fn star_topology() {
        let t = canned::star(5, LinkSpec::lan());
        assert_eq!(t.hosts().len(), 5);
        assert_eq!(t.num_phys_links(), 5);
        assert_eq!(t.degree(NodeId(0)), 5);
    }

    #[test]
    fn dumbbell_topology() {
        let t = canned::dumbbell(3, LinkSpec::lan(), LinkSpec::wan(Duration::from_millis(10)));
        assert_eq!(t.hosts().len(), 6);
        assert_eq!(t.num_phys_links(), 7);
    }

    #[test]
    fn ring_topology() {
        let t = canned::ring(5, LinkSpec::lan());
        assert_eq!(t.hosts().len(), 5);
        assert_eq!(t.num_phys_links(), 10); // 5 ring + 5 access
        let mut r = crate::routing::Router::new();
        // Opposite hosts are 2-3 router hops + 2 access hops apart.
        let hs = t.hosts().to_vec();
        let hops = r.hop_count(&t, hs[0], hs[2]).unwrap();
        assert_eq!(hops, 4);
    }

    #[test]
    fn grid_topology() {
        let t = canned::grid(3, 3, LinkSpec::lan());
        assert_eq!(t.hosts().len(), 4);
        // 12 grid links + 4 access links.
        assert_eq!(t.num_phys_links(), 16);
        let mut r = crate::routing::Router::new();
        let hs = t.hosts().to_vec();
        // Diagonal corners: 4 manhattan hops + 2 access.
        assert_eq!(r.hop_count(&t, hs[0], hs[3]).unwrap(), 6);
    }

    #[test]
    fn full_mesh_topology() {
        let t = canned::full_mesh(4, LinkSpec::lan());
        assert_eq!(t.hosts().len(), 4);
        assert_eq!(t.num_phys_links(), 6);
        let mut r = crate::routing::Router::new();
        let hs = t.hosts().to_vec();
        assert_eq!(r.hop_count(&t, hs[0], hs[3]).unwrap(), 1);
    }

    #[test]
    fn sites_topology() {
        let lat = vec![vec![0, 30, 60], vec![30, 0, 45], vec![60, 45, 0]];
        let t = canned::sites(&lat, 4, LinkSpec::lan());
        assert_eq!(t.hosts().len(), 12);
        // 3 site routers fully meshed: 3 phys links + 12 access links
        assert_eq!(t.num_phys_links(), 15);
    }
}
