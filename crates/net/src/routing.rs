//! Shortest-path routing over the topology.
//!
//! Packets are forwarded hop-by-hop: at each node the router consults a
//! per-destination next-hop table. Tables are computed lazily by running
//! Dijkstra *from the destination* over reversed edges (link delays are
//! symmetric here, so forward and reverse trees coincide), then cached.
//!
//! Per-destination trees cost O(nodes) memory each, which stops scaling
//! once the overlay reaches 10⁴–10⁵ hosts, so two structural fast paths
//! keep leaf traffic out of the cache entirely:
//!
//! * **degree-1 source**: a host with a single access link has exactly
//!   one way out — no table lookup at all;
//! * **leaf destination**: every path to a degree-1 node enters through
//!   its sole neighbor (its *gateway*), so routing toward the leaf is
//!   routing toward the gateway plus the final access hop
//!   ([`Topology::reverse`] of the leaf's uplink — O(1) by the
//!   half-link layout invariant). Trees are therefore only ever built
//!   for multi-degree *anchor* nodes (routers), of which a star keeps
//!   exactly zero and a transit-stub graph a handful.
//!
//! A lazily built connected-components labelling answers reachability in
//! O(1) so the degree-1 shortcut can never bounce a packet destined to
//! another component.
//!
//! The same machinery doubles as the **latency oracle** used by the
//! evaluation framework to compute stretch and RDP: `dist(src, dst)` is
//! the uncongested one-way propagation latency of the best IP path.

use crate::topology::{LinkId, NodeId, Topology};
use macedon_sim::Duration;
use macedon_sim::FxHashMap;
use std::collections::BinaryHeap;

/// Per-destination routing state: for every node, the outgoing link on the
/// shortest path toward `dst`, and the total path latency.
struct DestTree {
    next_hop: Vec<Option<LinkId>>,
    dist_us: Vec<u64>,
}

/// Hop-by-hop router with lazy per-destination caches.
pub struct Router {
    trees: FxHashMap<NodeId, DestTree>,
    /// Connected-component label per node, built lazily (None = stale).
    comps: Option<Vec<u32>>,
}

impl Router {
    pub fn new() -> Router {
        Router {
            trees: FxHashMap::default(),
            comps: None,
        }
    }

    /// Are two nodes in the same connected component? O(1) after a lazy
    /// O(nodes + links) labelling pass.
    fn connected(&mut self, topo: &Topology, a: NodeId, b: NodeId) -> bool {
        let comps = self.comps.get_or_insert_with(|| components(topo));
        comps[a.index()] == comps[b.index()]
    }

    /// Resolve a leaf destination to its anchor: `(anchor, final hop,
    /// access delay)`. A degree-1 node is entered through its gateway;
    /// multi-degree nodes are their own anchor.
    fn anchor(topo: &Topology, dst: NodeId) -> Option<(NodeId, Option<LinkId>, u64)> {
        match *topo.outgoing(dst) {
            [up] => {
                let l = topo.link(up);
                Some((l.to, Some(topo.reverse(up)), l.delay.as_micros()))
            }
            [] => None, // isolated: unreachable unless src == dst
            _ => Some((dst, None, 0)),
        }
    }

    /// Next outgoing link from `at` toward `dst`, or `None` if unreachable
    /// (or already there).
    pub fn next_hop(&mut self, topo: &Topology, at: NodeId, dst: NodeId) -> Option<LinkId> {
        if at == dst || !self.connected(topo, at, dst) {
            return None;
        }
        // Degree-1 host: the only way out. (The reachability check above
        // guarantees this can't bounce an undeliverable packet forever.)
        if topo.is_host(at) {
            if let [only] = *topo.outgoing(at) {
                return Some(only);
            }
        }
        let (anchor, last_hop, _) = Self::anchor(topo, dst)?;
        if at == anchor {
            return last_hop;
        }
        self.tree(topo, anchor).next_hop[at.index()]
    }

    /// Uncongested one-way latency of the IP shortest path, or `None` if
    /// unreachable.
    pub fn dist(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Duration> {
        if src == dst {
            return Some(Duration::ZERO);
        }
        let (anchor, _, tail_us) = Self::anchor(topo, dst)?;
        if src == anchor {
            return Some(Duration::from_micros(tail_us));
        }
        let d = self.tree(topo, anchor).dist_us[src.index()];
        if d == u64::MAX {
            None
        } else {
            Some(Duration::from_micros(d + tail_us))
        }
    }

    /// The full IP path from `src` to `dst` as a sequence of links.
    pub fn path(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut out = Vec::new();
        let mut cur = src;
        // Path length is bounded by node count on a shortest-path tree.
        for _ in 0..topo.num_nodes() {
            let hop = self.next_hop(topo, cur, dst)?;
            out.push(hop);
            cur = topo.link(hop).to;
            if cur == dst {
                return Some(out);
            }
        }
        None // cycle would indicate a bug; report unreachable
    }

    /// Number of router hops on the IP path.
    pub fn hop_count(&mut self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<usize> {
        self.path(topo, src, dst).map(|p| p.len())
    }

    /// Drop all cached trees (call after topology faults change routing).
    pub fn invalidate(&mut self) {
        self.trees.clear();
        self.comps = None;
    }

    pub fn cached_destinations(&self) -> usize {
        self.trees.len()
    }

    fn tree(&mut self, topo: &Topology, dst: NodeId) -> &DestTree {
        self.trees
            .entry(dst)
            .or_insert_with(|| dijkstra_to(topo, dst))
    }
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

/// Dijkstra rooted at `dst`: because every link is materialized in both
/// directions with equal delay, relaxing over *outgoing* links from `dst`
/// yields distances valid in both directions; the next hop at node `v` is
/// the reverse half-link of the tree edge that relaxed `v`.
fn dijkstra_to(topo: &Topology, dst: NodeId) -> DestTree {
    let n = topo.num_nodes();
    let mut dist_us = vec![u64::MAX; n];
    let mut next_hop: Vec<Option<LinkId>> = vec![None; n];
    let mut heap: BinaryHeap<(std::cmp::Reverse<u64>, u32)> = BinaryHeap::new();
    dist_us[dst.index()] = 0;
    heap.push((std::cmp::Reverse(0), dst.0));

    while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
        let u = NodeId(u);
        if d > dist_us[u.index()] {
            continue;
        }
        for &lid in topo.outgoing(u) {
            let link = topo.link(lid);
            let v = link.to;
            let nd = d + link.delay.as_micros();
            if nd < dist_us[v.index()] {
                dist_us[v.index()] = nd;
                // The next hop from v toward dst is the reverse of `lid`:
                // the half-link from v to u — O(1) by layout invariant.
                next_hop[v.index()] = Some(topo.reverse(lid));
                heap.push((std::cmp::Reverse(nd), v.0));
            }
        }
    }

    DestTree { next_hop, dist_us }
}

/// Minimum propagation delay over every directed link — the conservative
/// lookahead bound for time-windowed parallel execution: no packet can
/// influence another node in less than this, so shards may advance a full
/// window of this length between barriers. `None` on a linkless topology.
///
/// This is a pure function of the current link table, so callers that
/// cache it must re-query after [`Topology::set_phys_link`] mutations
/// (the `Network` wrapper does exactly that).
pub fn min_link_delay(topo: &Topology) -> Option<Duration> {
    topo.links().iter().map(|l| l.delay).min()
}

/// Minimum delay over links whose endpoints live on different shards of
/// `smap` — the *cross-shard* lookahead. Always ≥ the global minimum;
/// the windowed engine uses the global bound (a handoff can be emitted
/// after traversing intra-shard links only), but per-partition bounds
/// are the observable that tells you how much lookahead a better
/// partitioning could buy. `None` when no link crosses the partition.
pub fn min_cross_shard_delay(topo: &Topology, smap: &crate::shard::ShardMap) -> Option<Duration> {
    topo.links()
        .iter()
        .filter(|l| smap.shard_of(l.from) != smap.shard_of(l.to))
        .map(|l| l.delay)
        .min()
}

/// Label connected components with an iterative flood fill.
fn components(topo: &Topology) -> Vec<u32> {
    let n = topo.num_nodes();
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next;
        stack.push(NodeId(start as u32));
        while let Some(u) = stack.pop() {
            for &lid in topo.outgoing(u) {
                let v = topo.link(lid).to;
                if label[v.index()] == u32::MAX {
                    label[v.index()] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{canned, LinkSpec, TopologyBuilder};
    use macedon_sim::SimRng;

    #[test]
    fn two_hosts_route_through_router() {
        let t = canned::two_hosts(LinkSpec::lan());
        let (a, b) = (t.hosts()[0], t.hosts()[1]);
        let mut r = Router::new();
        let p = r.path(&t, a, b).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(t.link(p[0]).from, a);
        assert_eq!(t.link(p[1]).to, b);
        assert_eq!(
            r.dist(&t, a, b).unwrap(),
            macedon_sim::Duration::from_millis(2)
        );
    }

    #[test]
    fn dist_to_self_is_zero() {
        let t = canned::star(3, LinkSpec::lan());
        let mut r = Router::new();
        let h = t.hosts()[0];
        assert_eq!(r.dist(&t, h, h).unwrap(), Duration::ZERO);
        assert!(r.next_hop(&t, h, h).is_none());
    }

    #[test]
    fn line_distances_accumulate() {
        let t = canned::line(4, LinkSpec::lan()); // 4 routers, 2 end hosts
        let (a, z) = (t.hosts()[0], t.hosts()[1]);
        let mut r = Router::new();
        // host-r0, r0-r1, r1-r2, r2-r3, r3-host = 5 hops of 1ms
        assert_eq!(r.hop_count(&t, a, z).unwrap(), 5);
        assert_eq!(r.dist(&t, a, z).unwrap(), Duration::from_millis(5));
    }

    #[test]
    fn picks_lower_latency_path() {
        // Diamond: a -r1- b (fast) and a -r2- b (slow)
        let mut b = TopologyBuilder::new();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let fast = b.add_router();
        let slow = b.add_router();
        b.add_link(
            h1,
            fast,
            LinkSpec::new(Duration::from_millis(1), 1_000_000, 32_000),
        );
        b.add_link(
            fast,
            h2,
            LinkSpec::new(Duration::from_millis(1), 1_000_000, 32_000),
        );
        b.add_link(
            h1,
            slow,
            LinkSpec::new(Duration::from_millis(50), 1_000_000, 32_000),
        );
        b.add_link(
            slow,
            h2,
            LinkSpec::new(Duration::from_millis(50), 1_000_000, 32_000),
        );
        let t = b.build();
        let mut r = Router::new();
        let path = r.path(&t, h1, h2).unwrap();
        assert_eq!(t.link(path[0]).to, fast);
        assert_eq!(r.dist(&t, h1, h2).unwrap(), Duration::from_millis(2));
    }

    #[test]
    fn unreachable_reports_none() {
        let mut b = TopologyBuilder::new();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let r1 = b.add_router();
        b.add_link(h1, r1, LinkSpec::lan());
        // h2 has no links
        let _ = h2;
        let t = b.build();
        let mut r = Router::new();
        assert!(r.dist(&t, h1, h2).is_none());
        assert!(r.path(&t, h1, h2).is_none());
    }

    #[test]
    fn symmetric_distances() {
        let mut rng = SimRng::new(11);
        let t = crate::topology::inet(&crate::topology::InetParams::test_scale(10), &mut rng);
        let mut r = Router::new();
        let hs = t.hosts().to_vec();
        for i in 0..hs.len() {
            for j in (i + 1)..hs.len() {
                assert_eq!(r.dist(&t, hs[i], hs[j]), r.dist(&t, hs[j], hs[i]));
            }
        }
    }

    #[test]
    fn cache_grows_lazily_and_invalidates() {
        let t = canned::star(4, LinkSpec::lan());
        let mut r = Router::new();
        assert_eq!(r.cached_destinations(), 0);
        let hs = t.hosts().to_vec();
        r.dist(&t, hs[0], hs[1]);
        assert_eq!(r.cached_destinations(), 1);
        // Every leaf destination resolves to the same hub anchor — the
        // cache must NOT grow per host.
        r.dist(&t, hs[0], hs[2]);
        assert_eq!(r.cached_destinations(), 1);
        r.invalidate();
        assert_eq!(r.cached_destinations(), 0);
    }

    #[test]
    fn star_routing_builds_no_trees() {
        // Forwarding between leaves of a star touches only the degree-1
        // fast path (at the host) and the anchor's final hop (at the
        // hub): no Dijkstra tree at all, at any scale.
        let t = canned::star(50, LinkSpec::lan());
        let hs = t.hosts().to_vec();
        let mut r = Router::new();
        for i in 0..50 {
            let p = r.path(&t, hs[i], hs[(i + 7) % 50]).unwrap();
            assert_eq!(p.len(), 2);
        }
        assert_eq!(r.cached_destinations(), 0, "leaf-to-leaf needs no trees");
    }

    #[test]
    fn cross_component_is_unreachable_without_bouncing() {
        // Two disjoint star islands; a leaf-to-other-island packet must
        // report no route (the degree-1 shortcut must not loop it).
        let mut b = TopologyBuilder::new();
        let a1 = b.add_host();
        let a2 = b.add_host();
        let ra = b.add_router();
        b.add_link(a1, ra, LinkSpec::lan());
        b.add_link(a2, ra, LinkSpec::lan());
        let z1 = b.add_host();
        let rz = b.add_router();
        b.add_link(z1, rz, LinkSpec::lan());
        let t = b.build();
        let mut r = Router::new();
        assert!(r.next_hop(&t, a1, z1).is_none());
        assert!(r.path(&t, a1, z1).is_none());
        assert!(r.dist(&t, a1, z1).is_none());
        // Same-island traffic unaffected.
        assert_eq!(r.path(&t, a1, a2).unwrap().len(), 2);
    }

    #[test]
    fn min_link_delay_is_the_global_minimum() {
        let mut b = TopologyBuilder::new();
        let h1 = b.add_host();
        let h2 = b.add_host();
        let r = b.add_router();
        b.add_link(
            h1,
            r,
            LinkSpec::new(Duration::from_millis(5), 1_000_000, 32_000),
        );
        b.add_link(
            r,
            h2,
            LinkSpec::new(Duration::from_millis(2), 1_000_000, 32_000),
        );
        let t = b.build();
        assert_eq!(min_link_delay(&t), Some(Duration::from_millis(2)));
        assert_eq!(min_link_delay(&TopologyBuilder::new().build()), None);
    }

    #[test]
    fn min_link_delay_tracks_phys_link_mutation() {
        let mut t = canned::star(4, LinkSpec::lan()); // 2 ms links? lan() delay
        let before = min_link_delay(&t).unwrap();
        let phys = t.link(t.outgoing(t.hosts()[0])[0]).phys;
        let faster = Duration::from_micros(before.as_micros() / 2);
        t.set_phys_link(phys, None, Some(faster));
        assert_eq!(
            min_link_delay(&t),
            Some(faster),
            "recomputes after mutation"
        );
        let slower = Duration::from_micros(before.as_micros() * 4);
        t.set_phys_link(phys, None, Some(slower));
        assert_eq!(min_link_delay(&t), Some(before), "other links now bound it");
    }

    #[test]
    fn cross_shard_delay_bounds_global() {
        use crate::shard::ShardMap;
        let t = canned::star(8, LinkSpec::lan());
        let solo = ShardMap::solo(&t);
        assert_eq!(
            min_cross_shard_delay(&t, &solo),
            None,
            "one shard has no crossing links"
        );
        let m = ShardMap::partition_hosts(&t, 4);
        let cross = min_cross_shard_delay(&t, &m).unwrap();
        assert!(cross >= min_link_delay(&t).unwrap());
    }

    /// Cross-check Dijkstra against Floyd-Warshall on small random graphs.
    #[test]
    fn matches_floyd_warshall() {
        for seed in 0..5u64 {
            let mut rng = SimRng::new(seed);
            let t = crate::topology::inet(
                &crate::topology::InetParams {
                    routers: 30,
                    clients: 6,
                    ..Default::default()
                },
                &mut rng,
            );
            let n = t.num_nodes();
            let mut fw = vec![vec![u64::MAX / 4; n]; n];
            for (i, row) in fw.iter_mut().enumerate() {
                row[i] = 0;
            }
            for l in t.links() {
                let (a, b) = (l.from.index(), l.to.index());
                fw[a][b] = fw[a][b].min(l.delay.as_micros());
            }
            for k in 0..n {
                for i in 0..n {
                    for j in 0..n {
                        let via = fw[i][k] + fw[k][j];
                        if via < fw[i][j] {
                            fw[i][j] = via;
                        }
                    }
                }
            }
            let mut r = Router::new();
            let hosts = t.hosts().to_vec();
            for &a in &hosts {
                for &b in &hosts {
                    let d = r.dist(&t, a, b).unwrap().as_micros();
                    assert_eq!(d, fw[a.index()][b.index()], "seed={seed} {a:?}->{b:?}");
                }
            }
        }
    }
}
